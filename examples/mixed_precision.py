#!/usr/bin/env python
"""Mixed-precision training with dynamic loss scaling (Sections V-B1, VII-A).

Shows the FP16 machinery the paper relies on — half-precision working
weights with FP32 masters, loss scaling with overflow back-off — and the
class-weighting instability: inverse-frequency weights trip the scaler far
more than inverse-sqrt weights.

Run:  python examples/mixed_precision.py
"""
import numpy as np

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer
from repro.core.networks import Tiramisu, TiramisuConfig


def make_model():
    return Tiramisu(
        TiramisuConfig(in_channels=4, base_filters=12, growth=6,
                       down_layers=(2, 2), bottleneck_layers=2, kernel=3,
                       dropout=0.0),
        rng=np.random.default_rng(11),
    )


def run(dataset, freqs, weighting, loss_scale):
    trainer = Trainer(make_model(), TrainConfig(
        lr=0.05, optimizer="larc", precision="fp16", weighting=weighting,
        loss_scale=loss_scale, dynamic_loss_scale=True), freqs)
    rng = np.random.default_rng(4)
    skipped = total = 0
    losses = []
    for _ in range(4):
        for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
            result = trainer.train_step(imgs, labs)
            total += 1
            skipped += result.skipped
            if not result.skipped:
                losses.append(result.loss)
    return trainer, skipped, total, losses


def main():
    grid = Grid(16, 24)
    dataset = ClimateDataset.synthesize(grid, num_samples=16, seed=9, channels=4)
    freqs = class_frequencies(dataset.labels)

    print("FP16 training with FP32 master weights and dynamic loss scaling\n")
    for weighting in ("inverse_sqrt", "inverse"):
        trainer, skipped, total, losses = run(dataset, freqs, weighting,
                                              loss_scale=2.0**22)
        conv = next(p for p in trainer.model.parameters() if p.data.ndim == 4)
        print(f"weighting={weighting:13s}: {skipped}/{total} steps skipped "
              f"(overflow), final loss {np.mean(losses[-3:]):.4f}, "
              f"final loss scale 2^{np.log2(trainer.scaler.scale):.0f}")
        print(f"   working dtype {conv.data.dtype}, master dtype "
              f"{conv.master.dtype}")
    print("\n(paper: inverse-frequency weights caused 'numerical stability "
          "issues, especially with FP16 training'; inverse-sqrt is the fix)")


if __name__ == "__main__":
    main()
