#!/usr/bin/env python
"""Distributed data-parallel training over the simulated MPI substrate.

Demonstrates the paper's training configuration end to end:

* one model replica per rank (identical initialization, like Horovod's
  initial broadcast);
* per-rank shards of the staged dataset (Section V-A1's layout);
* Horovod-style negotiation + fused hierarchical all-reduce each step;
* the invariant that makes it all correct: replicas stay bit-identical.

Run:  python examples/distributed_training.py
"""
import numpy as np

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.comm import HorovodConfig
from repro.core import DistributedTrainer, TrainConfig
from repro.core.networks import Tiramisu, TiramisuConfig


def model_factory():
    return Tiramisu(
        TiramisuConfig(in_channels=4, base_filters=12, growth=6,
                       down_layers=(2, 2), bottleneck_layers=2, kernel=3,
                       dropout=0.0),
        rng=np.random.default_rng(7),
    )


def main():
    world_size = 6  # one simulated Summit node: 6 GPUs
    grid = Grid(16, 24)
    dataset = ClimateDataset.synthesize(grid, num_samples=24, seed=2, channels=4)
    freqs = class_frequencies(dataset.labels)

    config = TrainConfig(lr=0.08, optimizer="larc", weighting="inverse_sqrt")
    horovod = HorovodConfig(
        algorithm="hierarchical",       # NCCL-in-node + MPI across (V-A3)
        control_plane="hierarchical",   # radix-4 readiness tree
        gpus_per_node=6, mpi_ranks_per_node=4,
        fusion_threshold_bytes=2 * 1024 * 1024,
    )
    trainer = DistributedTrainer(model_factory, world_size, config, freqs,
                                 horovod=horovod)
    print(f"Training on {world_size} simulated ranks "
          f"({trainer.model.num_parameters():,} params/replica)")

    rng = np.random.default_rng(3)
    for epoch in range(4):
        results = trainer.train_epoch(dataset, batch_size=1, rng=rng)
        losses = [r.mean_loss for r in results]
        last = results[-1].exchange
        print(f"  epoch {epoch}: loss {np.mean(losses):.4f} | "
              f"allreduce: {last.fusion.num_collectives} fused collectives, "
              f"{last.data_bytes/1e6:.1f} MB moved, "
              f"controller load {last.negotiation.controller_load} msgs")
        print(f"    replica parameter divergence: "
              f"{trainer.max_replica_divergence():.2e} (must stay 0)")

    assert trainer.max_replica_divergence() == 0.0
    print("Synchronous-training invariant held: replicas bit-identical.")


if __name__ == "__main__":
    main()
