#!/usr/bin/env python
"""Trace a tiny training run and summarize the telemetry.

The observability walk-through: activate a telemetry session, train a small
Tiramisu for a few steps (the trainer, prefetch pipeline, and loss path are
instrumented internally), then

1. write a whole-run Chrome trace (open in chrome://tracing or
   https://ui.perfetto.dev) and a JSONL structured log;
2. print the paper-style metrics report — medians with the central-68%
   interval of Section VI;
3. walk the span tree of one step to show the nested timing structure.

Run:  python examples/trace_training.py
"""
import tempfile
from pathlib import Path

import numpy as np

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.io.pipeline import PrefetchPipeline
from repro.perf.stats import sustained_throughput
from repro.telemetry import (Telemetry, activate, render_metrics_report,
                             write_chrome_trace, write_jsonl)


def main():
    grid = Grid(nlat=16, nlon=24)
    dataset = ClimateDataset.synthesize(grid, num_samples=8, seed=0, channels=4)
    freqs = class_frequencies(dataset.labels)
    model = Tiramisu(
        TiramisuConfig(in_channels=4, base_filters=8, growth=8,
                       down_layers=(2,), bottleneck_layers=2, kernel=3,
                       dropout=0.0),
        rng=np.random.default_rng(42),
    )
    steps = 4

    tel = Telemetry()
    with activate(tel):
        trainer = Trainer(model, TrainConfig(lr=0.1, optimizer="larc"), freqs)
        # Feed batches through the instrumented prefetch pipeline so io
        # spans (read latency, queue depth) join the trainer spans.
        pipeline = PrefetchPipeline(
            lambda i: (dataset.images[i], dataset.labels[i]),
            np.resize(np.arange(len(dataset)), steps).tolist(),
            num_workers=2, prefetch_depth=4)
        for image, label in pipeline:
            trainer.train_step(image[None], label[None])

    spans = tel.tracer.spans()
    step_times = tel.metrics.histogram("trainer.step_time_s").values()
    stats = sustained_throughput(np.ones((steps, 1)), step_times)

    out = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    write_chrome_trace(out / "trace.json", spans)
    write_jsonl(out / "telemetry.jsonl", spans, tel.metrics)
    components = sorted({s.category for s in spans})
    print(f"trace spans: {len(spans)} across components "
          f"{', '.join(components)}")
    print(f"artifacts: {out}/trace.json  {out}/telemetry.jsonl")
    print()
    print(render_metrics_report(
        tel.metrics, title="Training telemetry",
        extra_lines=[
            f"sustained throughput: median {stats.median:.2f} samples/s "
            f"(+{stats.err_plus:.2f}/-{stats.err_minus:.2f}, central 68%)",
        ]))

    # Span tree of the last step: nested timing, Horovod-timeline style.
    last_step = [s for s in spans if s.name == "train_step"][-1]
    print(f"last step span tree ({last_step.duration_us / 1e3:.1f} ms total):")
    for child in spans:
        if child.parent_id == last_step.span_id:
            share = child.duration_us / max(last_step.duration_us, 1e-9)
            print(f"  {child.name:<16s} {child.duration_us / 1e3:8.2f} ms "
                  f"({share * 100:4.1f}%)")


if __name__ == "__main__":
    main()
