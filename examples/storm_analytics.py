#!/usr/bin/env python
"""Storm tracking and per-storm climate analytics (Section VIII-A).

The paper's motivation for pixel-level masks: "we can now compute
conditional precipitation, wind velocity profiles and power dissipation
indices for individual storm systems."  This example:

1. generates a temporally coherent snapshot sequence with advected cyclones;
2. detects storms per frame (TECA thresholds) and stitches trajectories;
3. computes per-storm statistics from the segmentation masks.

Run:  python examples/storm_analytics.py
"""
import numpy as np

from repro.climate import (
    Grid,
    SnapshotSynthesizer,
    basin_summary,
    cyclone_mask,
    detect_cyclones,
    generate_sequence,
    radial_wind_profile,
    storm_statistics,
    track_cyclones,
)


def main():
    grid = Grid(64, 96)
    synth = SnapshotSynthesizer(grid, mean_cyclones=3.0, mean_rivers=1.0)
    print("Generating a 6-frame (18-hour) sequence with advected storms ...")
    snapshots, truth = generate_sequence(grid, steps=6, seed=4,
                                         synthesizer=synth)
    print(f"  {len(truth[0])} storms planted\n")

    print("Detecting and tracking cyclones:")
    per_frame = [detect_cyclones(s.fields, grid) for s in snapshots]
    tracks = track_cyclones(per_frame, max_step_deg=5.0, min_duration=3)
    for i, tr in enumerate(tracks):
        lat0, lon0 = tr.positions[0]
        lat1, lon1 = tr.positions[-1]
        print(f"  track {i}: frames {tr.frames[0]}-{tr.frames[-1]}, "
              f"({lat0:+.1f},{lon0:.1f}) -> ({lat1:+.1f},{lon1:.1f}), "
              f"path {tr.displacement_deg(grid):.1f} deg")

    print("\nPer-storm statistics from the final frame's masks:")
    snap = snapshots[-1]
    cands = detect_cyclones(snap.fields, grid)
    mask = cyclone_mask(snap.fields, grid, cands)
    stats = storm_statistics(snap.fields, mask, grid)
    for s in stats:
        print(f"  storm @({s.center_lat:+.1f},{s.center_lon:.1f}): "
              f"area {s.area_km2/1e3:.0f} kkm2, min PSL {s.min_psl_hpa:.0f} hPa, "
              f"max wind {s.max_wind_ms:.0f} m/s, "
              f"cond. precip {s.mean_conditional_precip*3.6e6:.2f} mm/h, "
              f"PDI {s.power_dissipation_index:.2e}")
    print("\nBasin summary:", {k: (f"{v:.3g}" if isinstance(v, float) else v)
                               for k, v in basin_summary(stats).items()})

    if stats:
        s = stats[0]
        radii, profile = radial_wind_profile(snap.fields, grid,
                                             s.center_lat, s.center_lon,
                                             max_radius_deg=10.0, bins=8)
        print("\nRadial wind profile of the first storm (850 hPa):")
        for r, v in zip(radii, profile):
            bar = "#" * int(v) if v == v else ""
            print(f"  {r:5.2f} deg: {v:5.1f} m/s {bar}")


if __name__ == "__main__":
    main()
