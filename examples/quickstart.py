#!/usr/bin/env python
"""Quickstart: generate climate data, label it, train a segmentation net.

Walks the whole pipeline of the paper at laptop scale in under a minute:

1. synthesize CAM5-like snapshots with embedded cyclones and atmospheric
   rivers;
2. label them with the heuristic pipeline (TECA-style TC thresholds + IWV
   floodfill for ARs);
3. train a small Tiramisu with the weighted loss and LARC;
4. evaluate IoU on the validation split.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.climate import CLASS_NAMES, ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer
from repro.core.networks import Tiramisu, TiramisuConfig


def main():
    # 1-2. Data: 24 snapshots on a small grid, 8 physical channels.
    grid = Grid(nlat=24, nlon=32)
    print(f"Synthesizing {grid.shape} snapshots and labeling TCs/ARs ...")
    dataset = ClimateDataset.synthesize(grid, num_samples=24, seed=0, channels=8)
    freqs = class_frequencies(dataset.labels)
    print("  class frequencies:",
          {n: round(float(f), 4) for n, f in zip(CLASS_NAMES, freqs)})
    print("  (paper: BG ~98.2%, AR ~1.7%, TC <0.1%)")

    # 3. Model + trainer: small Tiramisu, inverse-sqrt weighted loss, LARC.
    model = Tiramisu(
        TiramisuConfig(in_channels=8, base_filters=16, growth=8,
                       down_layers=(2, 2), bottleneck_layers=2, kernel=3,
                       dropout=0.0),
        rng=np.random.default_rng(42),
    )
    config = TrainConfig(lr=0.1, optimizer="larc", weighting="inverse_sqrt")
    trainer = Trainer(model, config, freqs)
    print(f"Training Tiramisu ({model.num_parameters():,} parameters) ...")

    rng = np.random.default_rng(1)
    for epoch in range(6):
        losses = [trainer.train_step(x, y).loss
                  for x, y in dataset.batches(dataset.splits.train, 2, rng)]
        print(f"  epoch {epoch}: loss {np.mean(losses):.4f}")

    # 4. Evaluate.
    report = trainer.evaluate(
        dataset.batches(dataset.splits.validation, 1, drop_last=False),
        class_names=CLASS_NAMES,
    )
    print(f"Validation: mean IoU {report.mean_iou:.3f}, "
          f"accuracy {report.accuracy:.3f}")
    print("  per-class IoU:",
          {k: (round(v, 3) if v == v else "n/a") for k, v in report.iou.items()})
    print("(paper at full scale: Tiramisu 59% IoU, DeepLabv3+ 73% IoU)")


if __name__ == "__main__":
    main()
