#!/usr/bin/env python
"""Reproduce the paper's scaling story: from one GPU to 27360.

Prints the Figure 4 weak-scaling curves for both machines, the staging-time
comparison of Section V-A1, and the control-plane comparison of Section
V-A3, with the paper's headline numbers alongside.

Run:  python examples/scaling_study.py
"""
from repro.climate import PAPER_DATASET
from repro.comm import ReadinessSchedule, centralized_negotiation, hierarchical_negotiation
from repro.hpc import SUMMIT
from repro.io import plan_staging
from repro.perf import format_table, weak_scaling_curve


def weak_scaling():
    print("=" * 72)
    print("Weak scaling (Figure 4)")
    print("=" * 72)
    for title, args, paper in (
        ("Tiramisu / Piz Daint FP32",
         dict(network="tiramisu_4ch", system_name="piz_daint",
              precision="fp32", lag=0,
              gpu_counts=[1, 256, 1024, 2048, 5300]),
         "paper: 21.0 PF/s sustained, 79.0% efficiency at 5300 GPUs"),
        ("DeepLabv3+ / Summit FP32 (lag 1)",
         dict(network="deeplabv3+", system_name="summit", precision="fp32",
              lag=1, gpu_counts=[1, 6, 1536, 6144, 27360]),
         "paper: 325.8 PF/s, 90.7% at 27360 GPUs"),
        ("DeepLabv3+ / Summit FP16 (lag 1)",
         dict(network="deeplabv3+", system_name="summit", precision="fp16",
              lag=1, gpu_counts=[1, 6, 1536, 6144, 27360]),
         "paper: 999.0 PF/s sustained (1.13 EF/s peak), 90.7%"),
    ):
        points = weak_scaling_curve(**args)
        rows = [[p.gpus, f"{p.images_per_second:,.0f}",
                 f"{p.sustained_pflops:,.1f}", f"{p.efficiency*100:.1f}"]
                for p in points]
        print(format_table(["GPUs", "images/s", "PF/s", "eff %"], rows,
                           title=f"\n{title}  ({paper})"))


def staging():
    print()
    print("=" * 72)
    print("Data staging (Section V-A1)")
    print("=" * 72)
    fb, nf = PAPER_DATASET.sample_bytes, PAPER_DATASET.num_samples
    rows = []
    for nodes in (1024, 4500):
        naive = plan_staging(SUMMIT, nf, fb, nodes, strategy="naive")
        dist = plan_staging(SUMMIT, nf, fb, nodes, strategy="distributed")
        rows.append([nodes, f"{naive.total_time_s/60:.1f}",
                     f"{naive.replication_factor:.1f}x",
                     f"{dist.total_time_s/60:.2f}"])
    print(format_table(
        ["nodes", "naive (min)", "FS re-reads", "distributed (min)"], rows,
        title="paper: naive 10-20 min (23x re-read); "
              "distributed <3 min @1024, <7 min @4500"))


def control_plane():
    print()
    print("=" * 72)
    print("Horovod control plane (Section V-A3)")
    print("=" * 72)
    tensors = 110
    rows = []
    for ranks in (256, 4096, 16384):
        s = ReadinessSchedule.random(ranks, tensors, seed=ranks)
        c = centralized_negotiation(s)
        h = hierarchical_negotiation(s, radix=4)
        rows.append([ranks, f"{c.controller_load:,}",
                     f"{int((h.messages_sent + h.messages_received).max()):,}"])
    print(format_table(
        ["ranks", "centralized: busiest-rank msgs/step",
         "hierarchical: busiest-rank msgs/step"],
        rows,
        title="paper: 'millions of messages per second' -> 'mere thousands'"))


def main():
    weak_scaling()
    staging()
    control_plane()


if __name__ == "__main__":
    main()
