#!/usr/bin/env python
"""Serving: micro-batched, fault-tolerant inference over a replica pool.

Deploys a small Tiramisu behind the full serving stack at laptop scale:

1. generate a seeded synthetic workload (Poisson arrivals, two priority
   lanes, repeated snapshots so the tile cache earns its keep);
2. serve it through dynamic micro-batching + least-loaded replica
   routing + SLO-aware admission control, on a virtual clock;
3. kill one of the two replicas mid-burst with a FaultPlan and show the
   retry-on-survivor path losing nothing that was admitted.

Run:  python examples/serving.py
"""
import numpy as np

from repro.core.networks import Tiramisu, TiramisuConfig
from repro.resilience import FaultPlan
from repro.serve import (InferenceServer, ServeConfig, WorkloadConfig,
                         summarize, synth_workload)
from repro.telemetry import Telemetry, activate

CHANNELS = 4


def model_factory():
    return Tiramisu(
        TiramisuConfig(in_channels=CHANNELS, base_filters=8, growth=8,
                       down_layers=(2,), bottleneck_layers=2, kernel=3,
                       dropout=0.0),
        rng=np.random.default_rng(0))


def serve_once(plan=None, seed=0):
    config = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4), num_replicas=2,
                         max_batch_size=8, max_wait_s=0.002,
                         forward_batch=32)
    workload = WorkloadConfig(num_requests=48, rate_rps=2000.0,
                              image_hw=(16, 16), channels=CHANNELS,
                              repeat_fraction=0.3, seed=seed)
    tel = Telemetry()
    with activate(tel):
        server = InferenceServer(model_factory, config, plan=plan)
        responses = server.serve(synth_workload(workload))
        return summarize(responses, server)


def main():
    print("Serving 48 requests across 2 replicas (micro-batch 8) ...")
    report = serve_once()
    print(f"  served {report.served}/{report.offered}, "
          f"shed {report.shed}, failed {report.failed}")
    print(f"  throughput {report.throughput_rps:,.0f} req/s, "
          f"mean batch {report.mean_batch_size:.1f}")
    for lane, summary in report.lanes.items():
        print(f"  {lane}: p50 {summary.p50_ms:.1f} ms, "
              f"p99 {summary.p99_ms:.1f} ms")
    print(f"  cache hit rate {report.cache['hit_rate'] * 100:.1f}%")

    print("Again, killing replica 1 at the second dispatch ...")
    faulty = serve_once(plan=FaultPlan.parse("rank_fail@1:rank=1", seed=0))
    print(f"  replica failures: {faulty.replica_failures} "
          f"(survivors: {faulty.alive_replicas}, "
          f"{faulty.dispatch_retries} dispatch retries)")
    print(f"  served {faulty.served}/{faulty.offered}, "
          f"admitted-but-lost: {faulty.lost_admitted}")
    assert faulty.lost_admitted == 0, "an admitted request was lost"
    print("No admitted request lost.")


if __name__ == "__main__":
    main()
