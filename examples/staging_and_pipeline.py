#!/usr/bin/env python
"""The I/O path, end to end (Sections V-A1 and V-A2).

1. Writes a real on-disk dataset (one file per sample, the HDF5 layout).
2. Runs the distributed staging protocol functionally over simulated MPI.
3. Demonstrates the HDF5-lock effect with real reader threads: a shared
   serialization gate (thread regime) vs private gates (the multiprocessing
   fix).
4. Simulates the prefetching input pipeline feeding a training loop.

Run:  python examples/staging_and_pipeline.py
"""
import tempfile
import numpy as np

from repro.climate import Grid, SampleFileStore, SnapshotSynthesizer, make_labels
from repro.comm import World
from repro.io import PipelineSimulator, PrefetchPipeline, ThreadedReader, stage_distributed


def build_store(root, grid, n):
    store = SampleFileStore(root)
    synth = SnapshotSynthesizer(grid)
    for i in range(n):
        snap = synth.generate(i)
        store.write_sample(i, snap.to_array(), make_labels(snap))
    store.write_manifest(grid, n)
    return store


def main():
    grid = Grid(24, 32)
    with tempfile.TemporaryDirectory() as tmp:
        print("Writing 16-sample dataset (one file per sample) ...")
        store = build_store(tmp, grid, 16)
        manifest = store.read_manifest()
        print(f"  {manifest['count']} files, "
              f"{manifest['sample_file_bytes']/1e3:.0f} kB each\n")

        print("Distributed staging protocol over simulated MPI (V-A1):")
        world = World(4)
        staged, stats = stage_distributed(world, num_files=16,
                                          files_per_rank=8, seed=0)
        print(f"  4 ranks x 8 files: consistent={stats['consistent']}, "
              f"{stats['total_requests']} transfers over the fabric, "
              f"{stats['messages']} messages\n")

        print("Reader threads vs the HDF5 serialization gate (V-A2):")
        for shared, label in ((True, "4 threads, shared gate (HDF5 regime)"),
                              (False, "4 workers, private gates (processes)")):
            reader = ThreadedReader(store, num_workers=4, shared_gate=shared)
            _, result = reader.read_indices(list(range(16)))
            print(f"  {label}: {result.samples_per_second:,.0f} samples/s, "
                  f"lock wait {result.gate_wait_s*1e3:.2f} ms")

        print("\nPrefetch pipeline (real threads) over the store:")
        pipe = PrefetchPipeline(lambda i: store.read_sample(i),
                                indices=list(range(16)), num_workers=4,
                                prefetch_depth=8)
        count = sum(1 for _ in pipe)
        print(f"  delivered {count} samples in submission order\n")

        print("Pipeline simulation: feeding DeepLabv3+ FP16 (0.3s steps):")
        for label, workers, depth, serialized in (
            ("no prefetch", 1, 0, False),
            ("4 threads behind HDF5 lock", 4, 8, True),
            ("4 worker processes", 4, 8, False),
        ):
            stats = PipelineSimulator(0.3, 0.7, workers, depth,
                                      serialized_workers=serialized).run(50)
            print(f"  {label:30s}: step {stats.achieved_step_time_s:.3f}s, "
                  f"GPU idle {stats.gpu_idle_fraction*100:.0f}%")


if __name__ == "__main__":
    main()
