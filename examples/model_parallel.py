#!/usr/bin/env python
"""Spatial model parallelism: convolutions over domain-decomposed tensors.

Section VIII-B of the paper calls model parallelism "indispensable in the
foreseeable future" and points at NVLink-linked GPUs for domain
decomposition.  This example stripes an activation over the 6 simulated
GPUs of a Summit node, exchanges halos, runs a distributed convolution
chain, and verifies the result equals the single-device computation while
per-GPU memory drops ~6x.

Run:  python examples/model_parallel.py
"""
import numpy as np

from repro.comm import World, split_stripes
from repro.core.spatial import (
    SpatialPartition,
    activation_bytes_per_rank,
    halo_rows_for,
)
from repro.framework.ops import conv2d_forward


def main():
    rng = np.random.default_rng(0)
    # A decoder-like activation, striped across one Summit node (6 GPUs).
    x = rng.normal(size=(1, 32, 96, 48)).astype(np.float32)
    w1 = rng.normal(size=(32, 32, 3, 3)).astype(np.float32) * 0.05
    w2 = rng.normal(size=(16, 32, 3, 3)).astype(np.float32) * 0.05

    world = World(6)
    part = SpatialPartition.scatter(world, x)
    print(f"Activation {x.shape} striped over {world.size} ranks: "
          f"heights {part.stripe_heights}, halo "
          f"{halo_rows_for(3)} row(s) per boundary per conv")

    out = part.conv2d(w1).conv2d(w2, dilation=2).gather()
    ref = conv2d_forward(conv2d_forward(x, w1, 1, 1, 1), w2, 1, 2, 2)
    err = float(np.abs(out - ref).max())
    print(f"Distributed conv chain vs single device: max abs error {err:.2e}")
    print(f"Halo traffic: {world.stats.total_bytes/1e3:.1f} kB in "
          f"{world.stats.total_messages} messages\n")

    print("Memory story for the paper's full-res decoder (1152x768x256 FP32):")
    for ranks in (1, 2, 6):
        full, per_rank = activation_bytes_per_rank(
            batch=1, channels=256, height=768, width=1152, ranks=ranks,
            kernel=3)
        print(f"  {ranks} rank(s): {per_rank/1e9:.3f} GB per GPU "
              f"(full tensor {full/1e9:.2f} GB, reduction {full/per_rank:.1f}x)")
    print("\n(paper Section VIII-B: 'domain decomposition techniques that "
          "split layers across processors')")


if __name__ == "__main__":
    main()
