#!/usr/bin/env python
"""Graph-based FLOP analysis at the paper's full 1152x768 resolution.

The networks are traced symbolically (no arithmetic), reproducing the
Section-VI methodology and the Figure 2 operation counts, then mapped onto
the V100/P100 rooflines for the per-category breakdown of Figures 8/9.

Run:  python examples/flop_analysis.py
"""
from repro.core import network_flop_table, paper_conv_example_flops
from repro.perf import PAPER_DETAIL, figure2_table, format_table, kernel_breakdown


def main():
    print("Section VI worked example: 3x3 conv, 1152x768, 48->32 ch, batch 2")
    print(f"  counted {paper_conv_example_flops()/1e9:.1f} GFLOPs (paper: 48.9)\n")

    rows = [[r.name, f"{r.tf_per_sample:.3f}", r.paper_tf_per_sample,
             f"{r.ratio_to_paper:.2f}", f"{r.parameters/1e6:.1f}M",
             r.kernel_count]
            for r in network_flop_table()]
    print(format_table(
        ["network", "TF/sample", "paper", "ratio", "params", "kernels"],
        rows, title="Figure 2 operation counts (traced at 1152x768)"))

    print()
    rows = []
    for p in figure2_table():
        rows.append([p.network, p.gpu, p.precision,
                     f"{p.samples_per_second:.2f}", f"{p.sustained_tf:.1f}",
                     f"{p.pct_peak:.1f}%"])
    print(format_table(
        ["network", "gpu", "precision", "samples/s", "TF/s", "% peak"],
        rows, title="Figure 2 modeled training rates"))

    for net in ("tiramisu", "deeplabv3+"):
        for prec in ("fp32", "fp16"):
            table = kernel_breakdown(net, prec)
            paper_ms = PAPER_DETAIL[(net, prec)][0]
            print(f"\n{net} {prec}: modeled step "
                  f"{table.total_time_s*1e3:.0f} ms (paper {paper_ms} ms); "
                  f"dominant category: {table.dominant_category()}")


if __name__ == "__main__":
    main()
