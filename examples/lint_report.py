#!/usr/bin/env python
"""Programmatic static analysis: lint the codebase and summarize the debt.

``repro lint`` is the CLI; this walk-through uses the same
:func:`repro.analysis.run_lint` entry point as a library to

1. analyze ``src/repro`` against the committed baseline
   (``.repro-lint-baseline.json``) with telemetry counters active;
2. group findings by rule and render the rule catalog next to the counts;
3. print a per-module summary table (which package owns which debt);
4. show the per-rule telemetry counters the run emitted.

Run:  python examples/lint_report.py
"""
from collections import Counter
from pathlib import Path

from repro.analysis import rule_catalog, run_lint
from repro.perf import format_table
from repro.telemetry import Telemetry, activate

REPO = Path(__file__).resolve().parent.parent


def module_of(path: str) -> str:
    """src/repro/framework/ops/conv.py -> repro.framework.ops"""
    parts = Path(path).parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):-1]
    else:
        parts = parts[:-1]
    return ".".join(parts) or "(top level)"


def main():
    tel = Telemetry()
    with activate(tel):
        report = run_lint([REPO / "src" / "repro"], root=REPO,
                          baseline_path=REPO / ".repro-lint-baseline.json")

    print(f"analyzed {report.files} files: {len(report.findings)} findings "
          f"({len(report.new_findings)} new, {report.baselined_count} "
          f"baselined, {report.suppressed_count} suppressed)\n")

    # -- findings per rule, with the catalog's name and severity -----------
    by_rule = report.by_rule()
    rows = []
    for rule in rule_catalog():
        count = by_rule.get(rule["id"], 0)
        rows.append([rule["id"], rule["name"], rule["severity"],
                     "yes" if rule["autofix"] else "no", count])
    print(format_table(["rule", "name", "severity", "autofix", "findings"],
                       rows, title="Rule catalog vs findings (src/repro)"))
    print()

    # -- per-module debt ---------------------------------------------------
    per_module = Counter()
    per_module_rules: dict[str, Counter] = {}
    for f in report.findings:
        mod = module_of(f.path)
        per_module[mod] += 1
        per_module_rules.setdefault(mod, Counter())[f.rule_id] += 1
    rows = [[mod, count,
             ", ".join(f"{r}x{n}" if n > 1 else r
                       for r, n in sorted(per_module_rules[mod].items()))]
            for mod, count in per_module.most_common()]
    if not rows:
        rows = [["(none)", 0, "-"]]
    print(format_table(["module", "findings", "rules"], rows,
                       title="Findings per module"))
    print()

    # -- the telemetry the run emitted -------------------------------------
    counters = [(name, c.value) for name, c in
                sorted(tel.metrics._counters.items())
                if name.startswith("analysis.")]
    for name, value in counters:
        print(f"{name} = {value:.0f}")

    gate = "clean" if report.exit_code == 0 else "FAILING"
    print(f"\nCI gate against the committed baseline: {gate}")
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
