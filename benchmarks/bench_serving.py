"""Serving throughput: micro-batched vs per-request dispatch.

The claim under test: coalescing concurrent requests into micro-batches
(and stacking their windows into one model call) buys >= 3x requests/s
over per-request serving at batch size 8 — the batching win that makes
paper-scale inference ("images with millions of pixels", many clients)
affordable.  Latency percentiles and the tile-cache hit rate come from
the same telemetry counters the server exposes in production.

Timing is honest where it matters: virtual service time per batch is the
*measured* wall time of the real Tiramisu forwards, so the reported
requests/s ratio reflects actual compute saved, not simulator fiat.
"""
import numpy as np
import pytest

from repro.core.networks import Tiramisu, TiramisuConfig
from repro.perf import format_table
from repro.serve import (InferenceServer, ServeConfig, WorkloadConfig,
                         summarize, synth_workload)
from repro.telemetry import Telemetry, activate

REQUESTS = 64
CHANNELS = 4
WORKLOAD = WorkloadConfig(num_requests=REQUESTS, rate_rps=1e5,
                          image_hw=(16, 16), channels=CHANNELS,
                          repeat_fraction=0.25, seed=0)

MODES = {
    # Per-request: every request dispatches alone, one window per forward.
    "per-request": dict(max_batch_size=1, forward_batch=1),
    # Micro-batched: 8 requests coalesce, windows stack 32 per forward.
    "micro-batch 8": dict(max_batch_size=8, forward_batch=32),
}


def model_factory():
    return Tiramisu(
        TiramisuConfig(in_channels=CHANNELS, base_filters=8, growth=8,
                       down_layers=(2,), bottleneck_layers=2,
                       kernel=3, dropout=0.0),
        rng=np.random.default_rng(0))


def serve_mode(**overrides):
    config = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4),
                         num_replicas=1, max_wait_s=0.0005,
                         max_depth=REQUESTS, **overrides)
    tel = Telemetry()
    with activate(tel):
        server = InferenceServer(model_factory, config)
        responses = server.serve(synth_workload(WORKLOAD))
        report = summarize(responses, server)
    counters = tel.metrics.snapshot()["counters"]
    hits = counters.get("serve.cache.hits", 0)
    misses = counters.get("serve.cache.misses", 0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    return report, hit_rate


def test_micro_batching_speedup(benchmark, emit):
    def run():
        return {name: serve_mode(**knobs) for name, knobs in MODES.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (report, hit_rate) in results.items():
        lane = report.lanes["interactive"]
        rows.append([name, f"{report.throughput_rps:,.0f}",
                     f"{report.mean_batch_size:.1f}",
                     f"{lane.p50_ms:.2f}", f"{lane.p99_ms:.2f}",
                     f"{hit_rate * 100:.1f}"])
    base, _ = results["per-request"]
    fast, _ = results["micro-batch 8"]
    speedup = fast.throughput_rps / base.throughput_rps
    emit(format_table(
        ["mode", "req/s", "mean batch", "p50 ms", "p99 ms", "cache hit %"],
        rows,
        title=f"Serving throughput - {REQUESTS} requests, 1 replica, "
              f"16x16 snapshots, 8x8 windows (speedup {speedup:.2f}x)"))
    for report, _ in results.values():
        assert report.served == REQUESTS
        assert report.shed == 0 and report.failed == 0
    assert fast.mean_batch_size > 4.0       # batching actually engaged
    # The acceptance bar: >= 3x requests/s from micro-batching alone.
    assert speedup >= 3.0, f"micro-batching speedup only {speedup:.2f}x"


def test_cache_warm_repeat_traffic(benchmark, emit):
    """A second pass of the same workload is served mostly from cache."""

    def run():
        config = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4),
                             num_replicas=1, max_batch_size=8,
                             forward_batch=32, max_wait_s=0.0005,
                             max_depth=REQUESTS)
        tel = Telemetry()
        with activate(tel):
            server = InferenceServer(model_factory, config)
            cold = summarize(server.serve(synth_workload(WORKLOAD)), server)
            cold_stats = dict(server.cache.stats.as_dict())
            warm_reqs = synth_workload(WORKLOAD)
            for r in warm_reqs:
                r.request_id += REQUESTS
            warm = summarize(server.serve(warm_reqs), server)
        return cold, cold_stats, warm, server.cache.stats.as_dict()

    cold, cold_stats, warm, total_stats = benchmark.pedantic(
        run, rounds=1, iterations=1)
    warm_hits = total_stats["hits"] - cold_stats["hits"]
    warm_misses = total_stats["misses"] - cold_stats["misses"]
    warm_rate = warm_hits / (warm_hits + warm_misses)
    emit(format_table(
        ["pass", "req/s", "cache hit rate"],
        [["cold", f"{cold.throughput_rps:,.0f}",
          f"{cold_stats['hit_rate'] * 100:.1f}%"],
         ["warm (same workload)", f"{warm.throughput_rps:,.0f}",
          f"{warm_rate * 100:.1f}%"]],
        title="Tile cache - cold vs warm pass over the same 64 requests"))
    assert warm.served == REQUESTS
    # Every warm window is already cached: the second pass runs zero model
    # forwards.  (Wall-clock throughput is not asserted — at this tiny
    # model size content-hashing costs rival the saved forwards.)
    assert warm_misses == 0
    assert warm_rate == pytest.approx(1.0)


def collect(profile: str = "quick"):
    """Machine-readable metrics for the ``serving`` suite.

    The gated metric is the micro-batching speedup *ratio* (both sides run
    on the same host in the same process); absolute requests/s and the
    cache hit rate are context.
    """
    from runner import Metric

    results = {name: serve_mode(**knobs) for name, knobs in MODES.items()}
    base, _ = results["per-request"]
    fast, hit_rate = results["micro-batch 8"]
    return [
        Metric(name="serving.micro_batch_speedup",
               value=fast.throughput_rps / base.throughput_rps, unit="x",
               higher_is_better=True, gate=True, tolerance=0.40,
               note="micro-batch 8 vs per-request, 64 requests, 1 replica"),
        Metric(name="serving.micro_batch_rps", value=fast.throughput_rps,
               unit="req/s", higher_is_better=True, gate=False),
        Metric(name="serving.mean_batch_size", value=fast.mean_batch_size,
               unit="req", higher_is_better=True, gate=True, tolerance=0.40),
        Metric(name="serving.cache_hit_rate", value=hit_rate, unit="",
               higher_is_better=True, gate=False),
    ]
