"""Section V-B3: multi-channel segmentation — 4 vs 16 input channels.

The paper's Piz Daint runs used the 4 channels "thought to be the most
important"; on Summit "the use of all 16 channels ... improved the accuracy
of the models dramatically".  We train the same small network with 4 and 16
channels of the same synthetic data and compare validation IoU, plus the
FLOP cost of the two configurations.
"""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer, count_training_flops
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.perf import format_table

GRID = Grid(24, 32)


def model_for(channels, seed=6):
    return Tiramisu(TiramisuConfig(in_channels=channels, base_filters=12,
                                   growth=6, down_layers=(2, 2),
                                   bottleneck_layers=2, kernel=3, dropout=0.0),
                    rng=np.random.default_rng(seed))


def train_eval(channels, epochs=8):
    ds = ClimateDataset.synthesize(GRID, num_samples=16, seed=14,
                                   channels=channels)
    freqs = class_frequencies(ds.labels)
    tr = Trainer(model_for(channels), TrainConfig(lr=0.1, optimizer="larc"),
                 freqs)
    rng = np.random.default_rng(3)
    for _ in range(epochs):
        for imgs, labs in ds.batches(ds.splits.train, 2, rng):
            tr.train_step(imgs, labs)
    rep = tr.evaluate(ds.batches(ds.splits.validation, 1, drop_last=False))
    return rep


def test_channel_ablation(benchmark, emit):
    def run():
        return {c: train_eval(c) for c in (4, 16)}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[c, f"{r.mean_iou:.3f}", f"{r.accuracy:.3f}"]
            for c, r in reports.items()]
    emit(format_table(["channels", "val mean IoU", "val accuracy"], rows,
                      title="Section V-B3 - channel-count ablation "
                            "(paper: 16 channels 'improved the accuracy "
                            "dramatically')"))
    # More channels should not hurt; typically they help.
    assert reports[16].mean_iou >= reports[4].mean_iou - 0.05


def test_channel_flop_cost(benchmark, emit):
    def run():
        full = Tiramisu(TiramisuConfig(in_channels=16))
        slim = Tiramisu(TiramisuConfig(in_channels=4))
        return (count_training_flops(full, (16, 768, 1152)).flops_per_sample(),
                count_training_flops(slim, (4, 768, 1152)).flops_per_sample())

    tf16, tf4 = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"Training FLOPs: 16-ch {tf16/1e12:.3f} TF/sample, 4-ch "
         f"{tf4/1e12:.3f} TF/sample (paper: 4.188 vs 3.703 - the extra "
         f"channels only touch the stem conv)")
    assert tf16 > tf4
    assert (tf16 - tf4) / tf16 < 0.15  # stem-only difference is small
