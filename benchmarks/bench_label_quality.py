"""Heuristic label-pipeline quality: object-level verification.

The paper's "ground truth" is itself heuristic (TECA + floodfill,
Section III-A2), so the fidelity question is: do the heuristics find the
events that are actually there?  With synthetic data we *know* the planted
storms and rivers, so we can score the labelers with the standard
object-based metrics (POD / FAR / CSI) against parametric truth footprints.
"""
import numpy as np
import pytest

from repro.climate import (
    CLASS_AR,
    CLASS_TC,
    Grid,
    SnapshotSynthesizer,
    detection_scores,
    make_labels,
)
from repro.perf import format_table

GRID = Grid(64, 96)


def truth_masks(snapshot):
    """Parametric event footprints from the synthesizer's ground truth."""
    tc = np.zeros(GRID.shape, dtype=np.int8)
    for storm in snapshot.cyclones:
        dist = GRID.angular_distance_deg(storm.lat, storm.lon)
        tc[dist <= 1.5 * storm.radius_deg] = CLASS_TC
    ar = np.zeros(GRID.shape, dtype=np.int8)
    for river in snapshot.rivers:
        for lat, lon in river.waypoints:
            dist = GRID.angular_distance_deg(lat, lon)
            ar[dist <= river.width_deg] = CLASS_AR
    return tc, ar


def test_label_pipeline_object_scores(benchmark, emit):
    def run():
        synth = SnapshotSynthesizer(GRID, mean_cyclones=3.0, mean_rivers=2.0)
        preds, tc_truth, ar_truth = [], [], []
        for seed in range(8):
            snap = synth.generate(seed)
            labels = make_labels(snap)
            t_tc, t_ar = truth_masks(snap)
            preds.append(labels)
            tc_truth.append(t_tc)
            ar_truth.append(t_ar)
        preds = np.stack(preds)
        tc_res = detection_scores(preds, np.stack(tc_truth), CLASS_TC,
                                  min_iou=0.05)
        ar_res = detection_scores(preds, np.stack(ar_truth), CLASS_AR,
                                  min_iou=0.05)
        return tc_res, ar_res

    tc_res, ar_res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, res in (("TC (TECA thresholds)", tc_res),
                      ("AR (IWV floodfill)", ar_res)):
        rows.append([name, res.hits, res.misses, res.false_alarms,
                     f"{res.pod:.2f}", f"{res.far:.2f}", f"{res.csi:.2f}"])
    emit(format_table(
        ["labeler", "hits", "misses", "false alarms", "POD", "FAR", "CSI"],
        rows,
        title="Heuristic label pipeline vs planted events (8 snapshots)"))
    # The pipeline the paper trains on must find most real events without
    # flooding the labels with spurious ones.
    assert tc_res.pod > 0.7
    assert tc_res.far < 0.35
    assert ar_res.pod > 0.5
