"""Section V-B1: the class-imbalance trap and loss-weighting strategies.

Paper claims to reproduce:

* an unweighted network reaches ~98.2% pixel accuracy by predicting pure
  background — and learns nothing about the minority classes;
* inverse-frequency weights destabilize FP16 training (overflow-triggered
  skipped steps); inverse-sqrt weights are stable;
* under inverse-sqrt weighting, a TC false negative costs ~37x a false
  positive.
"""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer, tc_penalty_ratio
from repro.core.losses import class_weights
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.perf import format_table

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=12, seed=8, channels=4)


def tiny_model(seed=5):
    return Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                   down_layers=(2, 2), bottleneck_layers=2,
                                   kernel=3, dropout=0.0),
                    rng=np.random.default_rng(seed))


def train(dataset, weighting, precision="fp32", epochs=6, loss_scale=2.0**12):
    freqs = class_frequencies(dataset.labels)
    tr = Trainer(tiny_model(), TrainConfig(
        lr=0.08, optimizer="larc", weighting=weighting, precision=precision,
        loss_scale=loss_scale), freqs)
    rng = np.random.default_rng(1)
    skipped = 0
    for _ in range(epochs):
        for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
            if tr.train_step(imgs, labs).skipped:
                skipped += 1
    return tr, skipped


def test_accuracy_trap_and_weighting(benchmark, emit, dataset):
    def run():
        out = {}
        for strategy in ("none", "inverse_sqrt"):
            tr, _ = train(dataset, strategy)
            preds = tr.predict(dataset.images[dataset.splits.train])
            labels = dataset.labels[dataset.splits.train]
            acc = (preds == labels).mean()
            minority_recall = ((preds != 0) & (labels != 0)).sum() / max(
                (labels != 0).sum(), 1)
            out[strategy] = (acc, minority_recall, (preds != 0).mean())
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    bg_frac = (dataset.labels == 0).mean()
    emit(format_table(
        ["weighting", "pixel accuracy", "minority recall", "pred non-BG frac"],
        [[k, f"{v[0]:.3f}", f"{v[1]:.3f}", f"{v[2]:.4f}"]
         for k, v in out.items()],
        title=f"Section V-B1 - weighting strategies (BG fraction "
              f"{bg_frac:.3f}; paper: 98.2% accuracy from all-BG collapse)"))
    # Unweighted: high accuracy (the trap). Weighted: better minority recall.
    assert out["none"][0] > 0.9
    assert out["inverse_sqrt"][1] >= out["none"][1]


def test_fp16_stability_by_weighting(benchmark, emit, dataset):
    def run():
        skips = {}
        for strategy in ("inverse", "inverse_sqrt"):
            _, skipped = train(dataset, strategy, precision="fp16",
                               epochs=3, loss_scale=2.0**22)
            skips[strategy] = skipped
        return skips

    skips = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"FP16 overflow-skipped steps at loss scale 2^22: "
         f"inverse={skips['inverse']}, inverse_sqrt={skips['inverse_sqrt']}\n"
         f"(paper: inverse-frequency weights caused numerical stability "
         f"issues, especially with FP16 training)")
    assert skips["inverse"] >= skips["inverse_sqrt"]


def test_37x_tc_penalty(benchmark, emit):
    freqs = np.array([0.9822, 0.00073, 0.017])  # paper's class frequencies

    def ratio():
        return tc_penalty_ratio(class_weights(freqs, "inverse_sqrt"))

    r = benchmark(ratio)
    emit(f"TC FN/FP penalty ratio under inverse-sqrt weights: {r:.1f}x "
         f"(paper: ~37x)")
    assert r == pytest.approx(37.0, rel=0.05)
