"""Section V-A2: optimized data-ingestion pipeline.

Paper claims to reproduce:

* placing input ops in the training graph serializes input with compute;
  prefetching decouples them;
* HDF5's library lock makes reader *threads* useless; reader *processes*
  (private locks) restore scaling;
* with 4 background workers, the input pipeline matches the training rate
  of both networks, even in FP16.
"""
import pytest

from repro.io import PipelineSimulator, pipeline_throughput
from repro.perf import format_table

# Per-GPU step times from the Figure 2 model (seconds per sample):
# DeepLab FP16 is the fastest consumer the pipeline must feed.
STEP_TIME = {"deeplabv3+_fp32": 1.0 / 0.88, "deeplabv3+_fp16": 1.0 / 3.36,
             "tiramisu_fp32": 1.0 / 2.01, "tiramisu_fp16": 1.0 / 5.37}
PREP_TIME = 0.7  # seconds to read + decode one 58 MB HDF5 sample


def test_pipeline_configurations(benchmark, emit):
    def run():
        rows = []
        step = STEP_TIME["deeplabv3+_fp16"]
        for label, workers, depth, serialized in (
            ("in-graph (no prefetch)", 1, 0, False),
            ("prefetch, 1 worker", 1, 8, False),
            ("prefetch, 4 threads (HDF5 lock)", 4, 8, True),
            ("prefetch, 4 processes", 4, 8, False),
            ("prefetch, 8 processes", 8, 8, False),
        ):
            stats = PipelineSimulator(step, PREP_TIME, workers, depth,
                                      serialized_workers=serialized).run(80)
            rows.append((label, stats))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    step = STEP_TIME["deeplabv3+_fp16"]
    emit(format_table(
        ["configuration", "step time (s)", "GPU idle %", "samples/s"],
        [[label, f"{s.achieved_step_time_s:.3f}",
          f"{s.gpu_idle_fraction*100:.1f}", f"{s.samples_per_second:.2f}"]
         for label, s in rows],
        title=f"Section V-A2 - input pipeline feeding DeepLabv3+ FP16 "
              f"(GPU step {step:.3f}s, sample prep {PREP_TIME}s)"))
    by = dict(rows)
    # Serialization: in-graph input pays prep + compute per step.
    assert by["in-graph (no prefetch)"].achieved_step_time_s == pytest.approx(
        step + PREP_TIME, rel=0.02)
    # Threads behind the HDF5 lock are no better than one worker.
    assert by["prefetch, 4 threads (HDF5 lock)"].achieved_step_time_s \
        == pytest.approx(by["prefetch, 1 worker"].achieved_step_time_s, rel=0.1)
    # Four processes keep the fastest network fed (paper's fix).
    assert by["prefetch, 4 processes"].gpu_idle_fraction < 0.20


def test_analytic_throughput_bounds(benchmark, emit):
    def run():
        rows = []
        for name, step in STEP_TIME.items():
            tp = pipeline_throughput(step, PREP_TIME, workers=4)
            rows.append((name, step, tp, tp >= 0.99 / step))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["network", "GPU step (s)", "pipeline samples/s", "keeps up"],
        [[n, f"{s:.3f}", f"{t:.2f}", "yes" if ok else "no"]
         for n, s, t, ok in rows],
        title="Section V-A2 - 4-worker pipeline vs network consumption"))
    # "the input pipeline can more closely match the training throughput of
    # both networks, even when using FP16 precision"
    for name, step, tp, ok in rows:
        assert tp == pytest.approx(min(4 / PREP_TIME, 1 / step), rel=1e-6)
        assert ok, name
