"""Section V-B5: the Tiramisu redesign, measured for real.

The paper: the original many-thin-layers design (growth 16, 3x3) left
"considerable room for improvement"; doubling the growth rate to 32,
halving block depth, and widening to 5x5 made the network "much faster to
compute".  The mechanism — wider channel counts produce bigger, more
efficient GEMMs — applies to BLAS on a CPU exactly as to Tensor Cores, so
this benchmark measures *actual wall-clock* training steps of both designs
on this machine and compares achieved FLOP rates.
"""
import time

import numpy as np
import pytest

from repro.core.networks import Tiramisu, TiramisuConfig
from repro.framework import Tensor
from repro.perf import format_table

H, W = 32, 48


def configs():
    return {
        "original (g16, 3x3, deep)": TiramisuConfig(
            in_channels=4, growth=16, down_layers=(4, 4),
            bottleneck_layers=4, kernel=3, base_filters=48, dropout=0.0),
        "modified (g32, 5x5, shallow)": TiramisuConfig(
            in_channels=4, growth=32, down_layers=(2, 2),
            bottleneck_layers=2, kernel=5, base_filters=48, dropout=0.0),
    }


def measure(cfg: TiramisuConfig, reps: int = 3) -> tuple[float, float]:
    """(seconds per fwd+bwd step, counted GFLOPs per step)."""
    net = Tiramisu(cfg, rng=np.random.default_rng(0))
    analysis = net.analyze((cfg.in_channels, H, W), batch=1)
    x = Tensor(np.random.default_rng(1)
               .normal(size=(1, cfg.in_channels, H, W)).astype(np.float32),
               requires_grad=True)
    net(x).sum().backward()  # warmup
    t0 = time.perf_counter()
    for _ in range(reps):
        net.zero_grad()
        net(x).sum().backward()
    dt = (time.perf_counter() - t0) / reps
    return dt, analysis.total_flops / 1e9


def test_modified_design_is_faster_per_flop(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {name: measure(cfg) for name, cfg in configs().items()},
        rounds=1, iterations=1)
    rows = []
    rates = {}
    for name, (dt, gflops) in results.items():
        rate = gflops / dt
        rates[name] = rate
        rows.append([name, f"{dt*1e3:.0f}", f"{gflops:.1f}", f"{rate:.1f}"])
    emit(format_table(
        ["design", "ms/step", "GFLOPs/step", "achieved GF/s"],
        rows,
        title="Section V-B5 - Tiramisu redesign, measured on this machine "
              "(paper: growth 32 'significantly more efficient')"))
    original = rates["original (g16, 3x3, deep)"]
    modified = rates["modified (g32, 5x5, shallow)"]
    # The redesign's mechanism (wider GEMMs) must show up as higher
    # achieved FLOP rate; the paper saw the same on Volta.
    assert modified > 1.2 * original


def test_modified_keeps_receptive_field(benchmark, emit):
    def receptive_field(cfg: TiramisuConfig) -> int:
        # Effective receptive field of the down path: each dense layer adds
        # (k-1) at the current scale; each pool doubles the scale.
        rf, scale = 1, 1
        rf += (cfg.kernel - 1) * scale  # stem
        for layers in cfg.down_layers:
            rf += layers * (cfg.kernel - 1) * scale
            scale *= 2
        rf += cfg.bottleneck_layers * (cfg.kernel - 1) * scale
        return rf

    fields = benchmark(lambda: {n: receptive_field(c)
                                for n, c in configs().items()})
    emit("Receptive fields: " + ", ".join(f"{n}: {v}px"
                                          for n, v in fields.items())
         + "\n(paper: 'changed the convolutions from 3x3 to 5x5 to maintain "
           "the same receptive field')")
    orig = fields["original (g16, 3x3, deep)"]
    mod = fields["modified (g32, 5x5, shallow)"]
    assert mod == pytest.approx(orig, rel=0.35)
