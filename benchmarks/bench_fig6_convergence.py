"""Figure 6: training-loss-vs-wall-time at several concurrencies/precisions.

Real (scaled-down) training supplies the loss trajectories; the performance
model supplies the per-step wall time of the simulated configuration.  The
paper's qualitative findings to reproduce:

1. every configuration converges;
2. FP16 reaches a given loss in less wall time than FP32;
3. DeepLabv3+ lag-0 and lag-1 trajectories nearly coincide.
"""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import (
    TrainConfig,
    Trainer,
    loss_trajectory_summary,
    wall_clock_curve,
)
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.perf import format_table

GRID = Grid(16, 24)
STEPS = 24


def tiny_model(seed):
    return Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                   down_layers=(2, 2), bottleneck_layers=2,
                                   kernel=3, dropout=0.0),
                    rng=np.random.default_rng(seed))


def train_losses(dataset, freqs, lag, seed=13, lr=0.05):
    tr = Trainer(tiny_model(seed), TrainConfig(lr=lr, optimizer="larc",
                                               gradient_lag=lag), freqs)
    rng = np.random.default_rng(0)
    losses = []
    while len(losses) < STEPS:
        for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
            losses.append(tr.train_step(imgs, labs).loss)
            if len(losses) >= STEPS:
                break
    return losses


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=10, seed=21, channels=4)


def test_fig6_convergence_curves(benchmark, emit, dataset):
    freqs = class_frequencies(dataset.labels)

    def run():
        losses0 = train_losses(dataset, freqs, lag=0)
        losses1 = train_losses(dataset, freqs, lag=1)
        curves = [
            wall_clock_curve(losses0, "tiramisu", 384, "fp16", 0),
            wall_clock_curve(losses0, "tiramisu", 384, "fp32", 0),
            wall_clock_curve(losses0, "tiramisu", 1536, "fp16", 0),
            wall_clock_curve(losses0, "tiramisu", 1536, "fp32", 0),
            wall_clock_curve(losses0, "deeplabv3+", 1536, "fp16", 0),
            wall_clock_curve(losses1, "deeplabv3+", 1536, "fp16", 1),
            wall_clock_curve(losses0, "tiramisu", 6144, "fp16", 0),
            wall_clock_curve(losses0, "tiramisu", 6144, "fp32", 0),
        ]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for c in curves:
        s = loss_trajectory_summary(c.losses)
        rows.append([c.label, f"{s['initial']:.3f}", f"{s['final']:.3f}",
                     "yes" if s["converging"] else "NO",
                     f"{c.times_s[-1]:.1f}"])
    emit(format_table(
        ["configuration", "initial loss", "final loss", "converging",
         "wall time (s, modeled)"],
        rows, title="Figure 6 - training loss vs wall-clock time"))

    # (1) every configuration converges.
    for c in curves:
        assert loss_trajectory_summary(c.losses)["converging"], c.label
    # (2) FP16 reaches the target loss sooner than FP32 (per-sample basis:
    # fp16 steps carry 2 samples).
    by = {c.label: c for c in curves}
    f16 = by["tiramisu fp16 #GPUs=1536 lag=0"]
    f32 = by["tiramisu fp32 #GPUs=1536 lag=0"]
    assert f16.times_s[-1] / 2 < f32.times_s[-1]
    # (3) lag-0 vs lag-1 DeepLab trajectories nearly identical (same
    # algorithmic behaviour; wall-clock within a few percent).
    l0 = by["deeplabv3+ fp16 #GPUs=1536 lag=0"]
    l1 = by["deeplabv3+ fp16 #GPUs=1536 lag=1"]
    s0 = loss_trajectory_summary(l0.losses)
    s1 = loss_trajectory_summary(l1.losses)
    # Both reduce the loss substantially; the lag-1 endpoint tracks lag-0
    # within a fraction of the overall reduction (at paper scale and step
    # counts the curves coincide; 24 tiny-scale steps leave a small offset
    # from the one-step pipeline fill).
    assert s1["final"] < 0.5 * s1["initial"]
    assert abs(s1["final"] - s0["final"]) < 0.35 * s0["initial"]
