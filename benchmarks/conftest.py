"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures, printing a
paper-vs-measured comparison and saving it under ``benchmarks/out/`` so the
numbers survive pytest's output capture.
"""
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir():
    OUT_DIR.mkdir(exist_ok=True)
    # Fresh artifacts each session (emit appends within a session).
    for stale in OUT_DIR.glob("*.txt"):
        stale.unlink()
    return OUT_DIR


@pytest.fixture()
def emit(report_dir, request):
    """Print a report block and persist it to out/<test_module>.txt."""

    def _emit(text: str):
        print()
        print(text)
        path = report_dir / f"{request.module.__name__}.txt"
        with open(path, "a") as fh:
            fh.write(text + "\n\n")

    return _emit
