"""Figure 8: detailed Tiramisu kernel-category table (FP32 and FP16).

Absolute per-category time (ms), math (TF) and memory traffic (GB) for one
training step, compared against the paper's measured totals
(FP32: 549.9 ms / 4.19 TF / 308.5 GB; FP16: 417.3 ms / 8.38 TF / 262.1 GB).
"""
import pytest

from repro.perf import PAPER_DETAIL, format_table, kernel_breakdown


@pytest.mark.parametrize("precision", ["fp32", "fp16"])
def test_fig8_tiramisu_detail(benchmark, emit, precision):
    table = benchmark.pedantic(kernel_breakdown, args=("tiramisu", precision),
                               rounds=1, iterations=1)
    paper_ms, paper_tf, paper_gb = PAPER_DETAIL[("tiramisu", precision)]
    rows = [[r.category, r.kernels, f"{r.time_s*1e3:.1f}",
             f"{r.flops/1e12:.2f}", f"{r.bytes/1e9:.1f}",
             f"{100*r.time_s/table.total_time_s:.1f}"]
            for r in table.rows]
    rows.append(["TOTAL", sum(r.kernels for r in table.rows),
                 f"{table.total_time_s*1e3:.1f} ({paper_ms})",
                 f"{table.total_flops/1e12:.2f} ({paper_tf})",
                 f"{table.total_bytes/1e9:.1f} ({paper_gb})", "100.0"])
    emit(format_table(
        ["category", "#kern", "time ms", "math TF", "mem GB", "% time"],
        rows, title=f"Figure 8 - Tiramisu {precision.upper()} detail "
                    f"(totals: measured (paper))"))
    assert table.total_flops / 1e12 == pytest.approx(paper_tf, rel=0.2)
    assert 0.5 < table.total_time_s * 1e3 / paper_ms < 2.0
    if precision == "fp16":
        # FP16 is faster per step despite twice the math (batch 2).
        fp32 = kernel_breakdown("tiramisu", "fp32")
        assert table.total_time_s / 2 < fp32.total_time_s
