"""Section V-B4: gradient lag — convergence parity and overlap benefit.

Paper claims to reproduce:

* lag-1 training curves are nearly identical to lag-0 (Figure 6);
* lag-1 improves parallel efficiency at scale by overlapping the top-layer
  all-reduce (Figure 4's "lag 1" series are the highest-performing runs).
"""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.perf import format_table, weak_scaling_curve

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=10, seed=12, channels=4)


def run_training(dataset, lag, steps=30):
    freqs = class_frequencies(dataset.labels)
    model = Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                    down_layers=(2, 2), bottleneck_layers=2,
                                    kernel=3, dropout=0.0),
                     rng=np.random.default_rng(9))
    tr = Trainer(model, TrainConfig(lr=0.05, optimizer="larc",
                                    gradient_lag=lag), freqs)
    rng = np.random.default_rng(2)
    losses = []
    while len(losses) < steps:
        for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
            losses.append(tr.train_step(imgs, labs).loss)
            if len(losses) >= steps:
                break
    return losses


def test_lag_convergence_parity(benchmark, emit, dataset):
    def run():
        return run_training(dataset, 0), run_training(dataset, 1)

    l0, l1 = benchmark.pedantic(run, rounds=1, iterations=1)
    final0, final1 = np.mean(l0[-5:]), np.mean(l1[-5:])
    emit(f"Final training loss (30 steps): lag0={final0:.4f}, "
         f"lag1={final1:.4f} (paper Figure 6: 'nearly identical')")
    assert final1 < l1[0]            # lag-1 converges
    assert final1 == pytest.approx(final0, rel=0.6)


def test_lag_efficiency_benefit(benchmark, emit):
    def run():
        rows = []
        for gpus in (1536, 6144, 27360):
            e0 = weak_scaling_curve("deeplabv3+", "summit", "fp16", lag=0,
                                    gpu_counts=[gpus])[0].efficiency
            e1 = weak_scaling_curve("deeplabv3+", "summit", "fp16", lag=1,
                                    gpu_counts=[gpus])[0].efficiency
            rows.append((gpus, e0, e1))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["GPUs", "efficiency % lag0", "efficiency % lag1"],
        [[g, f"{e0*100:.1f}", f"{e1*100:.1f}"] for g, e0, e1 in rows],
        title="Section V-B4 - gradient lag vs parallel efficiency"))
    for _, e0, e1 in rows:
        assert e1 > e0
