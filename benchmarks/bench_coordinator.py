"""Section V-A3: Horovod control plane, centralized vs hierarchical.

Paper claims to reproduce:

* the centralized controller handles millions of messages per second at
  scale; the tree reduces this to thousands, independent of scale;
* no rank sends or receives more than r+1 messages per tensor;
* radix choice in [2, 8] makes no measurable difference.
"""
import numpy as np
import pytest

from repro.comm import (
    ReadinessSchedule,
    centralized_negotiation,
    hierarchical_negotiation,
)
from repro.perf import format_table

TENSORS = 110  # "over a hundred allreduce operations per step"


def test_controller_message_load(benchmark, emit):
    def run():
        rows = []
        for ranks in (64, 512, 4096):
            s = ReadinessSchedule.random(ranks, TENSORS, seed=ranks)
            c = centralized_negotiation(s)
            h = hierarchical_negotiation(s, radix=4)
            rows.append((ranks, c.controller_load,
                         int((h.messages_sent + h.messages_received).max())))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["ranks", "centralized busiest-rank msgs/step",
         "hierarchical busiest-rank msgs/step"],
        [[r, c, h] for r, c, h in rows],
        title="Section V-A3 - control-plane load per step (110 tensors)"))
    # Centralized grows linearly; hierarchical is flat.
    assert rows[-1][1] > 50 * rows[0][1]
    assert rows[-1][2] <= rows[0][2] * 1.01
    # The headline ratio at scale: orders of magnitude.
    assert rows[-1][1] / rows[-1][2] > 100


def test_per_tensor_bound(benchmark, emit):
    def run():
        results = {}
        for radix in (2, 4, 8):
            s = ReadinessSchedule.random(1024, TENSORS, seed=radix)
            h = hierarchical_negotiation(s, radix=radix)
            results[radix] = h.per_tensor_max_messages()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["radix", "max msgs/rank/tensor", "bound 2(r+1)"],
        [[r, f"{v:.1f}", 2 * (r + 1)] for r, v in results.items()],
        title="Section V-A3 - per-tensor message bound"))
    for radix, v in results.items():
        assert v <= 2 * (radix + 1)


def test_radix_insensitivity(benchmark, emit):
    def run():
        s = ReadinessSchedule.random(512, TENSORS, seed=9)
        orders = {}
        decisions = {}
        for radix in (2, 4, 8):
            h = hierarchical_negotiation(s, radix=radix, hop_latency=5e-6)
            orders[radix] = h.order
            decisions[radix] = h.decision_times[-1]
        return orders, decisions

    orders, decisions = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Radix sweep (512 ranks): final-decision times "
         + ", ".join(f"r={r}: {t*1e3:.3f} ms" for r, t in decisions.items())
         + "\n(paper: no measurable difference for r in [2, 8])")
    assert orders[2] == orders[4] == orders[8]
    times = list(decisions.values())
    assert max(times) - min(times) < 0.01 * max(times) + 1e-4
