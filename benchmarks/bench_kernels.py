"""Conv hot-path kernels: planned im2col-GEMM vs the legacy tap-loop.

The claim under test: lowering convolutions to a cached
:class:`~repro.framework.ops.plan.ConvPlan` (``as_strided`` im2col into a
reusable workspace + one batched GEMM) buys >= 2x forward throughput over
the legacy per-tap contraction on the paper's 16-channel 192x288 training
tiles, with the weight/input gradients riding the same cached columns.

``collect(profile)`` feeds the machine-readable protocol
(:mod:`runner` / ``repro bench``): speedup *ratios* are gated — they
transfer across machines — while absolute milliseconds are recorded
``gate=False`` as host-specific context.
"""
import numpy as np
import pytest

from repro.framework.ops import (
    clear_plan_cache,
    conv2d_backward_input,
    conv2d_backward_input_reference,
    conv2d_backward_weight,
    conv2d_backward_weight_reference,
    conv2d_bias_relu_forward,
    conv2d_forward,
    conv2d_forward_reference,
    conv_output_size,
    depthwise_conv2d_forward,
    depthwise_conv2d_forward_reference,
)
from repro.perf import format_table

# Paper-scale training tile: 1152x768 split 6x across H and 4x across W
# keeps the per-sample aspect while fitting CI budgets.  64 filters is the
# stem width the paper's networks map their 16 input channels onto.
SHAPE = (2, 16, 192, 288)
FILTERS = 64
KERNEL = 3
PAD = 1

#: profile -> (timing repeats, warmup runs)
PROFILES = {"smoke": (2, 1), "quick": (3, 1), "full": (7, 2)}


def _problem(rng, shape=SHAPE, filters=FILTERS, kernel=KERNEL):
    n, c, h, w = shape
    x = rng.standard_normal(shape).astype(np.float32)
    w_ = (rng.standard_normal((filters, c, kernel, kernel)) * 0.1).astype(np.float32)
    oh = conv_output_size(h, kernel, 1, PAD, 1)
    ow = conv_output_size(w, kernel, 1, PAD, 1)
    g = rng.standard_normal((n, filters, oh, ow)).astype(np.float32)
    return x, w_, g


def _speedups(profile: str = "quick", shape=SHAPE):
    """Paired planned-vs-reference times on the headline shape.

    Samples alternate strictly (planned, reference, planned, ...) so both
    sides see identical machine state; the speedup ratio uses the minimum
    of each side, the robust estimator on shared hosts.
    """
    from runner import paired_stats  # sibling module; dir is on sys.path

    repeats, warmup = PROFILES[profile]
    rng = np.random.default_rng(0)
    x, w, g = _problem(rng, shape)
    bias = rng.standard_normal(w.shape[0]).astype(np.float32)
    xdw = rng.standard_normal((shape[0], shape[1], shape[2], shape[3])
                              ).astype(np.float32)
    wdw = (rng.standard_normal((shape[1], KERNEL, KERNEL)) * 0.1
           ).astype(np.float32)
    clear_plan_cache()
    out = {}
    cases = {
        "fwd": (lambda: conv2d_forward(x, w, 1, PAD, 1),
                lambda: conv2d_forward_reference(x, w, 1, PAD, 1)),
        "wgrad": (lambda: conv2d_backward_weight(g, x, w.shape, 1, PAD, 1),
                  lambda: conv2d_backward_weight_reference(
                      g, x, w.shape, 1, PAD, 1)),
        "dgrad": (lambda: conv2d_backward_input(g, w, x.shape, 1, PAD, 1),
                  lambda: conv2d_backward_input_reference(
                      g, w, x.shape, 1, PAD, 1)),
        "depthwise_fwd": (lambda: depthwise_conv2d_forward(xdw, wdw, 1, PAD, 1),
                          lambda: depthwise_conv2d_forward_reference(
                              xdw, wdw, 1, PAD, 1)),
        "fused_fwd": (
            lambda: conv2d_bias_relu_forward(x, w, bias, 1, PAD, 1),
            lambda: np.maximum(
                conv2d_forward(x, w, 1, PAD, 1)
                + bias.reshape(1, -1, 1, 1), 0.0),
        ),
    }
    for name, (planned, reference) in cases.items():
        pstats, rstats = paired_stats(planned, reference,
                                      repeats=repeats, warmup=warmup)
        out[name] = {"planned": pstats, "reference": rstats}
    return out


def _ratio(stats: dict) -> float:
    return stats["reference"]["min_s"] / stats["planned"]["min_s"]


def collect(profile: str = "quick"):
    """Machine-readable metrics for the ``kernels`` suite."""
    from runner import Metric

    shape = (1, 8, 48, 64) if profile == "smoke" else SHAPE
    stats = _speedups(profile, shape)
    band = {"fwd": 0.35, "wgrad": 0.35, "dgrad": 0.40}
    metrics = []
    for name, st in stats.items():
        planned = st["planned"]
        metrics.append(Metric(
            name=f"kernels.conv_{name}_speedup",
            value=_ratio(st), unit="x", higher_is_better=True,
            # The fused-epilogue win is real but small; ratios of two
            # nearly-equal GEMM times are too noisy to gate on.
            gate=name != "fused_fwd",
            tolerance=band.get(name),
            note=f"planned vs reference, shape {shape}"))
        metrics.append(Metric(
            name=f"kernels.conv_{name}_planned_ms",
            value=planned["median_s"] * 1e3, unit="ms",
            higher_is_better=False, gate=False,
            ci68=[planned["ci68_s"][0] * 1e3, planned["ci68_s"][1] * 1e3]))
    return metrics


def test_planned_conv_speedup(benchmark, emit):
    """Acceptance: >= 2x planned-vs-legacy forward on the headline shape."""
    stats = benchmark.pedantic(lambda: _speedups("quick"), rounds=1,
                               iterations=1)
    rows = []
    for name, st in stats.items():
        rows.append([name,
                     f"{st['reference']['median_s'] * 1e3:.2f}",
                     f"{st['planned']['median_s'] * 1e3:.2f}",
                     f"{_ratio(st):.2f}x"])
    emit(format_table(
        ["kernel", "reference ms", "planned ms", "speedup"], rows,
        title=f"Planned im2col-GEMM vs legacy tap-loop, shape {SHAPE}"))
    assert _ratio(stats["fwd"]) >= 2.0, "forward conv speedup below 2x"
    assert _ratio(stats["wgrad"]) >= 1.2, "wgrad slower than legacy"
    assert _ratio(stats["dgrad"]) >= 1.0, "dgrad slower than legacy"


def test_planned_matches_reference(benchmark):
    """The timed kernels agree numerically before we trust the timings."""
    def run():
        rng = np.random.default_rng(1)
        x, w, g = _problem(rng, (1, 4, 24, 32), filters=6)
        out = {
            "fwd": (conv2d_forward(x, w, 1, PAD, 1),
                    conv2d_forward_reference(x, w, 1, PAD, 1)),
            "wgrad": (conv2d_backward_weight(g, x, w.shape, 1, PAD, 1),
                      conv2d_backward_weight_reference(g, x, w.shape, 1, PAD, 1)),
            "dgrad": (conv2d_backward_input(g, w, x.shape, 1, PAD, 1),
                      conv2d_backward_input_reference(g, w, x.shape, 1, PAD, 1)),
        }
        return {k: float(np.abs(a - b).max()) for k, (a, b) in out.items()}

    errs = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, err in errs.items():
        assert err < 1e-4, (name, err)
