"""Figure 7 / Section VII-D: segmentation quality (IoU) of both networks.

The paper: Tiramisu reaches 59% IoU, the modified DeepLabv3+ 73%, and the
weighted loss makes the network overpredict TCs (FN ~37x costlier than FP).
At laptop scale we train width-reduced networks on synthetic data; the
*shape* to reproduce is (a) both networks learn usable masks, (b) DeepLabv3+
>= Tiramisu, and (c) TC recall is boosted at the cost of TC precision.
"""
import numpy as np
import pytest

from repro.climate import CLASS_NAMES, ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer
from repro.core.networks import (
    DeepLabConfig,
    DeepLabV3Plus,
    Tiramisu,
    TiramisuConfig,
)
from repro.perf import format_table

GRID = Grid(32, 48)
PAPER_IOU = {"tiramisu": 0.59, "deeplabv3+": 0.73}


@pytest.fixture(scope="module")
def dataset():
    from repro.climate import SnapshotSynthesizer

    # Busier skies than the defaults so every split contains TCs and ARs;
    # class frequencies land at ~98.1 / 0.4 / 1.5 percent, the paper's mix.
    synth = SnapshotSynthesizer(GRID, mean_cyclones=4.0, mean_rivers=3.0)
    return ClimateDataset.synthesize(GRID, num_samples=16, seed=4, channels=8,
                                     synthesizer=synth)


def tiramisu_small():
    return Tiramisu(TiramisuConfig(in_channels=8, base_filters=16, growth=8,
                                   down_layers=(2, 2), bottleneck_layers=2,
                                   kernel=3, dropout=0.0),
                    rng=np.random.default_rng(3))


def deeplab_small():
    return DeepLabV3Plus(DeepLabConfig(in_channels=8, width=0.125,
                                       aspp_dilations=(2, 4, 6)),
                         rng=np.random.default_rng(3))


def train_and_eval(model, dataset, epochs=8, lr=0.1):
    freqs = class_frequencies(dataset.labels)
    tr = Trainer(model, TrainConfig(lr=lr, optimizer="larc",
                                    weighting="inverse_sqrt"), freqs)
    rng = np.random.default_rng(0)
    for _ in range(epochs):
        for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
            tr.train_step(imgs, labs)
    val = dataset.splits.validation
    report = tr.evaluate(dataset.batches(val, 1, drop_last=False),
                         class_names=CLASS_NAMES)
    return tr, report


def test_fig7_segmentation_quality(benchmark, emit, dataset):
    def run():
        _, rep_t = train_and_eval(tiramisu_small(), dataset)
        _, rep_d = train_and_eval(deeplab_small(), dataset)
        return rep_t, rep_d

    rep_t, rep_d = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["tiramisu", f"{rep_t.mean_iou:.3f}", f"{PAPER_IOU['tiramisu']}",
         f"{rep_t.accuracy:.3f}"],
        ["deeplabv3+", f"{rep_d.mean_iou:.3f}", f"{PAPER_IOU['deeplabv3+']}",
         f"{rep_d.accuracy:.3f}"],
    ]
    emit(format_table(["network", "mean IoU", "paper IoU", "pixel acc"],
                      rows, title="Figure 7 / VII-D - segmentation quality "
                                  "(scaled-down networks, synthetic data)"))
    emit("per-class IoU tiramisu:   " + str({k: round(v, 3) if v == v else None
                                             for k, v in rep_t.iou.items()}))
    emit("per-class IoU deeplabv3+: " + str({k: round(v, 3) if v == v else None
                                             for k, v in rep_d.iou.items()}))
    # (a) both networks learn something well above chance.
    assert rep_t.mean_iou > 0.25
    assert rep_d.mean_iou > 0.25
    # (b) accuracies are high but IoU is the discriminating metric.
    assert rep_t.accuracy > 0.7 and rep_d.accuracy > 0.7


def test_fig7_tc_overprediction(benchmark, emit, dataset):
    """Weighted loss trades TC precision for recall (Figure 7b)."""

    def run():
        tr, _ = train_and_eval(tiramisu_small(), dataset, epochs=8)
        preds = tr.predict(dataset.images[dataset.splits.train])
        return preds

    preds = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = dataset.labels[dataset.splits.train]
    pred_tc = (preds == 1).mean()
    true_tc = (labels == 1).mean()
    emit(f"TC pixel fraction: predicted {pred_tc:.4f} vs labeled {true_tc:.4f} "
         f"(weighted loss encourages overprediction; paper Figure 7b)")
    if true_tc > 0:
        assert pred_tc > 0.3 * true_tc  # the network does commit to TCs
