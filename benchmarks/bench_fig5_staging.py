"""Figure 5: weak scaling with node-local staging vs global Lustre reads.

Piz Daint, Tiramisu FP32.  The paper: throughput matches at small scale;
at 2048 GPUs the global-storage run drops to 75.8% efficiency (local:
83.4%) because demand (~110 GB/s) reaches the file system's ~112 GB/s limit.
"""
import pytest

from repro.climate import PAPER_DATASET
from repro.hpc import PIZ_DAINT
from repro.perf import (
    PAPER_FIG5_ANCHORS,
    aggregate_demand,
    figure5_curves,
    format_table,
)

COUNTS = [1, 64, 256, 512, 1024, 1536, 2048]


def test_fig5_local_vs_global(benchmark, emit):
    pts = benchmark.pedantic(figure5_curves, kwargs={"gpu_counts": COUNTS},
                             rounds=1, iterations=1)
    rows = []
    for c in pts:
        demand = aggregate_demand(c.global_fs, PAPER_DATASET.sample_bytes)
        rows.append([
            c.gpus,
            f"{c.local.images_per_second:.0f}",
            f"{c.global_fs.images_per_second:.0f}",
            f"{c.local.efficiency*100:.1f}",
            f"{c.global_fs.efficiency*100:.1f}",
            f"{demand/1e9:.1f}",
            "yes" if c.global_fs.input_limited else "no",
        ])
    emit(format_table(
        ["GPUs", "img/s local", "img/s global", "eff% local", "eff% global",
         "demand GB/s", "FS-limited"],
        rows,
        title=(f"Figure 5 - Piz Daint input location "
               f"(paper @2048: local {PAPER_FIG5_ANCHORS['local']}%, "
               f"global {PAPER_FIG5_ANCHORS['global']}%, "
               f"demand ~{PAPER_FIG5_ANCHORS['demand_gb_s']} GB/s "
               f"vs limit {PAPER_FIG5_ANCHORS['fs_limit_gb_s']} GB/s)"),
    ))
    small, big = pts[1], pts[-1]
    # Shape: identical at small scale, separated at 2048, demand at the cap.
    assert small.global_fs.efficiency == pytest.approx(small.local.efficiency,
                                                       rel=1e-6)
    assert big.global_fs.input_limited
    assert big.global_fs.efficiency < big.local.efficiency - 0.05
    demand = aggregate_demand(big.global_fs, PAPER_DATASET.sample_bytes)
    assert demand <= 1.05 * PIZ_DAINT.filesystem.effective_read_bandwidth
