"""Section VIII-B: spatial model parallelism (domain decomposition).

The paper's future-systems discussion calls model parallelism
"indispensable" and points at NVLink-connected GPUs for "domain
decomposition techniques that split layers across processors."  We
implement and measure that: the full-resolution decoder's activations are
striped across the 6 GPUs of a Summit node, boundary rows are exchanged
over the (simulated) wire, and the distributed convolution is verified
bit-equal to the single-device one while per-GPU activation memory drops
~6x.
"""
import numpy as np
import pytest

from repro.comm import World, split_stripes
from repro.core.spatial import activation_bytes_per_rank, distributed_conv2d
from repro.framework.ops import conv2d_forward
from repro.perf import format_table


def test_distributed_conv_exactness_and_traffic(benchmark, emit):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 8, 48, 24)).astype(np.float32)
    w = rng.normal(size=(8, 8, 3, 3)).astype(np.float32)

    def run():
        world = World(6)
        stripes = distributed_conv2d(world, split_stripes(x, 6), w)
        return np.concatenate(stripes, axis=2), world.stats

    got, stats = benchmark(run)
    ref = conv2d_forward(x, w, 1, 1, 1)
    err = float(np.abs(got - ref).max())
    emit(f"Distributed 3x3 conv over 6 ranks: max abs error {err:.2e} "
         f"(exact), halo traffic {stats.total_bytes/1e3:.1f} kB in "
         f"{stats.total_messages} messages")
    np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)
    assert stats.total_messages == 2 * 5  # two directions per boundary


def test_activation_memory_split(benchmark, emit):
    def run():
        rows = []
        for ranks in (1, 2, 6):
            full, per_rank = activation_bytes_per_rank(
                batch=1, channels=256, height=768, width=1152,
                ranks=ranks, kernel=3)
            rows.append((ranks, full, per_rank))
        return rows

    rows = benchmark(run)
    emit(format_table(
        ["ranks", "full activation GB", "per-rank GB", "reduction"],
        [[r, f"{f/1e9:.2f}", f"{p/1e9:.3f}", f"{f/p:.1f}x"]
         for r, f, p in rows],
        title="Section VIII-B - decoder activation (1152x768x256 FP32) "
              "striped across a Summit node"))
    full, per_rank = rows[-1][1], rows[-1][2]
    assert per_rank < full / 5


def test_halo_overhead_vs_stripe(benchmark, emit):
    def run():
        # Communication volume per conv: 2 halo rows per interior boundary.
        halo_bytes = 2 * 5 * 256 * 1152 * 4  # both directions, 5 boundaries
        stripe_bytes = 256 * (768 // 6) * 1152 * 4
        return halo_bytes, stripe_bytes

    halo, stripe = benchmark(run)
    emit(f"Per-conv halo volume {halo/1e6:.1f} MB vs per-rank stripe "
         f"{stripe/1e6:.1f} MB ({halo/stripe*100:.1f}%) - cheap on NVLink "
         f"(150 GB/s): {halo/150e9*1e6:.0f} us per exchange")
    assert halo < 0.1 * stripe * 6
