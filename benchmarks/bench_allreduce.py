"""Section V-A3: all-reduce algorithm comparison (ablation).

Functionally verifies all algorithms over the simulated wire, and compares
the analytic cost models: the hybrid NCCL+MPI all-reduce should beat both a
flat inter-node tree over all GPUs and a flat ring at Summit scale, which is
exactly why the paper built it.
"""
import numpy as np
import pytest

from repro.comm import (
    EngineConfig,
    GradientExchangeEngine,
    World,
    allreduce,
    get_strategy,
    hierarchical_allreduce_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from repro.hpc import SUMMIT
from repro.perf import format_table

GRAD_BYTES = 43e6 * 2  # DeepLabv3+ FP16 gradient volume


def _gradient_spec():
    """The climate model's real gradient set: (name, shape) per tensor."""
    from repro.core.networks import tiramisu_modified

    model = tiramisu_modified(in_channels=16)
    return [(p.name, p.shape) for p in model.parameters()]


def _make_grads(spec, n_ranks, seed=1):
    rng = np.random.default_rng(seed)
    return [
        {name: rng.standard_normal(shape).astype(np.float32)
         for name, shape in spec}
        for _ in range(n_ranks)
    ]


def _engine_runs(spec):
    """Dense autotuned run + one compressed run over the model's gradients.

    Traffic on the simulated wire is a deterministic function of the tensor
    sizes, so every derived ratio gates with a tight band.
    """
    n = 4
    grads = _make_grads(spec, n)
    engine = GradientExchangeEngine(n, EngineConfig())
    for _ in range(3):  # enough exchanges to try every candidate strategy
        _, dense_report = engine.exchange(World(n), grads)
    margins = []
    for key, best in engine._settled.items():
        measured = engine._measured[key]
        margins.append(max(measured.values()) / measured[best])
    autotune_margin = min(margins) if margins else 1.0

    sparse = GradientExchangeEngine(
        2, EngineConfig(compression="topk", compression_ratio=0.01))
    _, topk_report = sparse.exchange(World(2), _make_grads(spec, 2))
    return dense_report, topk_report, autotune_margin


def _weak_scaling_margin():
    """Worst fixed algorithm vs the model-selected one across Summit sizes."""
    margins = []
    for nodes in (16, 256, 4560):
        n = nodes * 6
        times = []
        for name in ("ring", "tree", "hierarchical", "naive"):
            kw = (dict(gpus_per_node=6, mpi_ranks_per_node=4)
                  if name == "hierarchical" else {})
            times.append(get_strategy(name).modeled_time(
                n, GRAD_BYTES, nvlink=SUMMIT.node.nvlink,
                interconnect=SUMMIT.interconnect, **kw))
        margins.append(max(times) / min(times))
    return min(margins)


def test_functional_algorithms(benchmark, emit):
    def run():
        rng = np.random.default_rng(0)
        n = 12
        bufs = [rng.normal(size=2048).astype(np.float32) for _ in range(n)]
        expect = np.sum(bufs, axis=0)
        out = {}
        for name, kw in (
            ("ring", {}),
            ("tree", {}),
            ("hierarchical", dict(gpus_per_node=6, mpi_ranks_per_node=4)),
        ):
            w = World(n)
            res = allreduce(w, bufs, strategy=name, **kw)
            err = max(float(np.abs(r - expect).max()) for r in res)
            out[name] = (err, w.stats.total_messages, w.stats.total_bytes)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["algorithm", "max abs error", "messages", "bytes"],
        [[k, f"{v[0]:.2e}", v[1], v[2]] for k, v in out.items()],
        title="All-reduce algorithms, functional run (12 ranks, 2048 floats)"))
    for name, (err, _, _) in out.items():
        assert err < 1e-3, name


def test_cost_model_comparison(benchmark, emit):
    def run():
        node = SUMMIT.node
        rows = []
        for nodes in (16, 256, 4560):
            gpus = nodes * 6
            flat_ring = ring_allreduce_time(gpus, GRAD_BYTES, SUMMIT.interconnect)
            flat_tree = tree_allreduce_time(gpus, GRAD_BYTES, SUMMIT.interconnect)
            hybrid = hierarchical_allreduce_time(
                nodes, GRAD_BYTES, node.nvlink, SUMMIT.interconnect,
                gpus_per_node=6, parallel_devices=4)
            rows.append((nodes, gpus, flat_ring, flat_tree, hybrid))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["nodes", "GPUs", "flat ring (s)", "flat tree (s)", "hybrid (s)"],
        [[n, g, f"{r:.4f}", f"{t:.4f}", f"{h:.4f}"]
         for n, g, r, t, h in rows],
        title="All-reduce cost models on Summit (86 MB gradients)"))
    # At full scale the hybrid wins against both flat algorithms.
    _, _, flat_ring, flat_tree, hybrid = rows[-1]
    assert hybrid < flat_tree
    assert hybrid < flat_ring


def test_engine_adaptive_exchange(benchmark, emit):
    """Acceptance: fusion cuts collectives >= 4x on the climate model's
    gradient set, and the autotuned choice never loses to the worst fixed
    algorithm at any benched size."""
    spec = _gradient_spec()
    dense, topk, margin = benchmark.pedantic(
        lambda: _engine_runs(spec), rounds=1, iterations=1)
    reduction = len(spec) / dense.fusion.num_collectives
    emit(format_table(
        ["metric", "value"],
        [["gradient tensors", str(len(spec))],
         ["fused collectives", str(dense.fusion.num_collectives)],
         ["collective reduction", f"{reduction:.1f}x"],
         ["autotune margin (worst/settled)", f"{margin:.2f}x"],
         ["top-k wire bytes", f"{topk.wire_bytes / 1e6:.2f} MB"],
         ["top-k compression", f"{topk.compression_ratio:.1f}x"],
         ["overlap fraction", f"{dense.overlap_fraction:.2f}"]],
        title="Adaptive engine on the Tiramisu gradient set (4 ranks)"))
    assert reduction >= 4.0
    assert margin >= 1.0
    assert topk.compression_ratio > 10.0


def collect(profile: str = "quick"):
    """Machine-readable metrics for the ``allreduce`` suite.

    Cost-model outputs are deterministic functions of the Summit machine
    description, and the engine ratios are deterministic functions of the
    model's tensor sizes over the simulated wire, so they all gate with a
    tight band: any drift means the model or the engine changed.
    """
    from runner import Metric

    nodes = 4560
    flat_ring = ring_allreduce_time(nodes * 6, GRAD_BYTES, SUMMIT.interconnect)
    flat_tree = tree_allreduce_time(nodes * 6, GRAD_BYTES, SUMMIT.interconnect)
    hybrid = hierarchical_allreduce_time(
        nodes, GRAD_BYTES, SUMMIT.node.nvlink, SUMMIT.interconnect,
        gpus_per_node=6, parallel_devices=4)
    spec = _gradient_spec()
    dense, topk, autotune_margin = _engine_runs(spec)
    return [
        Metric(name="allreduce.hybrid_time_s", value=hybrid, unit="s",
               higher_is_better=False, gate=True, tolerance=0.001,
               note="deterministic cost model, 4560 Summit nodes"),
        Metric(name="allreduce.hybrid_vs_ring_speedup",
               value=flat_ring / hybrid, unit="x",
               higher_is_better=True, gate=True, tolerance=0.001),
        Metric(name="allreduce.hybrid_vs_tree_speedup",
               value=flat_tree / hybrid, unit="x",
               higher_is_better=True, gate=True, tolerance=0.001),
        Metric(name="allreduce.engine_collective_reduction",
               value=len(spec) / dense.fusion.num_collectives, unit="x",
               higher_is_better=True, gate=True, tolerance=0.001,
               note="tensors per fused collective, Tiramisu gradient set"),
        Metric(name="allreduce.engine_bytes_ratio",
               value=topk.compression_ratio, unit="x",
               higher_is_better=True, gate=True, tolerance=0.001,
               note="dense bytes / wire bytes, top-k 1%"),
        Metric(name="allreduce.engine_autotune_margin",
               value=autotune_margin, unit="x",
               higher_is_better=True, gate=True, tolerance=0.001,
               note="worst fixed algorithm / settled choice, measured"),
        Metric(name="allreduce.engine_weak_scaling_margin",
               value=_weak_scaling_margin(), unit="x",
               higher_is_better=True, gate=True, tolerance=0.001,
               note="worst fixed / model-selected across Summit sizes"),
    ]
