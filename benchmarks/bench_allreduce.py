"""Section V-A3: all-reduce algorithm comparison (ablation).

Functionally verifies all algorithms over the simulated wire, and compares
the analytic cost models: the hybrid NCCL+MPI all-reduce should beat both a
flat inter-node tree over all GPUs and a flat ring at Summit scale, which is
exactly why the paper built it.
"""
import numpy as np
import pytest

from repro.comm import (
    World,
    hierarchical_allreduce,
    hierarchical_allreduce_time,
    ring_allreduce,
    ring_allreduce_time,
    tree_allreduce,
    tree_allreduce_time,
)
from repro.hpc import SUMMIT
from repro.perf import format_table

GRAD_BYTES = 43e6 * 2  # DeepLabv3+ FP16 gradient volume


def test_functional_algorithms(benchmark, emit):
    def run():
        rng = np.random.default_rng(0)
        n = 12
        bufs = [rng.normal(size=2048).astype(np.float32) for _ in range(n)]
        expect = np.sum(bufs, axis=0)
        out = {}
        for name, fn, kw in (
            ("ring", ring_allreduce, {}),
            ("tree", tree_allreduce, {}),
            ("hierarchical", hierarchical_allreduce,
             dict(gpus_per_node=6, mpi_ranks_per_node=4)),
        ):
            w = World(n)
            res = fn(w, bufs, **kw)
            err = max(float(np.abs(r - expect).max()) for r in res)
            out[name] = (err, w.stats.total_messages, w.stats.total_bytes)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["algorithm", "max abs error", "messages", "bytes"],
        [[k, f"{v[0]:.2e}", v[1], v[2]] for k, v in out.items()],
        title="All-reduce algorithms, functional run (12 ranks, 2048 floats)"))
    for name, (err, _, _) in out.items():
        assert err < 1e-3, name


def test_cost_model_comparison(benchmark, emit):
    def run():
        node = SUMMIT.node
        rows = []
        for nodes in (16, 256, 4560):
            gpus = nodes * 6
            flat_ring = ring_allreduce_time(gpus, GRAD_BYTES, SUMMIT.interconnect)
            flat_tree = tree_allreduce_time(gpus, GRAD_BYTES, SUMMIT.interconnect)
            hybrid = hierarchical_allreduce_time(
                nodes, GRAD_BYTES, node.nvlink, SUMMIT.interconnect,
                gpus_per_node=6, parallel_devices=4)
            rows.append((nodes, gpus, flat_ring, flat_tree, hybrid))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["nodes", "GPUs", "flat ring (s)", "flat tree (s)", "hybrid (s)"],
        [[n, g, f"{r:.4f}", f"{t:.4f}", f"{h:.4f}"]
         for n, g, r, t, h in rows],
        title="All-reduce cost models on Summit (86 MB gradients)"))
    # At full scale the hybrid wins against both flat algorithms.
    _, _, flat_ring, flat_tree, hybrid = rows[-1]
    assert hybrid < flat_tree
    assert hybrid < flat_ring


def collect(profile: str = "quick"):
    """Machine-readable metrics for the ``allreduce`` suite.

    Cost-model outputs are deterministic functions of the Summit machine
    description, so they gate with a tight band: any drift means the model
    itself changed.
    """
    from runner import Metric

    nodes = 4560
    flat_ring = ring_allreduce_time(nodes * 6, GRAD_BYTES, SUMMIT.interconnect)
    flat_tree = tree_allreduce_time(nodes * 6, GRAD_BYTES, SUMMIT.interconnect)
    hybrid = hierarchical_allreduce_time(
        nodes, GRAD_BYTES, SUMMIT.node.nvlink, SUMMIT.interconnect,
        gpus_per_node=6, parallel_devices=4)
    return [
        Metric(name="allreduce.hybrid_time_s", value=hybrid, unit="s",
               higher_is_better=False, gate=True, tolerance=0.001,
               note="deterministic cost model, 4560 Summit nodes"),
        Metric(name="allreduce.hybrid_vs_ring_speedup",
               value=flat_ring / hybrid, unit="x",
               higher_is_better=True, gate=True, tolerance=0.001),
        Metric(name="allreduce.hybrid_vs_tree_speedup",
               value=flat_tree / hybrid, unit="x",
               higher_is_better=True, gate=True, tolerance=0.001),
    ]
