"""Figure 2: single-GPU performance of both networks, both precisions.

Regenerates the paper's table: operation count (TF/sample), training rate
(samples/s), sustained TF/s and percent of peak for DeepLabv3+ and Tiramisu
on V100 (FP32 + FP16) and the 4-channel Tiramisu on P100.
"""
import pytest

from repro.core import paper_conv_example_flops
from repro.perf import PAPER_FIG2, figure2_table, format_table


def test_fig2_table(benchmark, emit):
    rows = benchmark(figure2_table)
    table_rows = []
    for p in rows:
        paper = PAPER_FIG2[(p.network, p.gpu, p.precision)]
        table_rows.append([
            p.network, p.gpu, p.precision, p.batch,
            f"{p.tf_per_sample:.2f} ({paper[0]})",
            f"{p.samples_per_second:.2f} ({paper[1]})",
            f"{p.sustained_tf:.2f} ({paper[2]})",
            f"{p.pct_peak:.1f} ({paper[3]})",
        ])
    emit(format_table(
        ["network", "gpu", "prec", "batch", "TF/sample (paper)",
         "samples/s (paper)", "TF/s (paper)", "% peak (paper)"],
        table_rows,
        title="Figure 2 - single GPU performance, measured (paper)",
    ))
    # Shape assertions: ordering of efficiency and rates must match the paper.
    by = {(p.network, p.precision): p for p in rows}
    assert by[("deeplabv3+", "fp32")].pct_peak > by[("tiramisu", "fp32")].pct_peak
    assert by[("tiramisu", "fp16")].samples_per_second > \
        by[("tiramisu", "fp32")].samples_per_second
    for p in rows:
        paper_rate = PAPER_FIG2[(p.network, p.gpu, p.precision)][1]
        assert p.samples_per_second == pytest.approx(paper_rate, rel=0.30)


def test_fig2_worked_flop_example(benchmark, emit):
    flops = benchmark(paper_conv_example_flops)
    emit(f"Section VI worked example: 3x3 conv 1152x768, 48->32 ch, batch 2\n"
         f"  measured {flops/1e9:.1f} GFLOPs (paper 48.9)")
    assert flops == pytest.approx(48.9e9, rel=0.01)
