"""Section V-B2: LARC's large-batch stability.

"LARC improves the accuracy of large networks, especially when trained
using large batch sizes" and (Section VIII-B) "techniques such as LARC have
increased the total global batch size that can converge."  The mechanism —
clipping each layer's rate at trust * ||w|| / ||g|| — means the wildly
scaled learning rates large batches require (the paper runs LR 0.4096 at
6144 GPUs, 4096x its 384-GPU value) cannot blow up any single layer.

Measured here: momentum-SGD diverges beyond a small LR while LARC keeps
converging across a 100x LR sweep on the same network and data.
"""
import warnings

import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.core.optim import schedules
from repro.perf import format_table

GRID = Grid(16, 24)
LRS = (0.1, 0.5, 2.0, 8.0)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=16, seed=30, channels=4)


def run(dataset, freqs, opt, lr, steps=16):
    model = Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                    down_layers=(2, 2), bottleneck_layers=2,
                                    kernel=3, dropout=0.0),
                     rng=np.random.default_rng(3))
    tr = Trainer(model, TrainConfig(lr=lr, optimizer=opt, momentum=0.9), freqs)
    rng = np.random.default_rng(0)
    losses = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # divergence overflows
        with np.errstate(all="ignore"):
            while len(losses) < steps:
                for imgs, labs in dataset.batches(dataset.splits.train, 4, rng):
                    losses.append(tr.train_step(imgs, labs).loss)
                    if len(losses) >= steps:
                        break
    final = float(np.mean(losses[-3:]))
    diverged = (not np.isfinite(final)) or final > 2 * losses[0]
    return final, diverged


def test_larc_survives_lr_sweep(benchmark, emit, dataset):
    freqs = class_frequencies(dataset.labels)

    def sweep():
        return {(opt, lr): run(dataset, freqs, opt, lr)
                for lr in LRS for opt in ("sgd", "larc")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for lr in LRS:
        sgd_final, sgd_div = results[("sgd", lr)]
        larc_final, larc_div = results[("larc", lr)]
        rows.append([lr,
                     "DIVERGED" if sgd_div else f"{sgd_final:.3f}",
                     "DIVERGED" if larc_div else f"{larc_final:.3f}"])
    emit(format_table(
        ["learning rate", "momentum SGD final loss", "LARC final loss"],
        rows,
        title="Section V-B2 - LR robustness (paper: LARC enables the "
              "large-batch LR schedule without warm-up)"))
    # LARC converges across the whole sweep; SGD dies early in it.
    for lr in LRS:
        assert not results[("larc", lr)][1], f"LARC diverged at lr={lr}"
    assert any(results[("sgd", lr)][1] for lr in LRS[1:])


def test_paper_lr_schedule_needs_larc_headroom(benchmark, emit):
    ratios = benchmark(lambda: [
        schedules.paper_lr_for_gpus(g) / schedules.paper_lr_for_gpus(384)
        for g in (384, 1536, 6144)])
    emit(f"Paper LR scale-up factors vs 384 GPUs: "
         f"{[f'{r:,.0f}x' for r in ratios]} - a faster-than-linear ramp "
         f"only an adaptively clipped optimizer tolerates")
    assert ratios[-1] > 1000  # 0.4096 / 0.0001 = 4096x
