"""Section VII-A: the batch-size/memory claim.

"For both networks, a single image per GPU is processed per training step
when FP32 precision is used, while for FP16, the lower memory footprint
enables batches of two images per GPU."  The memory model reproduces
exactly that from the traced activation inventory on the 16 GB V100.
"""
import pytest

from repro.core.networks import deeplab_modified, tiramisu_modified
from repro.hpc import V100
from repro.perf import format_table, max_batch, training_memory

FULL = (16, 768, 1152)


def test_batch_limits_match_paper(benchmark, emit):
    def run():
        rows = []
        for name, build in (("deeplabv3+", deeplab_modified),
                            ("tiramisu", tiramisu_modified)):
            model = build()
            for prec in ("fp32", "fp16"):
                mb = max_batch(model, FULL, prec, V100, limit=4)
                budget = training_memory(model, FULL, max(mb, 1), prec)
                rows.append((name, prec, mb, budget))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for name, prec, mb, budget in rows:
        table.append([name, prec, mb, f"{budget.activations/1e9:.1f}",
                      f"{(budget.weights + budget.master_weights)/1e9:.2f}",
                      f"{budget.total/1e9:.1f}"])
    emit(format_table(
        ["network", "precision", "max batch", "activations GB",
         "weights GB", "total GB"],
        table,
        title="Section VII-A - V100 (16 GB) batch limits "
              "(paper: FP32 batch 1, FP16 batch 2)"))
    limits = {(n, p): mb for n, p, mb, _ in rows}
    assert limits[("deeplabv3+", "fp32")] == 1
    assert limits[("deeplabv3+", "fp16")] == 2
    assert limits[("tiramisu", "fp32")] == 1
    assert limits[("tiramisu", "fp16")] == 2
