"""Machine-readable benchmark protocol: run suites, emit JSON, compare.

The figure benchmarks under ``benchmarks/`` print human tables; CI needs
numbers it can diff.  This runner loads a *suite* module
(``bench_<suite>.py``) by path, calls its ``collect(profile)`` hook (a
plain function, no pytest machinery), and writes a schema-versioned
``BENCH_<tag>.json``:

* every metric carries ``value``, ``unit``, ``higher_is_better``, a
  ``gate`` flag and an optional per-metric ``tolerance`` override;
* timed metrics are summarized the paper's way (Section VI): median plus
  the central-68% interval over repeats;
* the report records host fingerprint + git commit so a JSON artifact is
  traceable to the machine and tree that produced it.

``compare()`` implements the CI perf gate: **gated** metrics regress the
build when they move past their tolerance band in the bad direction
(default band 15%); absolute wall-times are recorded ``gate=False``
because they are machine properties, while ratios (speedups) and
deterministic cost-model outputs transfer across hosts.

Standalone usage (the ``repro bench`` CLI wraps this)::

    python benchmarks/runner.py --suite kernels --tag head \
        --against benchmarks/baseline.json
"""
from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field

SCHEMA = "repro-bench/1"
BENCH_DIR = pathlib.Path(__file__).resolve().parent
DEFAULT_SUITES = ("kernels", "serving", "allreduce")
PROFILES = ("smoke", "quick", "full")
DEFAULT_TOLERANCE = 0.15

__all__ = [
    "SCHEMA", "DEFAULT_SUITES", "PROFILES", "DEFAULT_TOLERANCE",
    "Metric", "timeit_stats", "summarize_times", "load_suite",
    "run_suites", "write_report", "load_report", "compare",
    "format_compare", "main",
]


@dataclass
class Metric:
    """One benchmark measurement destined for the JSON report."""

    name: str
    value: float
    unit: str = ""
    higher_is_better: bool = True
    gate: bool = True
    tolerance: float | None = None      # per-metric band; None -> default
    ci68: list[float] | None = None     # central-68% interval, value units
    note: str = ""

    def to_json(self) -> dict:
        out = {
            "value": float(self.value),
            "unit": self.unit,
            "higher_is_better": bool(self.higher_is_better),
            "gate": bool(self.gate),
        }
        if self.tolerance is not None:
            out["tolerance"] = float(self.tolerance)
        if self.ci68 is not None:
            out["ci68"] = [float(self.ci68[0]), float(self.ci68[1])]
        if self.note:
            out["note"] = self.note
        return out


# -- timing ----------------------------------------------------------------


def summarize_times(times: list[float]) -> dict:
    """Median + central-68% interval, the paper's throughput convention.

    ``min_s`` rides along: on shared/noisy hosts the minimum is the best
    estimator of the true kernel cost, so speedup *ratios* use it while
    the median/CI pair describes the distribution actually observed.
    """
    ts = sorted(times)
    n = len(ts)
    if n == 0:
        raise ValueError("no samples")
    med = statistics.median(ts)
    lo = ts[max(0, min(n - 1, round(0.16 * (n - 1))))]
    hi = ts[max(0, min(n - 1, round(0.84 * (n - 1))))]
    return {"median_s": med, "ci68_s": [lo, hi], "min_s": ts[0], "repeats": n}


def timeit_stats(fn, repeats: int = 5, warmup: int = 1) -> dict:
    """Wall-time ``fn`` ``repeats`` times after ``warmup`` discarded runs."""
    for _ in range(max(warmup, 0)):
        fn()
    times = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return summarize_times(times)


def paired_stats(a, b, repeats: int = 5, warmup: int = 1
                 ) -> tuple[dict, dict]:
    """Time two rivals with strictly alternating samples (A, B, A, B, ...).

    Interleaving makes both sides see the same background load, allocator
    and frequency state, so their *ratio* is far more stable than two
    back-to-back blocks — the right shape for A/B speedup metrics.
    """
    for _ in range(max(warmup, 0)):
        a()
        b()
    ta: list[float] = []
    tb: list[float] = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        a()
        ta.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        b()
        tb.append(time.perf_counter() - t0)
    return summarize_times(ta), summarize_times(tb)


# -- suite loading ---------------------------------------------------------


def load_suite(name: str, bench_dir: pathlib.Path | None = None):
    """Import ``bench_<name>.py`` by path and return its module."""
    bench_dir = bench_dir or BENCH_DIR
    path = bench_dir / f"bench_{name}.py"
    if not path.exists():
        raise FileNotFoundError(f"no suite module {path}")
    # Suites import their siblings (``from runner import Metric``); make
    # sure the directory resolves regardless of how we were invoked.
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    spec = importlib.util.spec_from_file_location(f"bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "collect"):
        raise AttributeError(f"suite {name!r} defines no collect(profile)")
    return module


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=BENCH_DIR, capture_output=True,
            text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _host_info() -> dict:
    import numpy as np

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": __import__("os").cpu_count(),
    }


def run_suites(suites: list[str], profile: str = "quick", tag: str = "head",
               bench_dir: pathlib.Path | None = None) -> dict:
    """Run every suite's ``collect(profile)`` and build the report dict."""
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    metrics: dict[str, dict] = {}
    for suite in suites:
        module = load_suite(suite, bench_dir)
        for metric in module.collect(profile):
            if not isinstance(metric, Metric):
                metric = Metric(**metric)
            if metric.name in metrics:
                raise ValueError(f"duplicate metric name {metric.name!r}")
            metrics[metric.name] = metric.to_json()
    return {
        "schema": SCHEMA,
        "tag": tag,
        "profile": profile,
        "suites": list(suites),
        "created_unix": time.time(),
        "commit": _git_commit(),
        "host": _host_info(),
        "metrics": metrics,
    }


def write_report(report: dict, out_dir: pathlib.Path) -> pathlib.Path:
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report['tag']}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path) -> dict:
    report = json.loads(pathlib.Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {report.get('schema')!r} != {SCHEMA!r}")
    return report


# -- the gate --------------------------------------------------------------


def compare(head: dict, baseline: dict,
            default_tolerance: float = DEFAULT_TOLERANCE
            ) -> tuple[list[dict], bool]:
    """Diff two reports; returns (rows, ok).

    A **gated** baseline metric fails the gate when the head value moves
    past its tolerance band in the bad direction, or when it vanished from
    the head report.  Ungated metrics are reported for context only.
    """
    rows: list[dict] = []
    ok = True
    head_metrics = head.get("metrics", {})
    for name, base in sorted(baseline.get("metrics", {}).items()):
        gated = bool(base.get("gate", True))
        tol = float(base.get("tolerance", default_tolerance))
        hm = head_metrics.get(name)
        if hm is None:
            rows.append({"name": name, "status": "missing", "gated": gated,
                         "base": base["value"], "head": None,
                         "ratio": None, "tolerance": tol})
            ok = ok and not gated
            continue
        bv, hv = float(base["value"]), float(hm["value"])
        ratio = hv / bv if bv else float("inf")
        hib = bool(base.get("higher_is_better", True))
        if hib:
            regressed = hv < bv * (1.0 - tol)
            improved = hv > bv * (1.0 + tol)
        else:
            regressed = hv > bv * (1.0 + tol)
            improved = hv < bv * (1.0 - tol)
        status = "regression" if regressed else ("improved" if improved else "ok")
        rows.append({"name": name, "status": status, "gated": gated,
                     "base": bv, "head": hv, "ratio": ratio, "tolerance": tol})
        if gated and regressed:
            ok = False
    for name in sorted(set(head_metrics) - set(baseline.get("metrics", {}))):
        rows.append({"name": name, "status": "new", "gated": False,
                     "base": None, "head": head_metrics[name]["value"],
                     "ratio": None, "tolerance": default_tolerance})
    return rows, ok


def format_compare(rows: list[dict]) -> str:
    headers = ["metric", "baseline", "head", "head/base", "band", "gate", "status"]
    body = []
    for r in rows:
        body.append([
            r["name"],
            "-" if r["base"] is None else f"{r['base']:.4g}",
            "-" if r["head"] is None else f"{r['head']:.4g}",
            "-" if r["ratio"] is None else f"{r['ratio']:.3f}",
            f"±{r['tolerance'] * 100:.3g}%",
            "yes" if r["gated"] else "no",
            r["status"],
        ])
    cols = list(zip(*([headers] + body))) if body else [headers]
    widths = [max(len(str(c)) for c in col) for col in cols]
    lines = ["  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
             for row in [headers] + body]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


# -- CLI -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="runner", description="run benchmark suites, emit/compare JSON")
    ap.add_argument("--suite", default=",".join(DEFAULT_SUITES),
                    help="comma-separated suite names (bench_<name>.py)")
    ap.add_argument("--profile", default="quick", choices=PROFILES)
    ap.add_argument("--tag", default="head", help="report tag (BENCH_<tag>.json)")
    ap.add_argument("--out", default=str(BENCH_DIR / "out"),
                    help="output directory for BENCH_<tag>.json")
    ap.add_argument("--against", default=None,
                    help="baseline JSON to gate against (exit 1 on regression)")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="default tolerance band for gated metrics")
    ap.add_argument("--json", action="store_true", dest="json_out",
                    help="print the report JSON to stdout")
    args = ap.parse_args(argv)

    suites = [s.strip() for s in args.suite.split(",") if s.strip()]
    report = run_suites(suites, profile=args.profile, tag=args.tag)
    path = write_report(report, pathlib.Path(args.out))
    print(f"wrote {path}")
    if args.json_out:
        print(json.dumps(report, indent=2, sort_keys=True))
    if args.against:
        baseline = load_report(args.against)
        rows, ok = compare(report, baseline, default_tolerance=args.tolerance)
        print(format_compare(rows))
        if not ok:
            print("PERF GATE: FAIL (gated metric regressed past tolerance)")
            return 1
        print("PERF GATE: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
