"""Figure 4: weak-scaling curves on Summit and Piz Daint.

Regenerates images/s and sustained PF/s against GPU count for (a) Tiramisu
(Piz Daint FP32; Summit FP32/FP16) and (b) DeepLabv3+ (Summit FP32/FP16,
lag 0 and lag 1), and checks the paper's headline anchors:

* Piz Daint, 5300 P100s: 21.0 PF/s sustained, 79.0% efficiency
* Summit, 27360 V100s, DeepLabv3+ FP32: 325.8 PF/s, 90.7%
* Summit, 27360 V100s, DeepLabv3+ FP16: 999.0 PF/s sustained, 90.7%
"""
import pytest

from repro.perf import PAPER_SCALING_ANCHORS, format_table, weak_scaling_curve

SUMMIT_COUNTS = [1, 6, 48, 384, 1536, 6144, 12288, 24576, 27360]
DAINT_COUNTS = [1, 64, 256, 1024, 2048, 4096, 5300]


def _series(emit, title, network, system, precision, lag, counts):
    pts = weak_scaling_curve(network, system, precision, lag=lag,
                             gpu_counts=counts)
    rows = [[p.gpus, f"{p.images_per_second:.1f}",
             f"{p.sustained_pflops:.2f}", f"{p.efficiency*100:.1f}"]
            for p in pts]
    emit(format_table(["GPUs", "images/s", "PF/s", "efficiency %"], rows,
                      title=title))
    return pts


def test_fig4a_tiramisu(benchmark, emit):
    def run():
        return (
            _series(emit, "Fig 4a - Tiramisu, Piz Daint FP32 (lag 0)",
                    "tiramisu_4ch", "piz_daint", "fp32", 0, DAINT_COUNTS),
            _series(emit, "Fig 4a - Tiramisu, Summit FP32 (lag 1)",
                    "tiramisu", "summit", "fp32", 1, SUMMIT_COUNTS),
            _series(emit, "Fig 4a - Tiramisu, Summit FP16 (lag 1)",
                    "tiramisu", "summit", "fp16", 1, SUMMIT_COUNTS),
        )

    daint, s32, s16 = benchmark.pedantic(run, rounds=1, iterations=1)
    gpus, eff, pf = PAPER_SCALING_ANCHORS[("tiramisu_4ch", "piz_daint", "fp32")]
    last = daint[-1]
    emit(f"Piz Daint anchor: measured {last.sustained_pflops:.1f} PF/s @ "
         f"{last.efficiency*100:.1f}% (paper {pf} PF/s @ {eff}%)")
    assert last.sustained_pflops == pytest.approx(pf, rel=0.2)
    assert last.efficiency * 100 == pytest.approx(eff, abs=4.0)
    # Summit Tiramisu: paper reports 176.8 / 492.2 PF/s at 4096 nodes.
    assert s32[-2].sustained_pflops == pytest.approx(176.8, rel=0.35)
    assert s16[-2].sustained_pflops == pytest.approx(492.2, rel=0.35)


def test_fig4b_deeplab(benchmark, emit):
    def run():
        return (
            _series(emit, "Fig 4b - DeepLabv3+, Summit FP32 (lag 1)",
                    "deeplabv3+", "summit", "fp32", 1, SUMMIT_COUNTS),
            _series(emit, "Fig 4b - DeepLabv3+, Summit FP16 lag 0",
                    "deeplabv3+", "summit", "fp16", 0, SUMMIT_COUNTS),
            _series(emit, "Fig 4b - DeepLabv3+, Summit FP16 lag 1",
                    "deeplabv3+", "summit", "fp16", 1, SUMMIT_COUNTS),
        )

    s32, lag0, lag1 = benchmark.pedantic(run, rounds=1, iterations=1)
    for (net, sys_, prec), series in ((("deeplabv3+", "summit", "fp32"), s32),
                                      (("deeplabv3+", "summit", "fp16"), lag1)):
        gpus, eff, pf = PAPER_SCALING_ANCHORS[(net, sys_, prec)]
        last = series[-1]
        emit(f"Summit {prec} anchor: measured {last.sustained_pflops:.0f} PF/s "
             f"@ {last.efficiency*100:.1f}% (paper {pf} PF/s @ {eff}%)")
        assert last.sustained_pflops == pytest.approx(pf, rel=0.2)
        assert last.efficiency * 100 == pytest.approx(eff, abs=3.0)
    # "The results clearly indicate the effectiveness of the lagged scheme".
    assert lag1[-1].efficiency > lag0[-1].efficiency
