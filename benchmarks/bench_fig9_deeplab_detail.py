"""Figure 9: detailed DeepLabv3+ kernel-category table (FP32 and FP16).

Paper totals — FP32: 1215.9 ms / 14.41 TF / 220.9 GB; FP16: 817.3 ms /
28.82 TF / 203.6 GB.
"""
import pytest

from repro.perf import PAPER_DETAIL, format_table, kernel_breakdown


@pytest.mark.parametrize("precision", ["fp32", "fp16"])
def test_fig9_deeplab_detail(benchmark, emit, precision):
    table = benchmark.pedantic(kernel_breakdown,
                               args=("deeplabv3+", precision),
                               rounds=1, iterations=1)
    paper_ms, paper_tf, paper_gb = PAPER_DETAIL[("deeplabv3+", precision)]
    rows = [[r.category, r.kernels, f"{r.time_s*1e3:.1f}",
             f"{r.flops/1e12:.2f}", f"{r.bytes/1e9:.1f}",
             f"{100*r.time_s/table.total_time_s:.1f}"]
            for r in table.rows]
    rows.append(["TOTAL", sum(r.kernels for r in table.rows),
                 f"{table.total_time_s*1e3:.1f} ({paper_ms})",
                 f"{table.total_flops/1e12:.2f} ({paper_tf})",
                 f"{table.total_bytes/1e9:.1f} ({paper_gb})", "100.0"])
    emit(format_table(
        ["category", "#kern", "time ms", "math TF", "mem GB", "% time"],
        rows, title=f"Figure 9 - DeepLabv3+ {precision.upper()} detail "
                    f"(totals: measured (paper))"))
    assert table.total_flops / 1e12 == pytest.approx(paper_tf, rel=0.2)
    assert 0.5 < table.total_time_s * 1e3 / paper_ms < 2.0
    # DeepLab convs run at much higher math efficiency than Tiramisu's
    # (the paper's core single-GPU finding).
    conv_rows = [r for r in table.rows if r.category == "conv_fwd"]
    assert conv_rows[0].pct_math_peak > 30.0 or precision == "fp16"
