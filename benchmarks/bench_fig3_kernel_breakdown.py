"""Figure 3: kernel-category summary for both networks and precisions.

Regenerates the "% time / % math / % mem" per-category table from the traced
kernel inventory and the roofline model.
"""
import pytest

from repro.perf import PAPER_CATEGORY_TIME_PCT, format_table, kernel_breakdown

CONFIGS = [("tiramisu", "fp32"), ("tiramisu", "fp16"),
           ("deeplabv3+", "fp32"), ("deeplabv3+", "fp16")]


@pytest.mark.parametrize("network,precision", CONFIGS)
def test_fig3_category_shares(benchmark, emit, network, precision):
    table = benchmark.pedantic(kernel_breakdown, args=(network, precision),
                               rounds=1, iterations=1)
    paper = PAPER_CATEGORY_TIME_PCT[(network, precision)]
    pct = table.time_pct()
    rows = []
    for row in table.rows:
        rows.append([
            row.category, row.kernels,
            f"{row.time_s*1e3:.1f}",
            f"{row.flops/1e12:.2f}",
            f"{row.bytes/1e9:.1f}",
            f"{pct[row.category]:.1f} ({paper.get(row.category, 0.0)})",
            f"{row.pct_math_peak:.1f}",
            f"{row.pct_mem_peak:.1f}",
        ])
    emit(format_table(
        ["category", "#kern", "time ms", "math TF", "mem GB",
         "% time (paper)", "% math", "% mem"],
        rows,
        title=f"Figure 3 - {network} {precision.upper()} kernel categories",
    ))
    # Shape: backward convs are the biggest bucket, as in every paper column.
    assert table.dominant_category() == "conv_bwd"
    conv_share = pct.get("conv_fwd", 0) + pct.get("conv_bwd", 0)
    paper_conv = paper["conv_fwd"] + paper["conv_bwd"]
    assert conv_share == pytest.approx(paper_conv, abs=25.0)
