"""Section V-A1: data-staging times and bandwidths.

Paper numbers to reproduce:

* naive staging at 1024 nodes: 10-20 minutes, each file read by ~23 nodes;
* distributed staging: under 3 minutes at 1024 nodes, under 7 at 4500;
* 8 reader threads: 1.79 -> 11.98 GB/s per node (6.7x);
* single-GPU input demand 189 MB/s -> 1.16 TB/s at 1024 nodes -> 5.23 TB/s
  full system, vs the GPFS design target of ~2.5 TB/s.
"""
import pytest

from repro.climate import PAPER_DATASET
from repro.comm import World
from repro.hpc import SUMMIT
from repro.io import plan_staging, scaled_read_bandwidth, stage_distributed
from repro.perf import format_table

FB = PAPER_DATASET.sample_bytes
NF = PAPER_DATASET.num_samples


def test_staging_time_table(benchmark, emit):
    def run():
        rows = []
        for nodes in (256, 1024, 4500):
            naive = plan_staging(SUMMIT, NF, FB, nodes, strategy="naive")
            dist = plan_staging(SUMMIT, NF, FB, nodes, strategy="distributed")
            rows.append((nodes, naive, dist))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for nodes, naive, dist in rows:
        table.append([nodes,
                      f"{naive.total_time_s/60:.1f}",
                      f"{naive.replication_factor:.1f}",
                      f"{dist.total_time_s/60:.2f}",
                      f"{dist.fs_read_bytes/1e12:.2f}",
                      f"{dist.redistribution_bytes/1e12:.1f}"])
    emit(format_table(
        ["nodes", "naive min", "FS reads/file", "distributed min",
         "dist FS read TB", "dist IB moved TB"],
        table,
        title="Section V-A1 - staging strategies "
              "(paper: naive 10-20 min @1024 w/ 23x re-read; "
              "distributed <3 min @1024, <7 min @4500)"))
    by_nodes = {n: (na, d) for n, na, d in rows}
    naive1024, dist1024 = by_nodes[1024]
    assert 10 * 60 < naive1024.total_time_s < 20 * 60
    assert naive1024.replication_factor == pytest.approx(23, abs=4)
    assert dist1024.total_time_s < 3 * 60
    assert by_nodes[4500][1].total_time_s < 7 * 60


def test_reader_thread_scaling(benchmark, emit):
    bws = benchmark(lambda: [scaled_read_bandwidth(t, 1.79e9)
                             for t in (1, 2, 4, 8)])
    emit(format_table(
        ["threads", "GB/s"],
        [[t, f"{bw/1e9:.2f}"] for t, bw in zip((1, 2, 4, 8), bws)],
        title="Section V-A1 - per-node read bandwidth vs reader threads "
              "(paper: 1.79 -> 11.98 GB/s, 6.7x at 8 threads)"))
    assert bws[-1] / bws[0] == pytest.approx(6.7, rel=0.02)


def test_input_bandwidth_arithmetic(benchmark, emit):
    def rates():
        per_gpu = 189e6  # paper's Tiramisu figure, B/s per GPU
        node = per_gpu * SUMMIT.node.gpus
        at_1024 = node * 1024
        full = node * SUMMIT.nodes
        return per_gpu, node, at_1024, full

    per_gpu, node, at_1024, full = benchmark(rates)
    emit(f"Input demand: {per_gpu/1e6:.0f} MB/s per GPU -> "
         f"{node/1e9:.2f} GB/s per node -> {at_1024/1e12:.2f} TB/s @1024 "
         f"nodes -> {full/1e12:.2f} TB/s full system\n"
         f"(paper: 189 MB/s, 1.14 GB/s, 1.16 TB/s, 5.23 TB/s; GPFS target "
         f"{SUMMIT.filesystem.peak_read_bandwidth/1e12:.1f} TB/s)")
    assert node == pytest.approx(1.14e9, rel=0.01)
    assert at_1024 == pytest.approx(1.16e12, rel=0.01)
    assert full == pytest.approx(5.23e12, rel=0.01)
    # "more than twice the target performance of the GPFS file system"
    assert full > 2 * SUMMIT.filesystem.peak_read_bandwidth


def test_functional_distributed_staging(benchmark, emit):
    def run():
        w = World(12)
        return stage_distributed(w, num_files=600, files_per_rank=120, seed=7)

    staged, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"Functional staging protocol (12 ranks, 600 files, 120/rank): "
         f"consistent={stats['consistent']}, "
         f"requests={stats['total_requests']}, messages={stats['messages']}")
    assert stats["consistent"]
