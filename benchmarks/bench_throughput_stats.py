"""Section VI measurement methodology: sustained throughput with 68% CI.

The paper reports sustained throughput as "the mean number of processed
samples for every step over ranks and the median of the result over time",
with an asymmetric error bar from the 0.16/0.84 percentiles — the error
bars on Figure 4.  Here the event-driven run simulator produces the
per-(step, rank) measurements and the statistics pipeline reduces them,
for a DeepLabv3+-FP16-like configuration at three scales.
"""
import pytest

from repro.perf import (
    TrainingRunConfig,
    format_table,
    simulate_training_run,
    sustained_throughput,
)

COMPUTE_S = 0.595  # DeepLab FP16 batch-2 step (Figure 2 model)


def test_sustained_with_error_bars(benchmark, emit):
    def run():
        rows = []
        for ranks in (24, 96, 384):
            cfg = TrainingRunConfig(
                ranks=ranks, steps=200, compute_time_s=COMPUTE_S,
                compute_jitter=0.03, allreduce_time_s=0.09,
                overlap_fraction=0.9, batch_per_rank=2, seed=ranks)
            res = simulate_training_run(cfg)
            rows.append((ranks, res))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for ranks, res in rows:
        st = res.sustained()
        ideal = ranks * 2 / COMPUTE_S
        table.append([
            ranks,
            f"{st.median:.1f}",
            f"-{st.err_minus:.2f}/+{st.err_plus:.2f}",
            f"{st.median/ideal*100:.1f}",
            f"{res.barrier_waits.mean()*1e3:.1f}",
        ])
    emit(format_table(
        ["ranks", "sustained img/s (median)", "68% CI", "% of ideal",
         "mean barrier wait ms"],
        table,
        title="Section VI methodology - event-simulated run statistics"))
    # Error bars exist and the straggler penalty grows with scale.
    for ranks, res in rows:
        st = res.sustained()
        assert st.err_plus > 0 or st.err_minus > 0
    waits = [res.barrier_waits.mean() for _, res in rows]
    assert waits[-1] > waits[0]


def test_efficiency_tracks_analytic_model(benchmark, emit):
    def run():
        cfg = TrainingRunConfig(
            ranks=384, steps=300, compute_time_s=COMPUTE_S,
            compute_jitter=0.02, allreduce_time_s=0.09,
            overlap_fraction=0.9, batch_per_rank=2, seed=1)
        return simulate_training_run(cfg)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    eff = res.efficiency(COMPUTE_S)
    emit(f"Event simulation at 384 ranks: efficiency {eff*100:.1f}% "
         f"(analytic model at this scale: ~92-94%)")
    assert 0.85 < eff < 1.0
