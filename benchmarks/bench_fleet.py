"""Fleet serving: consistent-hash sharding vs least-loaded routing.

The claim under test: sharding the tile-key space across replicas with a
consistent-hash ring turns N small caches into one N-times-larger
effective cache — under the same diurnal+burst replay, sharded routing
holds a higher warm-tile hit rate than least-loaded routing (where every
replica redundantly caches the same popular keys), and a scale-out event
remaps only ~1/N of the key space instead of going fleet-wide cold.

Everything runs in virtual time on the discrete-event fleet, so the
gated metrics are *exactly* deterministic: the same seed produces the
same admissions, scale decisions, and hit counts on any host.  The gated
drill is therefore fixed-size across profiles (a quick-profile CI run
gates cleanly against a full-profile baseline); only the ungated
wall-clock context scales with the profile.
"""
import time

from repro.resilience import FaultPlan
from repro.serve import (FleetConfig, FleetServer, ReplayConfig,
                         replay_workload, summarize_fleet)
from repro.serve.fleet import AutoscalerConfig
from repro.perf import format_table

# Fixed-size gated drill: ~60k requests over two cells with a mid-run
# burst and one replica kill — big enough for steady-state hit rates,
# small enough for the perf gate (a few seconds of wall time).
GATE_REQUESTS = 60_000
GATE_DURATION_S = 375.0
GATE_SEED = 0
CELLS = ("east", "west")
BURSTS = ((130.0, 60.0, 2.5),)
KILL_PLAN = "rank_fail@170:rank=0"


def fleet_drill(sharded: bool, requests: int = GATE_REQUESTS,
                duration_s: float = GATE_DURATION_S, seed: int = GATE_SEED,
                plan: str = KILL_PLAN):
    """One seeded replay through the fleet; returns the FleetReport."""
    replay_cfg = ReplayConfig(
        num_requests=requests, duration_s=duration_s, cells=CELLS,
        bursts=BURSTS, snapshot_pool=5000, windows=4, seed=seed)
    fleet_cfg = FleetConfig(
        cells=CELLS, initial_replicas=2, cache_budget_bytes=2 << 20,
        sharded=sharded,
        autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=8))
    fault = FaultPlan.parse(plan, seed=seed) if plan else None
    server = FleetServer(fleet_cfg, plan=fault)
    replay = replay_workload(replay_cfg)
    result = server.run(replay)
    return summarize_fleet(result, server, replay)


def _worst_grow_remap(report) -> float:
    """Max over grow events of remap_fraction x replicas_after (~1 ideal)."""
    worst = 0.0
    for e in report.scale_events:
        if e.kind == "grow" and e.replicas_after > 1:
            worst = max(worst, e.remap_fraction * e.replicas_after)
    return worst


def test_sharding_beats_least_loaded(benchmark, emit):
    def run():
        return {mode: fleet_drill(sharded=(mode == "sharded"))
                for mode in ("sharded", "least-loaded")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode, report in results.items():
        rows.append([mode, f"{report.served}", f"{report.shed}",
                     f"{report.hit_rate * 100:.1f}",
                     f"{report.spilled}",
                     f"{len(report.scale_events)}"])
    sharded = results["sharded"]
    flat = results["least-loaded"]
    ratio = sharded.hit_rate / flat.hit_rate if flat.hit_rate else 0.0
    emit(format_table(
        ["routing", "served", "shed", "hit %", "spilled", "scale events"],
        rows,
        title=f"Fleet routing - {GATE_REQUESTS} requests, 2 cells, "
              f"burst + kill (sharded/flat hit ratio {ratio:.3f})"))
    for report in results.values():
        # The fleet invariant: an admitted request is never lost, even
        # with a mid-burst replica kill in the schedule.
        assert report.lost_admitted == 0
        assert report.failed == 0
    # Sharded routing must not trail the least-loaded baseline.
    assert ratio >= 1.0, f"sharded hit rate only {ratio:.3f}x of flat"
    # Consistent hashing: a grow remaps ~1/N of keys, bounded by 1.5/N.
    assert _worst_grow_remap(sharded) <= 1.5


def collect(profile: str = "quick"):
    """Machine-readable metrics for the ``fleet`` suite.

    Gated metrics are virtual-time ratios from the fixed-size drill —
    byte-deterministic across hosts and profiles.  Wall-clock replay
    throughput rides along ungated (a machine property); the ``full``
    profile times the million-request replay, other profiles the gated
    drill itself (logged, so the cap is never silent).
    """
    from runner import Metric

    sharded = fleet_drill(sharded=True)
    flat = fleet_drill(sharded=False)
    hit_ratio = sharded.hit_rate / flat.hit_rate if flat.hit_rate else 0.0

    wall_requests = 1_000_000 if profile == "full" else GATE_REQUESTS
    t0 = time.perf_counter()
    wall_report = fleet_drill(
        sharded=True, requests=wall_requests,
        duration_s=GATE_DURATION_S * wall_requests / GATE_REQUESTS)
    wall_s = time.perf_counter() - t0
    return [
        Metric(name="fleet.sharded_vs_unsharded_hit", value=hit_ratio,
               unit="x", higher_is_better=True, gate=True, tolerance=0.10,
               note="warm-tile hit-rate ratio, hash-ring vs least-loaded "
                    "routing; virtual-time deterministic"),
        Metric(name="fleet.spillover_vs_shed",
               value=sharded.spillover_vs_shed, unit="",
               higher_is_better=True, gate=True, tolerance=0.25,
               note="overload absorbed by cross-cell spillover instead "
                    "of refused; virtual-time deterministic"),
        Metric(name="fleet.grow_remap_x_replicas",
               value=_worst_grow_remap(sharded), unit="",
               higher_is_better=False, gate=True, tolerance=0.35,
               note="worst grow-event remap fraction x replica count "
                    "(1.0 = ideal consistent hashing, >1.5 = churn)"),
        Metric(name="fleet.sharded_hit_rate", value=sharded.hit_rate,
               unit="", higher_is_better=True, gate=False),
        Metric(name="fleet.unsharded_hit_rate", value=flat.hit_rate,
               unit="", higher_is_better=True, gate=False),
        Metric(name="fleet.replay_wall_rps",
               value=wall_requests / wall_s if wall_s > 0 else 0.0,
               unit="req/s", higher_is_better=True, gate=False,
               note=f"virtual requests replayed per wall second "
                    f"({wall_requests} requests, "
                    f"served {wall_report.served})"),
    ]
