"""Command-line interface."""
import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "deeplabv3+" in out and "tiramisu" in out

    def test_fig4_custom(self, capsys):
        assert main(["fig4", "--network", "tiramisu_4ch", "--system",
                     "piz_daint", "--precision", "fp32", "--lag", "0"]) == 0
        out = capsys.readouterr().out
        assert "piz_daint" in out
        assert "eff %" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        assert "global" in capsys.readouterr().out

    def test_flops(self, capsys):
        assert main(["flops"]) == 0
        assert "TF/sample" in capsys.readouterr().out

    def test_staging(self, capsys):
        assert main(["staging", "--nodes", "256"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out and "distributed" in out

    def test_control_plane(self, capsys):
        assert main(["control-plane", "--ranks", "128", "--tensors", "20"]) == 0
        out = capsys.readouterr().out
        assert "centralized" in out
        assert "orders identical: True" in out

    def test_train_tiny(self, capsys):
        assert main(["train", "--samples", "8", "--epochs", "1",
                     "--grid", "16"]) == 0
        out = capsys.readouterr().out
        assert "validation mean IoU" in out

    def test_trace_writes_artifacts(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace_out"
        assert main(["trace", "--samples", "4", "--steps", "2",
                     "--grid", "16", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "per-step throughput: median" in printed
        assert "central 68%" in printed
        doc = json.loads((out / "trace.json").read_text())
        complete = [r for r in doc["traceEvents"] if r.get("ph") == "X"]
        span_cats = {r["cat"] for r in complete}
        # Spans from at least trainer, io, and comm in one trace.
        assert {"trainer", "io", "comm"} <= span_cats
        assert all(r["ts"] >= 0 and r["dur"] > 0 for r in complete)
        metrics = (out / "metrics.txt").read_text()
        assert "trainer.step_time_s" in metrics
        assert "per-step throughput: median" in metrics
        assert (out / "telemetry.jsonl").exists()

    def test_faults_drill_recovers(self, capsys, tmp_path):
        import json

        out = tmp_path / "faults_out"
        # The ISSUE acceptance drill: 8 ranks, one rank death at step 2,
        # two injected read faults.  Exit 0 asserts the faulty run finished
        # and recovered to within tolerance of the fault-free baseline.
        assert main(["faults",
                     "--plan", "rank_fail@2:rank=1;read_fault@1;read_fault@4",
                     "--ranks", "8", "--steps", "6", "--samples", "16",
                     "--grid", "16", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "world size" in printed and "8 -> 7" in printed
        assert "elastic recoveries" in printed
        assert "recovery OK" in printed
        doc = json.loads((out / "trace.json").read_text())
        cats = {r.get("cat") for r in doc["traceEvents"]}
        assert "resilience" in cats
        names = {r.get("name") for r in doc["traceEvents"]}
        assert "elastic_recovery" in names and "fault_injected" in names
        assert (out / "ckpts").exists()
        assert (out / "metrics.txt").exists()

    def test_campaign_drill_restarts_and_drains(self, capsys, tmp_path):
        import json

        out = tmp_path / "campaign_out"
        # The ISSUE acceptance drill: a seeded 3-user campaign with one
        # mid-run kill; the killed job must restart from its checkpoint on
        # fewer nodes and the whole campaign must drain to DONE.
        assert main(["campaign", "--users", "3", "--jobs", "12",
                     "--plan", "rank_fail@1:rank=0", "--json",
                     "--out", str(out)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["all_done"] is True
        assert doc["by_terminal_state"] == {"DONE": 12}
        assert doc["lost_jobs"] == []
        assert doc["injected"]["rank_fail"] == 1
        assert doc["restarts"] == 1
        (resumed,) = doc["resumed"].values()
        assert resumed["resume_step"] > 0
        assert resumed["nodes_after"] == resumed["nodes_before"] - 1
        assert doc["fair_share_error"] <= 0.25
        assert 0 < doc["utilization"] <= 1
        # Persisted artifacts: JSONL log, report, trace, real checkpoints.
        assert (out / "campaign.jsonl").exists()
        assert json.loads((out / "report.json").read_text()) == doc
        trace = json.loads((out / "trace.json").read_text())
        names = {r.get("name") for r in trace["traceEvents"]}
        assert {"stage_in", "job_run", "job_restart"} <= names
        assert list(out.glob("jobs/*/ckpts/*.npz"))

    def test_campaign_drill_is_deterministic(self, capsys):
        import json

        argv = ["campaign", "--users", "2", "--jobs", "6", "--json",
                "--plan", "rank_fail@1:rank=0", "--seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert json.loads(first)["all_done"] is True

    def test_campaign_text_report(self, capsys):
        assert main(["campaign", "--users", "2", "--jobs", "4"]) == 0
        printed = capsys.readouterr().out
        assert "Campaign drill" in printed
        assert "fair-share error" in printed
        assert "campaign OK" in printed

    def test_campaign_rejects_bad_args(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--users", "0"])

    def test_trace_json_mode_merges_serve_and_matches_messages(self, capsys,
                                                               tmp_path):
        import json

        out = tmp_path / "trace_out"
        assert main(["trace", "--samples", "8", "--steps", "2",
                     "--grid", "16", "--ranks", "2", "--serve-requests", "8",
                     "--json", "--out", str(out)]) == 0
        doc = json.loads(capsys.readouterr().out)
        # Every simmpi message on a clean run pairs its send with its recv.
        msgs = doc["messages"]
        assert msgs["total"] > 0
        assert msgs["matched"] == msgs["total"]
        assert msgs["unmatched"] == 0 and msgs["dropped"] == 0
        # Serve spans merged into the same trace as the training run.
        assert doc["components"].get("serve", 0) > 0
        assert doc["components"]["comm.msg"] == 2 * msgs["total"]
        # Per-step attribution partitions each step's elapsed time.
        for step in doc["steps"]:
            parts = (step["compute_s"] + step["comm_s"] + step["io_s"]
                     + step["stall_s"])
            assert parts == pytest.approx(step["total_s"], rel=1e-6)
        assert set(doc["phase_summary"]) == {"compute", "comm", "io",
                                             "stall"}

    def test_health_drill_names_straggler_and_resolves(self, capsys,
                                                       tmp_path):
        import json

        out = tmp_path / "health_out"
        assert main(["health", "--ranks", "4", "--steps", "8",
                     "--samples", "16", "--grid", "16",
                     "--json", "--out", str(out)]) == 0
        doc = json.loads(capsys.readouterr().out)
        # The ISSUE acceptance drill: the injected straggler (rank 3 in the
        # default plan) is named, and at least one rule fired and resolved.
        assert doc["straggler_rank"] == 3
        assert doc["alerts_fired"] >= 1
        assert doc["alerts_resolved"] >= 1
        states = {a["state"] for a in doc["health"]["alerts"]}
        assert "resolved" in states
        assert (out / "trace.json").exists()

    def test_health_text_dashboard(self, capsys, tmp_path):
        out = tmp_path / "health_out"
        assert main(["health", "--ranks", "4", "--steps", "8",
                     "--samples", "16", "--grid", "16",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "rules:" in printed
        assert "rank_imbalance" in printed
        assert "straggler" in printed

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--network", "alexnet"])


SCRATCH_RPR001 = """\
def sync(world, rank, value):
    if rank == 0:
        world.broadcast(value, root=0)
    return value
"""


class TestLintCli:
    """The ISSUE acceptance demo: a collective under ``if rank == 0:`` in a
    scratch file must surface as RPR001 with file/line/rule in both
    formats, and the exit code is the CI gate."""

    def test_rpr001_text_output(self, capsys, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(SCRATCH_RPR001)
        assert main(["lint", str(scratch)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "scratch.py:3" in out
        assert "broadcast" in out and "deadlock" in out

    def test_rpr001_json_output(self, capsys, tmp_path):
        import json

        scratch = tmp_path / "scratch.py"
        scratch.write_text(SCRATCH_RPR001)
        assert main(["lint", "--format", "json", str(scratch)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "RPR001"
        assert finding["path"].endswith("scratch.py")
        assert finding["line"] == 3
        assert doc["summary"]["new_by_rule"] == {"RPR001": 1}

    def test_clean_file_exits_zero(self, capsys, tmp_path):
        scratch = tmp_path / "clean.py"
        scratch.write_text("def add(a, b):\n    return a + b\n")
        assert main(["lint", str(scratch)]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_update_baseline_then_gate(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "legacy.py"
        bad.write_text("import numpy as np\ny = np.random.rand(3)\n")
        assert main(["lint", "--update-baseline", str(bad)]) == 0
        capsys.readouterr()
        assert main(["lint", str(bad)]) == 0    # baselined
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_fix_rewrites_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    risky()\nexcept:\n    pass\n")
        main(["lint", "--fix", str(bad)])
        assert "except Exception:" in bad.read_text()

    def test_rules_catalog(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                        "RPR006", "RPR007"):
            assert rule_id in out

    def test_prune_baseline_drops_fixed_debt(self, capsys, tmp_path,
                                             monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "legacy.py"
        bad.write_text("import numpy as np\ny = np.random.rand(3)\n")
        assert main(["lint", "--update-baseline", str(bad)]) == 0
        capsys.readouterr()
        bad.write_text("import numpy as np\n"
                       "y = np.random.default_rng(0).random(3)\n")
        assert main(["lint", "--prune-baseline", str(bad)]) == 0
        out = capsys.readouterr().out
        assert "baseline pruned: 1 stale entry removed" in out
        doc = json.loads((tmp_path / ".repro-lint-baseline.json").read_text())
        assert doc["entries"] == []


class TestServeCli:
    """The serving drill end-to-end through the CLI entry point."""

    def test_serve_table_output(self, capsys):
        assert main(["serve", "--requests", "12", "--rate", "500",
                     "--replicas", "2", "--service-ms", "0.5",
                     "--channels", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Serving drill" in out
        assert "lost admitted" in out
        assert "p50/p99" in out
        assert "cache hit rate" in out

    def test_serve_json_fault_run_loses_nothing(self, capsys, tmp_path):
        import json

        assert main(["serve", "--requests", "16", "--rate", "1000",
                     "--replicas", "2", "--service-ms", "0.5",
                     "--channels", "2", "--seed", "2",
                     "--plan", "rank_fail@1:rank=1",
                     "--json", "--out", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["offered"] == 16
        assert doc["lost_admitted"] == 0
        assert doc["replica_failures"] == 1
        assert doc["alive_replicas"] == [0]
        assert (tmp_path / "trace.json").exists()

    def test_serve_overload_sheds(self, capsys):
        assert main(["serve", "--requests", "64", "--rate", "50000",
                     "--replicas", "1", "--service-ms", "2.0",
                     "--max-depth", "4", "--channels", "2",
                     "--json"]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["shed"] > 0
        assert doc["shed_by_reason"].get("queue_full", 0) > 0
        assert doc["lost_admitted"] == 0

    def test_serve_validates_arguments(self):
        with pytest.raises(SystemExit):
            main(["serve", "--requests", "0"])

    def test_serve_json_valid_on_total_loss(self, capsys):
        # Regression: killing the only replica used to short-circuit the
        # JSON emitter (falsy empty TileCache + an escaping ReproError),
        # so automation got a traceback instead of a document.  The shed
        # / lost-request failure path must still print valid JSON.
        import json

        code = main(["serve", "--requests", "16", "--rate", "1000",
                     "--replicas", "1", "--service-ms", "0.5",
                     "--channels", "2", "--seed", "3",
                     "--plan", "rank_fail@0:rank=0", "--json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["alive_replicas"] == []
        assert doc["cache"] is not None
        assert "hit_rate" in doc["cache"]


class TestFleetCli:
    """The ``repro fleet`` drill end-to-end through the CLI."""

    FAST = ["--requests", "4000", "--duration", "60", "--replicas", "2",
            "--max-replicas", "6", "--bursts", "20:10:3", "--seed", "4"]

    def test_fleet_table_output(self, capsys):
        assert main(["fleet", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "Fleet drill" in out
        assert "lost admitted" in out
        assert "east" in out and "west" in out

    def test_fleet_json_burst_and_kill(self, capsys, tmp_path):
        import json

        assert main(["fleet", *self.FAST,
                     "--plan", "rank_fail@25:rank=0",
                     "--json", "--out", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["offered"] == 4000
        assert doc["lost_admitted"] == 0
        assert doc["failed"] == 0
        kinds = [e["kind"] for e in doc["scale_events"]]
        assert "kill" in kinds
        # The replica loss fires a health alert that later resolves.
        assert doc["alerts_resolved"] >= 1
        assert (tmp_path / "trace.json").exists()
        report = json.loads((tmp_path / "fleet_report.json").read_text())
        assert report["offered"] == doc["offered"]

    def test_fleet_is_deterministic(self, capsys):
        import json

        docs = []
        for _ in range(2):
            assert main(["fleet", *self.FAST, "--json"]) == 0
            docs.append(json.loads(capsys.readouterr().out))
        assert docs[0] == docs[1]

    def test_fleet_validates_arguments(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--requests", "0"])
        with pytest.raises(SystemExit):
            main(["fleet", "--bursts", "nonsense"])
