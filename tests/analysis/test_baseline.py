"""Baseline: legacy findings don't gate, new ones do; content-keyed matching."""
import json
import textwrap

from repro.analysis import Baseline, run_lint

LEGACY = """\
    import numpy as np

    def half(x):
        return x.astype(np.float16)
    """


def write(tmp_path, name, source):
    p = tmp_path / name
    p.write_text(textwrap.dedent(source))
    return p


class TestRoundTrip:
    def test_update_then_clean_run(self, tmp_path):
        write(tmp_path, "legacy.py", LEGACY)
        baseline = tmp_path / ".repro-lint-baseline.json"
        first = run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                         update_baseline=True)
        assert baseline.exists()
        assert first.exit_code == 0 and first.baselined_count == 1
        second = run_lint([tmp_path], root=tmp_path, baseline_path=baseline)
        assert second.exit_code == 0
        assert second.baselined_count == 1 and second.new_findings == []

    def test_new_finding_still_gates(self, tmp_path):
        write(tmp_path, "legacy.py", LEGACY)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        write(tmp_path, "fresh.py", """\
            import numpy as np
            y = np.random.rand(3)
            """)
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline)
        assert report.exit_code == 1
        assert [f.rule_id for f in report.new_findings] == ["RPR003"]
        assert report.baselined_count == 1

    def test_line_shift_keeps_matching(self, tmp_path):
        p = write(tmp_path, "legacy.py", LEGACY)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        # Unrelated edit above the finding: line number shifts, text doesn't.
        p.write_text("# a new header comment\n" + p.read_text())
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline)
        assert report.exit_code == 0 and report.baselined_count == 1

    def test_changed_offending_line_stops_matching(self, tmp_path):
        p = write(tmp_path, "legacy.py", LEGACY)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        p.write_text(p.read_text().replace("x.astype(np.float16)",
                                           "np.float16(x + 1)"))
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline)
        assert report.exit_code == 1        # the human should look again

    def test_multiset_semantics(self, tmp_path):
        # Two identical offending lines need two baseline entries.
        write(tmp_path, "legacy.py", """\
            import numpy as np

            def half(x):
                return x.astype(np.float16)

            def half2(x):
                return x.astype(np.float16)
            """)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        doc = json.loads(baseline.read_text())
        assert len(doc["entries"]) == 2
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline)
        assert report.exit_code == 0 and report.baselined_count == 2


class TestPrune:
    def test_round_trip_drops_fixed_entries_only(self, tmp_path):
        # Two findings accepted; one gets fixed; prune removes exactly it.
        p = write(tmp_path, "legacy.py", """\
            import numpy as np
            y = np.random.rand(3)

            def half(x):
                return x.astype(np.float16)
            """)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        assert len(json.loads(baseline.read_text())["entries"]) == 2
        p.write_text(p.read_text().replace(
            "y = np.random.rand(3)",
            "y = np.random.default_rng(0).random(3)"))
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                          prune_baseline=True)
        assert report.exit_code == 0
        assert [e["rule"] for e in report.pruned_entries] == ["RPR003"]
        doc = json.loads(baseline.read_text())
        assert [e["rule"] for e in doc["entries"]] == ["RPR006"]
        # Round trip: a second prune is a no-op and still gates clean.
        again = run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                         prune_baseline=True)
        assert again.pruned_entries == []
        assert again.exit_code == 0 and again.baselined_count == 1

    def test_prune_never_accepts_new_findings(self, tmp_path):
        write(tmp_path, "legacy.py", LEGACY)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        write(tmp_path, "fresh.py", """\
            import numpy as np
            y = np.random.rand(3)
            """)
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                          prune_baseline=True)
        assert report.exit_code == 1        # new finding still gates
        assert report.pruned_entries == []
        doc = json.loads(baseline.read_text())
        assert [e["rule"] for e in doc["entries"]] == ["RPR006"]

    def test_prune_is_multiset_aware(self, tmp_path):
        p = write(tmp_path, "legacy.py", """\
            import numpy as np

            def half(x):
                return x.astype(np.float16)

            def half2(x):
                return x.astype(np.float16)
            """)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        # Fix one of the two identical lines: exactly one entry survives.
        p.write_text(p.read_text().replace(
            "def half2(x):\n    return x.astype(np.float16)",
            "def half2(x):\n    return x"))
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                          prune_baseline=True)
        assert len(report.pruned_entries) == 1
        assert len(json.loads(baseline.read_text())["entries"]) == 1
        assert report.exit_code == 0

    def test_prune_untouched_file_when_nothing_stale(self, tmp_path):
        write(tmp_path, "legacy.py", LEGACY)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        before = baseline.read_text()
        report = run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                          prune_baseline=True)
        assert report.pruned_entries == []
        assert baseline.read_text() == before

    def test_prune_api_returns_kept_and_removed(self):
        entries = [
            {"rule": "RPR006", "path": "a.py", "line": 3,
             "text": "return x.astype(np.float16)"},
            {"rule": "RPR003", "path": "a.py", "line": 1,
             "text": "y = np.random.rand(3)"},
        ]
        baseline = Baseline(entries)
        kept, removed = baseline.prune([])
        assert len(kept) == 0 and removed == entries


class TestBaselineFile:
    def test_missing_file_is_empty(self, tmp_path):
        b = Baseline.load(tmp_path / "absent.json")
        assert len(b) == 0

    def test_suppressed_findings_never_enter_baseline(self, tmp_path):
        write(tmp_path, "a.py", """\
            import numpy as np
            y = np.random.rand(3)  # repro-lint: disable=RPR003
            """)
        baseline = tmp_path / ".repro-lint-baseline.json"
        run_lint([tmp_path], root=tmp_path, baseline_path=baseline,
                 update_baseline=True)
        doc = json.loads(baseline.read_text())
        assert doc["entries"] == []
