"""Project symbol table: module naming, imports, call-ref resolution."""
import ast
import textwrap

from repro.analysis.callgraph import (
    SymbolTable,
    call_ref,
    module_name,
    parse_module,
    qname,
    split_qname,
)


def module(rel_path, source):
    return parse_module(rel_path, ast.parse(textwrap.dedent(source)))


def table(*mods):
    symtab = SymbolTable()
    for m in mods:
        symtab.add(m)
    return symtab


class TestModuleName:
    def test_src_prefix_stripped(self):
        assert module_name("src/repro/comm/api.py") == "repro.comm.api"

    def test_package_init_is_the_package(self):
        assert module_name("src/repro/comm/__init__.py") == "repro.comm"

    def test_plain_path(self):
        assert module_name("pkg/util.py") == "pkg.util"

    def test_qname_roundtrip(self):
        q = qname("pkg.mod", "Cls.meth")
        assert split_qname(q) == ("pkg.mod", "Cls.meth")


class TestParseModule:
    def test_functions_classes_and_methods_indexed(self):
        info = module("pkg/m.py", """\
            def top():
                pass

            class C:
                def meth(self):
                    pass
            """)
        assert info.defs == {"top": "func", "C": "class", "C.meth": "func"}
        assert set(info.functions) == {"pkg.m:top", "pkg.m:C.meth"}
        assert info.functions["pkg.m:C.meth"].cls == "C"

    def test_nested_defs_not_addressable(self):
        info = module("pkg/m.py", """\
            def outer():
                def inner():
                    pass
                return inner
            """)
        assert set(info.functions) == {"pkg.m:outer"}

    def test_imports_absolute_and_aliased(self):
        info = module("pkg/m.py", """\
            import numpy as np
            import os.path
            from pkg.util import helper as h
            """)
        assert info.imports["np"] == "numpy"
        assert info.imports["os"] == "os"
        assert info.imports["h"] == "pkg.util.helper"

    def test_relative_import_from_module(self):
        info = module("src/repro/comm/engine.py", """\
            from .api import allreduce
            from ..core import trainer
            """)
        assert info.imports["allreduce"] == "repro.comm.api.allreduce"
        assert info.imports["trainer"] == "repro.core.trainer"

    def test_relative_import_from_package_init(self):
        info = module("src/repro/comm/__init__.py", """\
            from .api import allreduce
            """)
        assert info.imports["allreduce"] == "repro.comm.api.allreduce"


class TestCallRef:
    def refs(self, source):
        tree = ast.parse(textwrap.dedent(source))
        return [call_ref(n) for n in ast.walk(tree)
                if isinstance(n, ast.Call)]

    def test_name_and_attribute_chains(self):
        assert self.refs("f()\n") == ["f"]
        assert self.refs("a.b.c()\n") == ["a.b.c"]

    def test_non_name_shaped_is_none(self):
        assert self.refs("fns[0]()\n") == [None]


class TestSymbolTableResolve:
    def test_local_function(self):
        util = module("pkg/util.py", """\
            def helper():
                pass

            def caller():
                helper()
            """)
        symtab = table(util)
        assert symtab.resolve("helper", "pkg.util") == "pkg.util:helper"

    def test_from_import_resolves_across_modules(self):
        util = module("pkg/util.py", "def helper():\n    pass\n")
        main = module("pkg/main.py", """\
            from pkg.util import helper

            def run():
                helper()
            """)
        symtab = table(util, main)
        assert symtab.resolve("helper", "pkg.main") == "pkg.util:helper"

    def test_module_import_attribute_call(self):
        util = module("pkg/util.py", "def helper():\n    pass\n")
        main = module("pkg/main.py", """\
            import pkg.util as u

            def run():
                u.helper()
            """)
        symtab = table(util, main)
        assert symtab.resolve("u.helper", "pkg.main") == "pkg.util:helper"

    def test_self_method_resolves_to_enclosing_class(self):
        m = module("pkg/m.py", """\
            class C:
                def a(self):
                    self.b()

                def b(self):
                    pass
            """)
        symtab = table(m)
        assert symtab.resolve("self.b", "pkg.m", cls="C") == "pkg.m:C.b"

    def test_class_instantiation_resolves_to_init(self):
        m = module("pkg/m.py", """\
            class C:
                def __init__(self):
                    pass
            """)
        main = module("pkg/main.py", """\
            from pkg.m import C

            def run():
                C()
            """)
        symtab = table(m, main)
        assert symtab.resolve("C", "pkg.main") == "pkg.m:C.__init__"

    def test_package_reexport_alias_followed(self):
        api = module("pkg/comm/api.py", "def allreduce():\n    pass\n")
        init = module("pkg/comm/__init__.py",
                      "from .api import allreduce\n")
        main = module("pkg/main.py", """\
            import pkg.comm

            def run():
                pkg.comm.allreduce()
            """)
        symtab = table(api, init, main)
        assert (symtab.resolve("pkg.comm.allreduce", "pkg.main")
                == "pkg.comm.api:allreduce")

    def test_unknown_ref_is_none(self):
        main = module("pkg/main.py", "def run():\n    np.sum([1])\n")
        symtab = table(main)
        assert symtab.resolve("np.sum", "pkg.main") is None
        assert symtab.resolve("", "pkg.main") is None
