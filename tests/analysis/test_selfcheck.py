"""Self-check: the repo lints clean against its own committed baseline.

This is the same invocation the CI ``lint`` job runs; if it fails here,
either fix the new finding, suppress it inline with a reason, or accept
it explicitly via ``repro lint --update-baseline`` (and justify the
baseline diff in review).
"""
import json
from pathlib import Path

from repro.analysis import Baseline, run_lint
from repro.analysis.rules import DEFAULT_RULES

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / ".repro-lint-baseline.json"


class TestSelfCheck:
    def test_repo_lints_clean_against_committed_baseline(self):
        report = run_lint([REPO / "src", REPO / "tests"], root=REPO,
                          baseline_path=BASELINE)
        assert report.parse_errors == []
        offenders = [f"{f.location()} {f.rule_id} {f.message}"
                     for f in report.new_findings]
        assert report.exit_code == 0, "\n".join(offenders)

    def test_committed_baseline_is_current_format(self):
        assert BASELINE.exists()
        doc = json.loads(BASELINE.read_text())
        assert doc["version"] == 1
        baseline = Baseline.load(BASELINE)
        # The legacy debt (raw float16 in the emulation substrate, wall-clock
        # reads in measurement paths) has been burned down to zero; new debt
        # needs an explicit entry plus justification in review.
        assert len(baseline) == 0

    def test_repo_deep_lints_clean(self):
        """The inter-procedural pass (RPR101-RPR104) finds nothing new in
        the repo itself — the same invocation as CI's ``deep-lint`` job."""
        report = run_lint([REPO / "src", REPO / "tests"], root=REPO,
                          baseline_path=BASELINE, deep=True)
        offenders = [f"{f.location()} {f.rule_id} {f.message}"
                     for f in report.new_findings]
        assert report.exit_code == 0, "\n".join(offenders)
        assert report.deep_stats is not None
        assert report.deep_stats["functions"] > 0

    def test_no_stale_baseline_monoculture(self):
        """Every baseline entry still matches a real finding — a stale
        baseline silently grows blind spots."""
        report = run_lint([REPO / "src", REPO / "tests"], root=REPO,
                          baseline_path=BASELINE)
        assert report.baselined_count == len(Baseline.load(BASELINE))

    def test_rule_ids_are_unique_and_well_formed(self):
        ids = [cls.id for cls in DEFAULT_RULES]
        assert len(ids) == len(set(ids))
        assert all(i.startswith("RPR") and len(i) == 6 for i in ids)
