"""Self-check: the repo lints clean against its own committed baseline.

This is the same invocation the CI ``lint`` job runs; if it fails here,
either fix the new finding, suppress it inline with a reason, or accept
it explicitly via ``repro lint --update-baseline`` (and justify the
baseline diff in review).
"""
import json
from pathlib import Path

from repro.analysis import Baseline, run_lint
from repro.analysis.rules import DEFAULT_RULES

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / ".repro-lint-baseline.json"


class TestSelfCheck:
    def test_repo_lints_clean_against_committed_baseline(self):
        report = run_lint([REPO / "src", REPO / "tests"], root=REPO,
                          baseline_path=BASELINE)
        assert report.parse_errors == []
        offenders = [f"{f.location()} {f.rule_id} {f.message}"
                     for f in report.new_findings]
        assert report.exit_code == 0, "\n".join(offenders)

    def test_committed_baseline_is_current_format(self):
        assert BASELINE.exists()
        doc = json.loads(BASELINE.read_text())
        assert doc["version"] == 1
        baseline = Baseline.load(BASELINE)
        # The known legacy debt: raw float16 in the emulation substrate,
        # plus the wall-clock reads in real-time measurement paths.
        assert len(baseline) > 0
        assert {e["rule"] for e in baseline.entries} == {"RPR006", "RPR008"}

    def test_no_stale_baseline_monoculture(self):
        """Every baseline entry still matches a real finding — a stale
        baseline silently grows blind spots."""
        report = run_lint([REPO / "src", REPO / "tests"], root=REPO,
                          baseline_path=BASELINE)
        assert report.baselined_count == len(Baseline.load(BASELINE))

    def test_rule_ids_are_unique_and_well_formed(self):
        ids = [cls.id for cls in DEFAULT_RULES]
        assert len(ids) == len(set(ids))
        assert all(i.startswith("RPR") and len(i) == 6 for i in ids)
