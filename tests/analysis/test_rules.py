"""Per-rule unit tests: one true positive and one true negative each.

Fixtures are inline source strings (never files in this repo, so the
self-check over ``tests/`` stays clean: string literals are data to the
analyzer, not code).
"""
import textwrap

from repro.analysis import FileContext
from repro.analysis.findings import apply_edits
from repro.analysis.rules import (BroadExcept, CollectiveInRankBranch,
                                  DeprecatedAllreduceApi,
                                  DeprecatedCheckpointApi,
                                  Float16OutsidePrecision, MutableDefaultArg,
                                  RawTimeCall, UnseededRng)


def check(rule, source, rel_path="src/repro/scratch.py"):
    ctx = FileContext(rel_path, textwrap.dedent(source))
    return rule.check(ctx)


class TestCollectiveInRankBranch:
    def test_broadcast_under_rank_zero_flagged(self):
        findings = check(CollectiveInRankBranch(), """\
            def sync(world, rank, value):
                if rank == 0:
                    world.broadcast(value, root=0)
                return value
            """)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule_id == "RPR001" and f.severity == "error"
        assert f.line == 3 and "broadcast" in f.message

    def test_else_branch_and_attribute_rank_flagged(self):
        findings = check(CollectiveInRankBranch(), """\
            def sync(self, grads):
                if self.rank != 0:
                    pass
                else:
                    self.world.allreduce_gradients(grads)
            """)
        assert [f.line for f in findings] == [5]

    def test_collective_outside_branch_clean(self):
        findings = check(CollectiveInRankBranch(), """\
            def sync(world, rank, value):
                out = world.broadcast(value, root=0)
                if rank == 0:
                    print("root got", out)
                return out
            """)
        assert findings == []

    def test_nested_def_resets_condition(self):
        # The branch guards the *definition*; every rank can still call it.
        findings = check(CollectiveInRankBranch(), """\
            def build(world, rank):
                if rank == 0:
                    def sync(v):
                        return world.broadcast(v)
                    return sync
            """)
        assert findings == []

    def test_point_to_point_under_rank_branch_clean(self):
        # send/recv under a rank conditional is the normal MPI idiom.
        findings = check(CollectiveInRankBranch(), """\
            def relay(world, rank, v):
                if rank == 0:
                    world.send(v, 0, 1)
                else:
                    v = world.recv(rank, 0)
                return v
            """)
        assert findings == []


class TestBroadExcept:
    def test_bare_except_flagged_with_autofix(self):
        findings = check(BroadExcept(), """\
            try:
                risky()
            except:
                pass
            """)
        assert len(findings) == 1
        assert findings[0].rule_id == "RPR002"
        assert findings[0].fixable

    def test_except_exception_flagged(self):
        findings = check(BroadExcept(), """\
            try:
                risky()
            except Exception:
                log()
            """)
        assert len(findings) == 1 and not findings[0].fixable

    def test_tuple_containing_exception_flagged(self):
        findings = check(BroadExcept(), """\
            try:
                risky()
            except (ValueError, Exception) as exc:
                log(exc)
            """)
        assert len(findings) == 1

    def test_concrete_exception_clean(self):
        findings = check(BroadExcept(), """\
            try:
                risky()
            except ValueError:
                pass
            """)
        assert findings == []

    def test_reraising_handler_exempt(self):
        findings = check(BroadExcept(), """\
            try:
                risky()
            except Exception:
                cleanup()
                raise
            """)
        assert findings == []


class TestUnseededRng:
    def test_np_random_legacy_call_flagged(self):
        findings = check(UnseededRng(), """\
            import numpy as np
            x = np.random.rand(4)
            """)
        assert len(findings) == 1 and findings[0].rule_id == "RPR003"

    def test_unseeded_default_rng_flagged(self):
        findings = check(UnseededRng(), """\
            import numpy as np
            rng = np.random.default_rng()
            """)
        assert len(findings) == 1 and "seed" in findings[0].message

    def test_stdlib_random_module_flagged(self):
        findings = check(UnseededRng(), """\
            import random
            random.shuffle(items)
            """)
        assert len(findings) == 1

    def test_from_import_flagged(self):
        findings = check(UnseededRng(), """\
            from random import choice
            pick = choice(options)
            """)
        assert len(findings) == 1

    def test_seeded_apis_clean(self):
        findings = check(UnseededRng(), """\
            import random
            import numpy as np
            rng = np.random.default_rng(17)
            r = random.Random(17)
            x = rng.normal(size=4)
            y = r.random()
            """)
        assert findings == []

    def test_unimported_random_name_clean(self):
        # A local object that happens to be called "random" is not the module.
        findings = check(UnseededRng(), """\
            def roll(random):
                return random.choice([1, 2])
            """)
        assert findings == []


class TestDeprecatedCheckpointApi:
    def test_free_function_call_flagged(self):
        findings = check(DeprecatedCheckpointApi(), """\
            from repro.core import save_checkpoint
            save_checkpoint(trainer, "ckpt.npz")
            """)
        assert len(findings) == 1
        assert "CheckpointManager.save" in findings[0].message

    def test_manager_api_clean(self):
        findings = check(DeprecatedCheckpointApi(), """\
            from repro.core import CheckpointManager
            CheckpointManager("ckpts").save(trainer)
            """)
        assert findings == []

    def test_defining_module_exempt(self):
        findings = check(DeprecatedCheckpointApi(), """\
            def save_checkpoint(trainer, path):
                return save_checkpoint(trainer, path)
            """, rel_path="src/repro/core/checkpoint.py")
        assert findings == []


class TestMutableDefaultArg:
    def test_list_default_flagged_with_autofix(self):
        findings = check(MutableDefaultArg(), """\
            def acc(x, out=[]):
                out.append(x)
                return out
            """)
        assert len(findings) == 1
        assert findings[0].rule_id == "RPR005" and findings[0].fixable

    def test_kwonly_dict_default_flagged(self):
        findings = check(MutableDefaultArg(), """\
            def f(*, table={}):
                return table
            """)
        assert len(findings) == 1

    def test_constructor_call_default_flagged(self):
        findings = check(MutableDefaultArg(), """\
            def f(out=list()):
                return out
            """)
        assert len(findings) == 1

    def test_nonempty_literal_flagged_but_not_autofixed(self):
        findings = check(MutableDefaultArg(), """\
            def f(out=[1, 2]):
                return out
            """)
        assert len(findings) == 1 and not findings[0].fixable

    def test_immutable_defaults_clean(self):
        findings = check(MutableDefaultArg(), """\
            def f(a=None, b=0, c=(), d="x", e=frozenset()):
                return a, b, c, d, e
            """)
        assert findings == []


class TestFloat16OutsidePrecision:
    def test_np_float16_flagged(self):
        findings = check(Float16OutsidePrecision(), """\
            import numpy as np
            y = x.astype(np.float16)
            """, rel_path="src/repro/core/helper.py")
        assert len(findings) == 1 and findings[0].rule_id == "RPR006"

    def test_dtype_string_flagged(self):
        findings = check(Float16OutsidePrecision(), """\
            y = x.astype("float16")
            """, rel_path="src/repro/core/helper.py")
        assert len(findings) == 1

    def test_precision_layer_exempt(self):
        findings = check(Float16OutsidePrecision(), """\
            import numpy as np
            HALF = np.float16
            """, rel_path="src/repro/framework/precision.py")
        assert findings == []

    def test_float32_clean(self):
        findings = check(Float16OutsidePrecision(), """\
            import numpy as np
            y = x.astype(np.float32)
            """, rel_path="src/repro/core/helper.py")
        assert findings == []


class TestRawTimeCall:
    def test_module_attribute_call_flagged(self):
        findings = check(RawTimeCall(), """\
            import time

            def measure():
                t0 = time.perf_counter()
                return time.perf_counter() - t0
            """)
        assert len(findings) == 2
        assert all(f.rule_id == "RPR008" for f in findings)
        assert "telemetry session clock" in findings[0].message

    def test_aliased_import_and_from_import_flagged(self):
        findings = check(RawTimeCall(), """\
            import time as _t
            from time import perf_counter as pc

            def stamp():
                return _t.monotonic() + pc()
            """)
        assert len(findings) == 2

    def test_clock_module_exempt(self):
        findings = check(RawTimeCall(), """\
            import time

            def now():
                return time.perf_counter()
            """, rel_path="src/repro/telemetry/clock.py")
        assert findings == []

    def test_uninstrumented_paths_clean(self):
        source = """\
            import time

            def now():
                return time.time()
            """
        assert check(RawTimeCall(), source, rel_path="tools/bench.py") == []
        assert check(RawTimeCall(), source,
                     rel_path="tests/perf/test_x.py") == []

    def test_non_clock_time_functions_clean(self):
        findings = check(RawTimeCall(), """\
            import time

            def nap():
                time.sleep(0.1)
                return time.strftime("%H:%M")
            """)
        assert findings == []

    def test_unimported_time_name_clean(self):
        findings = check(RawTimeCall(), """\
            def use(time):
                return time.perf_counter()   # some other object named time
            """)
        assert findings == []


class TestDeprecatedAllreduceApi:
    def test_free_function_call_flagged_and_autofixed(self):
        source = textwrap.dedent("""\
            from repro.comm import World, ring_allreduce

            def exchange(w, bufs):
                return ring_allreduce(w, bufs, average=True)
            """)
        findings = DeprecatedAllreduceApi().check(
            FileContext("src/repro/scratch.py", source))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule_id == "RPR009" and "strategy" in f.message
        fixed, applied = apply_edits(source, list(f.edits))
        assert applied == 2
        assert 'allreduce(w, bufs, average=True, strategy="ring")' in fixed
        assert "ring_allreduce(w, bufs" not in fixed

    def test_trailing_comma_call_autofixed(self):
        source = textwrap.dedent("""\
            out = naive_allreduce(
                w,
                bufs,
            )
            """)
        findings = check(DeprecatedAllreduceApi(), source)
        fixed, _ = apply_edits(source, list(findings[0].edits))
        assert 'strategy="naive"' in fixed
        assert ",," not in fixed

    def test_attribute_call_autofixed_through_module_alias(self):
        source = textwrap.dedent("""\
            import repro.comm.reducer as red

            def exchange(w, bufs):
                return red.tree_allreduce(w, bufs)
            """)
        findings = check(DeprecatedAllreduceApi(), source)
        assert len(findings) == 1
        fixed, applied = apply_edits(source, list(findings[0].edits))
        assert applied == 2
        assert 'red.allreduce(w, bufs, strategy="tree")' in fixed

    def test_attribute_call_on_unknown_module_flagged_without_edit(self):
        # ``red`` is not an import of a repro.comm module here, so the
        # attribute target cannot be proven to expose the facade.
        findings = check(DeprecatedAllreduceApi(), """\
            import redlib as red

            def exchange(w, bufs):
                return red.tree_allreduce(w, bufs)
            """)
        assert len(findings) == 1
        assert findings[0].edits == ()

    def test_positional_knobs_flagged_without_edit(self):
        # A positional gpus_per_node would land in the facade's
        # keyword-only section; the rule must not auto-break the call.
        findings = check(DeprecatedAllreduceApi(), """\
            out = hierarchical_allreduce(w, bufs, 6, 4)
            """)
        assert len(findings) == 1
        assert findings[0].edits == ()

    def test_keyword_knobs_autofixed(self):
        source = "out = hierarchical_allreduce(w, bufs, gpus_per_node=6)\n"
        findings = check(DeprecatedAllreduceApi(), source)
        fixed, _ = apply_edits(source, list(findings[0].edits))
        assert fixed == ('out = allreduce(w, bufs, gpus_per_node=6, '
                         'strategy="hierarchical")\n')

    def test_facade_and_wrapper_modules_exempt(self):
        source = "out = ring_allreduce(w, bufs)\n"
        for path in ("src/repro/comm/reducer.py", "src/repro/comm/api.py"):
            assert check(DeprecatedAllreduceApi(), source,
                         rel_path=path) == []

    def test_facade_call_clean(self):
        findings = check(DeprecatedAllreduceApi(), """\
            from repro.comm import allreduce

            def exchange(w, bufs):
                return allreduce(w, bufs, strategy="ring")
            """)
        assert findings == []
