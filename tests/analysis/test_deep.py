"""Inter-procedural rules RPR101–RPR104 against a fixture package.

Every positive here crosses at least two call-graph edges — the whole
point of the deep pass is catching what the single-file walker cannot.
The fixture is written under ``tmp_path`` and analyzed with ``root=``
the fixture directory so module names resolve (``pkg.main`` etc.).
"""
import textwrap

import pytest

from repro.analysis import ProjectAnalyzer, run_lint

COMM = """\
    def allreduce(buf):
        return buf

    def helper(world, buf):
        return allreduce(buf)

    def mid(world, buf):
        return helper(world, buf)
    """

MATHS = """\
    def make_half(x):
        return x.astype("float16")  # repro-lint: disable=RPR006

    def total(x):
        return sum(x)

    def reduce_stats(x):
        return total(x)
    """

RNG = """\
    import numpy as np

    def make_rng():
        return np.random.default_rng()  # repro-lint: disable=RPR003

    def get_rng():
        return make_rng()

    def seeded_rng():
        return np.random.default_rng(1234)
    """


def build_fixture(tmp_path, main_source):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "comm.py").write_text(textwrap.dedent(COMM))
    (pkg / "maths.py").write_text(textwrap.dedent(MATHS))
    (pkg / "rng.py").write_text(textwrap.dedent(RNG))
    (pkg / "main.py").write_text(textwrap.dedent(main_source))
    return tmp_path


def deep_findings(tmp_path, main_source):
    root = build_fixture(tmp_path, main_source)
    report = run_lint([root], root=root, deep=True)
    return [f for f in report.findings if f.rule_id.startswith("RPR1")]


class TestCollectiveBehindRankBranch:
    def test_two_deep_chain_under_rank_branch_fires(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                if world.rank == 0:
                    mid(world, buf)
            """)
        assert [f.rule_id for f in found] == ["RPR101"]
        f = found[0]
        assert f.path == "pkg/main.py" and f.line == 5
        # The witness chain names every hop down to the collective.
        assert "comm.mid -> comm.helper -> allreduce()" in f.message

    def test_unguarded_chain_is_silent(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                mid(world, buf)
            """)
        assert found == []

    def test_both_arms_flagged_like_rpr001(self, tmp_path):
        # RPR101 mirrors RPR001: every arm of a rank branch is flagged,
        # symmetric or not (hoisting above the branch is always the fix).
        found = deep_findings(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                if world.rank == 0:
                    mid(world, buf)
                else:
                    mid(world, buf)
            """)
        assert [f.rule_id for f in found] == ["RPR101", "RPR101"]

    def test_nested_def_resets_rank_scope(self, tmp_path):
        # The branch guards the *definition*, not the call — same scope
        # reset as RPR001.
        found = deep_findings(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                if world.rank == 0:
                    def later():
                        return mid(world, buf)
                    return later
            """)
        assert found == []


class TestFp16IntoAccumulation:
    def test_fp16_return_value_reaches_remote_sum(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.maths import make_half, reduce_stats

            def run(x):
                h = make_half(x)
                return reduce_stats(h)
            """)
        assert [f.rule_id for f in found] == ["RPR102"]
        f = found[0]
        assert f.path == "pkg/main.py" and "reduce_stats" in f.message

    def test_untainted_value_is_silent(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.maths import reduce_stats

            def run(x):
                return reduce_stats(x)
            """)
        assert found == []


class TestUnseededRngFlow:
    def test_unseeded_rng_via_two_returns_fires_at_draw(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.rng import get_rng

            def run():
                r = get_rng()
                return r.normal()
            """)
        assert [f.rule_id for f in found] == ["RPR103"]
        assert found[0].path == "pkg/main.py"

    def test_seeded_rng_is_silent(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.rng import seeded_rng

            def run():
                r = seeded_rng()
                return r.normal()
            """)
        assert found == []


class TestSwallowedErrorOnCollectivePath:
    def test_broad_handler_around_two_deep_collective_fires(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                try:
                    mid(world, buf)
                except Exception:
                    pass
            """)
        assert [f.rule_id for f in found] == ["RPR104"]
        assert "collective" in found[0].message

    def test_reraising_handler_is_silent(self, tmp_path):
        found = deep_findings(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                try:
                    mid(world, buf)
                except Exception:
                    raise
            """)
        assert found == []

    def test_broad_handler_without_collective_is_silent(self, tmp_path):
        found = deep_findings(tmp_path, """\
            def run(x):
                try:
                    print(x)
                except Exception:
                    pass
            """)
        assert found == []


class TestSuppressionAndBaselineReuse:
    def test_pragma_suppresses_deep_finding(self, tmp_path):
        root = build_fixture(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                if world.rank == 0:
                    mid(world, buf)  # repro-lint: disable=RPR101
            """)
        report = run_lint([root], root=root, deep=True)
        assert report.exit_code == 0
        suppressed = [f for f in report.findings if f.suppressed]
        assert "RPR101" in {f.rule_id for f in suppressed}
        assert not [f for f in report.new_findings
                    if f.rule_id == "RPR101"]


class TestProjectCache:
    def run(self, root, cache):
        analyzer = ProjectAnalyzer(root=root, cache_path=cache)
        files = sorted((root / "pkg").glob("*.py"))
        return analyzer.run(files)

    @pytest.fixture
    def fixture_root(self, tmp_path):
        return build_fixture(tmp_path, """\
            from pkg.comm import mid

            def run(world, buf):
                if world.rank == 0:
                    mid(world, buf)
            """)

    def test_warm_rerun_reanalyzes_nothing(self, fixture_root, tmp_path):
        cache = tmp_path / "deep-cache.json"
        r1 = self.run(fixture_root, cache)
        assert r1.reanalyzed == 5 and r1.cache_hits == 0
        assert [f.rule_id for f in r1.findings] == ["RPR101"]
        r2 = self.run(fixture_root, cache)
        assert r2.reanalyzed == 0 and r2.cache_hits == 5
        # Even the global fixpoint phase is skipped on a digest match …
        assert r2.findings_cached
        # … and cached findings deserialize identically.
        assert [f.as_dict() for f in r2.findings] == [
            f.as_dict() for f in r1.findings]

    def test_touching_one_leaf_reanalyzes_exactly_one_file(
            self, fixture_root, tmp_path):
        cache = tmp_path / "deep-cache.json"
        self.run(fixture_root, cache)
        rng = fixture_root / "pkg" / "rng.py"
        rng.write_text(rng.read_text() + "\n# touched\nX = 1\n")
        r2 = self.run(fixture_root, cache)
        assert r2.reanalyzed == 1 and r2.cache_hits == 4
        assert not r2.findings_cached
        assert [f.rule_id for f in r2.findings] == ["RPR101"]

    def test_deep_stats_surface_in_walker_report(self, fixture_root,
                                                 tmp_path):
        report = run_lint([fixture_root], root=fixture_root, deep=True,
                          deep_cache=tmp_path / "deep-cache.json")
        assert report.deep_stats is not None
        assert report.deep_stats["functions"] >= 10
        assert report.deep_stats["files"] == 5
