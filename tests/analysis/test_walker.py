"""Walker behavior: suppressions, stale-disable detection, cache, telemetry."""
import json
import textwrap

from repro.analysis import Analyzer, run_lint
from repro.analysis.walker import parse_suppressions
from repro.telemetry import Telemetry, activate

BROAD = textwrap.dedent("""\
    try:
        risky()
    except Exception:
        pass
    """)


def write(tmp_path, name, source):
    p = tmp_path / name
    p.write_text(textwrap.dedent(source))
    return p


class TestSuppressions:
    def test_line_disable_suppresses(self, tmp_path):
        write(tmp_path, "a.py", """\
            try:
                risky()
            except Exception:  # repro-lint: disable=RPR002
                pass
            """)
        report = run_lint([tmp_path], root=tmp_path)
        assert report.exit_code == 0
        assert report.suppressed_count == 1

    def test_disable_for_other_rule_does_not_suppress(self, tmp_path):
        write(tmp_path, "a.py", """\
            try:
                risky()
            except Exception:  # repro-lint: disable=RPR001
                pass
            """)
        report = run_lint([tmp_path], root=tmp_path)
        # The RPR002 finding survives AND the RPR001 pragma is stale.
        rules = {f.rule_id for f in report.new_findings}
        assert rules == {"RPR002", "RPR007"}

    def test_file_level_disable(self, tmp_path):
        write(tmp_path, "a.py", """\
            # repro-lint: disable-file=RPR002
            try:
                risky()
            except Exception:
                pass

            try:
                risky()
            except:
                pass
            """)
        report = run_lint([tmp_path], root=tmp_path)
        assert report.exit_code == 0 and report.suppressed_count == 2

    def test_multiple_ids_one_comment(self, tmp_path):
        write(tmp_path, "a.py", """\
            def f(out=[]):  # repro-lint: disable=RPR005,RPR003
                out.append(save_checkpoint)
                return out
            """)
        report = run_lint([tmp_path], root=tmp_path)
        # RPR005 suppressed; the unused RPR003 half does NOT make the
        # pragma stale (one of its IDs fired).
        assert report.suppressed_count == 1
        assert [f.rule_id for f in report.new_findings] == []

    def test_pragma_inside_string_is_not_a_suppression(self, tmp_path):
        write(tmp_path, "a.py", '''\
            FIXTURE = """
            x = 1  # repro-lint: disable=RPR002
            """
            try:
                risky()
            except Exception:
                pass
            ''')
        report = run_lint([tmp_path], root=tmp_path)
        assert [f.rule_id for f in report.new_findings] == ["RPR002"]

    def test_stale_disable_detected_with_removal_fix(self, tmp_path):
        write(tmp_path, "a.py", """\
            x = 1  # repro-lint: disable=RPR006
            """)
        report = run_lint([tmp_path], root=tmp_path)
        assert len(report.new_findings) == 1
        stale = report.new_findings[0]
        assert stale.rule_id == "RPR007" and stale.fixable
        assert "matches no finding" in stale.message

    def test_pragma_on_multiline_call_continuation_suppresses(self, tmp_path):
        """A finding spans its whole node (``end_line``); a pragma on any
        line of a multi-line call — not just the opening line — matches."""
        write(tmp_path, "a.py", """\
            out = ring_allreduce(
                w,
                bufs,  # repro-lint: disable=RPR009
            )
            """)
        report = run_lint([tmp_path], root=tmp_path)
        assert report.exit_code == 0
        assert report.suppressed_count == 1

    def test_pragma_past_the_call_span_does_not_suppress(self, tmp_path):
        write(tmp_path, "a.py", """\
            out = ring_allreduce(
                w,
                bufs,
            )
            x = 1  # repro-lint: disable=RPR009
            """)
        report = run_lint([tmp_path], root=tmp_path)
        rules = sorted(f.rule_id for f in report.new_findings)
        # The finding survives and the out-of-range pragma is stale.
        assert rules == ["RPR007", "RPR009"]

    def test_parse_suppressions_coordinates(self):
        sups = parse_suppressions(
            "x = 1  # repro-lint: disable=RPR001, RPR002\n")
        assert len(sups) == 1
        assert sups[0].rule_ids == ("RPR001", "RPR002")
        assert sups[0].scope == "line" and sups[0].line == 1


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        write(proj, "a.py", BROAD)
        cache = tmp_path / "cache.json"
        r1 = run_lint([proj], root=proj, cache_path=cache)
        assert r1.cache_hits == 0 and cache.exists()
        r2 = run_lint([proj], root=proj, cache_path=cache)
        assert r2.cache_hits == 1
        assert [f.as_dict() for f in r2.findings] == [
            f.as_dict() for f in r1.findings]

    def test_edited_file_invalidates_its_entry(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        write(proj, "a.py", BROAD)
        write(proj, "b.py", "x = 1\n")
        cache = tmp_path / "cache.json"
        run_lint([proj], root=proj, cache_path=cache)
        write(proj, "a.py", "x = 2\n")      # fixed: finding disappears
        r2 = run_lint([proj], root=proj, cache_path=cache)
        assert r2.cache_hits == 1           # only b.py reused
        assert r2.findings == []

    def test_rule_set_change_invalidates_whole_cache(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        write(proj, "a.py", BROAD)
        cache = tmp_path / "cache.json"
        run_lint([proj], root=proj, cache_path=cache)
        doc = json.loads(cache.read_text())
        doc["signature"] = "different"
        cache.write_text(json.dumps(doc))
        analyzer = Analyzer(root=proj, cache_path=cache)
        report = analyzer.run([proj])
        assert report.cache_hits == 0

    def test_rule_version_bump_invalidates_whole_cache(self, tmp_path):
        """Bumping one rule's ``version`` changes the rule-set signature,
        so every cached per-file result is discarded — cached findings
        computed under the old rule semantics must never be replayed."""
        from repro.analysis.rules import BroadExcept, default_rules

        proj = tmp_path / "proj"
        proj.mkdir()
        write(proj, "a.py", BROAD)
        write(proj, "b.py", "x = 1\n")
        cache = tmp_path / "cache.json"

        class BumpedSwallow(BroadExcept):
            version = BroadExcept.version + 1

        rules = default_rules()
        analyzer = Analyzer(rules=rules, root=proj, cache_path=cache)
        analyzer.run([proj])
        bumped = [BumpedSwallow() if isinstance(r, BroadExcept)
                  else r for r in rules]
        analyzer2 = Analyzer(rules=bumped, root=proj, cache_path=cache)
        report = analyzer2.run([proj])
        assert report.cache_hits == 0
        # Same rule set again: everything is reused.
        analyzer3 = Analyzer(rules=bumped, root=proj, cache_path=cache)
        assert analyzer3.run([proj]).cache_hits == 2

    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        proj = tmp_path / "proj"
        (proj / "__pycache__").mkdir(parents=True)
        (proj / ".hidden").mkdir()
        write(proj / "__pycache__", "junk.py", BROAD)
        write(proj / ".hidden", "junk.py", BROAD)
        write(proj, "ok.py", "x = 1\n")
        report = run_lint([proj], root=proj)
        assert report.files == 1 and report.findings == []


class TestParseErrors:
    def test_syntax_error_reported_not_fatal(self, tmp_path):
        write(tmp_path, "bad.py", "def broken(:\n")
        write(tmp_path, "good.py", BROAD)
        report = run_lint([tmp_path], root=tmp_path)
        assert len(report.parse_errors) == 1
        assert "bad.py" in report.parse_errors[0]
        assert [f.rule_id for f in report.new_findings] == ["RPR002"]


class TestTelemetry:
    def test_per_rule_counters_emitted(self, tmp_path):
        write(tmp_path, "a.py", BROAD)
        write(tmp_path, "b.py", "def f(out=[]):\n    return out\n")
        tel = Telemetry()
        with activate(tel):
            run_lint([tmp_path], root=tmp_path)
        m = tel.metrics
        assert m.counter("analysis.files_scanned").value == 2
        assert m.counter("analysis.findings", rule="RPR002").value == 1
        assert m.counter("analysis.findings", rule="RPR005").value == 1
        assert m.counter("analysis.new_findings", rule="RPR005").value == 1
