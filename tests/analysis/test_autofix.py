"""Autofix: edits repair the source, and fixing twice changes nothing."""
import textwrap

from repro.analysis import apply_edits, run_lint
from repro.analysis.findings import Edit


def write(tmp_path, name, source):
    p = tmp_path / name
    p.write_text(textwrap.dedent(source))
    return p


class TestApplyEdits:
    def test_edits_applied_back_to_front(self):
        src = "aaa bbb ccc\n"
        out, n = apply_edits(src, [Edit(1, 0, 1, 3, "X"),
                                   Edit(1, 8, 1, 11, "Z")])
        assert out == "X bbb Z\n" and n == 2

    def test_overlapping_edit_skipped(self):
        src = "abcdef\n"
        out, n = apply_edits(src, [Edit(1, 0, 1, 4, "X"),
                                   Edit(1, 2, 1, 6, "Y")])
        assert out == "Xef\n" and n == 1

    def test_insertions_at_same_point_both_apply(self):
        out, n = apply_edits("ab\n", [Edit(1, 1, 1, 1, "X"),
                                      Edit(1, 1, 1, 1, "Y")])
        assert out == "aXYb\n" and n == 2


class TestMutableDefaultFix:
    def test_guard_inserted_after_docstring(self, tmp_path):
        p = write(tmp_path, "a.py", '''\
            def acc(x, out=[]):
                """Collect values."""
                out.append(x)
                return out
            ''')
        report = run_lint([tmp_path], root=tmp_path, fix=True)
        assert report.fixed == 1 and report.new_findings == []
        fixed = p.read_text()
        assert "out=None" in fixed
        lines = fixed.splitlines()
        assert lines[1].strip().startswith('"""')    # docstring still first
        assert lines[2] == "    if out is None:"
        assert lines[3] == "        out = []"

    def test_one_line_def_flagged_but_untouched(self, tmp_path):
        p = write(tmp_path, "a.py", "def f(out=[]): return out\n")
        before = p.read_text()
        report = run_lint([tmp_path], root=tmp_path, fix=True)
        assert p.read_text() == before
        assert [f.rule_id for f in report.new_findings] == ["RPR005"]


class TestBareExceptFix:
    def test_bare_becomes_exception(self, tmp_path):
        p = write(tmp_path, "a.py", """\
            try:
                risky()
            except:
                pass
            """)
        report = run_lint([tmp_path], root=tmp_path, fix=True)
        assert "except Exception:" in p.read_text()
        # Still broad, so still flagged — but now visibly, not silently.
        assert [f.rule_id for f in report.new_findings] == ["RPR002"]


class TestStaleSuppressionFix:
    def test_stale_comment_removed(self, tmp_path):
        p = write(tmp_path, "a.py", """\
            x = 1  # repro-lint: disable=RPR006
            y = 2
            """)
        report = run_lint([tmp_path], root=tmp_path, fix=True)
        assert report.fixed == 1 and report.exit_code == 0
        assert p.read_text() == "x = 1\ny = 2\n"

    def test_live_suppression_kept(self, tmp_path):
        p = write(tmp_path, "a.py", """\
            def f(out=[]):  # repro-lint: disable=RPR005
                return out
            """)
        before = p.read_text()
        report = run_lint([tmp_path], root=tmp_path, fix=True)
        assert p.read_text() == before and report.exit_code == 0


class TestIdempotence:
    def test_fix_twice_yields_no_diff(self, tmp_path):
        p = write(tmp_path, "a.py", '''\
            def acc(x, out=[], table={}):
                """Doc."""
                try:
                    out.append(table[x])
                except:
                    pass
                return out

            z = 1  # repro-lint: disable=RPR001
            ''')
        run_lint([tmp_path], root=tmp_path, fix=True)
        after_first = p.read_text()
        second = run_lint([tmp_path], root=tmp_path, fix=True)
        assert p.read_text() == after_first
        assert second.fixed == 0
