"""CFG construction and the abstract-interpretation framework."""
import ast
import textwrap

from repro.analysis.flow import (
    ReachingDefinitions,
    TaintAnalysis,
    TaintPolicy,
    build_cfg,
    replay,
    solve_forward,
)


def fn(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return next(n for n in tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))


class TestCfg:
    def test_straight_line_is_one_block_plus_exit(self):
        cfg = build_cfg(fn("""\
            def f(x):
                y = x + 1
                return y
            """))
        reachable = cfg.reachable()
        assert cfg.exit in reachable
        body_blocks = [b for b in reachable if cfg.blocks[b].stmts]
        assert len(body_blocks) == 1

    def test_if_else_diamond(self):
        cfg = build_cfg(fn("""\
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """))
        branch = next(b for b in cfg.reachable()
                      if cfg.blocks[b].stmts
                      and isinstance(cfg.blocks[b].stmts[-1], ast.If))
        assert len(cfg.blocks[branch].succs) == 2

    def test_while_has_back_edge(self):
        cfg = build_cfg(fn("""\
            def f(n):
                i = 0
                while i < n:
                    i += 1
                return i
            """))
        header = next(b for b in cfg.reachable()
                      if cfg.blocks[b].stmts
                      and isinstance(cfg.blocks[b].stmts[-1], ast.While))
        # Some reachable block flows back to the loop header.
        assert any(header in cfg.blocks[b].succs
                   for b in cfg.reachable() if b != header
                   and not any(isinstance(s, ast.While)
                               for s in cfg.blocks[b].stmts))

    def test_return_ends_path(self):
        cfg = build_cfg(fn("""\
            def f(c):
                if c:
                    return 1
                return 2
            """))
        for b in cfg.reachable():
            stmts = cfg.blocks[b].stmts
            if stmts and isinstance(stmts[-1], ast.Return):
                assert cfg.blocks[b].succs == [cfg.exit]

    def test_try_body_reaches_handler(self):
        cfg = build_cfg(fn("""\
            def f():
                try:
                    risky()
                except ValueError:
                    recover()
                return 0
            """))
        # Both the call and the handler statement are reachable.
        calls = [s for b in cfg.reachable() for s in cfg.blocks[b].stmts
                 if isinstance(s, ast.Expr)]
        assert len(calls) == 2


class TestReachingDefinitions:
    def solve(self, source):
        f = fn(source)
        cfg = build_cfg(f)
        rd = ReachingDefinitions()
        return rd, cfg, solve_forward(cfg, rd)

    def test_both_branch_defs_reach_the_join(self):
        rd, cfg, states = self.solve("""\
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """)
        assert rd.definitions_at(states, "x") == {3, 5}

    def test_redefinition_kills_upstream_def_in_exit_state(self):
        rd, cfg, states = self.solve("""\
            def f():
                x = 1
                x = 2
                return x
            """)
        assert states[cfg.exit]["x"] == frozenset({3})

    def test_loop_carried_definition(self):
        rd, cfg, states = self.solve("""\
            def f(n):
                i = 0
                for _ in range(n):
                    i = i + 1
                return i
            """)
        # Both the initial and the loop-body definition reach the exit.
        assert states[cfg.exit]["i"] == frozenset({2, 4})


class RecordingPolicy(TaintPolicy):
    """Test policy: ``source()`` is tainted, calls propagate arg labels."""

    def __init__(self):
        self.returns = []

    def call_result(self, node, base_labels, arg_labels, kw_labels):
        if isinstance(node.func, ast.Name) and node.func.id == "source":
            return frozenset({"T"})
        out = frozenset()
        for labels in arg_labels:
            out |= labels
        return out

    def record_return(self, node, labels):
        if self.recording:
            self.returns.append(labels)


class TestTaintAnalysis:
    def run(self, source, entry=None):
        f = fn(source)
        cfg = build_cfg(f)
        policy = RecordingPolicy()
        taint = TaintAnalysis(policy)
        states = solve_forward(cfg, taint, entry_state=entry)
        policy.recording = True
        ret = {}
        for stmt, state in replay(cfg, taint, states):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                ret = dict(state)
        return policy, ret

    def test_taint_flows_through_assignment_chain(self):
        policy, state = self.run("""\
            def f():
                a = source()
                b = a
                c = wrap(b)
                return c
            """)
        assert state["c"] == frozenset({"T"})

    def test_one_tainted_branch_taints_the_join(self):
        policy, state = self.run("""\
            def f(c):
                if c:
                    x = source()
                else:
                    x = 0
                return x
            """)
        assert state["x"] == frozenset({"T"})

    def test_compare_does_not_propagate(self):
        policy, state = self.run("""\
            def f():
                x = source()
                ok = x == 5
                return ok
            """)
        assert state["ok"] == frozenset()

    def test_entry_state_seeds_parameters(self):
        policy, state = self.run("""\
            def f(p):
                y = p + 1
                return y
            """, entry={"p": frozenset({"param:0"})})
        assert state["y"] == frozenset({"param:0"})

    def test_loop_taint_converges(self):
        policy, state = self.run("""\
            def f(n):
                x = 0
                for _ in range(n):
                    x = wrap(x) + source()
                return x
            """)
        assert state["x"] == frozenset({"T"})

    def test_augassign_accumulates(self):
        policy, state = self.run("""\
            def f():
                x = 0
                x += source()
                return x
            """)
        assert state["x"] == frozenset({"T"})
