"""Staging strategies: paper time windows and functional protocol."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.climate import PAPER_DATASET
from repro.comm import World
from repro.hpc import PIZ_DAINT, SUMMIT
from repro.io import assign_disjoint_pieces, plan_staging, stage_distributed

FILE_BYTES = PAPER_DATASET.sample_bytes
N_FILES = PAPER_DATASET.num_samples


class TestPlanStaging:
    def test_naive_1024_nodes_paper_window(self):
        # "required 10-20 minutes to complete".
        r = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 1024, strategy="naive")
        assert 10 * 60 < r.total_time_s < 20 * 60
        assert 20 < r.replication_factor < 27  # "23 nodes on average"

    def test_distributed_1024_under_3_minutes(self):
        r = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 1024, strategy="distributed")
        assert r.total_time_s < 3 * 60

    def test_distributed_4500_under_7_minutes(self):
        r = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 4500, strategy="distributed")
        assert r.total_time_s < 7 * 60

    def test_distributed_reads_each_file_once(self):
        r = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 1024, strategy="distributed")
        assert r.replication_factor == 1.0
        assert r.fs_read_bytes == pytest.approx(N_FILES * FILE_BYTES)

    def test_naive_hammers_filesystem(self):
        naive = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 1024, strategy="naive")
        dist = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 1024, strategy="distributed")
        assert naive.fs_read_bytes > 20 * dist.fs_read_bytes
        assert naive.total_time_s > 4 * dist.total_time_s

    def test_redistribution_over_fabric_not_fs(self):
        r = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 1024, strategy="distributed")
        assert r.redistribution_bytes > 0
        # Fabric moves the bulk far faster than the FS could.
        assert r.redistribution_time_s < r.fs_read_time_s * 10

    def test_single_thread_slower(self):
        fast = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 256,
                            strategy="distributed", reader_threads=8)
        slow = plan_staging(SUMMIT, N_FILES, FILE_BYTES, 256,
                            strategy="distributed", reader_threads=1)
        assert slow.fs_read_time_s >= fast.fs_read_time_s

    def test_piz_daint_supported(self):
        r = plan_staging(PIZ_DAINT, N_FILES, FILE_BYTES, 2048,
                         strategy="distributed", files_per_node=250)
        assert r.total_time_s > 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            plan_staging(SUMMIT, N_FILES, FILE_BYTES, 8, strategy="teleport")

    def test_node_count_validated(self):
        with pytest.raises(ValueError):
            plan_staging(SUMMIT, N_FILES, FILE_BYTES, 10**6)


class TestDisjointPieces:
    def test_partition_properties(self):
        pieces = assign_disjoint_pieces(100, 7)
        merged = np.concatenate(pieces)
        assert len(merged) == 100
        assert len(np.unique(merged)) == 100
        sizes = [len(p) for p in pieces]
        assert max(sizes) - min(sizes) <= 1

    def test_single_rank(self):
        pieces = assign_disjoint_pieces(10, 1)
        np.testing.assert_array_equal(pieces[0], np.arange(10))

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            assign_disjoint_pieces(10, 0)


class TestFunctionalStaging:
    def test_every_rank_gets_its_files(self):
        w = World(6)
        staged, stats = stage_distributed(w, num_files=120, files_per_rank=30,
                                          seed=3)
        assert stats["consistent"]
        for s in staged:
            assert len(s) == 30

    def test_accounting(self):
        w = World(4)
        _, stats = stage_distributed(w, num_files=50, files_per_rank=20, seed=0)
        assert stats["messages"] == 2 * stats["total_requests"]
        assert stats["distinct_files_requested"] <= 50

    @given(st.integers(2, 8), st.integers(5, 25), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_consistency(self, ranks, files_per_rank, seed):
        num_files = files_per_rank * 4
        w = World(ranks)
        staged, stats = stage_distributed(w, num_files, files_per_rank, seed)
        assert stats["consistent"]
