"""Input pipeline and reader models (Sections V-A1/V-A2)."""
import numpy as np
import pytest

from repro.climate import Grid, SampleFileStore
from repro.io import (
    PipelineSimulator,
    PrefetchPipeline,
    ThreadedReader,
    pipeline_throughput,
    scaled_read_bandwidth,
)


class TestScaledReadBandwidth:
    def test_paper_67x_at_8_threads(self):
        one = scaled_read_bandwidth(1, 1.79e9)
        eight = scaled_read_bandwidth(8, 1.79e9)
        assert one == 1.79e9
        assert eight / one == pytest.approx(6.7, rel=0.01)

    def test_cap_applies(self):
        assert scaled_read_bandwidth(64, 1.79e9, cap=12e9) == 12e9

    def test_monotone_in_threads(self):
        bws = [scaled_read_bandwidth(t, 1e9) for t in range(1, 16)]
        assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            scaled_read_bandwidth(0, 1e9)


class TestPipelineThroughput:
    def test_gpu_bound(self):
        # Fast producers: consumer rate wins.
        assert pipeline_throughput(0.5, 0.1, 4) == pytest.approx(2.0)

    def test_io_bound(self):
        assert pipeline_throughput(0.1, 1.0, 2) == pytest.approx(2.0)

    def test_serialized_workers_dont_scale(self):
        # The HDF5-lock regime: 8 threads produce like 1.
        t8 = pipeline_throughput(0.1, 1.0, 8, serialized_workers=True)
        t1 = pipeline_throughput(0.1, 1.0, 1)
        assert t8 == t1

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_throughput(0.0, 1.0, 1)


class TestPipelineSimulator:
    def test_prefetch_hides_input_time(self):
        # 4 workers x 1.2s prep feed a 0.5s step: input is fully hidden.
        stats = PipelineSimulator(0.5, 1.2, workers=4, prefetch_depth=8).run(60)
        assert stats.achieved_step_time_s == pytest.approx(0.5, rel=0.15)
        assert stats.gpu_idle_fraction < 0.15

    def test_no_prefetch_serializes(self):
        # The paper's starting point: input ops in the training graph.
        stats = PipelineSimulator(0.5, 1.2, workers=4, prefetch_depth=0).run(20)
        assert stats.achieved_step_time_s == pytest.approx(1.7)

    def test_serialized_workers_bottleneck(self):
        # HDF5 lock: 4 "workers" produce at the single-worker rate.
        stats = PipelineSimulator(0.5, 1.2, workers=4, prefetch_depth=8,
                                  serialized_workers=True).run(40)
        assert stats.achieved_step_time_s >= 1.1

    def test_underprovisioned_workers(self):
        # 2 workers x 1.2s = 0.6s/sample > 0.5s step: input-bound.
        stats = PipelineSimulator(0.5, 1.2, workers=2, prefetch_depth=8).run(60)
        assert stats.achieved_step_time_s == pytest.approx(0.6, rel=0.1)

    def test_paper_fix_four_processes_match_training(self):
        # "With 4 background processes ... the input pipeline can more
        # closely match the training throughput".
        serial = PipelineSimulator(0.5, 1.2, 4, 8, serialized_workers=True).run(40)
        procs = PipelineSimulator(0.5, 1.2, 4, 8, serialized_workers=False).run(40)
        assert procs.samples_per_second > 1.8 * serial.samples_per_second

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineSimulator(0.0, 1.0)
        with pytest.raises(ValueError):
            PipelineSimulator(1.0, 1.0, workers=0)
        with pytest.raises(ValueError):
            PipelineSimulator(1.0, 1.0).run(0)


@pytest.fixture()
def store(tmp_path):
    s = SampleFileStore(tmp_path / "ds")
    for i in range(12):
        img = np.full((2, 8, 8), float(i), dtype=np.float32)
        s.write_sample(i, img, np.zeros((8, 8), dtype=np.int8))
    return s


class TestThreadedReader:
    def test_reads_everything(self, store):
        reader = ThreadedReader(store, num_workers=3, shared_gate=False)
        samples, result = reader.read_indices(list(range(12)))
        assert result.samples == 12
        assert all(s is not None for s in samples)

    def test_shared_gate_serializes(self, store):
        # A deliberately slow read holds the gate, so the HDF5-style shared
        # gate forces serialization while private gates allow overlap.
        import time

        class SlowStore:
            def read_sample(self, index, gate):
                with gate:
                    time.sleep(0.01)
                return index

        hold = 0.01
        n = 8
        shared = ThreadedReader(SlowStore(), num_workers=4, shared_gate=True)
        _, r_shared = shared.read_indices(list(range(n)))
        private = ThreadedReader(SlowStore(), num_workers=4, shared_gate=False)
        _, r_private = private.read_indices(list(range(n)))
        # Shared: n reads serialize -> ~n * hold.  Private: 4-way overlap.
        assert r_shared.wall_time_s >= n * hold * 0.9
        assert r_private.wall_time_s < r_shared.wall_time_s
        assert r_shared.gate_wait_s > r_private.gate_wait_s

    def test_invalid_workers(self, store):
        with pytest.raises(ValueError):
            ThreadedReader(store, num_workers=0)


class TestPrefetchPipeline:
    def test_yields_in_order(self, store):
        pipe = PrefetchPipeline(lambda i: store.read_sample(i)[0][0, 0, 0],
                                indices=list(range(12)), num_workers=3,
                                prefetch_depth=4)
        out = list(pipe)
        assert out == [float(i) for i in range(12)]

    def test_single_worker(self, store):
        pipe = PrefetchPipeline(lambda i: i * 2, indices=[0, 1, 2],
                                num_workers=1, prefetch_depth=2)
        assert list(pipe) == [0, 2, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchPipeline(lambda i: i, [0], num_workers=0)
