"""Hardened staging: StagingError surfacing, retries, lossy-wire recovery."""
import numpy as np
import pytest

from repro.comm import World
from repro.errors import StagingConfigError, StagingError, StagingReadError
from repro.io.staging import stage_distributed, stage_files_to_disk
from repro.resilience import FaultInjector, FaultPlan, FaultSpec, RetryPolicy


def make_source(tmp_path, n=6, size=64):
    src = tmp_path / "pfs"
    src.mkdir()
    rng = np.random.default_rng(0)
    for i in range(n):
        data = rng.integers(0, 255, size=size, dtype=np.uint8)
        (src / f"data-{i:04d}.npz").write_bytes(data.tobytes())
    return src


class TestReadErrors:
    def test_unreadable_file_raises_staging_error_with_path(self, tmp_path):
        src = make_source(tmp_path)
        victim = src / "data-0002.npz"
        victim.unlink()
        victim.mkdir()  # read_bytes() on a directory -> OSError
        with pytest.raises(StagingReadError) as info:
            stage_files_to_disk(World(2), src, tmp_path / "local", 3,
                                retry=RetryPolicy(max_attempts=2,
                                                  backoff_base_s=0.0))
        assert info.value.path == victim
        assert str(victim) in str(info.value)

    def test_staging_error_not_raw_oserror(self, tmp_path):
        """The worker wraps the OSError: callers can catch StagingError."""
        src = make_source(tmp_path)
        victim = src / "data-0001.npz"
        victim.unlink()
        victim.mkdir()
        with pytest.raises(StagingError):
            stage_files_to_disk(World(2), src, tmp_path / "local", 3,
                                retry=RetryPolicy(max_attempts=2,
                                                  backoff_base_s=0.0))

    def test_empty_source_is_config_error(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StagingConfigError, match="no data files"):
            stage_files_to_disk(World(2), tmp_path / "empty",
                                tmp_path / "local", 2)


class TestInjectedFaults:
    def test_injected_read_fault_is_retried_and_staging_completes(self, tmp_path):
        src = make_source(tmp_path)
        plan = FaultPlan([FaultSpec("read_fault", step=0, count=2)])
        injector = FaultInjector(plan)
        injector.begin_step(0)
        paths, stats = stage_files_to_disk(
            World(2, fault_injector=injector), src, tmp_path / "local", 3,
            fault_injector=injector,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0))
        assert stats["consistent"]
        assert injector.counts["read_fault"] == 2

    def test_exhausted_retries_surface_staging_error(self, tmp_path):
        src = make_source(tmp_path)
        # More injected faults than the whole run retries: the first file
        # keeps failing until its retry budget is gone.
        plan = FaultPlan([FaultSpec("read_fault", step=0, count=50)])
        injector = FaultInjector(plan)
        injector.begin_step(0)
        with pytest.raises(StagingReadError):
            stage_files_to_disk(
                World(2), src, tmp_path / "local", 3,
                fault_injector=injector,
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0))

    def test_staging_survives_dropped_messages(self, tmp_path):
        src = make_source(tmp_path)
        plan = FaultPlan([FaultSpec("drop_msg", step=0, count=2)])
        injector = FaultInjector(plan)
        injector.begin_step(0)
        world = World(3, fault_injector=injector)
        paths, stats = stage_files_to_disk(world, src, tmp_path / "local", 3)
        assert stats["consistent"]
        assert world.stats.total_dropped == 2

    def test_stage_distributed_survives_drops(self):
        plan = FaultPlan([FaultSpec("drop_msg", step=0, count=3)])
        injector = FaultInjector(plan)
        injector.begin_step(0)
        world = World(4, fault_injector=injector)
        staged, stats = stage_distributed(world, num_files=32,
                                          files_per_rank=8, seed=1)
        assert stats["consistent"]
        assert world.stats.total_dropped == 3

    def test_duplicates_do_not_corrupt_staging(self, tmp_path):
        src = make_source(tmp_path)
        plan = FaultPlan([FaultSpec("dup_msg", step=0, count=3)])
        injector = FaultInjector(plan)
        injector.begin_step(0)
        world = World(3, fault_injector=injector)
        _, stats = stage_files_to_disk(world, src, tmp_path / "local", 3)
        assert stats["consistent"]
        assert world.stats.total_duplicated == 3
