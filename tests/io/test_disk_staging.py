"""Distributed staging with real files on disk."""
import numpy as np
import pytest

from repro.climate import Grid, SampleFileStore, SnapshotSynthesizer, make_labels
from repro.comm import World
from repro.io import stage_files_to_disk

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    root = tmp_path_factory.mktemp("fs") / "src"
    store = SampleFileStore(root)
    synth = SnapshotSynthesizer(GRID)
    for i in range(12):
        snap = synth.generate(i)
        store.write_sample(i, snap.to_array(), make_labels(snap))
    store.write_manifest(GRID, 12)
    return root


class TestDiskStaging:
    def test_every_rank_gets_byte_identical_files(self, source, tmp_path):
        world = World(3)
        staged, stats = stage_files_to_disk(world, source, tmp_path / "dst",
                                            files_per_rank=6, seed=1)
        assert stats["consistent"]
        assert all(len(paths) == 6 for paths in staged)
        for paths in staged:
            for p in paths:
                original = source / p.name
                assert p.read_bytes() == original.read_bytes()

    def test_fs_reads_each_file_once(self, source, tmp_path):
        world = World(4)
        _, stats = stage_files_to_disk(world, source, tmp_path / "d2",
                                       files_per_rank=9, seed=2)
        # 12 distinct files read once from the "file system"; naive would
        # read every rank's want-list independently (36 file reads).
        total_file_bytes = sum((source / f"data-{i:06d}.npz").stat().st_size
                               for i in range(12))
        assert stats["fs_bytes_read"] == total_file_bytes
        assert stats["naive_fs_bytes"] > 2.5 * stats["fs_bytes_read"]

    def test_fabric_carries_the_replication(self, source, tmp_path):
        world = World(3)
        _, stats = stage_files_to_disk(world, source, tmp_path / "d3",
                                       files_per_rank=8, seed=3)
        # Bytes moved over the fabric ~= naive FS volume minus one copy of
        # each wanted-and-owned file.
        assert stats["fabric_bytes"] > 0
        assert stats["fabric_bytes"] < stats["naive_fs_bytes"]

    def test_rank_directories_isolated(self, source, tmp_path):
        world = World(2)
        staged, _ = stage_files_to_disk(world, source, tmp_path / "d4",
                                        files_per_rank=5, seed=4)
        dirs = {p.parent.name for paths in staged for p in paths}
        assert dirs == {"rank-0", "rank-1"}

    def test_staged_samples_load(self, source, tmp_path):
        world = World(2)
        staged, _ = stage_files_to_disk(world, source, tmp_path / "d5",
                                        files_per_rank=4, seed=5)
        with np.load(staged[0][0]) as z:
            assert z["image"].shape == (16,) + GRID.shape
            assert z["labels"].shape == GRID.shape

    def test_empty_source_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="no data files"):
            stage_files_to_disk(World(2), tmp_path / "empty", tmp_path / "d",
                                files_per_rank=2)
