"""Discrete-event engine and machine specs."""
import pytest

from repro.hpc import (
    P100,
    PIZ_DAINT,
    SUMMIT,
    V100,
    EventQueue,
)


class TestEventQueue:
    def test_processes_in_time_order(self):
        ev = EventQueue()
        log = []
        ev.schedule(3.0, lambda: log.append("c"))
        ev.schedule(1.0, lambda: log.append("a"))
        ev.schedule(2.0, lambda: log.append("b"))
        ev.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        ev = EventQueue()
        log = []
        ev.schedule(1.0, lambda: log.append(1))
        ev.schedule(1.0, lambda: log.append(2))
        ev.run()
        assert log == [1, 2]

    def test_nested_scheduling(self):
        ev = EventQueue()
        log = []

        def first():
            log.append(("first", ev.now))
            ev.schedule(2.0, lambda: log.append(("second", ev.now)))

        ev.schedule(1.0, first)
        ev.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_run_until(self):
        ev = EventQueue()
        log = []
        ev.schedule(1.0, lambda: log.append(1))
        ev.schedule(5.0, lambda: log.append(5))
        ev.run(until=2.0)
        assert log == [1]
        assert ev.now == 2.0
        assert ev.pending == 1

    def test_max_events(self):
        ev = EventQueue()
        for i in range(10):
            ev.schedule(i + 1.0, lambda: None)
        ev.run(max_events=3)
        assert ev.processed == 3

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_past_raises(self):
        ev = EventQueue()
        ev.schedule(2.0, lambda: None)
        ev.run()
        with pytest.raises(ValueError):
            ev.schedule_at(1.0, lambda: None)


class TestRunBoundary:
    """Pin run(until=..., max_events=...) edge semantics.

    The campaign service tiles time with back-to-back run(until=...)
    windows; these invariants are what make that safe.
    """

    def test_event_exactly_at_until_is_processed(self):
        ev = EventQueue()
        log = []
        ev.schedule(2.0, lambda: log.append("edge"))
        ev.run(until=2.0)
        assert log == ["edge"]
        assert ev.pending == 0

    def test_zero_delay_at_until_processed_same_run(self):
        # A callback firing at `until` that schedules follow-up work at
        # zero delay must see that work happen inside the same window.
        ev = EventQueue()
        log = []

        def outer():
            log.append("outer")
            ev.schedule(0.0, lambda: log.append("inner"))

        ev.schedule(2.0, outer)
        ev.run(until=2.0)
        assert log == ["outer", "inner"]

    def test_clock_lands_on_until_without_events(self):
        ev = EventQueue()
        ev.schedule(10.0, lambda: None)
        assert ev.run(until=4.0) == 4.0
        assert ev.run(until=8.0) == 8.0
        # Windows tile: the pending event is untouched until its time.
        assert ev.pending == 1
        assert ev.run(until=12.0) == 12.0
        assert ev.pending == 0

    def test_max_events_stop_does_not_jump_clock(self):
        # Stopping early on max_events must NOT advance the clock to
        # `until`: events at or before `until` are still pending, and a
        # clock past them would make the next run move time backwards.
        ev = EventQueue()
        times = []
        for t in (1.0, 2.0, 3.0):
            ev.schedule(t, lambda: times.append(ev.now))
        now = ev.run(until=5.0, max_events=2)
        assert times == [1.0, 2.0]
        assert now == 2.0 and ev.now == 2.0
        assert ev.pending == 1
        # Resuming processes the leftover event at its original time.
        assert ev.run(until=5.0) == 5.0
        assert times == [1.0, 2.0, 3.0]

    def test_max_events_counts_lifetime_not_per_run(self):
        ev = EventQueue()
        for t in (1.0, 2.0, 3.0):
            ev.schedule(t, lambda: None)
        ev.run(max_events=2)
        ev.run(max_events=2)   # budget already exhausted: no-op
        assert ev.processed == 2
        ev.run(max_events=3)
        assert ev.processed == 3


class TestGpuSpecs:
    def test_v100_paper_peaks(self):
        # "each Volta GPU can perform 125 trillion floating-point operations
        # per second" (FP16 Tensor Cores); FP32 is 15.7 TF/s.
        assert V100.fp16_peak == 125e12
        assert V100.fp32_peak == 15.7e12
        assert V100.peak("fp16") == 125e12

    def test_summit_node_peak_750tf(self):
        assert SUMMIT.node.gpus * V100.fp16_peak == 750e12

    def test_summit_full_system(self):
        # 4608 nodes x 6 GPUs = 27648; the paper ran on 4560 nodes = 27360.
        assert SUMMIT.total_gpus == 27648
        assert SUMMIT.peak_flops("fp16", gpus=27360) == pytest.approx(3.42e18)

    def test_piz_daint_single_precision_peak(self):
        # "peak single-precision ... performance of the machine is 50.6 PF/s"
        assert PIZ_DAINT.peak_flops("fp32") == pytest.approx(50.6e15, rel=0.01)

    def test_unknown_precision_raises(self):
        with pytest.raises(ValueError):
            V100.peak("int8")

    def test_p100_memory(self):
        assert P100.mem_bandwidth == 732e9
        assert P100.mem_bytes == 16e9

    def test_filesystem_specs(self):
        assert PIZ_DAINT.filesystem.peak_read_bandwidth == 744e9
        assert PIZ_DAINT.filesystem.effective_read_bandwidth == 112e9
        assert SUMMIT.filesystem.capacity_bytes == 3.0e15

    def test_summit_virtual_ib_devices(self):
        # Dual-rail ConnectX-5 virtualized as 4 devices (Section V-A3).
        assert SUMMIT.node.virtual_network_devices == 4

    def test_measured_read_bandwidths(self):
        # Section V-A1: 1.79 GB/s (1 thread) -> 11.98 GB/s (8 threads).
        assert SUMMIT.node.fs_read_bw_single_thread == 1.79e9
        assert SUMMIT.node.fs_read_bw_multi_thread == 11.98e9
