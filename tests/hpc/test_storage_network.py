"""File-system, local-storage, fabric, and topology models."""
import numpy as np
import pytest

from repro.climate import PAPER_DATASET
from repro.comm import Link
from repro.hpc import (
    FabricModel,
    PIZ_DAINT,
    SUMMIT,
    SharedFileSystem,
    daint_tmpfs,
    dragonfly,
    fat_tree,
    summit_ssd,
    topology_stats,
)


class TestSharedFileSystem:
    FS = SharedFileSystem(SUMMIT.filesystem)

    def test_under_capacity_full_bandwidth(self):
        assert self.FS.client_bandwidth(10, 1e9) == 1e9

    def test_over_capacity_fair_share(self):
        bw = self.FS.client_bandwidth(1000, 1e9)
        assert bw == pytest.approx(self.FS.spec.effective_read_bandwidth / 1000)

    def test_saturation_metric(self):
        assert self.FS.saturation(100, 1e9) == pytest.approx(1.0)

    def test_read_time_capped(self):
        # 1000 clients at 1 GB/s each cannot exceed the 100 GB/s limit.
        t = self.FS.read_time(1e12, 1000, 1e9)
        assert t == pytest.approx(10.0)

    def test_read_time_uncapped(self):
        t = self.FS.read_time(1e10, 2, 1e9)
        assert t == pytest.approx(5.0)

    def test_zero_bytes(self):
        assert self.FS.read_time(0, 10, 1e9) == 0.0

    def test_variability_grows_with_saturation(self):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        calm = self.FS.throughput_variability(0.3, rng1, samples=500)
        stressed = self.FS.throughput_variability(1.5, rng2, samples=500)
        assert stressed.std() > calm.std()
        assert stressed.mean() < calm.mean()


class TestNodeLocalStorage:
    def test_summit_ssd_holds_node_shard(self):
        # 1500 samples/node x ~58 MB must fit the 800 GB burst buffer.
        ssd = summit_ssd()
        assert ssd.max_samples(PAPER_DATASET.sample_bytes) >= 1500

    def test_daint_tmpfs_much_smaller(self):
        tmpfs = daint_tmpfs()
        assert tmpfs.max_samples(PAPER_DATASET.sample_bytes) < 1500
        assert tmpfs.kind == "tmpfs"
        # But per-GPU requirement (250 samples) fits.
        assert tmpfs.max_samples(PAPER_DATASET.sample_bytes) >= 250

    def test_times(self):
        ssd = summit_ssd()
        assert ssd.write_time(2.1e9) == pytest.approx(1.0)
        assert ssd.read_time(6e9) == pytest.approx(1.0)

    def test_fits(self):
        assert summit_ssd().fits(100e9)
        assert not daint_tmpfs().fits(100e9)

    def test_sustained_read_capped(self):
        assert summit_ssd().sustained_read_rate(100e9) == 6e9

    def test_invalid_sample_bytes(self):
        with pytest.raises(ValueError):
            summit_ssd().max_samples(0)


class TestFabric:
    def test_aggregate_scales_with_nodes(self):
        f1 = FabricModel(Link(1e-6, 25e9), nodes=100)
        f2 = FabricModel(Link(1e-6, 25e9), nodes=200)
        assert f2.aggregate_bandwidth == 2 * f1.aggregate_bandwidth

    def test_redistribution_time(self):
        f = FabricModel(Link(1e-6, 25e9), nodes=1024)
        t = f.redistribution_time(80e12)  # 80 TB, the naive-overlap volume
        assert 1.0 < t < 60.0  # seconds, not minutes: IB >> GPFS

    def test_zero_bytes_free(self):
        f = FabricModel(Link(1e-6, 25e9), nodes=4)
        assert f.redistribution_time(0.0) == 0.0


class TestTopology:
    def test_fat_tree_diameter(self):
        g = fat_tree(pods=4, hosts_per_edge=4)
        stats = topology_stats(g)
        # host-edge-core-edge-host = 4 hops max.
        assert stats.diameter == 4
        assert stats.nodes == 16

    def test_dragonfly_diameter_bounded(self):
        # Aries dragonfly: "diameter-5 Dragonfly topology".
        g = dragonfly(groups=6, routers_per_group=4, hosts_per_router=2)
        stats = topology_stats(g, sample=200)
        assert stats.diameter <= 5

    def test_avg_hops_below_diameter(self):
        g = fat_tree(pods=4, hosts_per_edge=2)
        stats = topology_stats(g)
        assert 1 <= stats.avg_hops <= stats.diameter

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            fat_tree(pods=1)
        with pytest.raises(ValueError):
            dragonfly(groups=1)
