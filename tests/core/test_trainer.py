"""Training loop: convergence, mixed precision, weighting effects."""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import TrainConfig, Trainer, build_optimizer
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.core.optim import LARC, LARS, SGD, Adam, GradientLag
from repro.framework.dtypes import FP16

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=10, seed=3, channels=4)


def tiny_model(seed=42, dropout=0.0):
    return Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                   down_layers=(2, 2), bottleneck_layers=2,
                                   kernel=3, dropout=dropout),
                    rng=np.random.default_rng(seed))


class TestBuildOptimizer:
    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("adam", Adam),
                                          ("lars", LARS), ("larc", LARC)])
    def test_dispatch(self, name, cls):
        opt = build_optimizer(tiny_model(), TrainConfig(optimizer=name))
        assert isinstance(opt, cls)

    def test_lag_wrapping(self):
        opt = build_optimizer(tiny_model(), TrainConfig(gradient_lag=1))
        assert isinstance(opt, GradientLag)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            build_optimizer(tiny_model(), TrainConfig(optimizer="lion"))

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(precision="fp8")


class TestTrainConfigValidation:
    """Bad optimizer/weighting strings fail at construction, not deep in
    build_optimizer / loss setup."""

    def test_unknown_optimizer_rejected_at_construction(self):
        with pytest.raises(ValueError, match=r"unknown optimizer 'lion'"):
            TrainConfig(optimizer="lion")

    def test_optimizer_error_names_valid_choices(self):
        with pytest.raises(ValueError, match=r"sgd.*adam.*lars.*larc"):
            TrainConfig(optimizer="rmsprop")

    def test_unknown_weighting_rejected_at_construction(self):
        with pytest.raises(ValueError,
                           match=r"unknown weighting strategy 'focal'"):
            TrainConfig(weighting="focal")

    def test_weighting_error_names_valid_choices(self):
        with pytest.raises(ValueError, match=r"none.*inverse.*inverse_sqrt"):
            TrainConfig(weighting="sqrt")

    @pytest.mark.parametrize("optimizer", ["sgd", "adam", "lars", "larc"])
    def test_valid_optimizers_accepted(self, optimizer):
        assert TrainConfig(optimizer=optimizer).optimizer == optimizer

    @pytest.mark.parametrize("weighting", ["none", "inverse", "inverse_sqrt"])
    def test_valid_weightings_accepted(self, weighting):
        assert TrainConfig(weighting=weighting).weighting == weighting


class TestTraining:
    def test_loss_decreases(self, dataset):
        freqs = class_frequencies(dataset.labels)
        tr = Trainer(tiny_model(), TrainConfig(lr=0.05, optimizer="larc"), freqs)
        losses = []
        rng = np.random.default_rng(0)
        for _ in range(4):
            for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
                losses.append(tr.train_step(imgs, labs).loss)
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_history_recorded(self, dataset):
        tr = Trainer(tiny_model(), TrainConfig(lr=0.01))
        imgs, labs = next(dataset.batches(dataset.splits.train, 2))
        tr.train_step(imgs, labs)
        assert len(tr.history) == 1
        assert tr.history[0].grad_norm > 0

    def test_evaluate_returns_report(self, dataset):
        tr = Trainer(tiny_model(), TrainConfig(lr=0.01))
        rep = tr.evaluate(dataset.batches(dataset.splits.validation, 1,
                                          drop_last=False))
        assert 0.0 <= rep.accuracy <= 1.0
        assert rep.cm.sum() == len(dataset.splits.validation) * GRID.nlat * GRID.nlon

    def test_predict_shape(self, dataset):
        tr = Trainer(tiny_model(), TrainConfig())
        preds = tr.predict(dataset.images[:2])
        assert preds.shape == (2, 16, 24)
        assert preds.min() >= 0 and preds.max() < 3

    def test_weighted_training_finds_minority_classes(self, dataset):
        # With inverse-sqrt weights, the network should predict some
        # non-background pixels after training; unweighted tends to collapse.
        freqs = class_frequencies(dataset.labels)
        tr = Trainer(tiny_model(7), TrainConfig(lr=0.1, optimizer="larc",
                                                weighting="inverse_sqrt"), freqs)
        rng = np.random.default_rng(1)
        for _ in range(6):
            for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
                tr.train_step(imgs, labs)
        preds = tr.predict(dataset.images[dataset.splits.train])
        assert (preds != 0).mean() > 0.001


class TestMixedPrecision:
    def test_fp16_steps_run(self, dataset):
        freqs = class_frequencies(dataset.labels)
        tr = Trainer(tiny_model(), TrainConfig(lr=0.02, precision="fp16",
                                               optimizer="sgd"), freqs)
        assert tr.scaler is not None
        imgs, labs = next(dataset.batches(dataset.splits.train, 2))
        result = tr.train_step(imgs, labs)
        assert np.isfinite(result.loss)

    def test_fp16_params_have_masters(self, dataset):
        tr = Trainer(tiny_model(), TrainConfig(precision="fp16"))
        conv_params = [p for p in tr.model.parameters() if p.data.ndim >= 2]
        assert all(p.master is not None for p in conv_params)
        assert all(p.data.dtype == FP16 for p in conv_params)

    def test_overflow_skips_step(self, dataset):
        # Absurd static loss scale forces an overflow in fp16 grads.
        tr = Trainer(tiny_model(), TrainConfig(
            lr=0.01, precision="fp16", loss_scale=2.0**24,
            dynamic_loss_scale=True))
        imgs, labs = next(dataset.batches(dataset.splits.train, 2))
        before = {n: p.master_value().copy()
                  for n, p in tr.model.named_parameters()}
        result = tr.train_step(imgs, labs)
        if result.skipped:
            after = {n: p.master_value() for n, p in tr.model.named_parameters()}
            for k in before:
                np.testing.assert_array_equal(before[k], after[k])
            assert tr.scaler.scale < 2.0**24

    def test_inverse_weights_overflow_more_than_sqrt(self, dataset):
        # Section V-B1's instability: inverse-frequency weights blow up FP16
        # gradients at high loss scale more often than inverse-sqrt weights.
        freqs = np.array([0.98, 0.001, 0.019])

        def overflows(strategy):
            tr = Trainer(tiny_model(11), TrainConfig(
                lr=0.01, precision="fp16", weighting=strategy,
                loss_scale=2.0**22, dynamic_loss_scale=True), freqs)
            rng = np.random.default_rng(2)
            count = 0
            for _ in range(2):
                for imgs, labs in dataset.batches(dataset.splits.train, 2, rng):
                    if tr.train_step(imgs, labs).skipped:
                        count += 1
            return count

        assert overflows("inverse") >= overflows("inverse_sqrt")
