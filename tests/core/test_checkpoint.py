"""Checkpointing: bit-exact training resume."""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import (CheckpointManager, TrainConfig, Trainer,
                        load_checkpoint, save_checkpoint)
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.errors import CheckpointError

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=8, seed=17, channels=4)


def make_trainer(config=None, freqs=None, seed=42):
    model = Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                    down_layers=(2, 2), bottleneck_layers=2,
                                    kernel=3, dropout=0.0),
                     rng=np.random.default_rng(seed))
    return Trainer(model, config or TrainConfig(lr=0.05, optimizer="larc"),
                   freqs)


def steps(trainer, dataset, n, seed=0):
    """Deterministic, history-free data order: step k always sees the same
    batch, so a resumed run replays exactly what the uninterrupted run saw
    (data order is the loader's job, not the checkpoint's)."""
    del seed  # kept for call-site symmetry
    losses = []
    batches = list(dataset.batches(dataset.splits.train, 2))
    for k in range(n):
        imgs, labs = batches[k % len(batches)]
        losses.append(trainer.train_step(imgs, labs).loss)
    return losses


class TestRoundtrip:
    """State-restoration fidelity, through the CheckpointManager API."""

    def test_bit_exact_resume(self, dataset, tmp_path):
        freqs = class_frequencies(dataset.labels)
        # Reference: 6 uninterrupted steps.
        ref = make_trainer(freqs=freqs)
        ref_losses = steps(ref, dataset, 6)

        # Checkpointed: 3 steps, save, rebuild, load, 3 more steps.
        a = make_trainer(freqs=freqs)
        steps(a, dataset, 3)
        CheckpointManager(tmp_path).save(a)
        b = make_trainer(freqs=freqs, seed=999)  # different init, then restored
        CheckpointManager(tmp_path).load(b)
        resumed_losses = steps(b, dataset, 3)

        # The resumed run reproduces the uninterrupted run exactly: same
        # data order (we replay the same seed stream) and same state.
        np.testing.assert_allclose(resumed_losses, ref_losses[3:], rtol=1e-6)
        for (n1, p1), (_, p2) in zip(ref.model.named_parameters(),
                                     b.model.named_parameters()):
            np.testing.assert_array_equal(p1.master_value(), p2.master_value())

    def test_momentum_state_restored(self, dataset, tmp_path):
        cfg = TrainConfig(lr=0.05, optimizer="sgd", momentum=0.9)
        a = make_trainer(cfg)
        steps(a, dataset, 2)
        mgr = CheckpointManager(tmp_path)
        mgr.save(a)
        b = make_trainer(cfg, seed=1)
        mgr.load(b)
        vel_a = {p.name: a.optimizer._velocity[id(p)] for p in a.optimizer.params
                 if id(p) in a.optimizer._velocity}
        vel_b = {p.name: b.optimizer._velocity[id(p)] for p in b.optimizer.params
                 if id(p) in b.optimizer._velocity}
        assert set(vel_a) == set(vel_b) and vel_a
        for k in vel_a:
            np.testing.assert_array_equal(vel_a[k], vel_b[k])

    def test_adam_state_restored(self, dataset, tmp_path):
        cfg = TrainConfig(lr=0.01, optimizer="adam")
        a = make_trainer(cfg)
        steps(a, dataset, 2)
        mgr = CheckpointManager(tmp_path)
        mgr.save(a)
        b = make_trainer(cfg, seed=2)
        mgr.load(b)
        assert b.optimizer._t  # step counters restored
        la = steps(a, dataset, 2, seed=5)
        lb = steps(b, dataset, 2, seed=5)
        np.testing.assert_allclose(la, lb, rtol=1e-6)

    def test_lag_queue_restored(self, dataset, tmp_path):
        cfg = TrainConfig(lr=0.05, optimizer="sgd", gradient_lag=1)
        a = make_trainer(cfg)
        steps(a, dataset, 1)  # one gradient parked in the delay line
        mgr = CheckpointManager(tmp_path)
        mgr.save(a)
        b = make_trainer(cfg, seed=3)
        mgr.load(b)
        assert len(b.optimizer._queue) == 1
        la = steps(a, dataset, 2, seed=6)
        lb = steps(b, dataset, 2, seed=6)
        np.testing.assert_allclose(la, lb, rtol=1e-6)

    def test_fp16_scaler_restored(self, dataset, tmp_path):
        cfg = TrainConfig(lr=0.01, optimizer="sgd", precision="fp16",
                          loss_scale=2.0**10)
        a = make_trainer(cfg)
        steps(a, dataset, 2)
        a.scaler.scale = 123.0
        mgr = CheckpointManager(tmp_path)
        mgr.save(a)
        b = make_trainer(cfg, seed=4)
        mgr.load(b)
        assert b.scaler.scale == 123.0

    def test_config_mismatch_rejected(self, dataset, tmp_path):
        a = make_trainer(TrainConfig(lr=0.05, optimizer="sgd"))
        mgr = CheckpointManager(tmp_path)
        mgr.save(a)
        b = make_trainer(TrainConfig(lr=0.05, optimizer="adam"))
        with pytest.raises(ValueError, match="mismatch"):
            mgr.load(b)

    def test_metadata_returned(self, dataset, tmp_path):
        a = make_trainer()
        steps(a, dataset, 1)
        mgr = CheckpointManager(tmp_path)
        mgr.save(a)
        b = make_trainer(seed=5)
        meta = mgr.load(b)
        assert meta["history_len"] == 1
        assert meta["config"]["optimizer"] == "larc"


class TestCheckpointManager:
    def test_save_load_roundtrip(self, dataset, tmp_path):
        freqs = class_frequencies(dataset.labels)
        ref = make_trainer(freqs=freqs)
        ref_losses = steps(ref, dataset, 6)

        a = make_trainer(freqs=freqs)
        steps(a, dataset, 3)
        mgr = CheckpointManager(tmp_path / "ckpts")
        path = mgr.save(a)
        assert path.exists() and path.suffix == ".npz"
        b = make_trainer(freqs=freqs, seed=999)
        meta = CheckpointManager(tmp_path / "ckpts").load(b)
        assert meta["extra"]["step"] == 3
        resumed = steps(b, dataset, 3)
        np.testing.assert_allclose(resumed, ref_losses[3:], rtol=1e-6)

    def test_step_naming_and_latest(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path, prefix="run")
        a = make_trainer()
        for step in (1, 12, 3):
            mgr.save(a, step=step)
        assert mgr.latest().name == "run-00000012.npz"
        assert [p.name for p in mgr.checkpoints()] == [
            "run-00000001.npz", "run-00000003.npz", "run-00000012.npz"]

    def test_latest_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_exists_and_latest_step(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path)
        assert mgr.latest_step() is None
        assert not mgr.exists(3)
        a = make_trainer()
        for step in (3, 41, 7):
            mgr.save(a, step=step)
        assert mgr.exists(3) and mgr.exists(7) and mgr.exists(41)
        assert not mgr.exists(4)
        assert mgr.latest_step() == 41

    def test_latest_step_matches_latest_path(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path, prefix="run")
        mgr.save(make_trainer(), step=12)
        assert mgr.latest().name == "run-00000012.npz"
        assert mgr.latest_step() == 12

    def test_load_without_checkpoints_raises(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoints"):
            mgr.load(make_trainer())

    def test_rotate_keeps_newest(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path)
        a = make_trainer()
        for step in range(5):
            mgr.save(a, step=step)
        removed = mgr.rotate(keep_last=2)
        assert len(removed) == 3
        assert [p.name for p in mgr.checkpoints()] == [
            "ckpt-00000003.npz", "ckpt-00000004.npz"]

    def test_keep_last_rotates_on_save(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path, keep_last=2)
        a = make_trainer()
        for step in range(4):
            mgr.save(a, step=step)
        assert len(mgr.checkpoints()) == 2
        assert mgr.latest().name == "ckpt-00000003.npz"

    def test_extra_metadata_persisted(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path)
        a = make_trainer()
        mgr.save(a, step=7, extra_meta={"world_size": 8})
        b = make_trainer(seed=1)
        meta = mgr.load(b)
        assert meta["extra"] == {"world_size": 8, "step": 7}

    def test_foreign_files_ignored(self, dataset, tmp_path):
        (tmp_path / "notes.txt").write_text("not a checkpoint")
        mgr = CheckpointManager(tmp_path)
        mgr.save(make_trainer(), step=1)
        assert len(mgr.checkpoints()) == 1

    def test_extra_arrays_roundtrip_bit_exact(self, dataset, tmp_path):
        # Comm-layer state (error-feedback residuals) rides checkpoints as
        # extra arrays, orthogonal to model/optimizer state.
        rng = np.random.default_rng(11)
        extra = {"rank0.stem.w": rng.normal(size=57).astype(np.float32),
                 "rank1.stem.w": rng.normal(size=57).astype(np.float32)}
        mgr = CheckpointManager(tmp_path)
        mgr.save(make_trainer(), step=2, extra_arrays=extra)
        loaded = mgr.load_extra_arrays()
        assert sorted(loaded) == sorted(extra)
        for key, value in extra.items():
            np.testing.assert_array_equal(loaded[key], value)

    def test_extra_arrays_do_not_leak_into_model(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path)
        a = make_trainer()
        mgr.save(a, step=1,
                 extra_arrays={"rank0.x": np.ones(3, dtype=np.float32)})
        b = make_trainer(seed=5)
        mgr.load(b)
        for (_, p1), (_, p2) in zip(a.model.named_parameters(),
                                    b.model.named_parameters()):
            np.testing.assert_array_equal(p1.master_value(), p2.master_value())

    def test_extra_arrays_absent_in_old_checkpoints(self, dataset, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(make_trainer(), step=1)
        assert mgr.load_extra_arrays() == {}


class TestDeprecatedWrappers:
    """The legacy free functions: still correct, warn, and stay the only
    sanctioned call sites (hence the intentional repro-lint suppressions)."""

    def test_free_functions_warn_but_work(self, dataset, tmp_path):
        a = make_trainer()
        steps(a, dataset, 1)
        with pytest.warns(DeprecationWarning, match="CheckpointManager.save"):
            path = save_checkpoint(a, tmp_path / "legacy")  # repro-lint: disable=RPR004
        b = make_trainer(seed=9)
        with pytest.warns(DeprecationWarning, match="CheckpointManager.load"):
            meta = load_checkpoint(b, path)  # repro-lint: disable=RPR004
        assert meta["history_len"] == 1
        for (n1, p1), (_, p2) in zip(a.model.named_parameters(),
                                     b.model.named_parameters()):
            np.testing.assert_array_equal(p1.master_value(), p2.master_value())

    def test_suffix_added(self, dataset, tmp_path):
        a = make_trainer()
        with pytest.warns(DeprecationWarning):
            path = save_checkpoint(a, tmp_path / "noext")  # repro-lint: disable=RPR004
        assert path.suffix == ".npz"
        assert path.exists()
