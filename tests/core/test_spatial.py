"""Spatial model parallelism: halo exchange + distributed convolution."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import World, halo_exchange, split_stripes, stripe_bounds
from repro.core.spatial import (
    SpatialPartition,
    activation_bytes_per_rank,
    distributed_conv2d,
    halo_rows_for,
)
from repro.framework.ops import conv2d_forward

RNG = np.random.default_rng(0)


class TestStripes:
    def test_bounds_cover_exactly(self):
        bounds = stripe_bounds(17, 4)
        assert bounds[0][0] == 0 and bounds[-1][1] == 17
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_split_gather_roundtrip(self):
        x = RNG.normal(size=(2, 3, 12, 8))
        parts = split_stripes(x, 3)
        np.testing.assert_array_equal(np.concatenate(parts, axis=2), x)

    def test_too_many_ranks(self):
        with pytest.raises(ValueError):
            stripe_bounds(3, 5)


class TestHaloExchange:
    def test_interior_halos_match_neighbours(self):
        x = RNG.normal(size=(1, 2, 12, 6))
        world = World(3)
        stripes = split_stripes(x, 3)
        padded = halo_exchange(world, stripes, halo=2)
        # Rank 1's top halo == rank 0's bottom rows.
        np.testing.assert_array_equal(padded[1][:, :, :2], stripes[0][:, :, -2:])
        # Rank 1's bottom halo == rank 2's top rows.
        np.testing.assert_array_equal(padded[1][:, :, -2:], stripes[2][:, :, :2])

    def test_boundary_ranks_zero_padded(self):
        x = RNG.normal(size=(1, 1, 9, 4))
        world = World(3)
        padded = halo_exchange(world, split_stripes(x, 3), halo=1)
        assert (padded[0][:, :, :1] == 0).all()
        assert (padded[-1][:, :, -1:] == 0).all()

    def test_zero_halo_copies(self):
        x = RNG.normal(size=(1, 1, 6, 4))
        world = World(2)
        stripes = split_stripes(x, 2)
        padded = halo_exchange(world, stripes, halo=0)
        np.testing.assert_array_equal(padded[0], stripes[0])
        assert padded[0] is not stripes[0]

    def test_halo_bigger_than_stripe_rejected(self):
        world = World(4)
        stripes = split_stripes(RNG.normal(size=(1, 1, 8, 4)), 4)
        with pytest.raises(ValueError, match="halo"):
            halo_exchange(world, stripes, halo=3)

    def test_message_count(self):
        world = World(4)
        stripes = split_stripes(RNG.normal(size=(1, 1, 16, 4)), 4)
        halo_exchange(world, stripes, halo=1)
        # 3 interior boundaries x 2 directions.
        assert world.stats.total_messages == 6


class TestDistributedConv:
    @pytest.mark.parametrize("kernel,dilation,ranks", [
        (3, 1, 2), (3, 1, 4), (5, 1, 3), (3, 2, 2), (3, 4, 2), (1, 1, 3),
    ])
    def test_matches_single_device(self, kernel, dilation, ranks):
        x = RNG.normal(size=(2, 3, 24, 10))
        w = RNG.normal(size=(4, 3, kernel, kernel))
        pad = dilation * (kernel - 1) // 2
        expect = conv2d_forward(x, w, stride=1, padding=pad, dilation=dilation)
        world = World(ranks)
        stripes = distributed_conv2d(world, split_stripes(x, ranks), w,
                                     dilation=dilation)
        got = np.concatenate(stripes, axis=2)
        np.testing.assert_allclose(got, expect, rtol=1e-10, atol=1e-10)

    def test_partition_api_chain(self):
        x = RNG.normal(size=(1, 2, 16, 8))
        w1 = RNG.normal(size=(4, 2, 3, 3))
        w2 = RNG.normal(size=(3, 4, 3, 3))
        world = World(4)
        part = SpatialPartition.scatter(world, x)
        out = part.conv2d(w1).conv2d(w2, dilation=2).gather()
        ref = conv2d_forward(conv2d_forward(x, w1, 1, 1, 1), w2, 1, 2, 2)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-10)
        assert sum(part.stripe_heights) == 16

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            halo_rows_for(4)

    def test_non_square_kernel_rejected(self):
        world = World(2)
        stripes = split_stripes(RNG.normal(size=(1, 1, 8, 4)), 2)
        with pytest.raises(ValueError, match="square"):
            distributed_conv2d(world, stripes, RNG.normal(size=(1, 1, 3, 5)))

    @given(st.integers(2, 4), st.sampled_from([1, 2]), st.integers(12, 24))
    @settings(max_examples=15, deadline=None)
    def test_property_exactness(self, ranks, dilation, height):
        rng = np.random.default_rng(ranks * 100 + height)
        x = rng.normal(size=(1, 2, height, 6))
        w = rng.normal(size=(2, 2, 3, 3))
        pad = dilation
        expect = conv2d_forward(x, w, 1, pad, dilation)
        world = World(ranks)
        got = np.concatenate(
            distributed_conv2d(world, split_stripes(x, ranks), w, dilation),
            axis=2)
        np.testing.assert_allclose(got, expect, rtol=1e-9, atol=1e-9)


class TestMemoryPlanning:
    def test_paper_decoder_activation_fits_after_split(self):
        # The full-res decoder's 1152x768x256 FP32 activation is ~0.9 GB;
        # striped over 6 GPUs it drops ~6x (plus halo slivers).
        full, per_rank = activation_bytes_per_rank(
            batch=1, channels=256, height=768, width=1152, ranks=6, kernel=3)
        assert full == pytest.approx(0.906e9, rel=0.01)
        assert per_rank < full / 5
        assert per_rank > full / 7  # halo overhead is small but nonzero

    def test_halo_grows_with_dilation(self):
        _, small = activation_bytes_per_rank(1, 8, 64, 64, 4, 3, dilation=1)
        _, big = activation_bytes_per_rank(1, 8, 64, 64, 4, 3, dilation=4)
        assert big > small
