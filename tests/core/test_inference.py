"""Tiled (sliding-window) inference."""
import numpy as np
import pytest

from repro.core.inference import (
    blend_windows,
    forward_windows,
    predict_tiled,
    sliding_window_logits,
    tent_window,
    tile_positions,
)
from repro.framework.graph import ShapeProbe
from repro.framework.module import Module
from repro.framework.tensor import Tensor


class ConstantModel(Module):
    """Emits a fixed per-class logit everywhere (tiling invariance oracle)."""

    def __init__(self, logits=(0.5, -1.0, 2.0)):
        super().__init__()
        self.values = np.asarray(logits, dtype=np.float32)

    def forward(self, x):
        if isinstance(x, ShapeProbe):  # pragma: no cover
            raise NotImplementedError
        n, c, h, w = x.shape
        out = np.broadcast_to(self.values[None, :, None, None],
                              (n, len(self.values), h, w))
        return Tensor(np.ascontiguousarray(out))


class MeanModel(Module):
    """Logit 0 = local mean of channel 0; checks values pass through."""

    def forward(self, x):
        data = x.data.astype(np.float32)
        return Tensor(np.stack([data[:, 0], -data[:, 0]], axis=1))


class TestTilePositions:
    def test_covers_extent(self):
        pos = tile_positions(10, 4, 3)
        assert pos[0] == 0
        assert pos[-1] == 6
        covered = set()
        for p in pos:
            covered.update(range(p, p + 4))
        assert covered == set(range(10))

    def test_exact_fit_single_tile(self):
        assert tile_positions(8, 8, 8) == [0]

    def test_flush_right_appended(self):
        assert tile_positions(10, 4, 4)[-1] == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            tile_positions(4, 8, 2)
        with pytest.raises(ValueError):
            tile_positions(8, 4, 0)
        with pytest.raises(ValueError):
            tile_positions(8, 4, 5)


class TestTentWindow:
    def test_symmetric_positive(self):
        w = tent_window(6)
        np.testing.assert_allclose(w, w[::-1])
        assert (w > 0).all()
        assert w.max() == 1.0

    def test_odd_length_peak_center(self):
        w = tent_window(5)
        assert np.argmax(w) == 2


class TestSlidingWindow:
    def test_constant_model_seamless(self):
        model = ConstantModel()
        image = np.zeros((4, 20, 26), dtype=np.float32)
        logits = sliding_window_logits(model, image, (8, 8), (5, 5))
        assert logits.shape == (3, 20, 26)
        for k, v in enumerate((0.5, -1.0, 2.0)):
            np.testing.assert_allclose(logits[k], v, rtol=1e-5)

    def test_values_pass_through_on_overlap(self):
        # A model whose logits equal the input: blending must reproduce the
        # input exactly even where tiles overlap.
        rng = np.random.default_rng(0)
        image = rng.normal(size=(1, 16, 16)).astype(np.float32)
        logits = sliding_window_logits(MeanModel(), image, (8, 8), (4, 4))
        np.testing.assert_allclose(logits[0], image[0], rtol=1e-4, atol=1e-5)

    def test_predict_tiled_classes(self):
        model = ConstantModel((0.0, 3.0, -1.0))
        preds = predict_tiled(model, np.zeros((2, 12, 12), np.float32), (6, 6))
        assert preds.shape == (12, 12)
        assert (preds == 1).all()

    def test_default_stride_half_window(self):
        model = ConstantModel()
        out = sliding_window_logits(model, np.zeros((1, 16, 16), np.float32),
                                    (8, 8))
        assert out.shape == (3, 16, 16)

    def test_model_left_in_train_mode(self):
        model = ConstantModel()
        model.train(True)
        sliding_window_logits(model, np.zeros((1, 8, 8), np.float32), (8, 8))
        assert model.training

    def test_real_network_tiled_matches_shape(self):
        from repro.core.networks import Tiramisu, TiramisuConfig
        net = Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                      down_layers=(2, 2), bottleneck_layers=2,
                                      kernel=3, dropout=0.0),
                       rng=np.random.default_rng(1))
        image = np.random.default_rng(2).normal(size=(4, 24, 32)).astype(np.float32)
        preds = predict_tiled(net, image, (16, 16), (8, 8))
        assert preds.shape == (24, 32)
        assert preds.min() >= 0 and preds.max() < 3


class TestBatchedForward:
    """batch_size stacks windows per model call without changing results."""

    def test_elementwise_model_batched_is_bitwise_identical(self):
        image = np.random.default_rng(3).normal(
            size=(1, 20, 20)).astype(np.float32)
        single = sliding_window_logits(MeanModel(), image, (8, 8), (4, 4),
                                       batch_size=1)
        batched = sliding_window_logits(MeanModel(), image, (8, 8), (4, 4),
                                        batch_size=8)
        np.testing.assert_array_equal(batched, single)

    def test_conv_network_batched_matches_unbatched(self):
        from repro.core.networks import Tiramisu, TiramisuConfig
        net = Tiramisu(TiramisuConfig(in_channels=2, base_filters=8, growth=4,
                                      down_layers=(2,), bottleneck_layers=2,
                                      kernel=3, dropout=0.0),
                       rng=np.random.default_rng(4))
        image = np.random.default_rng(5).normal(
            size=(2, 16, 16)).astype(np.float32)
        single = sliding_window_logits(net, image, (8, 8), (4, 4),
                                       batch_size=1)
        batched = sliding_window_logits(net, image, (8, 8), (4, 4),
                                        batch_size=16)
        # Stacking reassociates BLAS reductions; equality is to float
        # tolerance, not bitwise.
        np.testing.assert_allclose(batched, single, rtol=1e-4, atol=1e-5)

    def test_partial_final_chunk(self):
        image = np.random.default_rng(6).normal(
            size=(1, 16, 16)).astype(np.float32)
        # 9 windows with batch_size 4: chunks of 4, 4, 1.
        out = sliding_window_logits(MeanModel(), image, (8, 8), (4, 4),
                                    batch_size=4)
        np.testing.assert_allclose(out[0], image[0], rtol=1e-4, atol=1e-5)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            forward_windows(MeanModel(), [np.zeros((1, 4, 4), np.float32)],
                            batch_size=0)

    def test_cache_short_circuits_repeat_windows(self):
        class CountingCache:
            def __init__(self):
                self.store = {}
                self.puts = 0

            def key(self, tile):
                return tile.tobytes()

            def get(self, key):
                return self.store.get(key)

            def put(self, key, value):
                self.puts += 1
                self.store[key] = value

        class CountingModel(MeanModel):
            calls = 0

            def forward(self, x):
                CountingModel.calls += x.data.shape[0]
                return super().forward(x)

        cache = CountingCache()
        image = np.random.default_rng(11).normal(
            size=(1, 16, 16)).astype(np.float32)
        first = sliding_window_logits(CountingModel(), image, (8, 8), (4, 4),
                                      batch_size=4, cache=cache)
        calls_after_first = CountingModel.calls
        assert calls_after_first == 9       # all 9 windows miss cold
        # The repeat image is served entirely from the cache: zero forwards.
        second = sliding_window_logits(CountingModel(), image, (8, 8), (4, 4),
                                       batch_size=4, cache=cache)
        assert CountingModel.calls == calls_after_first
        np.testing.assert_array_equal(first, second)
        assert cache.puts == 9


class TestTilingEdgeCases:
    """window == extent, stride == window, and 1x1 windows."""

    def test_window_equals_extent_single_tile(self):
        image = np.random.default_rng(7).normal(
            size=(1, 12, 12)).astype(np.float32)
        out = sliding_window_logits(MeanModel(), image, (12, 12), (12, 12))
        np.testing.assert_allclose(out[0], image[0], rtol=1e-5)

    def test_stride_equals_window_no_overlap(self):
        # Non-overlapping tiling: tent weights cancel out per tile, so the
        # pass-through model must reproduce the image exactly.
        image = np.random.default_rng(8).normal(
            size=(1, 16, 16)).astype(np.float32)
        out = sliding_window_logits(MeanModel(), image, (4, 4), (4, 4))
        np.testing.assert_allclose(out[0], image[0], rtol=1e-4, atol=1e-6)

    def test_stride_equals_window_with_flush_right_remainder(self):
        # 10 with window 4, stride 4 -> positions [0, 4, 6]: the flush-right
        # tile overlaps; blending must still pass values through.
        image = np.random.default_rng(9).normal(
            size=(1, 10, 10)).astype(np.float32)
        out = sliding_window_logits(MeanModel(), image, (4, 4), (4, 4))
        np.testing.assert_allclose(out[0], image[0], rtol=1e-4, atol=1e-6)

    def test_window_one_by_one(self):
        assert tile_positions(3, 1, 1) == [0, 1, 2]
        np.testing.assert_array_equal(tent_window(1), [1.0])
        image = np.random.default_rng(10).normal(
            size=(1, 3, 3)).astype(np.float32)
        out = sliding_window_logits(MeanModel(), image, (1, 1), (1, 1))
        np.testing.assert_allclose(out[0], image[0], rtol=1e-6)

    def test_constant_logits_invariant_under_any_tiling(self):
        # The seam-free invariant: a constant-logit model yields exactly
        # constant output for every window/stride combination, including
        # the degenerate ones.
        model = ConstantModel((1.5, -0.25, 0.75))
        image = np.zeros((2, 11, 13), np.float32)
        for window, stride in (((11, 13), (11, 13)), ((4, 4), (4, 4)),
                               ((1, 1), (1, 1)), ((5, 7), (2, 3)),
                               ((8, 8), (3, 5))):
            logits = sliding_window_logits(model, image, window, stride)
            assert logits.shape == (3, 11, 13)
            for k, v in enumerate((1.5, -0.25, 0.75)):
                np.testing.assert_allclose(logits[k], v, rtol=1e-5,
                                           err_msg=f"{window}/{stride}")

    def test_blend_windows_empty_rejected(self):
        with pytest.raises(RuntimeError):
            blend_windows([], [], [], (4, 4), (2, 2))
