"""Tiled (sliding-window) inference."""
import numpy as np
import pytest

from repro.core.inference import (
    predict_tiled,
    sliding_window_logits,
    tent_window,
    tile_positions,
)
from repro.framework.graph import ShapeProbe
from repro.framework.module import Module
from repro.framework.tensor import Tensor


class ConstantModel(Module):
    """Emits a fixed per-class logit everywhere (tiling invariance oracle)."""

    def __init__(self, logits=(0.5, -1.0, 2.0)):
        super().__init__()
        self.values = np.asarray(logits, dtype=np.float32)

    def forward(self, x):
        if isinstance(x, ShapeProbe):  # pragma: no cover
            raise NotImplementedError
        n, c, h, w = x.shape
        out = np.broadcast_to(self.values[None, :, None, None],
                              (n, len(self.values), h, w))
        return Tensor(np.ascontiguousarray(out))


class MeanModel(Module):
    """Logit 0 = local mean of channel 0; checks values pass through."""

    def forward(self, x):
        data = x.data.astype(np.float32)
        return Tensor(np.stack([data[:, 0], -data[:, 0]], axis=1))


class TestTilePositions:
    def test_covers_extent(self):
        pos = tile_positions(10, 4, 3)
        assert pos[0] == 0
        assert pos[-1] == 6
        covered = set()
        for p in pos:
            covered.update(range(p, p + 4))
        assert covered == set(range(10))

    def test_exact_fit_single_tile(self):
        assert tile_positions(8, 8, 8) == [0]

    def test_flush_right_appended(self):
        assert tile_positions(10, 4, 4)[-1] == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            tile_positions(4, 8, 2)
        with pytest.raises(ValueError):
            tile_positions(8, 4, 0)
        with pytest.raises(ValueError):
            tile_positions(8, 4, 5)


class TestTentWindow:
    def test_symmetric_positive(self):
        w = tent_window(6)
        np.testing.assert_allclose(w, w[::-1])
        assert (w > 0).all()
        assert w.max() == 1.0

    def test_odd_length_peak_center(self):
        w = tent_window(5)
        assert np.argmax(w) == 2


class TestSlidingWindow:
    def test_constant_model_seamless(self):
        model = ConstantModel()
        image = np.zeros((4, 20, 26), dtype=np.float32)
        logits = sliding_window_logits(model, image, (8, 8), (5, 5))
        assert logits.shape == (3, 20, 26)
        for k, v in enumerate((0.5, -1.0, 2.0)):
            np.testing.assert_allclose(logits[k], v, rtol=1e-5)

    def test_values_pass_through_on_overlap(self):
        # A model whose logits equal the input: blending must reproduce the
        # input exactly even where tiles overlap.
        rng = np.random.default_rng(0)
        image = rng.normal(size=(1, 16, 16)).astype(np.float32)
        logits = sliding_window_logits(MeanModel(), image, (8, 8), (4, 4))
        np.testing.assert_allclose(logits[0], image[0], rtol=1e-4, atol=1e-5)

    def test_predict_tiled_classes(self):
        model = ConstantModel((0.0, 3.0, -1.0))
        preds = predict_tiled(model, np.zeros((2, 12, 12), np.float32), (6, 6))
        assert preds.shape == (12, 12)
        assert (preds == 1).all()

    def test_default_stride_half_window(self):
        model = ConstantModel()
        out = sliding_window_logits(model, np.zeros((1, 16, 16), np.float32),
                                    (8, 8))
        assert out.shape == (3, 16, 16)

    def test_model_left_in_train_mode(self):
        model = ConstantModel()
        model.train(True)
        sliding_window_logits(model, np.zeros((1, 8, 8), np.float32), (8, 8))
        assert model.training

    def test_real_network_tiled_matches_shape(self):
        from repro.core.networks import Tiramisu, TiramisuConfig
        net = Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                      down_layers=(2, 2), bottleneck_layers=2,
                                      kernel=3, dropout=0.0),
                       rng=np.random.default_rng(1))
        image = np.random.default_rng(2).normal(size=(4, 24, 32)).astype(np.float32)
        preds = predict_tiled(net, image, (16, 16), (8, 8))
        assert preds.shape == (24, 32)
        assert preds.min() >= 0 and preds.max() < 3
