"""Distributed training with top-k gradient compression (Section VIII-B)."""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.comm import EngineConfig, EngineReport, GradientExchangeEngine
from repro.core import CheckpointManager, DistributedTrainer, TrainConfig
from repro.core.networks import Tiramisu, TiramisuConfig

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=12, seed=19, channels=4)


def factory(seed=42):
    def make():
        return Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                       down_layers=(2, 2), bottleneck_layers=2,
                                       kernel=3, dropout=0.0),
                        rng=np.random.default_rng(seed))
    return make


class TestCompressedTraining:
    def test_replicas_stay_identical(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 3,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, compression_ratio=0.1)
        dt.train_epoch(dataset, 1, np.random.default_rng(0), steps=3)
        assert dt.max_replica_divergence() == 0.0

    def test_loss_decreases_with_compression(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(7), 2,
                                TrainConfig(lr=0.02, optimizer="larc"),
                                freqs, compression_ratio=0.2)
        losses = []
        for _ in range(4):
            results = dt.train_epoch(dataset, 1, np.random.default_rng(1))
            losses.extend(r.mean_loss for r in results)
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_bandwidth_reduced_vs_dense(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dense = DistributedTrainer(factory(), 3,
                                   TrainConfig(lr=0.02, optimizer="sgd"), freqs)
        sparse = DistributedTrainer(factory(), 3,
                                    TrainConfig(lr=0.02, optimizer="sgd"),
                                    freqs, compression_ratio=0.01)
        rd = dense.train_epoch(dataset, 1, np.random.default_rng(2), steps=1)[0]
        rs = sparse.train_epoch(dataset, 1, np.random.default_rng(2), steps=1)[0]
        assert rs.exchange.data_bytes < rd.exchange.data_bytes / 3
        assert rs.exchange.negotiation is None  # bypasses the control plane

    def test_residuals_accumulate_per_rank(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 2,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, compression_ratio=0.05)
        dt.train_epoch(dataset, 1, np.random.default_rng(3), steps=1)
        name = dt.trainers[0].model.parameters()[0].name
        for comp in dt._compressors:
            assert comp.residual_norm(name) > 0

    def test_legacy_comm_state_roundtrip(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 2,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, compression_ratio=0.05)
        dt.train_epoch(dataset, 1, np.random.default_rng(4), steps=1)
        state = dt.comm_state()
        assert state and all(k.startswith("rank") for k in state)
        fresh = DistributedTrainer(factory(), 2,
                                   TrainConfig(lr=0.02, optimizer="sgd"),
                                   freqs, compression_ratio=0.05)
        fresh.load_comm_state(state)
        restored = fresh.comm_state()
        for key, value in state.items():
            np.testing.assert_array_equal(restored[key], value)


class TestEngineTraining:
    """The adaptive exchange engine as the trainer's data plane."""

    @pytest.mark.parametrize("compression", [None, "topk", "int8"])
    def test_replicas_stay_identical(self, dataset, compression):
        freqs = class_frequencies(dataset.labels)
        cfg = EngineConfig(compression=compression, compression_ratio=0.1)
        dt = DistributedTrainer(factory(), 3,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, engine=cfg)
        dt.train_epoch(dataset, 1, np.random.default_rng(0), steps=3)
        assert dt.max_replica_divergence() == 0.0

    def test_config_auto_wrapped(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 2,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, engine=EngineConfig())
        assert isinstance(dt.engine, GradientExchangeEngine)
        assert dt.engine.world_size == 2

    def test_engine_report_surfaces(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 2,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, engine=EngineConfig())
        r = dt.train_epoch(dataset, 1, np.random.default_rng(5), steps=1)[0]
        assert isinstance(r.exchange, EngineReport)
        assert r.exchange.decisions  # every bucket recorded its algorithm
        assert r.exchange.fusion.num_collectives >= 1

    def test_fusion_cuts_collectives_vs_tensor_count(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 2,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, engine=EngineConfig())
        r = dt.train_epoch(dataset, 1, np.random.default_rng(6), steps=1)[0]
        num_tensors = sum(1 for p in dt.trainers[0].model.parameters())
        assert r.exchange.fusion.num_collectives * 4 <= num_tensors

    def test_compressed_engine_cuts_bytes(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dense = DistributedTrainer(factory(), 2,
                                   TrainConfig(lr=0.02, optimizer="sgd"),
                                   freqs, engine=EngineConfig())
        sparse = DistributedTrainer(
            factory(), 2, TrainConfig(lr=0.02, optimizer="sgd"), freqs,
            engine=EngineConfig(compression="topk", compression_ratio=0.01))
        rd = dense.train_epoch(dataset, 1, np.random.default_rng(7), steps=1)[0]
        rs = sparse.train_epoch(dataset, 1, np.random.default_rng(7), steps=1)[0]
        assert rs.exchange.wire_bytes < rd.exchange.wire_bytes / 10

    def test_loss_decreases_with_engine_compression(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(
            factory(7), 2, TrainConfig(lr=0.02, optimizer="larc"), freqs,
            engine=EngineConfig(compression="topk", compression_ratio=0.2))
        losses = []
        for _ in range(4):
            results = dt.train_epoch(dataset, 1, np.random.default_rng(1))
            losses.extend(r.mean_loss for r in results)
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_comm_state_rides_checkpoints(self, dataset, tmp_path):
        freqs = class_frequencies(dataset.labels)
        cfg = EngineConfig(compression="topk", compression_ratio=0.05)
        dt = DistributedTrainer(factory(), 2,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, engine=cfg)
        dt.train_epoch(dataset, 1, np.random.default_rng(8), steps=2)
        mgr = CheckpointManager(tmp_path)
        mgr.save(dt.trainers[0], step=2, extra_arrays=dt.comm_state())

        fresh = DistributedTrainer(factory(), 2,
                                   TrainConfig(lr=0.02, optimizer="sgd"),
                                   freqs, engine=cfg)
        fresh.load_comm_state(mgr.load_extra_arrays())
        saved = dt.comm_state()
        restored = fresh.comm_state()
        assert sorted(restored) == sorted(saved)
        for key, value in saved.items():
            np.testing.assert_array_equal(restored[key], value)

    def test_shrink_keeps_survivor_residuals(self, dataset):
        freqs = class_frequencies(dataset.labels)
        cfg = EngineConfig(compression="topk", compression_ratio=0.05)
        dt = DistributedTrainer(factory(), 3,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, engine=cfg)
        dt.train_epoch(dataset, 1, np.random.default_rng(9), steps=1)
        before = dt.comm_state()
        dt.shrink([1])  # survivors: old ranks 0 and 2
        after = dt.comm_state()
        assert dt.engine.world_size == 2
        tensors = sorted({k.partition(".")[2] for k in before})
        for t in tensors:
            np.testing.assert_array_equal(after[f"rank0.{t}"],
                                          before[f"rank0.{t}"])
            np.testing.assert_array_equal(after[f"rank1.{t}"],
                                          before[f"rank2.{t}"])
        assert f"rank2.{tensors[0]}" not in after
        # Training continues on the shrunk world with replicas in lockstep.
        dt.train_epoch(dataset, 1, np.random.default_rng(10), steps=1)
        assert dt.max_replica_divergence() == 0.0
