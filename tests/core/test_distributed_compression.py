"""Distributed training with top-k gradient compression (Section VIII-B)."""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import DistributedTrainer, TrainConfig
from repro.core.networks import Tiramisu, TiramisuConfig

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=12, seed=19, channels=4)


def factory(seed=42):
    def make():
        return Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                       down_layers=(2, 2), bottleneck_layers=2,
                                       kernel=3, dropout=0.0),
                        rng=np.random.default_rng(seed))
    return make


class TestCompressedTraining:
    def test_replicas_stay_identical(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 3,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, compression_ratio=0.1)
        dt.train_epoch(dataset, 1, np.random.default_rng(0), steps=3)
        assert dt.max_replica_divergence() == 0.0

    def test_loss_decreases_with_compression(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(7), 2,
                                TrainConfig(lr=0.02, optimizer="larc"),
                                freqs, compression_ratio=0.2)
        losses = []
        for _ in range(4):
            results = dt.train_epoch(dataset, 1, np.random.default_rng(1))
            losses.extend(r.mean_loss for r in results)
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_bandwidth_reduced_vs_dense(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dense = DistributedTrainer(factory(), 3,
                                   TrainConfig(lr=0.02, optimizer="sgd"), freqs)
        sparse = DistributedTrainer(factory(), 3,
                                    TrainConfig(lr=0.02, optimizer="sgd"),
                                    freqs, compression_ratio=0.01)
        rd = dense.train_epoch(dataset, 1, np.random.default_rng(2), steps=1)[0]
        rs = sparse.train_epoch(dataset, 1, np.random.default_rng(2), steps=1)[0]
        assert rs.exchange.data_bytes < rd.exchange.data_bytes / 3
        assert rs.exchange.negotiation is None  # bypasses the control plane

    def test_residuals_accumulate_per_rank(self, dataset):
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(factory(), 2,
                                TrainConfig(lr=0.02, optimizer="sgd"),
                                freqs, compression_ratio=0.05)
        dt.train_epoch(dataset, 1, np.random.default_rng(3), steps=1)
        name = dt.trainers[0].model.parameters()[0].name
        for comp in dt._compressors:
            assert comp.residual_norm(name) > 0
