"""Distributed data-parallel invariants."""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.comm import HorovodConfig
from repro.core import DistributedTrainer, TrainConfig, Trainer
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.framework import Tensor
from repro.framework.layers import Conv2D, ReLU, Sequential
from repro.framework.losses import weighted_cross_entropy

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=12, seed=5, channels=4)


def tiny_factory(seed=42):
    def make():
        return Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                       down_layers=(2, 2), bottleneck_layers=2,
                                       kernel=3, dropout=0.0),
                        rng=np.random.default_rng(seed))
    return make


def convnet_factory(seed=7):
    """BN-free, dropout-free net: exact single-process equivalence holds."""
    def make():
        rng = np.random.default_rng(seed)
        return Sequential(
            Conv2D(4, 8, 3, rng=rng, name="c1"), ReLU(),
            Conv2D(8, 3, 1, rng=rng, name="c2"),
        )
    return make


class TestReplicaConsistency:
    def test_parameters_stay_identical(self, dataset):
        cfg = TrainConfig(lr=0.05, optimizer="larc")
        freqs = class_frequencies(dataset.labels)
        dt = DistributedTrainer(tiny_factory(), 4, cfg, freqs)
        dt.train_epoch(dataset, 1, np.random.default_rng(0), steps=3)
        assert dt.max_replica_divergence() == 0.0

    def test_bn_buffers_diverge_by_design(self, dataset):
        cfg = TrainConfig(lr=0.05)
        dt = DistributedTrainer(tiny_factory(), 2, cfg)
        dt.train_epoch(dataset, 1, np.random.default_rng(0), steps=2)
        assert dt.max_buffer_divergence() > 0.0

    def test_nondeterministic_factory_rejected(self):
        counter = [0]

        def bad_factory():
            counter[0] += 1
            return Sequential(Conv2D(4, 3, 1, rng=np.random.default_rng(counter[0])))

        with pytest.raises(ValueError, match="deterministic"):
            DistributedTrainer(bad_factory, 2, TrainConfig())

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            DistributedTrainer(tiny_factory(), 0, TrainConfig())


class TestGlobalBatchEquivalence:
    def test_nrank_matches_single_process_global_batch(self, dataset):
        """N ranks on shards == 1 process on the concatenated batch.

        Requires a BN/dropout-free model (local batch norm breaks exactness,
        as it does in real Horovod training) and uniform loss weighting with
        equal shard sizes.
        """
        n = 3
        imgs = dataset.images[:n * 2]
        labs = dataset.labels[:n * 2]
        cfg = TrainConfig(lr=0.1, optimizer="sgd", momentum=0.9,
                          weight_decay=0.0, weighting="none")

        # Distributed: each rank takes 2 samples.
        dt = DistributedTrainer(convnet_factory(), n, cfg)
        batches = [(imgs[2 * r: 2 * r + 2], labs[2 * r: 2 * r + 2])
                   for r in range(n)]
        dt.train_step(batches)

        # Single process on the full batch of 6.
        single = Trainer(convnet_factory()(), cfg)
        single.train_step(imgs, labs)

        for (name, p_dist), (_, p_single) in zip(
            dt.model.named_parameters(), single.model.named_parameters()
        ):
            np.testing.assert_allclose(p_dist.master_value(),
                                       p_single.master_value(),
                                       rtol=1e-4, atol=1e-6)

    def test_mean_loss_matches_global_loss(self, dataset):
        n = 2
        imgs = dataset.images[:4]
        labs = dataset.labels[:4]
        cfg = TrainConfig(lr=0.01, optimizer="sgd", weighting="none")
        dt = DistributedTrainer(convnet_factory(), n, cfg)
        res = dt.train_step([(imgs[:2], labs[:2]), (imgs[2:], labs[2:])])

        model = convnet_factory()()
        logits = model(Tensor(imgs.astype(np.float32)))
        global_loss = weighted_cross_entropy(logits, labs).item()
        assert res.mean_loss == pytest.approx(global_loss, rel=1e-5)


class TestStepMechanics:
    def test_exchange_report_attached(self, dataset):
        cfg = TrainConfig(lr=0.01)
        dt = DistributedTrainer(tiny_factory(), 2, cfg)
        res = dt.train_epoch(dataset, 1, np.random.default_rng(1), steps=1)[0]
        assert res.exchange is not None
        assert res.exchange.data_bytes > 0
        assert len(res.per_rank_loss) == 2

    def test_wrong_batch_count_raises(self, dataset):
        dt = DistributedTrainer(tiny_factory(), 2, TrainConfig())
        with pytest.raises(ValueError, match="rank batches"):
            dt.train_step([(dataset.images[:1], dataset.labels[:1])])

    def test_custom_horovod_config(self, dataset):
        cfg = TrainConfig(lr=0.01)
        hvd = HorovodConfig(algorithm="tree", control_plane="centralized",
                            fusion_threshold_bytes=1024)
        dt = DistributedTrainer(tiny_factory(), 2, cfg, horovod=hvd)
        res = dt.train_epoch(dataset, 1, np.random.default_rng(2), steps=1)[0]
        assert res.exchange.fusion.num_collectives >= 1

    def test_fp16_distributed_step(self, dataset):
        freqs = class_frequencies(dataset.labels)
        cfg = TrainConfig(lr=0.01, precision="fp16", optimizer="sgd")
        dt = DistributedTrainer(tiny_factory(), 2, cfg, freqs)
        res = dt.train_epoch(dataset, 1, np.random.default_rng(3), steps=1)[0]
        assert np.isfinite(res.mean_loss)
        if not res.skipped:
            assert dt.max_replica_divergence() == 0.0

    def test_losses_decrease_over_epoch(self, dataset):
        freqs = class_frequencies(dataset.labels)
        cfg = TrainConfig(lr=0.05, optimizer="larc")
        dt = DistributedTrainer(tiny_factory(), 2, cfg, freqs)
        all_losses = []
        for _ in range(4):
            results = dt.train_epoch(dataset, 1, np.random.default_rng(4))
            all_losses.extend(r.mean_loss for r in results)
        assert np.mean(all_losses[-2:]) < np.mean(all_losses[:2])
