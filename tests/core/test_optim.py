"""Optimizers: SGD/Adam numerics, LARS/LARC adaptation, lag, EASGD."""
import numpy as np
import pytest

from repro.core.optim import (
    LARC,
    LARS,
    SGD,
    Adam,
    EASGDState,
    GradientLag,
    schedules,
)
from repro.framework.parameter import Parameter


def param(value, grad=None, name="p"):
    p = Parameter(np.asarray(value, dtype=np.float32), name=name)
    if grad is not None:
        p.grad = np.asarray(grad, dtype=np.float32)
    return p


class TestSGD:
    def test_vanilla_update(self):
        p = param([1.0, 2.0], grad=[0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = param([0.0], grad=[1.0])
        opt = SGD([p], lr=1.0, momentum=0.5)
        opt.step()          # v=1, p=-1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()          # v=1.5, p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay(self):
        p = param([10.0], grad=[0.0])
        SGD([p], lr=0.1, weight_decay=0.1).step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 1.0])

    def test_skips_gradless_params(self):
        p = param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=0.0)
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_gradient_roundtrip_helpers(self):
        p = param([1.0], grad=[2.0], name="w")
        opt = SGD([p], lr=0.1)
        grads = opt.gradients()
        assert "w" in grads
        opt.load_gradients({"w": np.array([4.0], dtype=np.float32)})
        np.testing.assert_allclose(p.grad, [4.0])

    def test_set_lr(self):
        opt = SGD([param([1.0])], lr=0.1)
        opt.set_lr(0.2)
        assert opt.lr == 0.2
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        p = param([0.0], grad=[0.3])
        Adam([p], lr=0.01).step()
        # Bias-corrected first step ~ lr * sign(g).
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-4)

    def test_adapts_to_gradient_scale(self):
        # Two params, gradients differing 100x: Adam steps are similar size.
        p1 = param([0.0], grad=[100.0], name="a")
        p2 = param([0.0], grad=[1.0], name="b")
        Adam([p1, p2], lr=0.01).step()
        assert abs(p1.data[0]) == pytest.approx(abs(p2.data[0]), rel=1e-3)

    def test_converges_on_quadratic(self):
        p = param([5.0])
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            Adam([param([1.0])], beta1=1.0)


class TestLARSLARC:
    def test_larc_clips_at_global_lr(self):
        # Huge weight norm -> local rate would exceed lr -> clipped.
        p = param(np.full(100, 10.0), grad=np.full(100, 1e-4))
        opt = LARC([p], lr=0.1, momentum=0.0, trust_coefficient=0.02)
        opt.step()
        assert opt.last_local_rates["p"] == pytest.approx(0.1)

    def test_larc_local_rate_when_small(self):
        p = param([1.0], grad=[100.0])
        opt = LARC([p], lr=10.0, momentum=0.0, trust_coefficient=0.02,
                   weight_decay=0.0)
        opt.step()
        # local = 0.02 * 1 / 100 = 2e-4 < 10 -> used as-is.
        assert opt.last_local_rates["p"] == pytest.approx(2e-4, rel=1e-4)

    def test_larc_update_norm_bounded(self):
        # LARC's defining property: update norm never exceeds the plain-SGD
        # update at the global rate (this is what removes warm-up).
        rng = np.random.default_rng(0)
        p = param(rng.normal(size=50), grad=rng.normal(size=50) * 100)
        before = p.data.copy()
        LARC([p], lr=0.01, momentum=0.0).step()
        update = np.linalg.norm(p.data - before)
        sgd_update = 0.01 * np.linalg.norm(p.grad if p.grad is not None
                                           else rng.normal(size=50) * 100)
        # p.grad consumed; recompute bound from the known grad magnitude.
        assert update <= 0.01 * np.linalg.norm(before) * 0.02 / 0.01 + 1e-3

    def test_lars_scales_with_global_lr(self):
        p1 = param([1.0, 1.0], grad=[1.0, 1.0], name="a")
        p2 = param([1.0, 1.0], grad=[1.0, 1.0], name="b")
        o1 = LARS([p1], lr=0.1, momentum=0.0)
        o2 = LARS([p2], lr=0.2, momentum=0.0)
        o1.step(); o2.step()
        d1 = 1.0 - p1.data[0]
        d2 = 1.0 - p2.data[0]
        assert d2 == pytest.approx(2 * d1, rel=1e-4)

    def test_zero_grad_layer_uses_global_lr(self):
        p = param([1.0], grad=[0.0])
        opt = LARC([p], lr=0.1, momentum=0.0)
        opt.step()
        assert opt.last_local_rates["p"] == 0.1

    def test_per_layer_rates_differ(self):
        big = param(np.full(10, 100.0), grad=np.full(10, 1.0), name="big")
        small = param(np.full(10, 0.01), grad=np.full(10, 1.0), name="small")
        opt = LARC([big, small], lr=1.0, momentum=0.0)
        opt.step()
        assert opt.last_local_rates["big"] > opt.last_local_rates["small"]

    def test_trust_coefficient_validation(self):
        with pytest.raises(ValueError):
            LARC([param([1.0])], lr=0.1, trust_coefficient=0.0)


class TestGradientLag:
    def test_lag1_delays_one_step(self):
        p = param([0.0], grad=[1.0])
        lag = GradientLag(SGD([p], lr=1.0), lag=1)
        lag.step()                         # buffered, no update
        np.testing.assert_allclose(p.data, [0.0])
        p.grad = np.array([10.0], dtype=np.float32)
        lag.step()                         # applies the first gradient
        np.testing.assert_allclose(p.data, [-1.0])

    def test_lag0_passthrough(self):
        p = param([0.0], grad=[1.0])
        GradientLag(SGD([p], lr=1.0), lag=0).step()
        np.testing.assert_allclose(p.data, [-1.0])

    def test_lag2(self):
        p = param([0.0])
        lag = GradientLag(SGD([p], lr=1.0), lag=2)
        for g in (1.0, 2.0, 3.0):
            p.grad = np.array([g], dtype=np.float32)
            lag.step()
        # Only the first gradient has been applied.
        np.testing.assert_allclose(p.data, [-1.0])

    def test_flush_drains(self):
        p = param([0.0])
        lag = GradientLag(SGD([p], lr=1.0), lag=2)
        for g in (1.0, 2.0):
            p.grad = np.array([g], dtype=np.float32)
            lag.step()
        lag.flush()
        np.testing.assert_allclose(p.data, [-3.0])

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            GradientLag(SGD([param([1.0])], lr=1.0), lag=-1)

    def test_converges_like_lag0_on_quadratic(self):
        # The paper's Figure 6 finding: lag-1 curves ~ lag-0 curves.
        def run(lag_steps):
            p = param([5.0])
            opt = GradientLag(SGD([p], lr=0.05), lag=lag_steps)
            traj = []
            for _ in range(100):
                p.grad = 2 * p.data
                opt.step()
                traj.append(float(p.data[0]))
            return traj

        t0, t1 = run(0), run(1)
        assert abs(t0[-1]) < 0.1
        assert abs(t1[-1]) < 0.15
        assert abs(t0[-1] - t1[-1]) < 0.1


class TestEASGD:
    def test_consensus_conserves_total(self):
        # EASGD's elastic dynamics conserve center + sum(replicas), so the
        # consensus point is the (n+1)-way average of the initial states.
        center = np.zeros(4, dtype=np.float32)
        state = EASGDState(center, replicas=3, tau=1, beta=0.9)
        xs = [np.full(4, 3.0, dtype=np.float32) for _ in range(3)]
        consensus = (0.0 + 3 * 3.0) / 4
        for _ in range(60):
            state.maybe_synchronize(xs)
        np.testing.assert_allclose(state.center, consensus, atol=0.05)
        for x in xs:
            np.testing.assert_allclose(x, consensus, atol=0.05)

    def test_sync_only_every_tau(self):
        state = EASGDState(np.zeros(2), replicas=2, tau=4)
        xs = [np.ones(2, dtype=np.float32)] * 2
        synced = [state.maybe_synchronize([x.copy() for x in xs])
                  for _ in range(8)]
        assert synced == [False, False, False, True] * 2

    def test_elastic_force_direction(self):
        state = EASGDState(np.zeros(3), replicas=2, rho=0.1)
        force = state.elastic_force(np.full(3, 2.0))
        np.testing.assert_allclose(force, 0.2)

    def test_consensus_distance_shrinks(self):
        rng = np.random.default_rng(0)
        state = EASGDState(np.zeros(5), replicas=4, tau=1, beta=0.8)
        xs = [rng.normal(size=5).astype(np.float32) for _ in range(4)]
        d0 = state.consensus_distance(xs)
        for _ in range(20):
            state.maybe_synchronize(xs)
        assert state.consensus_distance(xs) < d0

    def test_validation(self):
        with pytest.raises(ValueError):
            EASGDState(np.zeros(2), replicas=0)
        with pytest.raises(ValueError):
            EASGDState(np.zeros(2), replicas=2, rho=-1.0)


class TestSchedules:
    def test_constant(self):
        assert schedules.constant(0.1)(1000) == 0.1

    def test_step_decay(self):
        f = schedules.step_decay(1.0, 0.1, every=10)
        assert f(0) == 1.0
        assert f(10) == pytest.approx(0.1)
        assert f(25) == pytest.approx(0.01)

    def test_polynomial_endpoints(self):
        f = schedules.polynomial_decay(1.0, total_steps=100, power=0.9)
        assert f(0) == 1.0
        assert f(100) == 0.0
        assert f(200) == 0.0

    def test_warmup_ramps(self):
        f = schedules.linear_warmup(1.0, warmup_steps=10)
        assert f(0) == pytest.approx(0.1)
        assert f(9) == pytest.approx(1.0)
        assert f(50) == 1.0

    def test_scaling_rules(self):
        assert schedules.linear_scaled_lr(0.1, 8) == pytest.approx(0.8)
        assert schedules.sqrt_scaled_lr(0.1, 16) == pytest.approx(0.4)

    def test_paper_lr_table_anchors(self):
        # Figure 6: (384, 1e-4), (1536, 6.4e-3), (6144, 0.4096).
        for gpus, lr in schedules.PAPER_LR_TABLE:
            assert schedules.paper_lr_for_gpus(gpus) == pytest.approx(lr, rel=1e-6)

    def test_paper_lr_interpolates_monotonically(self):
        lrs = [schedules.paper_lr_for_gpus(g) for g in (384, 768, 1536, 3072, 6144)]
        assert all(b > a for a, b in zip(lrs, lrs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            schedules.step_decay(1.0, 0.5, every=0)
        with pytest.raises(ValueError):
            schedules.paper_lr_for_gpus(0)
