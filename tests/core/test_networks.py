"""Segmentation networks: geometry, gradients, paper configurations."""
import numpy as np
import pytest

from repro.framework import Tensor
from repro.core.networks import (
    ASPP,
    DeepLabConfig,
    DeepLabV3Plus,
    ResNetConfig,
    ResNetEncoder,
    Tiramisu,
    TiramisuConfig,
    deeplab_modified,
    deeplab_stock,
    tiramisu_modified,
    tiramisu_original,
)

RNG = np.random.default_rng(0)


def tiny_tiramisu(**kw):
    defaults = dict(in_channels=4, num_classes=3, base_filters=8, growth=4,
                    down_layers=(2, 2), bottleneck_layers=2, kernel=3, dropout=0.0)
    defaults.update(kw)
    return Tiramisu(TiramisuConfig(**defaults), rng=np.random.default_rng(1))


class TestTiramisuConfig:
    def test_paper_modified_preset(self):
        # Growth 32, blocks (2,2,2,4,5), 5x5 convs (Section V-B5).
        net = tiramisu_modified()
        assert net.config.growth == 32
        assert net.config.down_layers == (2, 2, 2, 4, 5)
        assert net.config.kernel == 5

    def test_paper_original_preset(self):
        # Growth 16, double-depth blocks, 3x3 convs.
        net = tiramisu_original()
        assert net.config.growth == 16
        assert net.config.kernel == 3
        assert net.config.down_layers == (4, 4, 4, 8, 10)

    def test_depth_divisor(self):
        assert TiramisuConfig().depth_divisor == 32
        assert TiramisuConfig(down_layers=(2, 2)).depth_divisor == 4

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            TiramisuConfig(kernel=4)


class TestTiramisuForward:
    def test_output_shape_matches_input(self):
        net = tiny_tiramisu()
        x = Tensor(RNG.normal(size=(2, 4, 16, 24)).astype(np.float32))
        out = net(x)
        assert out.shape == (2, 3, 16, 24)

    def test_indivisible_input_raises(self):
        net = tiny_tiramisu()
        x = Tensor(np.zeros((1, 4, 18, 24), dtype=np.float32))
        with pytest.raises(ValueError, match="divisible"):
            net(x)

    def test_all_parameters_receive_grads(self):
        net = tiny_tiramisu()
        x = Tensor(RNG.normal(size=(1, 4, 8, 8)).astype(np.float32))
        net(x).sum().backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert missing == []

    def test_trace_matches_eager_shape(self):
        net = tiny_tiramisu()
        analysis = net.analyze((4, 16, 24), batch=2)
        assert analysis.total_flops > 0
        # No exception from the probe path, and conv work dominates.
        assert analysis.category_flops("conv_fwd") > analysis.category_flops("pointwise_fwd")

    def test_growth_increases_params(self):
        small = tiny_tiramisu(growth=4)
        big = tiny_tiramisu(growth=8)
        assert big.num_parameters() > small.num_parameters()

    def test_paper_flops_tiramisu(self):
        # Figure 2: 4.188 TF/sample for the 16-channel modified Tiramisu.
        a = tiramisu_modified().analyze((16, 768, 1152), batch=1)
        assert a.flops_per_sample() / 1e12 == pytest.approx(4.188, rel=0.15)

    def test_paper_flops_tiramisu_4ch(self):
        # Figure 2: 3.703 TF/sample with 4 input channels (Piz Daint).
        a = Tiramisu(TiramisuConfig(in_channels=4)).analyze((4, 768, 1152), batch=1)
        assert a.flops_per_sample() / 1e12 == pytest.approx(3.703, rel=0.15)


class TestResNetEncoder:
    def test_output_stride_8(self):
        enc = ResNetEncoder(ResNetConfig(in_channels=4, width=0.125),
                            rng=np.random.default_rng(2))
        x = Tensor(RNG.normal(size=(1, 4, 32, 48)).astype(np.float32))
        feats, low = enc(x)
        assert feats.shape[2:] == (4, 6)      # H/8, W/8
        assert low.shape[2:] == (8, 12)       # H/4, W/4

    def test_channel_widths(self):
        enc = ResNetEncoder(ResNetConfig(in_channels=16, width=1.0))
        assert enc.out_channels == 2048
        assert enc.low_level_channels == 256

    def test_width_scaling(self):
        enc = ResNetEncoder(ResNetConfig(in_channels=4, width=0.25))
        assert enc.out_channels == 512

    def test_indivisible_raises(self):
        enc = ResNetEncoder(ResNetConfig(in_channels=4, width=0.125))
        with pytest.raises(ValueError, match="divisible"):
            enc(Tensor(np.zeros((1, 4, 30, 48), dtype=np.float32)))

    def test_resnet50_block_counts(self):
        cfg = ResNetConfig()
        assert cfg.blocks == (3, 4, 6, 3)

    def test_atrous_stages(self):
        enc = ResNetEncoder(ResNetConfig(in_channels=4, width=0.125))
        # Stage 3 blocks use dilation 2, stage 4 dilation 4 (Figure 1).
        assert enc.stages[2][0].conv2.dilation == 2
        assert enc.stages[3][0].conv2.dilation == 4


class TestASPP:
    def test_paper_dilations(self):
        aspp = ASPP(64, 16)
        dil = [b.conv.dilation for b in aspp.atrous_branches]
        assert dil == [12, 24, 36]

    def test_preserves_spatial(self):
        aspp = ASPP(8, 4, dilations=(2, 4), rng=np.random.default_rng(3))
        x = Tensor(RNG.normal(size=(1, 8, 16, 16)).astype(np.float32))
        out = aspp(x)
        assert out.shape == (1, 4, 16, 16)


class TestDeepLab:
    def test_fullres_output_shape(self):
        net = deeplab_modified(in_channels=4, width=0.125,
                               rng=np.random.default_rng(4))
        x = Tensor(RNG.normal(size=(1, 4, 16, 24)).astype(np.float32))
        assert net(x).shape == (1, 3, 16, 24)

    def test_stock_output_shape_also_fullres_logits(self):
        net = deeplab_stock(in_channels=4, width=0.125,
                            rng=np.random.default_rng(5))
        x = Tensor(RNG.normal(size=(1, 4, 16, 24)).astype(np.float32))
        assert net(x).shape == (1, 3, 16, 24)

    def test_stock_cheaper_than_fullres(self):
        # The paper paid for the full-res decoder; stock cuts decoder FLOPs.
        full = deeplab_modified(in_channels=16).analyze((16, 96, 144))
        stock = deeplab_stock(in_channels=16).analyze((16, 96, 144))
        assert stock.total_flops < full.total_flops

    def test_paper_flops_deeplab(self):
        # Figure 2: 14.41 TF/sample.
        a = deeplab_modified().analyze((16, 768, 1152), batch=1)
        assert a.flops_per_sample() / 1e12 == pytest.approx(14.41, rel=0.15)

    def test_gradients_flow_everywhere(self):
        net = deeplab_modified(in_channels=4, width=0.125,
                               rng=np.random.default_rng(6))
        x = Tensor(RNG.normal(size=(1, 4, 8, 8)).astype(np.float32))
        net(x).sum().backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert missing == []

    def test_invalid_decoder(self):
        with pytest.raises(ValueError):
            DeepLabConfig(decoder="octree")

    def test_deterministic_construction(self):
        a = deeplab_modified(in_channels=4, width=0.125, rng=np.random.default_rng(7))
        b = deeplab_modified(in_channels=4, width=0.125, rng=np.random.default_rng(7))
        for (na, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestArchitectureComparison:
    def test_deeplab_heavier_than_tiramisu(self):
        # Paper: "the atrous convolutions result in a more computationally
        # expensive network than Tiramisu" (14.41 vs 4.188 TF/sample).
        dl = deeplab_modified().analyze((16, 96, 192))
        tm = tiramisu_modified().analyze((16, 96, 192))
        assert dl.total_flops > 2 * tm.total_flops
