"""FLOP methodology (Section VI) and convergence curves (Figure 6)."""
import numpy as np
import pytest

from repro.core import (
    PAPER_OP_COUNTS_TF,
    loss_trajectory_summary,
    network_flop_table,
    paper_conv_example_flops,
    wall_clock_curve,
)
from repro.core.convergence import ConvergenceCurve


class TestFlopMethodology:
    def test_paper_worked_example(self):
        # 3x3 conv, 1152x768, 48->32 channels, batch 2 = 48.9e9 FLOPs.
        assert paper_conv_example_flops() == pytest.approx(48.9e9, rel=0.01)

    def test_network_table_matches_paper(self):
        rows = network_flop_table()
        by_name = {r.name: r for r in rows}
        for name, paper_tf in PAPER_OP_COUNTS_TF.items():
            measured = by_name[name].tf_per_sample
            assert measured == pytest.approx(paper_tf, rel=0.15), name

    def test_ratio_property(self):
        rows = network_flop_table()
        for r in rows:
            assert 0.8 < r.ratio_to_paper < 1.2
            assert r.parameters > 1e6
            assert r.kernel_count > 100


class TestConvergenceCurves:
    LOSSES = list(np.linspace(1400, 300, 60))

    def test_wall_clock_mapping_monotone(self):
        c = wall_clock_curve(self.LOSSES, "tiramisu", gpus=384, precision="fp32")
        assert len(c.times_s) == 60
        assert (np.diff(c.times_s) > 0).all()

    def test_fp16_finishes_sooner(self):
        # The paper's Figure 6 observation: FP16 converges in less wall time
        # because steps are faster (same trajectory).
        c32 = wall_clock_curve(self.LOSSES, "deeplabv3+", 1536, "fp32")
        c16 = wall_clock_curve(self.LOSSES, "deeplabv3+", 1536, "fp16")
        # Per-sample wall time: fp16 runs batch 2 per step.
        t32 = c32.times_s[-1]
        t16 = c16.times_s[-1] / 2
        assert t16 < t32

    def test_lag_changes_little(self):
        c0 = wall_clock_curve(self.LOSSES, "deeplabv3+", 1536, "fp16", lag=0)
        c1 = wall_clock_curve(self.LOSSES, "deeplabv3+", 1536, "fp16", lag=1)
        assert c1.times_s[-1] <= c0.times_s[-1]
        assert abs(c1.times_s[-1] - c0.times_s[-1]) / c0.times_s[-1] < 0.2

    def test_moving_average_smooths(self):
        noisy = 500 + 50 * np.sin(np.arange(100)) + np.linspace(500, 0, 100)
        c = ConvergenceCurve("x", np.arange(100.0), noisy, 1, "fp32", 0)
        smooth = c.moving_average(10)
        assert smooth.std() < noisy.std()

    def test_time_to_loss(self):
        c = wall_clock_curve(self.LOSSES, "tiramisu", 384, "fp32")
        t = c.time_to_loss(800.0)
        assert t is not None and t > 0
        assert c.time_to_loss(-100.0) is None

    def test_label_default(self):
        c = wall_clock_curve([1.0, 0.5], "tiramisu", 384, "fp32", lag=1)
        assert "384" in c.label and "lag=1" in c.label


class TestTrajectorySummary:
    def test_converging_series(self):
        s = loss_trajectory_summary(np.linspace(10, 1, 50))
        assert s["converging"]
        assert s["reduction"] > 0
        assert s["monotone_fraction"] == 1.0

    def test_diverging_series(self):
        s = loss_trajectory_summary(np.linspace(1, 10, 50))
        assert not s["converging"]

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            loss_trajectory_summary(np.array([1.0, 2.0]))
