"""Class weighting (Section V-B1) and segmentation metrics."""
import numpy as np
import pytest

from repro.core.losses import (
    class_weights,
    inverse_frequency_weights,
    inverse_sqrt_frequency_weights,
    pixel_weight_map,
    segmentation_loss,
    tc_penalty_ratio,
    uniform_class_weights,
)
from repro.core.metrics import (
    SegmentationReport,
    confusion_matrix,
    iou_per_class,
    mean_iou,
    pixel_accuracy,
)
from repro.framework import Tensor

#: The paper's class frequencies: BG 98.2%, TC <0.1%, AR 1.7%.
PAPER_FREQS = np.array([0.982, 0.001, 0.017])


class TestWeightStrategies:
    def test_uniform(self):
        np.testing.assert_allclose(uniform_class_weights(PAPER_FREQS), 1.0)

    def test_inverse_ratios(self):
        w = inverse_frequency_weights(PAPER_FREQS)
        assert w[1] / w[0] == pytest.approx(0.982 / 0.001, rel=1e-6)

    def test_inverse_sqrt_ratios(self):
        w = inverse_sqrt_frequency_weights(PAPER_FREQS)
        assert w[1] / w[0] == pytest.approx(np.sqrt(0.982 / 0.001), rel=1e-6)

    def test_inverse_sqrt_more_moderate(self):
        # The whole point: sqrt weights have a much smaller dynamic range
        # (the inverse range is the sqrt range squared).
        wi = inverse_frequency_weights(PAPER_FREQS)
        ws = inverse_sqrt_frequency_weights(PAPER_FREQS)
        range_i = wi.max() / wi.min()
        range_s = ws.max() / ws.min()
        assert range_i == pytest.approx(range_s**2, rel=1e-6)
        assert range_i > 20 * range_s

    def test_most_frequent_class_weighs_one(self):
        for fn in (inverse_frequency_weights, inverse_sqrt_frequency_weights):
            w = fn(PAPER_FREQS)
            assert w[0] == pytest.approx(1.0)
            assert w[1] > w[2] > w[0]

    def test_paper_37x_tc_penalty(self):
        # "penalizes a false negative on a TC by roughly 37x more than a
        # false positive" — sqrt(f_BG / f_TC) with TC < 0.1%.
        freqs = np.array([0.9822, 0.00073, 0.017])
        w = inverse_sqrt_frequency_weights(freqs)
        assert tc_penalty_ratio(w) == pytest.approx(37.0, rel=0.05)

    def test_dispatch(self):
        for name in ("none", "inverse", "inverse_sqrt"):
            w = class_weights(PAPER_FREQS, name)
            assert w.shape == (3,)
        with pytest.raises(ValueError, match="strategy"):
            class_weights(PAPER_FREQS, "quadratic")

    def test_zero_frequency_floored(self):
        w = inverse_frequency_weights(np.array([1.0, 0.0]))
        assert np.isfinite(w).all()


class TestPixelWeightMap:
    def test_lookup(self):
        labels = np.array([[0, 1], [2, 0]])
        w = np.array([1.0, 10.0, 5.0])
        out = pixel_weight_map(labels, w)
        np.testing.assert_allclose(out, [[1, 10], [5, 1]])
        assert out.dtype == np.float32

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pixel_weight_map(np.array([[3]]), np.ones(3))


class TestSegmentationLoss:
    def test_unweighted_all_bg_prediction_trap(self):
        # Predicting pure background: unweighted loss is tiny (98.2%
        # "accuracy"), weighted loss is much larger.
        rng = np.random.default_rng(0)
        labels = (rng.random((1, 16, 16)) < 0.02).astype(np.int64)  # ~2% class 1
        logits = np.zeros((1, 3, 16, 16))
        logits[:, 0] = 8.0  # confident BG everywhere
        t = Tensor(logits)
        freqs = np.bincount(labels.ravel(), minlength=3) / labels.size
        l_none = segmentation_loss(t, labels, freqs, "none",
                                   normalization="mean")
        l_sqrt = segmentation_loss(t, labels, freqs, "inverse_sqrt",
                                   normalization="mean")
        assert l_sqrt.item() > 3 * l_none.item()

    def test_weighted_mean_normalization_stable_across_strategies(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, size=(1, 8, 8))
        logits = rng.normal(size=(1, 3, 8, 8))
        freqs = np.bincount(labels.ravel(), minlength=3) / labels.size
        losses = [segmentation_loss(Tensor(logits), labels, freqs, s).item()
                  for s in ("none", "inverse", "inverse_sqrt")]
        # weighted_mean keeps all strategies in the same ballpark.
        assert max(losses) / min(losses) < 5


class TestConfusionMatrix:
    def test_manual(self):
        pred = np.array([0, 1, 1, 2])
        true = np.array([0, 1, 2, 2])
        cm = confusion_matrix(pred, true, 3)
        expect = np.array([[1, 0, 0], [0, 1, 0], [0, 1, 1]])
        np.testing.assert_array_equal(cm, expect)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4), 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 3)


class TestIoU:
    def test_perfect_prediction(self):
        cm = np.diag([10, 5, 3])
        np.testing.assert_allclose(iou_per_class(cm), 1.0)
        assert mean_iou(cm) == 1.0

    def test_total_miss(self):
        cm = np.array([[0, 5], [5, 0]])
        np.testing.assert_allclose(iou_per_class(cm), 0.0)

    def test_known_value(self):
        # TP=6, FP=2, FN=3 -> IoU = 6/11.
        cm = np.array([[10, 3], [2, 6]])
        assert iou_per_class(cm)[1] == pytest.approx(6 / 11)

    def test_absent_class_is_nan_and_ignored(self):
        cm = np.array([[5, 0, 0], [0, 5, 0], [0, 0, 0]])
        ious = iou_per_class(cm)
        assert np.isnan(ious[2])
        assert mean_iou(cm) == 1.0

    def test_accuracy_trap(self):
        # All-BG prediction on 98.2% BG data: accuracy 98.2%, IoU useless.
        n = 1000
        true = np.zeros(n, dtype=int)
        true[:18] = 2
        pred = np.zeros(n, dtype=int)
        cm = confusion_matrix(pred, true, 3)
        assert pixel_accuracy(cm) == pytest.approx(0.982)
        assert mean_iou(cm) < 0.5


class TestSegmentationReport:
    def test_accumulates(self):
        rep = SegmentationReport(2, ("BG", "TC"))
        rep.update(np.array([0, 1]), np.array([0, 1]))
        rep.update(np.array([1, 1]), np.array([0, 1]))
        assert rep.cm.sum() == 4
        assert 0 < rep.mean_iou < 1
        s = rep.summary()
        assert set(s) == {"mean_iou", "accuracy", "iou"}
        assert "TC" in s["iou"]
