"""Dataset assembly: splits, normalization, sharding, file store."""
import numpy as np
import pytest

from repro.climate import (
    ChannelNormalizer,
    ClimateDataset,
    DatasetSplits,
    Grid,
    PAPER_DATASET,
    SampleFileStore,
    SerializationGate,
)

GRID = Grid(32, 48)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=20, seed=1)


class TestSplits:
    def test_paper_fractions(self):
        s = DatasetSplits.make(1000, np.random.default_rng(0))
        assert len(s.train) == 800
        assert len(s.validation) == 100
        assert len(s.test) == 100

    def test_disjoint_and_complete(self):
        s = DatasetSplits.make(97, np.random.default_rng(1))
        all_idx = np.concatenate([s.train, s.validation, s.test])
        assert len(set(all_idx.tolist())) == 97

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            DatasetSplits.make(10, np.random.default_rng(0), train_frac=0.9,
                               val_frac=0.2)


class TestNormalizer:
    def test_standardizes(self):
        rng = np.random.default_rng(0)
        imgs = rng.normal(loc=5.0, scale=2.0, size=(10, 3, 8, 8)).astype(np.float32)
        norm = ChannelNormalizer().fit(imgs)
        out = norm.transform(imgs)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ChannelNormalizer().transform(np.zeros((1, 3, 4, 4)))

    def test_constant_channel_no_blowup(self):
        imgs = np.zeros((4, 2, 3, 3), dtype=np.float32)
        norm = ChannelNormalizer().fit(imgs)
        assert np.isfinite(norm.transform(imgs)).all()


class TestClimateDataset:
    def test_shapes(self, dataset):
        assert dataset.images.shape == (20, 16, 32, 48)
        assert dataset.labels.shape == (20, 32, 48)
        assert dataset.channels == 16
        assert len(dataset) == 20

    def test_normalized(self, dataset):
        tr = dataset.images[dataset.splits.train]
        assert abs(tr.mean()) < 0.3
        assert 0.5 < tr.std() < 2.0

    def test_channel_subset(self):
        ds = ClimateDataset.synthesize(GRID, num_samples=4, seed=2, channels=4)
        assert ds.channels == 4

    def test_shard_disjoint_union(self, dataset):
        split = dataset.splits.train
        shards = [dataset.shard_indices(split, r, 4) for r in range(4)]
        merged = np.concatenate(shards)
        assert len(set(merged.tolist())) == len(split)

    def test_shard_cap(self, dataset):
        shard = dataset.shard_indices(dataset.splits.train, 0, 2, per_rank_cap=3)
        assert len(shard) == 3

    def test_shard_rank_out_of_range(self, dataset):
        with pytest.raises(ValueError):
            dataset.shard_indices(dataset.splits.train, 5, 4)

    def test_batches_drop_last(self, dataset):
        batches = list(dataset.batches(dataset.splits.train, batch_size=3))
        for imgs, labs in batches:
            assert imgs.shape[0] == 3
            assert labs.shape == (3, 32, 48)

    def test_batches_shuffled_with_rng(self, dataset):
        b1 = [l for _, l in dataset.batches(dataset.splits.train, 2,
                                            np.random.default_rng(0))]
        b2 = [l for _, l in dataset.batches(dataset.splits.train, 2,
                                            np.random.default_rng(1))]
        assert not all(np.array_equal(a, b) for a, b in zip(b1, b2))

    def test_deterministic_synthesis(self):
        a = ClimateDataset.synthesize(GRID, num_samples=3, seed=5)
        b = ClimateDataset.synthesize(GRID, num_samples=3, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestSampleFileStore:
    def test_write_read_roundtrip(self, tmp_path):
        store = SampleFileStore(tmp_path / "ds")
        img = np.random.default_rng(0).normal(size=(4, 8, 8)).astype(np.float32)
        lab = np.zeros((8, 8), dtype=np.int8)
        store.write_sample(0, img, lab)
        rimg, rlab = store.read_sample(0)
        np.testing.assert_array_equal(rimg, img)
        np.testing.assert_array_equal(rlab, lab)

    def test_manifest(self, tmp_path):
        store = SampleFileStore(tmp_path / "ds")
        store.write_sample(0, np.zeros((2, 8, 8), np.float32), np.zeros((8, 8), np.int8))
        store.write_manifest(Grid(8, 8), 1)
        m = store.read_manifest()
        assert m["count"] == 1
        assert m["sample_file_bytes"] > 0

    def test_shape_mismatch_raises(self, tmp_path):
        store = SampleFileStore(tmp_path / "ds")
        with pytest.raises(ValueError):
            store.write_sample(0, np.zeros((2, 8, 8)), np.zeros((4, 4)))

    def test_gate_counts_acquisitions(self, tmp_path):
        store = SampleFileStore(tmp_path / "ds")
        store.write_sample(0, np.zeros((2, 8, 8), np.float32), np.zeros((8, 8), np.int8))
        gate = SerializationGate()
        store.read_sample(0, gate=gate)
        store.read_sample(0, gate=gate)
        assert gate.stats["acquisitions"] == 2

    def test_file_paths_sorted(self, tmp_path):
        store = SampleFileStore(tmp_path / "ds")
        for i in (2, 0, 1):
            store.write_sample(i, np.zeros((1, 4, 4), np.float32), np.zeros((4, 4), np.int8))
        paths = store.file_paths()
        assert len(store) == 3
        assert [p.name for p in paths] == sorted(p.name for p in paths)


class TestPaperDatasetFacts:
    def test_sample_size_near_56mb(self):
        # 1152*768*16*4 bytes ~ 56.6 MB per sample.
        assert 55e6 < PAPER_DATASET.sample_bytes < 62e6

    def test_total_is_about_3_5_tb(self):
        # "the climate data used in this study is currently 3.5 TB"
        assert 3.3 < PAPER_DATASET.total_tb < 3.9

    def test_naive_replication_factor_23x(self):
        # "each individual file ... read by 23 nodes on average" at 1024
        # nodes x 1500 files.
        r = PAPER_DATASET.replication_factor(1024, 1500)
        assert 20 < r < 27
