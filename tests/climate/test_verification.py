"""Object-based detection verification (POD/FAR/CSI)."""
import numpy as np
import pytest

from repro.climate import MatchResult, detection_scores, match_objects


def blob(shape, y, x, r=2):
    mask = np.zeros(shape, dtype=bool)
    yy, xx = np.ogrid[: shape[0], : shape[1]]
    mask[(yy - y) ** 2 + (xx - x) ** 2 <= r * r] = True
    return mask


class TestMatchObjects:
    def test_perfect_match(self):
        truth = blob((20, 30), 10, 10)
        res = match_objects(truth, truth)
        assert res.hits == 1 and res.misses == 0 and res.false_alarms == 0
        assert res.pod == 1.0 and res.far == 0.0 and res.csi == 1.0
        assert res.pairs[0][2] == pytest.approx(1.0)

    def test_miss(self):
        truth = blob((20, 30), 10, 10)
        pred = np.zeros((20, 30), dtype=bool)
        res = match_objects(pred, truth)
        assert res.misses == 1 and res.hits == 0
        assert res.pod == 0.0

    def test_false_alarm(self):
        pred = blob((20, 30), 5, 25)
        truth = np.zeros((20, 30), dtype=bool)
        res = match_objects(pred, truth)
        assert res.false_alarms == 1
        assert res.far == 1.0

    def test_partial_overlap_counts_as_hit(self):
        truth = blob((20, 30), 10, 10, r=3)
        pred = blob((20, 30), 11, 11, r=3)
        res = match_objects(pred, truth, min_iou=0.1)
        assert res.hits == 1
        assert 0.1 <= res.pairs[0][2] < 1.0

    def test_below_min_iou_not_matched(self):
        truth = blob((20, 30), 10, 10, r=2)
        pred = blob((20, 30), 10, 13, r=2)  # barely touching
        res = match_objects(pred, truth, min_iou=0.5)
        assert res.hits == 0
        assert res.misses == 1 and res.false_alarms == 1

    def test_one_to_one_matching(self):
        # Two predictions over one truth: only one can be the hit.
        truth = blob((30, 40), 15, 15, r=4)
        pred = blob((30, 40), 14, 14, r=3) | blob((30, 40), 17, 18, r=3)
        # Make the two predicted blobs disconnected.
        pred[15:17, 16] = False
        res = match_objects(pred, truth, min_iou=0.05)
        assert res.hits <= 1

    def test_periodic_components_matched_across_seam(self):
        truth = np.zeros((10, 20), dtype=bool)
        truth[5, :2] = truth[5, -2:] = True
        res = match_objects(truth, truth)
        assert res.hits == 1  # one wrapped object, not two

    def test_empty_both(self):
        res = match_objects(np.zeros((5, 5), bool), np.zeros((5, 5), bool))
        assert res.hits == res.misses == res.false_alarms == 0
        assert np.isnan(res.pod)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            match_objects(np.zeros((5, 5), bool), np.zeros((5, 6), bool))

    def test_invalid_min_iou(self):
        with pytest.raises(ValueError):
            match_objects(np.zeros((5, 5), bool), np.zeros((5, 5), bool),
                          min_iou=0.0)


class TestDetectionScores:
    def test_batch_accumulation(self):
        truth = np.zeros((2, 20, 30), dtype=np.int8)
        truth[0][blob((20, 30), 10, 10)] = 1
        truth[1][blob((20, 30), 5, 20)] = 1
        pred = truth.copy()
        pred[1][:] = 0  # second frame missed entirely
        res = detection_scores(pred, truth, class_id=1)
        assert res.hits == 1 and res.misses == 1
        assert res.pod == pytest.approx(0.5)

    def test_2d_input_promoted(self):
        truth = np.zeros((20, 30), dtype=np.int8)
        truth[blob((20, 30), 10, 10)] = 2
        res = detection_scores(truth, truth, class_id=2)
        assert res.hits == 1

    def test_other_classes_ignored(self):
        truth = np.zeros((20, 30), dtype=np.int8)
        truth[blob((20, 30), 10, 10)] = 2
        pred = np.zeros_like(truth)
        pred[blob((20, 30), 10, 10)] = 1  # right place, wrong class
        res = detection_scores(pred, truth, class_id=2)
        assert res.hits == 0 and res.misses == 1

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            detection_scores(np.zeros(5), np.zeros(5), class_id=1)

    def test_csi_combines_both_errors(self):
        r = MatchResult(hits=2, misses=1, false_alarms=1, pairs=())
        assert r.csi == pytest.approx(0.5)
        assert r.pod == pytest.approx(2 / 3)
        assert r.far == pytest.approx(1 / 3)
