"""Grid geometry."""
import numpy as np
import pytest

from repro.climate import CHANNEL_NAMES, PAPER_CHANNELS, PAPER_GRID, Grid


class TestGrid:
    def test_paper_grid_dimensions(self):
        # 0.25-degree 1152 x 768 (lon x lat), Section III-A2.
        assert PAPER_GRID.nlat == 768
        assert PAPER_GRID.nlon == 1152
        assert PAPER_GRID.shape == (768, 1152)
        np.testing.assert_allclose(PAPER_GRID.deg_per_cell_lat, 0.234375)

    def test_sixteen_channels(self):
        assert PAPER_CHANNELS == 16
        assert len(CHANNEL_NAMES) == 16
        assert "TMQ" in CHANNEL_NAMES and "PSL" in CHANNEL_NAMES

    def test_lat_range(self):
        g = Grid(96, 144)
        lats = g.lats
        assert lats[0] > -90 and lats[-1] < 90
        assert np.all(np.diff(lats) > 0)
        np.testing.assert_allclose(lats[0], -90 + 180 / 96 / 2)

    def test_lon_range_periodic(self):
        g = Grid(96, 144)
        lons = g.lons
        assert lons[0] > 0 and lons[-1] < 360

    def test_index_roundtrip(self):
        g = Grid(96, 144)
        for lat in (-60.0, 0.0, 45.0):
            i = g.lat_index(lat)
            assert abs(g.lats[i] - lat) <= g.deg_per_cell_lat
        for lon in (0.5, 180.0, 359.0):
            j = g.lon_index(lon)
            diff = abs(g.lons[j] - lon)
            assert min(diff, 360 - diff) <= g.deg_per_cell_lon

    def test_lon_index_wraps(self):
        g = Grid(96, 144)
        assert g.lon_index(361.0) == g.lon_index(1.0)
        assert g.lon_index(-1.0) == g.lon_index(359.0)

    def test_angular_distance_zero_at_center(self):
        g = Grid(96, 144)
        d = g.angular_distance_deg(10.0, 100.0)
        i, j = g.lat_index(10.0), g.lon_index(100.0)
        assert d[i, j] < 2.0
        assert d.shape == g.shape

    def test_angular_distance_periodic_in_lon(self):
        g = Grid(96, 144)
        d = g.angular_distance_deg(0.0, 1.0)
        # A point just west of 0 degrees should be close, not ~360 away.
        j_west = g.lon_index(359.0)
        i_eq = g.lat_index(0.0)
        assert d[i_eq, j_west] < 5.0

    def test_too_small_grid_raises(self):
        with pytest.raises(ValueError, match="too small"):
            Grid(4, 100)

    def test_meshgrid_shapes(self):
        g = Grid(32, 48)
        lat2d, lon2d = g.meshgrid()
        assert lat2d.shape == (32, 48)
        assert lon2d.shape == (32, 48)
        assert np.all(lat2d[0] == g.lats[0])
