"""Cyclone tracking across frames and storm-level analytics."""
import numpy as np
import pytest

from repro.climate import (
    Grid,
    SnapshotSynthesizer,
    TCCandidate,
    Track,
    advect_cyclone,
    basin_summary,
    cell_areas_km2,
    cyclone_mask,
    detect_cyclones,
    generate_sequence,
    radial_wind_profile,
    storm_statistics,
    track_cyclones,
)
from repro.climate.cyclones import TropicalCyclone, imprint_cyclone
from repro.climate.grid import CHANNEL_NAMES

GRID = Grid(64, 96)


def cand(lat, lon):
    return TCCandidate(lat_idx=0, lon_idx=0, lat=lat, lon=lon,
                       depression_pa=2000.0, warm_core_k=2.0, wind_max=30.0)


class TestAdvection:
    def test_moves_west_and_poleward(self):
        rng = np.random.default_rng(0)
        tc = TropicalCyclone(15.0, 180.0, 3.0, 40.0, 45.0, 3.0)
        moved = tc
        for _ in range(8):  # one day of 3-hourly steps
            moved = advect_cyclone(moved, rng)
        dlon = (moved.lon - tc.lon + 180) % 360 - 180
        assert dlon < 0          # westward
        assert moved.lat > tc.lat  # poleward (NH)

    def test_southern_hemisphere_drifts_south(self):
        rng = np.random.default_rng(1)
        tc = TropicalCyclone(-15.0, 90.0, 3.0, 40.0, 45.0, 3.0)
        for _ in range(8):
            tc = advect_cyclone(tc, rng)
        assert tc.lat < -15.0

    def test_intensity_bounded(self):
        rng = np.random.default_rng(2)
        tc = TropicalCyclone(15.0, 180.0, 3.0, 79.0, 89.0, 3.0)
        for _ in range(50):
            tc = advect_cyclone(tc, rng)
            assert 8.0 <= tc.depth_hpa <= 80.0
            assert 12.0 <= tc.vmax <= 90.0


class TestSequence:
    def test_sequence_shapes_and_truth(self):
        snaps, truth = generate_sequence(GRID, steps=3, seed=5)
        assert len(snaps) == 3 and len(truth) == 3
        for snap in snaps:
            assert snap.to_array().shape == (16,) + GRID.shape
        # Storm count is constant across the sequence (no genesis/lysis yet).
        counts = {len(t) for t in truth}
        assert len(counts) == 1

    def test_storms_actually_move(self):
        _, truth = generate_sequence(GRID, steps=4, seed=7)
        if truth[0]:
            first, last = truth[0][0], truth[-1][0]
            assert (first.lat, first.lon) != (last.lat, last.lon)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            generate_sequence(GRID, steps=0)


class TestTracker:
    def test_stitches_moving_storm(self):
        frames = [[cand(15.0, 180.0)], [cand(15.5, 179.0)], [cand(16.0, 178.2)]]
        tracks = track_cyclones(frames, max_step_deg=3.0, min_duration=2)
        assert len(tracks) == 1
        assert tracks[0].duration == 3
        assert tracks[0].frames == [0, 1, 2]

    def test_far_jump_starts_new_track(self):
        frames = [[cand(15.0, 180.0)], [cand(15.0, 140.0)]]
        tracks = track_cyclones(frames, max_step_deg=4.0, min_duration=1)
        assert len(tracks) == 2

    def test_min_duration_filters_flickers(self):
        frames = [[cand(15.0, 180.0)], [], [cand(-20.0, 30.0)]]
        tracks = track_cyclones(frames, min_duration=2)
        assert tracks == []

    def test_two_parallel_storms(self):
        frames = [
            [cand(15.0, 180.0), cand(-12.0, 40.0)],
            [cand(15.4, 179.2), cand(-12.5, 39.3)],
        ]
        tracks = track_cyclones(frames, max_step_deg=3.0, min_duration=2)
        assert len(tracks) == 2

    def test_dateline_crossing(self):
        frames = [[cand(15.0, 359.5)], [cand(15.2, 0.8)]]
        tracks = track_cyclones(frames, max_step_deg=3.0, min_duration=2)
        assert len(tracks) == 1

    def test_displacement_positive_for_moving(self):
        frames = [[cand(15.0, 180.0)], [cand(16.0, 179.0)]]
        (track,) = track_cyclones(frames, min_duration=2)
        assert track.displacement_deg(GRID) > 1.0

    def test_end_to_end_on_synthetic_sequence(self):
        synth = SnapshotSynthesizer(GRID, mean_cyclones=2.5, mean_rivers=0.0)
        snaps, truth = generate_sequence(GRID, steps=4, seed=11,
                                         synthesizer=synth)
        per_frame = [detect_cyclones(s.fields, GRID) for s in snaps]
        tracks = track_cyclones(per_frame, max_step_deg=5.0, min_duration=3)
        n_truth = len(truth[0])
        # The tracker recovers roughly the planted storm population.
        assert abs(len(tracks) - n_truth) <= max(1, n_truth)


class TestAnalytics:
    def _storm_scene(self):
        synth = SnapshotSynthesizer(GRID, mean_cyclones=0, mean_rivers=0,
                                    noise_scale=0.3)
        snap = synth.generate(3)
        tc = TropicalCyclone(18.0, 140.0, 3.0, 45.0, 50.0, 3.5)
        imprint_cyclone(snap.fields, GRID, tc)
        cands = detect_cyclones(snap.fields, GRID)
        mask = cyclone_mask(snap.fields, GRID, cands)
        return snap, tc, mask

    def test_cell_areas_cos_weighted(self):
        areas = cell_areas_km2(GRID)
        eq = areas[GRID.lat_index(0.0), 0]
        polar = areas[GRID.lat_index(85.0), 0]
        assert eq > 5 * polar
        # Total within 2% of Earth's surface area.
        assert areas.sum() == pytest.approx(5.1e8, rel=0.02)

    def test_storm_statistics_locate_storm(self):
        snap, tc, mask = self._storm_scene()
        stats = storm_statistics(snap.fields, mask, GRID)
        assert len(stats) == 1
        s = stats[0]
        assert abs(s.center_lat - tc.lat) < 4.0
        assert s.max_wind_ms > 25.0
        assert s.min_psl_hpa < 1005.0
        assert s.power_dissipation_index > 0
        assert s.area_km2 > 1e4

    def test_conditional_precip_above_background(self):
        snap, _, mask = self._storm_scene()
        (s,) = storm_statistics(snap.fields, mask, GRID)
        background = snap.fields["PRECT"][~mask].mean()
        assert s.mean_conditional_precip > 2 * background

    def test_empty_mask(self):
        snap, _, _ = self._storm_scene()
        assert storm_statistics(snap.fields, np.zeros(GRID.shape, bool), GRID) == []

    def test_mask_shape_validated(self):
        snap, _, _ = self._storm_scene()
        with pytest.raises(ValueError):
            storm_statistics(snap.fields, np.zeros((4, 4), bool), GRID)

    def test_radial_profile_peaks_off_center(self):
        snap, tc, _ = self._storm_scene()
        radii, profile = radial_wind_profile(snap.fields, GRID, tc.lat, tc.lon,
                                             max_radius_deg=12.0, bins=8)
        assert len(radii) == 8
        valid = ~np.isnan(profile)
        peak_bin = int(np.nanargmax(profile))
        # Peak wind near the radius of maximum wind (~2.25 deg), not at 0 or
        # the outer edge.
        assert 0 < radii[peak_bin] < 8.0
        assert profile[valid].max() > 20.0

    def test_radial_profile_validation(self):
        snap, tc, _ = self._storm_scene()
        with pytest.raises(ValueError):
            radial_wind_profile(snap.fields, GRID, tc.lat, tc.lon, bins=0)

    def test_basin_summary(self):
        snap, _, mask = self._storm_scene()
        stats = storm_statistics(snap.fields, mask, GRID)
        summary = basin_summary(stats)
        assert summary["count"] == 1
        assert summary["total_pdi"] == stats[0].power_dissipation_index
        assert basin_summary([])["count"] == 0
