"""Synthetic CAM5 snapshot generation."""
import numpy as np
import pytest

from repro.climate import CHANNEL_NAMES, Grid, SnapshotSynthesizer
from repro.climate.cyclones import TropicalCyclone, imprint_cyclone, sample_cyclones
from repro.climate.rivers import imprint_river, sample_rivers

GRID = Grid(64, 96)


class TestSynthesizer:
    def test_deterministic_by_seed(self):
        s = SnapshotSynthesizer(GRID)
        a = s.generate(7).to_array()
        b = s.generate(7).to_array()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        s = SnapshotSynthesizer(GRID)
        assert not np.array_equal(s.generate(1).to_array(), s.generate(2).to_array())

    def test_array_shape_and_order(self):
        snap = SnapshotSynthesizer(GRID).generate(0)
        arr = snap.to_array()
        assert arr.shape == (16, 64, 96)
        assert arr.dtype == np.float32
        np.testing.assert_array_equal(arr[0], snap.fields["TMQ"])
        assert snap.shape == (16, 64, 96)

    def test_physical_floors(self):
        snap = SnapshotSynthesizer(GRID, noise_scale=2.0).generate(3)
        assert snap.fields["PRECT"].min() >= 0
        assert snap.fields["TMQ"].min() >= 0

    def test_moisture_peaks_in_tropics(self):
        snap = SnapshotSynthesizer(GRID, mean_cyclones=0, mean_rivers=0,
                                   noise_scale=0.0).generate(0)
        tmq = snap.fields["TMQ"]
        eq = tmq[GRID.lat_index(0.0)].mean()
        pole = tmq[GRID.lat_index(80.0)].mean()
        assert eq > 3 * pole

    def test_noise_scale_zero_is_smooth(self):
        a = SnapshotSynthesizer(GRID, mean_cyclones=0, mean_rivers=0,
                                noise_scale=0.0).generate(0)
        b = SnapshotSynthesizer(GRID, mean_cyclones=0, mean_rivers=0,
                                noise_scale=0.0).generate(99)
        np.testing.assert_array_equal(a.to_array(), b.to_array())

    def test_events_recorded(self):
        s = SnapshotSynthesizer(GRID, mean_cyclones=5.0, mean_rivers=3.0)
        snap = s.generate(11)
        assert isinstance(snap.cyclones, list)
        assert isinstance(snap.rivers, list)

    def test_all_channels_present(self):
        snap = SnapshotSynthesizer(GRID).generate(0)
        for name in CHANNEL_NAMES:
            assert name in snap.fields
            assert snap.fields[name].shape == GRID.shape


class TestCyclones:
    def _blank_fields(self):
        return {name: np.zeros(GRID.shape) for name in CHANNEL_NAMES}

    def test_sampled_in_tropics(self):
        rng = np.random.default_rng(0)
        storms = sample_cyclones(rng, mean_count=20)
        for tc in storms:
            assert 8.0 <= abs(tc.lat) <= 32.0

    def test_imprint_pressure_depression(self):
        fields = self._blank_fields()
        tc = TropicalCyclone(lat=15.0, lon=120.0, radius_deg=3.0,
                             depth_hpa=40.0, vmax=45.0, warm_core_k=3.0)
        imprint_cyclone(fields, GRID, tc)
        i, j = GRID.lat_index(15.0), GRID.lon_index(120.0)
        assert fields["PSL"][i, j] < -3000.0      # ~40 hPa deficit
        assert fields["T500"][i, j] > 1.0          # warm core
        assert fields["TMQ"][i, j] > 10.0          # moist envelope

    def test_cyclonic_rotation_sign(self):
        for lat, sign in ((20.0, 1.0), (-20.0, -1.0)):
            fields = self._blank_fields()
            tc = TropicalCyclone(lat, 180.0, 3.0, 40.0, 40.0, 3.0)
            imprint_cyclone(fields, GRID, tc)
            # East of the center: northern storms blow northward (+V).
            i = GRID.lat_index(lat)
            j = GRID.lon_index(180.0 + 3.0)
            assert np.sign(fields["V850"][i, j]) == sign

    def test_wind_peaks_near_rmw(self):
        fields = self._blank_fields()
        tc = TropicalCyclone(10.0, 90.0, 3.0, 40.0, 50.0, 3.0)
        imprint_cyclone(fields, GRID, tc)
        speed = np.hypot(fields["U850"], fields["V850"])
        assert speed.max() > 30.0
        # The vortex is compact: winds decay well below peak far from center.
        far = GRID.angular_distance_deg(10.0, 90.0) > 12.0
        assert speed[far].max() < speed.max() / 2


class TestRivers:
    def _blank_fields(self):
        return {name: np.zeros(GRID.shape) for name in CHANNEL_NAMES}

    def test_waypoints_move_poleward(self):
        rng = np.random.default_rng(1)
        for ar in sample_rivers(rng, mean_count=10):
            lats = [p[0] for p in ar.waypoints]
            assert abs(lats[-1]) > abs(lats[0]) - 2.0

    def test_imprint_moisture_filament(self):
        rng = np.random.default_rng(2)
        rivers = sample_rivers(rng, mean_count=10)
        ar = rivers[0]
        fields = self._blank_fields()
        imprint_river(fields, GRID, ar)
        assert fields["TMQ"].max() > 0.8 * ar.intensity
        # The filament is narrow: wet area is a small fraction of the globe.
        wet_frac = (fields["TMQ"] > ar.intensity / 2).mean()
        assert 0 < wet_frac < 0.08
