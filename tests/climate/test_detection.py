"""Heuristic labelers: TECA-style TC detection and AR floodfill."""
import numpy as np
import pytest

from repro.climate import (
    ARConfig,
    CLASS_AR,
    CLASS_BG,
    CLASS_TC,
    Grid,
    SnapshotSynthesizer,
    TecaConfig,
    class_frequencies,
    connected_components_periodic,
    cyclone_mask,
    detect_cyclones,
    make_labels,
    river_mask,
)
from repro.climate.cyclones import TropicalCyclone, imprint_cyclone
from repro.climate.rivers import AtmosphericRiver, imprint_river
from repro.climate.grid import CHANNEL_NAMES

GRID = Grid(96, 144)


def snapshot_with(cyclones=(), rivers=(), noise=0.4, seed=0):
    synth = SnapshotSynthesizer(GRID, mean_cyclones=0, mean_rivers=0,
                                noise_scale=noise)
    snap = synth.generate(seed)
    for tc in cyclones:
        imprint_cyclone(snap.fields, GRID, tc)
    for ar in rivers:
        imprint_river(snap.fields, GRID, ar)
    snap.cyclones = list(cyclones)
    snap.rivers = list(rivers)
    return snap


STRONG_TC = TropicalCyclone(lat=18.0, lon=140.0, radius_deg=3.0,
                            depth_hpa=45.0, vmax=50.0, warm_core_k=3.5)


class TestTecaDetection:
    def test_detects_planted_storm(self):
        snap = snapshot_with(cyclones=[STRONG_TC])
        found = detect_cyclones(snap.fields, GRID)
        assert len(found) == 1
        c = found[0]
        assert abs(c.lat - 18.0) < 4.0
        dlon = abs(c.lon - 140.0)
        assert min(dlon, 360 - dlon) < 4.0

    def test_shallow_depression_rejected(self):
        weak = TropicalCyclone(18.0, 140.0, 3.0, depth_hpa=4.0, vmax=10.0,
                               warm_core_k=0.1)
        snap = snapshot_with(cyclones=[weak])
        assert detect_cyclones(snap.fields, GRID) == []

    def test_cold_core_rejected(self):
        # Deep low without a warm core (an extratropical cyclone) must fail
        # the warm-core criterion.
        snap = snapshot_with()
        cold = TropicalCyclone(20.0, 100.0, 3.0, 45.0, 50.0, warm_core_k=0.0)
        imprint_cyclone(snap.fields, GRID, cold)
        snap.fields["T500"] -= 0.0  # warm_core_k=0 adds nothing
        found = detect_cyclones(snap.fields, GRID,
                                TecaConfig(min_warm_core_k=1.0))
        assert found == []

    def test_high_latitude_rejected(self):
        snap = snapshot_with()
        polar = TropicalCyclone(60.0, 100.0, 3.0, 45.0, 50.0, 3.0)
        imprint_cyclone(snap.fields, GRID, polar)
        assert detect_cyclones(snap.fields, GRID) == []

    def test_two_storms_detected_separately(self):
        a = STRONG_TC
        b = TropicalCyclone(-15.0, 300.0, 3.0, 40.0, 45.0, 3.0)
        snap = snapshot_with(cyclones=[a, b])
        found = detect_cyclones(snap.fields, GRID)
        assert len(found) == 2

    def test_mask_covers_core_and_caps_radius(self):
        snap = snapshot_with(cyclones=[STRONG_TC])
        cands = detect_cyclones(snap.fields, GRID)
        mask = cyclone_mask(snap.fields, GRID, cands)
        i, j = GRID.lat_index(18.0), GRID.lon_index(140.0)
        assert mask[i, j]
        dist = GRID.angular_distance_deg(18.0, 140.0)
        cfg = TecaConfig()
        assert not mask[dist > cfg.mask_radius_deg + 1.0].any()

    def test_mask_empty_without_candidates(self):
        snap = snapshot_with()
        assert not cyclone_mask(snap.fields, GRID, []).any()


def straight_river(lat=20.0, lon=60.0, length=40.0, width=2.5, intensity=25.0):
    ar = AtmosphericRiver(lat, lon, length, width, intensity,
                          heading_deg=50.0, curvature=0.0)
    from repro.climate.rivers import _with_waypoints
    return _with_waypoints(ar)


class TestFloodfillAR:
    def test_detects_planted_river(self):
        ar = straight_river()
        snap = snapshot_with(rivers=[ar])
        mask = river_mask(snap.fields, GRID)
        assert mask.any()
        # Mask overlaps the actual track.
        hits = sum(mask[GRID.lat_index(lat), GRID.lon_index(lon)]
                   for lat, lon in ar.waypoints)
        assert hits > len(ar.waypoints) * 0.4

    def test_short_blob_rejected(self):
        # A round moist blob is not an AR (fails length/aspect filters).
        snap = snapshot_with()
        lat2d, _ = GRID.meshgrid()
        d = GRID.angular_distance_deg(35.0, 200.0)
        snap.fields["TMQ"] += 25.0 * np.exp(-0.5 * (d / 2.0) ** 2)
        mask = river_mask(snap.fields, GRID,
                          ARConfig(min_length_deg=20.0, min_aspect=2.0))
        assert not mask.any()

    def test_tropical_band_excluded(self):
        snap = snapshot_with()
        mask = river_mask(snap.fields, GRID)
        lat2d, _ = GRID.meshgrid()
        assert not mask[np.abs(lat2d) < ARConfig().exclusion_lat].any()

    def test_exclusion_mask_respected(self):
        ar = straight_river()
        snap = snapshot_with(rivers=[ar])
        everything = np.ones(GRID.shape, dtype=bool)
        mask = river_mask(snap.fields, GRID, exclude=everything)
        assert not mask.any()

    def test_weak_river_below_threshold(self):
        ar = straight_river(intensity=3.0)
        snap = snapshot_with(rivers=[ar], noise=0.1)
        mask = river_mask(snap.fields, GRID, ARConfig(anomaly_threshold=10.0))
        assert not mask.any()


class TestPeriodicComponents:
    def test_wrap_merges_across_seam(self):
        mask = np.zeros((10, 20), dtype=bool)
        mask[5, :3] = True
        mask[5, -3:] = True
        labeled, count = connected_components_periodic(mask)
        assert count == 1
        assert labeled[5, 0] == labeled[5, -1]

    def test_disjoint_stay_separate(self):
        mask = np.zeros((10, 20), dtype=bool)
        mask[2, 5:8] = True
        mask[7, 12:15] = True
        _, count = connected_components_periodic(mask)
        assert count == 2

    def test_empty(self):
        labeled, count = connected_components_periodic(np.zeros((5, 5), dtype=bool))
        assert count == 0
        assert not labeled.any()

    def test_multiple_wraps(self):
        mask = np.zeros((10, 20), dtype=bool)
        mask[2, 0] = mask[2, -1] = True
        mask[7, 0] = mask[7, -1] = True
        _, count = connected_components_periodic(mask)
        assert count == 2


class TestLabels:
    def test_tc_precedence_over_ar(self):
        # A river running over a cyclone: TC pixels win.
        tc = STRONG_TC
        ar = straight_river(lat=16.0, lon=132.0)
        snap = snapshot_with(cyclones=[tc], rivers=[ar])
        labels = make_labels(snap)
        i, j = GRID.lat_index(18.0), GRID.lon_index(140.0)
        assert labels[i, j] == CLASS_TC

    def test_class_values(self):
        assert (CLASS_BG, CLASS_TC, CLASS_AR) == (0, 1, 2)

    def test_frequencies_sum_to_one(self):
        snap = snapshot_with(cyclones=[STRONG_TC], rivers=[straight_river()])
        freqs = class_frequencies(make_labels(snap))
        np.testing.assert_allclose(freqs.sum(), 1.0)
        assert freqs[CLASS_BG] > 0.8

    def test_background_dominates_like_paper(self):
        # The paper's imbalance: ~98.2% BG, AR ~1.7%, TC smallest.
        synth = SnapshotSynthesizer(GRID)
        freqs = np.zeros(3)
        n = 4
        for seed in range(n):
            freqs += class_frequencies(make_labels(synth.generate(seed)))
        freqs /= n
        assert freqs[CLASS_BG] > 0.95
        assert freqs[CLASS_TC] < freqs[CLASS_AR] < 0.05
