"""End-to-end campaign orchestration: drains, restarts, determinism."""
import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignService,
    CheckpointedRuntime,
    FairShareScheduler,
    Job,
    JobStore,
    MemoryRuntime,
    SchedulerConfig,
    ServiceConfig,
    SiteConfig,
    SiteLauncher,
    synth_campaign,
)
from repro.hpc import SUMMIT
from repro.resilience import FaultPlan


def make_site(nodes=16):
    return SiteLauncher(SiteConfig(system=SUMMIT, nodes=nodes))


def make_service(plan=None, runtime=None, nodes=16, **svc_kw):
    return CampaignService(make_site(nodes), JobStore(),
                           FairShareScheduler(SchedulerConfig()),
                           runtime or MemoryRuntime(),
                           ServiceConfig(**svc_kw),
                           plan=plan)


def train_job(i=0, **kw):
    base = dict(job_id=f"job-{i:04d}", user=f"user{i % 2}", kind="train",
                nodes=2, steps_total=8192, submit_s=float(i), min_nodes=1)
    base.update(kw)
    return Job(**base)


def transition_log(store):
    return [(j.job_id, [t.as_dict() for t in j.transitions]) for j in store]


class TestFaultFree:
    def test_synthetic_campaign_drains(self):
        svc = make_service()
        for job in synth_campaign(CampaignConfig(num_users=3, num_jobs=12,
                                                 seed=0)):
            svc.submit(job)
        report = svc.run()
        assert report.all_done
        assert report.by_terminal_state == {"DONE": 12}
        assert report.lost_jobs == [] and report.restarts == 0
        assert report.makespan_s > 0 and 0 < report.utilization <= 1
        assert set(report.node_seconds) == {"user0", "user1", "user2"}
        assert 0 <= report.fair_share_error <= 1

    def test_lifecycle_states_visited_in_order(self):
        svc = make_service()
        svc.submit(train_job(0, data_bytes=1e9))
        svc.run()
        job = svc.store.get("job-0000")
        assert [t.to for t in job.transitions] == [
            "STAGED_IN", "PREPROCESSED", "RUNNING", "RUN_DONE", "DONE"]
        assert job.steps_done == job.steps_total

    def test_dwell_medians_reported(self):
        svc = make_service()
        svc.submit(train_job(0, data_bytes=1e9))
        report = svc.run()
        assert report.dwell_median_s["RUNNING"] > 0
        assert report.dwell_median_s["CREATED"] > 0

    def test_contention_serializes_on_small_site(self):
        # Two 2-node jobs on a 2-node site must run one after the other.
        svc = make_service(nodes=2)
        svc.submit(train_job(0, submit_s=0.0))
        svc.submit(train_job(1, submit_s=0.0))
        report = svc.run()
        assert report.all_done
        a = svc.store.get("job-0000")
        b = svc.store.get("job-0001")
        a_run = next(t.t for t in a.transitions if t.to == "RUNNING")
        b_run = next(t.t for t in b.transitions if t.to == "RUNNING")
        a_done = a.finished_s()
        assert b_run >= a_done > a_run


class TestFaultPath:
    def test_kill_restart_resume_done(self):
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        # Cadence well under the run time so a checkpoint lands pre-kill.
        svc = make_service(plan=plan, ckpt_every_s=5.0)
        svc.submit(train_job(0, nodes=3))
        report = svc.run(until=1e6)
        job = svc.store.get("job-0000")
        assert job.state == "DONE"
        assert report.restarts == 1
        assert report.injected.get("rank_fail") == 1
        # Elastic shrink: relaunched on one fewer node.
        resume_step, before, after = report.resumed["job-0000"]
        assert (before, after) == (3, 2)
        # MemoryRuntime checkpointed mid-run, so the restart resumed
        # from real saved progress.
        assert resume_step > 0
        kinds = [t.to for t in job.transitions]
        assert kinds == ["STAGED_IN", "PREPROCESSED", "RUNNING", "RUN_ERROR",
                         "RESTARTING", "RUNNING", "RUN_DONE", "DONE"]

    def test_restart_budget_exhausted_fails(self):
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        svc = make_service(plan=plan)
        svc.submit(train_job(0, max_restarts=0))
        report = svc.run()
        job = svc.store.get("job-0000")
        assert job.state == "FAILED"
        assert job.transitions[-1].reason == "restart budget exhausted"
        assert report.by_terminal_state == {"FAILED": 1}
        assert not report.all_done and report.lost_jobs == []

    def test_min_nodes_floors_the_shrink(self):
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        svc = make_service(plan=plan)
        svc.submit(train_job(0, nodes=2, min_nodes=2))
        report = svc.run()
        _, before, after = report.resumed["job-0000"]
        assert (before, after) == (2, 2)
        assert svc.store.get("job-0000").state == "DONE"

    def test_straggler_stretches_makespan(self):
        def makespan(plan):
            svc = make_service(plan=plan)
            for job in synth_campaign(CampaignConfig(num_jobs=6, seed=3)):
                svc.submit(job)
            return svc.run().makespan_s

        base = makespan(None)
        slow = makespan(FaultPlan.parse("straggler@0:rank=0,factor=4",
                                        seed=0))
        assert slow > base

    def test_checkpointed_runtime_resumes_from_npz(self, tmp_path):
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        runtime = CheckpointedRuntime(tmp_path, seed=0)
        svc = make_service(plan=plan, runtime=runtime, ckpt_every_s=5.0)
        svc.submit(train_job(0))
        report = svc.run()
        job = svc.store.get("job-0000")
        assert job.state == "DONE"
        resume_step, _, _ = report.resumed["job-0000"]
        assert resume_step > 0
        assert report.checkpoints_saved > 0
        # Real .npz checkpoints on disk; the earlier resume point may have
        # rotated away, but training continued past it after the restart.
        assert list(tmp_path.glob("job-0000/ckpts/*.npz"))
        assert runtime.resume_step(job) > resume_step


class TestDeterminism:
    def run_once(self, tmp_path=None):
        plan = FaultPlan.parse("rank_fail@1:rank=0", seed=0)
        store = (JobStore(tmp_path / "log.jsonl") if tmp_path is not None
                 else JobStore())
        svc = CampaignService(make_site(), store,
                              FairShareScheduler(SchedulerConfig()),
                              MemoryRuntime(), ServiceConfig(), plan=plan)
        for job in synth_campaign(CampaignConfig(num_users=3, num_jobs=12,
                                                 seed=0)):
            svc.submit(job)
        report = svc.run()
        return report, transition_log(store), store

    def test_identical_runs_identical_logs(self):
        r1, log1, _ = self.run_once()
        r2, log2, _ = self.run_once()
        assert log1 == log2
        assert r1.as_dict() == r2.as_dict()
        assert r1.all_done and r1.restarts == 1

    def test_persisted_log_replays_to_same_state(self, tmp_path):
        _, live_log, store = self.run_once(tmp_path)
        store.close()
        reloaded = JobStore.load(tmp_path / "log.jsonl")
        assert transition_log(reloaded) == live_log

    def test_different_seed_different_campaign(self):
        a = synth_campaign(CampaignConfig(seed=0))
        b = synth_campaign(CampaignConfig(seed=1))
        assert [j.spec_dict() for j in a] != [j.spec_dict() for j in b]
