"""Fair-share scheduler: decay, lanes, aging, fairness metric."""
import pytest

from repro.campaign import FairShareScheduler, Job, SchedulerConfig


def make_job(i, user, lane="normal", ready_s=0.0):
    return Job(job_id=f"job-{i:04d}", user=user, kind="train", nodes=2,
               steps_total=100, lane=lane, ready_s=ready_s,
               state="PREPROCESSED")


def order_ids(sched, jobs, now):
    index = {j.job_id: i for i, j in enumerate(jobs)}
    return [j.job_id for j in sched.order(jobs, now,
                                          lambda jid: index[jid])]


class TestConfig:
    def test_defaults_validate(self):
        SchedulerConfig()

    def test_duplicate_lanes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SchedulerConfig(lanes=("a", "a"))

    def test_unknown_lane_rejected(self):
        with pytest.raises(ValueError, match="unknown lane"):
            SchedulerConfig().lane_index("vip")

    def test_weight_lookup(self):
        cfg = SchedulerConfig(weights=(("alice", 2.0),))
        assert cfg.weight_for("alice") == 2.0
        assert cfg.weight_for("bob") == 1.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(weights=(("alice", 0.0),))


class TestUsageDecay:
    def test_halves_per_half_life(self):
        sched = FairShareScheduler(SchedulerConfig(half_life_s=100.0))
        sched.charge("u", 80.0)
        sched.advance(100.0)
        assert sched.usage("u") == pytest.approx(40.0)
        sched.advance(300.0)
        assert sched.usage("u") == pytest.approx(10.0)

    def test_lifetime_never_decays(self):
        sched = FairShareScheduler(SchedulerConfig(half_life_s=1.0))
        sched.charge("u", 80.0)
        sched.advance(1000.0)
        assert sched.lifetime_usage() == {"u": 80.0}

    def test_time_backwards_rejected(self):
        sched = FairShareScheduler()
        sched.advance(10.0)
        with pytest.raises(ValueError, match="backwards"):
            sched.advance(5.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            FairShareScheduler().charge("u", -1.0)


class TestOrdering:
    def test_least_used_user_first(self):
        sched = FairShareScheduler()
        sched.charge("hog", 1000.0)
        jobs = [make_job(0, "hog"), make_job(1, "idle")]
        assert order_ids(sched, jobs, now=0.0) == ["job-0001", "job-0000"]

    def test_lanes_dominate_usage(self):
        # An urgent job from the heaviest user still outranks backfill
        # work from an idle user (until aging kicks in).
        sched = FairShareScheduler()
        sched.charge("hog", 1000.0)
        jobs = [make_job(0, "idle", lane="backfill"),
                make_job(1, "hog", lane="urgent")]
        assert order_ids(sched, jobs, now=0.0) == ["job-0001", "job-0000"]

    def test_submit_index_tiebreak(self):
        sched = FairShareScheduler()
        jobs = [make_job(1, "u"), make_job(0, "u")]
        index = {"job-0001": 1, "job-0000": 0}
        ordered = sched.order(jobs, 0.0, lambda jid: index[jid])
        assert [j.job_id for j in ordered] == ["job-0000", "job-0001"]

    def test_weights_scale_effective_usage(self):
        cfg = SchedulerConfig(weights=(("big", 4.0),))
        sched = FairShareScheduler(cfg)
        sched.charge("big", 200.0)    # effective 50
        sched.charge("small", 100.0)  # effective 100
        jobs = [make_job(0, "small"), make_job(1, "big")]
        assert order_ids(sched, jobs, now=0.0) == ["job-0001", "job-0000"]


class TestAging:
    def test_wait_erodes_usage(self):
        cfg = SchedulerConfig(aging_node_s_per_s=1.0,
                              promote_after_s=1e9)
        sched = FairShareScheduler(cfg)
        sched.charge("waiter", 100.0)
        jobs = [make_job(0, "waiter", ready_s=0.0),
                make_job(1, "fresh", ready_s=200.0)]
        # At t=200 the waiter has 200s of aging credit against 100 usage:
        # effective -100 < fresh's 0.
        assert order_ids(sched, jobs, now=200.0) == ["job-0000", "job-0001"]

    def test_long_wait_promotes_to_top_lane(self):
        cfg = SchedulerConfig(promote_after_s=300.0, aging_node_s_per_s=0.0)
        sched = FairShareScheduler(cfg)
        jobs = [make_job(0, "u", lane="backfill", ready_s=0.0),
                make_job(1, "u", lane="urgent", ready_s=350.0)]
        # Before the threshold: urgent first.
        assert order_ids(sched, jobs, now=299.0) == ["job-0001", "job-0000"]
        # Past it: the starved backfill job outranks every lane.
        assert order_ids(sched, jobs, now=350.0) == ["job-0000", "job-0001"]


class TestFairShareError:
    def test_zero_before_any_usage(self):
        assert FairShareScheduler().fair_share_error() == 0.0

    def test_perfect_split_is_zero(self):
        sched = FairShareScheduler()
        sched.charge("a", 50.0)
        sched.charge("b", 50.0)
        assert sched.fair_share_error() == pytest.approx(0.0)

    def test_monopoly_measures_entitlement_gap(self):
        sched = FairShareScheduler()
        sched.charge("a", 100.0)
        sched.charge("b", 0.0)
        # a achieved 1.0 against a 0.5 entitlement.
        assert sched.fair_share_error() == pytest.approx(0.5)

    def test_weighted_entitlements(self):
        cfg = SchedulerConfig(weights=(("a", 3.0),))
        sched = FairShareScheduler(cfg)
        sched.charge("a", 75.0)
        sched.charge("b", 25.0)
        # entitlements 3/4 and 1/4 exactly achieved.
        assert sched.fair_share_error() == pytest.approx(0.0)
