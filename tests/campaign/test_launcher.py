"""Site launcher: node accounting, backfill packing, cost models."""
import pytest

from repro.campaign import Job, SiteConfig, SiteLauncher
from repro.campaign.launcher import LABEL_BYTES_PER_NODE_S, SERVE_RPS_PER_GPU
from repro.errors import CampaignError
from repro.hpc import SUMMIT


def make_job(i=0, kind="train", nodes=4, steps=1000, **kw):
    base = dict(job_id=f"job-{i:04d}", user="u", kind=kind, nodes=nodes,
                steps_total=steps, state="PREPROCESSED")
    base.update(kw)
    return Job(**base)


@pytest.fixture
def site():
    return SiteLauncher(SiteConfig(system=SUMMIT, nodes=8))


class TestConfig:
    def test_cap_must_fit_machine(self):
        with pytest.raises(ValueError):
            SiteConfig(system=SUMMIT, nodes=SUMMIT.nodes + 1)

    def test_default_cap_is_whole_machine(self):
        assert SiteConfig(system=SUMMIT).total_nodes == SUMMIT.nodes


class TestNodeAccounting:
    def test_allocate_release_cycle(self, site):
        job = make_job()
        site.allocate(job, 4)
        assert site.free_nodes == 4 and site.busy_nodes == 4
        assert site.holding(job.job_id) == 4
        assert site.release(job) == 4
        assert site.free_nodes == 8 and site.holding(job.job_id) == 0

    def test_double_allocate_rejected(self, site):
        job = make_job()
        site.allocate(job, 2)
        with pytest.raises(CampaignError, match="already holds"):
            site.allocate(job, 2)

    def test_overcommit_rejected(self, site):
        with pytest.raises(CampaignError, match="cannot allocate"):
            site.allocate(make_job(), 9)

    def test_release_without_allocation_rejected(self, site):
        with pytest.raises(CampaignError, match="no allocation"):
            site.release(make_job())


class TestPacking:
    def test_first_fit_in_order(self, site):
        a, b = make_job(0, nodes=4), make_job(1, nodes=4)
        launched = site.pack([a, b])
        assert [(j.job_id, n) for j, n in launched] == [("job-0000", 4),
                                                        ("job-0001", 4)]
        assert site.free_nodes == 0

    def test_backfill_skips_wide_job(self, site):
        # 6 + 6 can't both fit; the 2-node job behind them backfills.
        wide1, wide2 = make_job(0, nodes=6), make_job(1, nodes=6)
        narrow = make_job(2, nodes=2)
        launched = site.pack([wide1, wide2, narrow])
        assert [(j.job_id, n) for j, n in launched] == [("job-0000", 6),
                                                        ("job-0002", 2)]

    def test_restarting_job_uses_shrunk_width(self, site):
        job = make_job(0, nodes=6, state="RESTARTING", nodes_allocated=3)
        assert site.width_for(job) == 3
        launched = site.pack([job])
        assert launched == [(job, 3)]

    def test_request_clamped_to_site(self):
        small = SiteLauncher(SiteConfig(system=SUMMIT, nodes=2))
        job = make_job(0, nodes=16)
        assert small.width_for(job) == 2


class TestCostModels:
    def test_stage_in_uses_effective_bandwidth(self, site):
        job = make_job(data_bytes=1e12)
        expect = 1e12 / SUMMIT.filesystem.effective_read_bandwidth
        assert site.stage_in_s(job) == pytest.approx(expect)
        assert site.stage_in_s(make_job(data_bytes=0.0)) == 0.0

    def test_preprocess_rate(self, site):
        job = make_job(data_bytes=8e9)
        assert site.preprocess_s(job) == pytest.approx(2.0)

    def test_train_time_shrinks_with_nodes(self, site):
        job = make_job(kind="train", steps=100_000)
        assert site.run_s(job, 8) < site.run_s(job, 2)
        assert site.run_s(job, 2) > 0

    def test_train_resume_reduces_remaining(self, site):
        job = make_job(kind="train", steps=100_000)
        full = site.run_s(job, 4)
        half = site.run_s(job, 4, from_step=50_000)
        assert 0 < half < full

    def test_serve_rate_model(self, site):
        job = make_job(kind="serve", steps=12_000)
        gpus = 2 * SUMMIT.node.gpus
        assert site.run_s(job, 2) == pytest.approx(
            12_000 / (SERVE_RPS_PER_GPU * gpus))

    def test_label_rate_model(self, site):
        job = make_job(kind="label", steps=10, data_bytes=20e9)
        # 2 GB per shard, 2 nodes x 2 GB/s.
        assert site.run_s(job, 2) == pytest.approx(
            10 * 2e9 / (LABEL_BYTES_PER_NODE_S * 2))

    def test_completed_job_costs_nothing(self, site):
        job = make_job(steps=100)
        assert site.run_s(job, 4, from_step=100) == 0.0

    def test_unknown_kind_rejected(self, site):
        job = make_job()
        job.kind = "mining"   # bypass constructor validation
        with pytest.raises(CampaignError, match="no cost model"):
            site.run_s(job, 2)
