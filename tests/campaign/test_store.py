"""JSONL job store: persistence, replay-as-validation, round-trips."""
import json

import pytest

from repro.campaign import Job, JobStore
from repro.errors import CampaignStoreError, InvalidTransition


def make_job(i=0, **kw):
    base = dict(job_id=f"job-{i:04d}", user=f"user{i % 2}", kind="train",
                nodes=4, steps_total=100, submit_s=float(i))
    base.update(kw)
    return Job(**base)


class TestInMemory:
    def test_submit_and_order(self):
        store = JobStore()
        for i in (0, 1, 2):
            store.submit(make_job(i))
        assert len(store) == 3
        assert [j.job_id for j in store] == ["job-0000", "job-0001",
                                             "job-0002"]
        assert store.submit_index("job-0002") == 2
        assert "job-0001" in store

    def test_duplicate_id_rejected(self):
        store = JobStore()
        store.submit(make_job(0))
        with pytest.raises(CampaignStoreError, match="duplicate"):
            store.submit(make_job(0))

    def test_submit_requires_created(self):
        store = JobStore()
        job = make_job(0)
        job.transition_to("STAGED_IN", t=1.0)
        with pytest.raises(CampaignStoreError, match="CREATED"):
            store.submit(job)

    def test_unknown_job_lookup(self):
        with pytest.raises(CampaignStoreError, match="unknown job"):
            JobStore().get("nope")
        with pytest.raises(CampaignStoreError, match="unknown job"):
            JobStore().submit_index("nope")

    def test_state_filter(self):
        store = JobStore()
        a, b = store.submit(make_job(0)), store.submit(make_job(1))
        store.transition(a, "STAGED_IN", t=1.0)
        assert [j.job_id for j in store.jobs(state="CREATED")] == [b.job_id]
        assert [j.job_id for j in store.jobs(state="STAGED_IN")] == [a.job_id]


class TestPersistence:
    def drive(self, store):
        """One job through stage-in, plus a second left mid-flight."""
        a = store.submit(make_job(0, data_bytes=1e9))
        b = store.submit(make_job(1, kind="serve"))
        store.transition(a, "STAGED_IN", t=2.0)
        store.transition(a, "PREPROCESSED", t=3.0)
        store.transition(a, "RUNNING", t=4.0, nodes_allocated=4, attempt=1)
        store.transition(b, "STAGED_IN", t=4.5)
        return a, b

    def test_load_mutate_reload_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        store = JobStore(path)
        self.drive(store)
        store.close()

        # load: states and logs replayed exactly
        loaded = JobStore.load(path)
        a, b = loaded.get("job-0000"), loaded.get("job-0001")
        assert a.state == "RUNNING" and a.nodes_allocated == 4
        assert b.state == "STAGED_IN"
        assert loaded.submit_index("job-0001") == 1

        # mutate: appended lines continue the same log
        loaded.transition(a, "RUN_DONE", t=9.0, steps_done=100)
        loaded.transition(a, "DONE", t=9.0)
        loaded.close()

        # reload: the mutation round-trips
        again = JobStore.load(path)
        a2 = again.get("job-0000")
        assert a2.state == "DONE" and a2.steps_done == 100
        assert [t.as_dict() for t in a2.transitions] == \
            [t.as_dict() for t in a.transitions]

    def test_replayed_logs_are_bit_identical(self, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for p in (p1, p2):
            store = JobStore(p)
            self.drive(store)
            store.close()
        assert p1.read_bytes() == p2.read_bytes()

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "job", "job"\n')
        with pytest.raises(CampaignStoreError, match="malformed JSON"):
            JobStore.load(path)

    def test_transition_for_unknown_job_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(
            {"event": "transition", "job_id": "ghost", "t": 1.0,
             "from": "CREATED", "to": "STAGED_IN"}) + "\n")
        with pytest.raises(CampaignStoreError, match="unknown job"):
            JobStore.load(path)

    def test_unknown_event_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "telegram"}\n')
        with pytest.raises(CampaignStoreError, match="unknown event"):
            JobStore.load(path)

    def test_illegal_edge_in_log_fails_replay(self, tmp_path):
        # A hand-edited log that skips STAGED_IN cannot load: replay goes
        # through the same validated transition_to as live traffic.
        path = tmp_path / "bad.jsonl"
        job = make_job(0)
        lines = [json.dumps({"event": "job", "job": job.spec_dict()}),
                 json.dumps({"event": "transition", "job_id": job.job_id,
                             "t": 1.0, "from": "CREATED", "to": "RUNNING"})]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(InvalidTransition):
            JobStore.load(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        store = JobStore(path)
        store.submit(make_job(0))
        store.close()
        path.write_text(path.read_text() + "\n\n")
        assert len(JobStore.load(path)) == 1
