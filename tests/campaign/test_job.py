"""Job lifecycle state machine: exhaustive edges, logs, serialization."""
import pytest

from repro.campaign import (
    JOB_KINDS,
    LEGAL_TRANSITIONS,
    STATES,
    TERMINAL_STATES,
    Job,
    Transition,
)
from repro.errors import InvalidTransition


def make_job(**kw):
    base = dict(job_id="job-0000", user="user0", kind="train", nodes=4,
                steps_total=100)
    base.update(kw)
    return Job(**base)


class TestTransitionMatrix:
    """Every (from, to) pair behaves exactly as LEGAL_TRANSITIONS says."""

    @pytest.mark.parametrize("frm", STATES)
    @pytest.mark.parametrize("to", STATES)
    def test_exhaustive_matrix(self, frm, to):
        job = make_job(state=frm)
        if to in LEGAL_TRANSITIONS[frm]:
            job.transition_to(to, t=1.0)
            assert job.state == to
            assert job.transitions[-1].frm == frm
            assert job.transitions[-1].to == to
        else:
            with pytest.raises(InvalidTransition):
                job.transition_to(to, t=1.0)
            assert job.state == frm          # unchanged on rejection
            assert job.transitions == []     # nothing logged

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert LEGAL_TRANSITIONS[state] == ()

    def test_every_state_is_covered(self):
        assert set(LEGAL_TRANSITIONS) == set(STATES)
        for targets in LEGAL_TRANSITIONS.values():
            assert set(targets) <= set(STATES)

    def test_happy_path_end_to_end(self):
        job = make_job()
        for i, to in enumerate(
                ("STAGED_IN", "PREPROCESSED", "RUNNING", "RUN_DONE", "DONE")):
            job.transition_to(to, t=float(i + 1))
        assert job.terminal and job.state == "DONE"
        assert job.finished_s() == 5.0

    def test_restart_loop(self):
        job = make_job()
        for t, to in enumerate(("STAGED_IN", "PREPROCESSED", "RUNNING",
                                "RUN_ERROR", "RESTARTING", "RUNNING",
                                "RUN_DONE", "DONE")):
            job.transition_to(to, t=float(t))
        assert job.restarts == 1
        assert job.state == "DONE"


class TestTransitionValidation:
    def test_unknown_target_state(self):
        with pytest.raises(InvalidTransition, match="unknown state"):
            make_job().transition_to("LIMBO", t=0.0)

    def test_backward_timestamp_rejected(self):
        job = make_job()
        job.transition_to("STAGED_IN", t=5.0)
        with pytest.raises(InvalidTransition, match="before previous"):
            job.transition_to("PREPROCESSED", t=4.0)

    def test_equal_timestamp_allowed(self):
        job = make_job()
        job.transition_to("STAGED_IN", t=5.0)
        job.transition_to("PREPROCESSED", t=5.0)   # zero-dwell is legal
        assert job.state == "PREPROCESSED"

    def test_unknown_field_rejected(self):
        job = make_job()
        with pytest.raises(InvalidTransition, match="may not mutate"):
            job.transition_to("STAGED_IN", t=1.0, user="mallory")
        assert job.user == "user0"

    def test_fields_applied_on_edge(self):
        job = make_job()
        for t, to in enumerate(("STAGED_IN", "PREPROCESSED")):
            job.transition_to(to, t=float(t))
        job.transition_to("RUNNING", t=2.0, nodes_allocated=3, attempt=1)
        assert job.nodes_allocated == 3 and job.attempt == 1
        assert job.transitions[-1].fields == {"nodes_allocated": 3,
                                              "attempt": 1}

    def test_reason_recorded(self):
        job = make_job(state="RUNNING")
        tr = job.transition_to("RUN_ERROR", t=1.0, reason="rank_fail")
        assert tr.reason == "rank_fail"


class TestConstruction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            make_job(kind="mining")

    def test_kinds_are_closed(self):
        assert JOB_KINDS == ("train", "serve", "label")

    def test_min_nodes_bounds(self):
        with pytest.raises(ValueError):
            make_job(min_nodes=0)
        with pytest.raises(ValueError):
            make_job(nodes=2, min_nodes=4)

    def test_nonpositive_steps_rejected(self):
        with pytest.raises(ValueError):
            make_job(steps_total=0)


class TestDerivedViews:
    def test_dwell_times_sum_per_state(self):
        job = make_job(submit_s=1.0)
        job.transition_to("STAGED_IN", t=3.0)      # CREATED for 2s
        job.transition_to("PREPROCESSED", t=4.0)   # STAGED_IN for 1s
        job.transition_to("RUNNING", t=9.0)        # PREPROCESSED for 5s
        assert job.dwell_times() == {"CREATED": 2.0, "STAGED_IN": 1.0,
                                     "PREPROCESSED": 5.0}

    def test_finished_s_none_until_terminal(self):
        job = make_job()
        assert job.finished_s() is None
        job.transition_to("STAGED_IN", t=1.0)
        assert job.finished_s() is None


class TestSerialization:
    def test_spec_roundtrip(self):
        job = make_job(lane="urgent", data_bytes=5e9, name="t-0")
        clone = Job.from_spec(job.spec_dict())
        assert clone.spec_dict() == job.spec_dict()
        assert clone.state == "CREATED" and clone.transitions == []

    def test_transition_dict_roundtrip(self):
        tr = Transition(t=2.5, frm="RUNNING", to="RUN_ERROR",
                        reason="rank_fail", fields={"steps_done": 7})
        assert Transition.from_dict(tr.as_dict()) == tr

    def test_transition_dict_omits_empty(self):
        doc = Transition(t=1.0, frm="CREATED", to="STAGED_IN").as_dict()
        assert doc == {"t": 1.0, "from": "CREATED", "to": "STAGED_IN"}
