"""GPU memory-capacity model (the Section VII-A batch-size claim)."""
import numpy as np
import pytest

from repro.core.networks import Tiramisu, TiramisuConfig, deeplab_modified, tiramisu_modified
from repro.hpc import P100, V100
from repro.perf import MemoryBudget, max_batch, training_memory

FULL = (16, 768, 1152)


@pytest.fixture(scope="module")
def deeplab():
    return deeplab_modified()


@pytest.fixture(scope="module")
def tiramisu():
    return tiramisu_modified()


class TestPaperBatchLimits:
    def test_deeplab_fp32_batch_1(self, deeplab):
        assert max_batch(deeplab, FULL, "fp32", V100, limit=3) == 1

    def test_deeplab_fp16_batch_2(self, deeplab):
        assert max_batch(deeplab, FULL, "fp16", V100, limit=4) == 2

    def test_tiramisu_fp32_batch_1(self, tiramisu):
        assert max_batch(tiramisu, FULL, "fp32", V100, limit=3) == 1

    def test_tiramisu_fp16_batch_2(self, tiramisu):
        assert max_batch(tiramisu, FULL, "fp16", V100, limit=4) == 2

    def test_p100_same_16gb_story(self, tiramisu):
        # Piz Daint's P100 also has 16 GB: FP32 batch 1 there too.
        assert max_batch(tiramisu, FULL, "fp32", P100, limit=3) == 1


class TestBudgetComponents:
    def test_activations_scale_with_batch(self, tiramisu):
        b1 = training_memory(tiramisu, FULL, 1, "fp32")
        b2 = training_memory(tiramisu, FULL, 2, "fp32")
        assert b2.activations == pytest.approx(2 * b1.activations, rel=1e-6)

    def test_fp16_halves_activations(self, tiramisu):
        f32 = training_memory(tiramisu, FULL, 1, "fp32")
        f16 = training_memory(tiramisu, FULL, 1, "fp16")
        assert f16.activations == pytest.approx(f32.activations / 2, rel=1e-6)

    def test_fp16_adds_master_weights(self, tiramisu):
        f32 = training_memory(tiramisu, FULL, 1, "fp32")
        f16 = training_memory(tiramisu, FULL, 1, "fp16")
        assert f32.master_weights == 0.0
        assert f16.master_weights == pytest.approx(
            tiramisu.num_parameters() * 4)
        assert f16.weights == pytest.approx(f32.weights / 2)

    def test_optimizer_state_optional(self, tiramisu):
        with_m = training_memory(tiramisu, FULL, 1, "fp32", momentum_state=True)
        without = training_memory(tiramisu, FULL, 1, "fp32", momentum_state=False)
        assert without.total < with_m.total

    def test_activations_dominate_at_full_res(self, deeplab):
        b = training_memory(deeplab, FULL, 1, "fp32")
        assert b.activations > 3 * (b.weights + b.gradients + b.optimizer_state)

    def test_total_sums_components(self):
        b = MemoryBudget(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert b.total == 21.0

    def test_liveness_validated(self, tiramisu):
        with pytest.raises(ValueError):
            training_memory(tiramisu, FULL, 1, "fp32", liveness=0.0)

    def test_small_inputs_fit_large_batches(self):
        tiny = Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                       down_layers=(2, 2), bottleneck_layers=2,
                                       kernel=3),
                        rng=np.random.default_rng(0))
        assert max_batch(tiny, (4, 32, 48), "fp32", V100, limit=16) == 16
