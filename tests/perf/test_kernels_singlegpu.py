"""Roofline time model and the Figure 2 single-GPU table."""
import numpy as np
import pytest

from repro.framework.graph import GraphAnalysis, KernelRecord
from repro.framework.dtypes import Precision
from repro.hpc import P100, V100
from repro.perf import (
    EFFICIENCY_TABLE,
    KernelTimeModel,
    PAPER_FIG2,
    figure2_table,
    single_gpu_performance,
)


def analysis_of(records, batch=1, precision="fp32"):
    return GraphAnalysis(records, batch, Precision(precision))


class TestKernelTimeModel:
    def test_math_bound_kernel(self):
        # Enormous FLOPs, no bytes: time = flops / (peak * eff).
        rec = KernelRecord("conv3x3_fwd", "conv_fwd", int(1e12), 1)
        model = KernelTimeModel(V100, "fp32", kernel_launch_overhead_s=0.0)
        ct = model.category_time(analysis_of([rec]), "conv_fwd")
        eff = EFFICIENCY_TABLE[("conv_fwd", "fp32")].math
        assert ct.time_s == pytest.approx(1e12 / (V100.fp32_peak * eff))

    def test_memory_bound_kernel(self):
        rec = KernelRecord("relu_fwd", "pointwise_fwd", 10, int(1e9))
        model = KernelTimeModel(V100, "fp32", kernel_launch_overhead_s=0.0)
        ct = model.category_time(analysis_of([rec]), "pointwise_fwd")
        eff = EFFICIENCY_TABLE[("pointwise_fwd", "fp32")].memory
        assert ct.time_s == pytest.approx(1e9 / (V100.mem_bandwidth * eff))

    def test_5x5_modifier_slows_math(self):
        r3 = KernelRecord("conv3x3_fwd", "conv_fwd", int(1e12), 1)
        r5 = KernelRecord("conv5x5_fwd", "conv_fwd", int(1e12), 1)
        model = KernelTimeModel(V100, "fp32", kernel_launch_overhead_s=0.0)
        t3 = model.category_time(analysis_of([r3]), "conv_fwd").time_s
        t5 = model.category_time(analysis_of([r5]), "conv_fwd").time_s
        assert t5 > t3

    def test_launch_overhead_counts_kernels(self):
        rec = KernelRecord("tiny", "optimizer", 0, 0, count=1000)
        model = KernelTimeModel(V100, "fp32", kernel_launch_overhead_s=1e-6)
        ct = model.category_time(analysis_of([rec]), "optimizer")
        assert ct.time_s == pytest.approx(1e-3)

    def test_step_time_sums_categories(self):
        recs = [KernelRecord("conv3x3_fwd", "conv_fwd", int(1e11), int(1e8)),
                KernelRecord("relu_fwd", "pointwise_fwd", 10, int(1e9))]
        model = KernelTimeModel(V100, "fp32")
        a = analysis_of(recs)
        total = model.step_time(a)
        parts = [ct.time_s for ct in model.breakdown(a)]
        assert total == pytest.approx(sum(parts))

    def test_efficiency_table_covers_all_categories(self):
        from repro.framework.graph import CATEGORIES
        for cat in CATEGORIES:
            for prec in ("fp32", "fp16"):
                assert (cat, prec) in EFFICIENCY_TABLE

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            KernelTimeModel(V100, "int8")

    def test_pct_peaks_bounded(self):
        rec = KernelRecord("conv3x3_fwd", "conv_fwd", int(1e11), int(1e9))
        model = KernelTimeModel(V100, "fp32", kernel_launch_overhead_s=0.0)
        ct = model.category_time(analysis_of([rec]), "conv_fwd")
        assert 0 < ct.pct_math_peak <= 100.0
        assert 0 < ct.pct_mem_peak <= 100.0


class TestFigure2:
    @pytest.fixture(scope="class")
    def table(self):
        return {(p.network, p.gpu, p.precision): p for p in figure2_table()}

    def test_all_five_rows(self, table):
        assert set(table) == set(PAPER_FIG2)

    @pytest.mark.parametrize("key", list(PAPER_FIG2))
    def test_rates_within_30pct_of_paper(self, table, key):
        point = table[key]
        paper_rate = PAPER_FIG2[key][1]
        assert point.samples_per_second == pytest.approx(paper_rate, rel=0.30)

    @pytest.mark.parametrize("key", list(PAPER_FIG2))
    def test_pct_peak_within_8_points(self, table, key):
        point = table[key]
        paper_pct = PAPER_FIG2[key][3]
        assert abs(point.pct_peak - paper_pct) < 8.0

    def test_efficiency_ordering_matches_paper(self, table):
        # Paper: DeepLab FP32 (80%) > Tiramisu FP32 (51%) > DeepLab FP16
        # (31%) > Tiramisu FP16 (17%).
        o = [table[("deeplabv3+", "V100", "fp32")].pct_peak,
             table[("tiramisu", "V100", "fp32")].pct_peak,
             table[("deeplabv3+", "V100", "fp16")].pct_peak,
             table[("tiramisu", "V100", "fp16")].pct_peak]
        assert o[0] > o[1] > o[2] > o[3]

    def test_fp16_batch_two(self, table):
        assert table[("deeplabv3+", "V100", "fp16")].batch == 2
        assert table[("deeplabv3+", "V100", "fp32")].batch == 1

    def test_fp16_faster_but_less_efficient(self, table):
        fp16 = table[("tiramisu", "V100", "fp16")]
        fp32 = table[("tiramisu", "V100", "fp32")]
        assert fp16.samples_per_second > fp32.samples_per_second
        assert fp16.pct_peak < fp32.pct_peak

    def test_p100_slower_than_v100(self, table):
        p100 = table[("tiramisu_4ch", "P100", "fp32")]
        v100 = table[("tiramisu", "V100", "fp32")]
        assert p100.samples_per_second < v100.samples_per_second

    def test_custom_batch(self):
        point = single_gpu_performance("tiramisu", V100, "fp32", batch=4)
        assert point.batch == 4

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            single_gpu_performance("resnext", V100, "fp32")
