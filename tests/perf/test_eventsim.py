"""Event-driven training-run simulation."""
import numpy as np
import pytest

from repro.perf import TrainingRunConfig, simulate_training_run


class TestSimulation:
    def test_deterministic_by_seed(self):
        cfg = TrainingRunConfig(ranks=8, steps=20, compute_time_s=0.5, seed=3)
        a = simulate_training_run(cfg)
        b = simulate_training_run(cfg)
        np.testing.assert_array_equal(a.step_times, b.step_times)

    def test_no_jitter_no_comm_is_exact(self):
        cfg = TrainingRunConfig(ranks=4, steps=10, compute_time_s=0.5,
                                compute_jitter=0.0, allreduce_time_s=0.0)
        res = simulate_training_run(cfg)
        np.testing.assert_allclose(res.step_times, 0.5, rtol=1e-12)
        np.testing.assert_allclose(res.barrier_waits, 0.0, atol=1e-12)
        assert res.efficiency(0.5) == pytest.approx(1.0)

    def test_barrier_wait_grows_with_ranks(self):
        # Synchronous SGD pays max-over-ranks: more ranks, more waiting.
        small = simulate_training_run(TrainingRunConfig(
            ranks=2, steps=200, compute_time_s=1.0, compute_jitter=0.05))
        big = simulate_training_run(TrainingRunConfig(
            ranks=64, steps=200, compute_time_s=1.0, compute_jitter=0.05))
        assert big.barrier_waits.mean() > small.barrier_waits.mean()

    def test_exposed_comm_adds_to_step(self):
        base = simulate_training_run(TrainingRunConfig(
            ranks=4, steps=50, compute_time_s=0.5, compute_jitter=0.0,
            allreduce_time_s=0.2, overlap_fraction=1.0))
        exposed = simulate_training_run(TrainingRunConfig(
            ranks=4, steps=50, compute_time_s=0.5, compute_jitter=0.0,
            allreduce_time_s=0.2, overlap_fraction=0.5))
        np.testing.assert_allclose(exposed.step_times - base.step_times, 0.1,
                                   rtol=1e-9)

    def test_starved_pipeline_slows_steps(self):
        fed = simulate_training_run(TrainingRunConfig(
            ranks=4, steps=20, compute_time_s=0.5, compute_jitter=0.0,
            input_rate_margin=2.0))
        starved = simulate_training_run(TrainingRunConfig(
            ranks=4, steps=20, compute_time_s=0.5, compute_jitter=0.0,
            input_rate_margin=0.5))
        assert starved.step_times.mean() > 1.8 * fed.step_times.mean()
        assert starved.input_waits.sum() > 0

    def test_sustained_statistics_pipeline(self):
        # The paper's Section VI methodology applies directly to the output.
        res = simulate_training_run(TrainingRunConfig(
            ranks=16, steps=300, compute_time_s=0.75, compute_jitter=0.04,
            seed=7))
        st = res.sustained()
        ideal = 16 / 0.75
        assert st.lo <= st.median <= st.hi
        assert 0.8 * ideal < st.median < ideal
        assert st.err_plus >= 0 and st.err_minus >= 0

    def test_samples_matrix_shape(self):
        res = simulate_training_run(TrainingRunConfig(
            ranks=3, steps=5, compute_time_s=0.1, batch_per_rank=2))
        assert res.samples_per_step.shape == (5, 3)
        assert (res.samples_per_step == 2).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingRunConfig(ranks=0, steps=1, compute_time_s=1.0)
        with pytest.raises(ValueError):
            TrainingRunConfig(ranks=1, steps=1, compute_time_s=-1.0)
        with pytest.raises(ValueError):
            TrainingRunConfig(ranks=1, steps=1, compute_time_s=1.0,
                              overlap_fraction=1.5)

    def test_total_time_consistent(self):
        res = simulate_training_run(TrainingRunConfig(
            ranks=2, steps=10, compute_time_s=0.3, compute_jitter=0.02))
        assert res.total_time_s == pytest.approx(res.step_times.sum())
