"""Reproduction-summary aggregator."""
import pytest

from repro.perf import SummaryRow, render_summary, reproduction_summary


@pytest.fixture(scope="module")
def rows():
    return reproduction_summary()


class TestSummary:
    def test_covers_all_experiment_families(self, rows):
        families = {r.experiment for r in rows}
        assert {"Fig 2", "Fig 4", "Sec V-A1", "Sec V-A3", "Sec V-B1",
                "Sec VI", "Sec VII-A"} <= families

    def test_every_row_has_both_sides(self, rows):
        for r in rows:
            assert r.paper and r.measured

    def test_batch_limit_row_matches_paper(self, rows):
        row = next(r for r in rows if "max batch" in r.metric)
        assert row.measured == "1 / 2"

    def test_render_is_table(self, rows):
        out = render_summary(rows)
        lines = out.splitlines()
        assert lines[0].startswith("Reproduction summary")
        assert len(lines) == len(rows) + 3

    def test_render_default_computes(self):
        out = render_summary()
        assert "TC FN/FP" in out
