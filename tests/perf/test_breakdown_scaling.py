"""Figures 3/8/9 (kernel breakdown) and Figures 4/5 (scaling)."""
import numpy as np
import pytest

from repro.perf import (
    PAPER_DETAIL,
    PAPER_SCALING_ANCHORS,
    ScalingModel,
    figure5_curves,
    kernel_breakdown,
    weak_scaling_curve,
)
from repro.hpc import PIZ_DAINT, SUMMIT


class TestBreakdown:
    @pytest.fixture(scope="class")
    def tables(self):
        return {
            (net, prec): kernel_breakdown(net, prec)
            for net in ("tiramisu", "deeplabv3+")
            for prec in ("fp32", "fp16")
        }

    def test_convolutions_dominate_fp32(self, tables):
        # Paper Figure 3: conv fwd+bwd is ~80% of FP32 step time.
        for net in ("tiramisu", "deeplabv3+"):
            t = tables[(net, "fp32")]
            pct = t.time_pct()
            conv_share = pct.get("conv_fwd", 0) + pct.get("conv_bwd", 0)
            assert conv_share > 60.0

    def test_bwd_conv_is_single_biggest_category(self, tables):
        for key, t in tables.items():
            assert t.dominant_category() == "conv_bwd"

    def test_fp16_shifts_time_to_memory_categories(self, tables):
        # With 8x faster math, point-wise + copies take a larger share.
        for net in ("tiramisu", "deeplabv3+"):
            p32 = tables[(net, "fp32")].time_pct()
            p16 = tables[(net, "fp16")].time_pct()
            mem32 = p32.get("pointwise_fwd", 0) + p32.get("copy", 0)
            mem16 = p16.get("pointwise_fwd", 0) + p16.get("copy", 0)
            assert mem16 > mem32

    def test_step_times_within_2x_of_paper(self, tables):
        for (net, prec), table in tables.items():
            paper_ms = PAPER_DETAIL[(net, prec)][0]
            ratio = table.total_time_s * 1e3 / paper_ms
            assert 0.5 < ratio < 2.0, (net, prec, ratio)

    def test_math_totals_match_paper(self, tables):
        for (net, prec), table in tables.items():
            paper_tf = PAPER_DETAIL[(net, prec)][1]
            assert table.total_flops / 1e12 == pytest.approx(paper_tf, rel=0.2)

    def test_fp16_total_math_doubles(self, tables):
        # Batch 2 in FP16 -> twice the per-step FLOPs of batch-1 FP32.
        for net in ("tiramisu", "deeplabv3+"):
            f32 = tables[(net, "fp32")].total_flops
            f16 = tables[(net, "fp16")].total_flops
            assert f16 == pytest.approx(2 * f32, rel=0.01)

    def test_allreduce_small_share(self, tables):
        # Paper: NCCL kernels are ~5-7% of step time.
        for t in tables.values():
            assert t.time_pct().get("allreduce", 0) < 15.0

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            kernel_breakdown("unet", "fp32")


class TestWeakScaling:
    def test_summit_deeplab_fp16_anchor(self):
        gpus, eff, pf = PAPER_SCALING_ANCHORS[("deeplabv3+", "summit", "fp16")]
        p = weak_scaling_curve("deeplabv3+", "summit", "fp16", lag=1,
                              gpu_counts=[gpus])[0]
        assert p.efficiency * 100 == pytest.approx(eff, abs=3.0)
        assert p.sustained_pflops == pytest.approx(pf, rel=0.20)

    def test_summit_deeplab_fp32_anchor(self):
        gpus, eff, pf = PAPER_SCALING_ANCHORS[("deeplabv3+", "summit", "fp32")]
        p = weak_scaling_curve("deeplabv3+", "summit", "fp32", lag=1,
                              gpu_counts=[gpus])[0]
        assert p.efficiency * 100 == pytest.approx(eff, abs=3.0)
        assert p.sustained_pflops == pytest.approx(pf, rel=0.20)

    def test_piz_daint_anchor(self):
        gpus, eff, pf = PAPER_SCALING_ANCHORS[("tiramisu_4ch", "piz_daint", "fp32")]
        p = weak_scaling_curve("tiramisu_4ch", "piz_daint", "fp32", lag=0,
                              gpu_counts=[gpus])[0]
        assert p.efficiency * 100 == pytest.approx(eff, abs=4.0)
        assert p.sustained_pflops == pytest.approx(pf, rel=0.20)

    def test_exascale_peak_class(self):
        # The headline: FP16 DeepLab at 27360 GPUs lands in the EF/s class
        # (paper: 1.13 EF/s peak, 999 PF/s sustained).
        p = weak_scaling_curve("deeplabv3+", "summit", "fp16", lag=1,
                              gpu_counts=[27360])[0]
        assert 0.8e3 < p.sustained_pflops < 1.4e3

    def test_efficiency_monotone_decreasing(self):
        pts = weak_scaling_curve("deeplabv3+", "summit", "fp16", lag=1,
                                 gpu_counts=[1, 6, 96, 1536, 6144, 27360])
        effs = [p.efficiency for p in pts]
        assert all(b <= a + 1e-12 for a, b in zip(effs, effs[1:]))
        assert effs[0] == 1.0

    def test_images_scale_superlinearly_in_gpus(self):
        pts = weak_scaling_curve("tiramisu", "summit", "fp32", lag=1,
                                 gpu_counts=[6, 6144])
        assert pts[1].images_per_second > 500 * pts[0].images_per_second

    def test_lag1_beats_lag0(self):
        for n in (1536, 27360):
            p0 = weak_scaling_curve("deeplabv3+", "summit", "fp16", lag=0,
                                    gpu_counts=[n])[0]
            p1 = weak_scaling_curve("deeplabv3+", "summit", "fp16", lag=1,
                                    gpu_counts=[n])[0]
            assert p1.efficiency > p0.efficiency

    def test_centralized_control_plane_collapses(self):
        # The original Horovod scheduler is the bottleneck the paper fixed.
        hier = ScalingModel("deeplabv3+", SUMMIT, "fp16", lag=1,
                            control_plane="hierarchical").point(27360)
        cent = ScalingModel("deeplabv3+", SUMMIT, "fp16", lag=1,
                            control_plane="centralized").point(27360)
        assert cent.efficiency < 0.5 * hier.efficiency

    def test_default_gpu_counts_cover_system(self):
        pts = weak_scaling_curve("tiramisu_4ch", "piz_daint", "fp32", lag=0)
        assert pts[0].gpus == 1
        assert pts[-1].gpus == PIZ_DAINT.total_gpus

    def test_invalid_staging(self):
        with pytest.raises(ValueError):
            ScalingModel("tiramisu", SUMMIT, "fp32", staging="clairvoyant")


class TestFigure5:
    @pytest.fixture(scope="class")
    def curves(self):
        return figure5_curves(gpu_counts=[64, 512, 1024, 2048])

    def test_local_and_global_match_at_small_scale(self, curves):
        small = curves[0]
        assert small.global_fs.efficiency == pytest.approx(
            small.local.efficiency, rel=1e-6)

    def test_global_penalized_at_2048(self, curves):
        big = curves[-1]
        assert big.gpus == 2048
        assert big.global_fs.input_limited
        assert big.efficiency_penalty > 5.0  # paper: ~9.5% relative loss

    def test_local_never_input_limited(self, curves):
        assert not any(c.local.input_limited for c in curves)

    def test_demand_near_fs_limit_at_2048(self, curves):
        # Paper: "the neural network is demanding nearly 110 GB/s ... very
        # close to the file system's limit of 112 GB/s".
        from repro.perf import aggregate_demand
        from repro.climate import PAPER_DATASET
        big = curves[-1]
        demand = aggregate_demand(big.global_fs, PAPER_DATASET.sample_bytes)
        limit = PIZ_DAINT.filesystem.effective_read_bandwidth
        assert 0.85 * limit < demand <= 1.05 * limit

    def test_global_throughput_saturates(self, curves):
        # images/s stops scaling once the FS is the bottleneck.
        by_gpus = {c.gpus: c for c in curves}
        gain = (by_gpus[2048].global_fs.images_per_second
                / by_gpus[1024].global_fs.images_per_second)
        assert gain < 1.8  # far below the 2x of ideal weak scaling
