"""The machine-readable benchmark protocol and its CI perf gate.

Acceptance evidence for the gate lives here: a synthetic 2x slowdown on a
gated metric must flip ``compare()`` to FAIL (and the CLI to exit 1),
while ungated absolute wall-times may drift freely.
"""
import importlib.util
import json
import pathlib
import sys

import numpy as np
import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def _load_runner():
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        "bench_runner_under_test", _BENCH_DIR / "runner.py")
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves field types through sys.modules[cls.__module__];
    # register before exec or @dataclass blows up at import time.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


runner = _load_runner()


def _report(metrics: dict, tag: str = "head") -> dict:
    return {
        "schema": runner.SCHEMA,
        "tag": tag,
        "profile": "quick",
        "suites": ["synthetic"],
        "created_unix": 0.0,
        "commit": "0" * 40,
        "host": {},
        "metrics": metrics,
    }


def _metric(value, *, hib=True, gate=True, tolerance=None):
    out = {"value": value, "unit": "x", "higher_is_better": hib, "gate": gate}
    if tolerance is not None:
        out["tolerance"] = tolerance
    return out


class TestCompare:
    def test_synthetic_2x_slowdown_fails_gate(self):
        """Acceptance: the gate demonstrably fails on a 2x regression."""
        baseline = _report({"kernels.conv_fwd_speedup": _metric(2.2)})
        head = _report({"kernels.conv_fwd_speedup": _metric(1.1)})  # 2x slower
        rows, ok = runner.compare(head, baseline)
        assert not ok
        assert rows[0]["status"] == "regression" and rows[0]["gated"]

    def test_within_band_passes(self):
        baseline = _report({"m": _metric(2.0, tolerance=0.15)})
        head = _report({"m": _metric(1.8)})     # -10%, inside the 15% band
        rows, ok = runner.compare(head, baseline)
        assert ok and rows[0]["status"] == "ok"

    def test_lower_is_better_direction(self):
        baseline = _report({"t": _metric(1.0, hib=False, tolerance=0.10)})
        slower = _report({"t": _metric(1.5, hib=False)})
        _, ok = runner.compare(slower, baseline)
        assert not ok, "bigger time on a lower-is-better metric must fail"
        faster = _report({"t": _metric(0.5, hib=False)})
        rows, ok = runner.compare(faster, baseline)
        assert ok and rows[0]["status"] == "improved"

    def test_ungated_metric_never_fails(self):
        baseline = _report({"ms": _metric(10.0, hib=False, gate=False)})
        head = _report({"ms": _metric(100.0, hib=False, gate=False)})
        rows, ok = runner.compare(head, baseline)
        assert ok
        assert rows[0]["status"] == "regression" and not rows[0]["gated"]

    def test_missing_gated_metric_fails(self):
        baseline = _report({"gone": _metric(1.0)})
        head = _report({})
        rows, ok = runner.compare(head, baseline)
        assert not ok and rows[0]["status"] == "missing"

    def test_missing_ungated_metric_passes(self):
        baseline = _report({"gone": _metric(1.0, gate=False)})
        _, ok = runner.compare(_report({}), baseline)
        assert ok

    def test_new_head_metric_is_reported_not_gated(self):
        baseline = _report({})
        head = _report({"fresh": _metric(3.0)})
        rows, ok = runner.compare(head, baseline)
        assert ok and rows[0]["status"] == "new"

    def test_per_metric_tolerance_overrides_default(self):
        baseline = _report({"m": _metric(2.0, tolerance=0.5)})
        head = _report({"m": _metric(1.2)})     # -40%: outside 15%, inside 50%
        _, ok = runner.compare(head, baseline, default_tolerance=0.15)
        assert ok

    def test_format_compare_is_a_table(self):
        baseline = _report({"m": _metric(2.0)})
        head = _report({"m": _metric(1.0)})
        rows, _ = runner.compare(head, baseline)
        text = runner.format_compare(rows)
        assert "metric" in text and "regression" in text and "±" in text


class TestReportIO:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = _report({"m": _metric(1.0)}, tag="roundtrip")
        path = runner.write_report(report, tmp_path)
        assert path.name == "BENCH_roundtrip.json"
        assert runner.load_report(path) == json.loads(path.read_text())

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = _report({})
        bad["schema"] = "someone-elses/9"
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="schema"):
            runner.load_report(p)

    def test_committed_baseline_is_valid(self):
        """The gate's reference document must always parse under the schema
        and contain the headline kernel metrics with sane values."""
        report = runner.load_report(_BENCH_DIR / "baseline.json")
        metrics = report["metrics"]
        fwd = metrics["kernels.conv_fwd_speedup"]
        assert fwd["gate"] and fwd["higher_is_better"]
        assert fwd["value"] >= 2.0, "committed baseline below the 2x claim"
        assert metrics["kernels.conv_wgrad_speedup"]["value"] > 1.0
        for name, m in metrics.items():
            assert np.isfinite(m["value"]), name

    def test_duplicate_metric_names_rejected(self, tmp_path):
        suite = tmp_path / "bench_dup.py"
        suite.write_text(
            "def collect(profile):\n"
            "    return [{'name': 'a', 'value': 1.0},\n"
            "            {'name': 'a', 'value': 2.0}]\n")
        with pytest.raises(ValueError, match="duplicate"):
            runner.run_suites(["dup"], bench_dir=tmp_path)

    def test_suite_without_collect_rejected(self, tmp_path):
        (tmp_path / "bench_empty.py").write_text("x = 1\n")
        with pytest.raises(AttributeError, match="collect"):
            runner.load_suite("empty", tmp_path)


class TestTiming:
    def test_summarize_times(self):
        stats = runner.summarize_times([3.0, 1.0, 2.0, 5.0, 4.0])
        assert stats["median_s"] == 3.0
        assert stats["min_s"] == 1.0
        assert stats["repeats"] == 5
        lo, hi = stats["ci68_s"]
        assert 1.0 <= lo <= stats["median_s"] <= hi <= 5.0

    def test_paired_stats_counts_both_sides(self):
        calls = {"a": 0, "b": 0}
        sa, sb = runner.paired_stats(
            lambda: calls.__setitem__("a", calls["a"] + 1),
            lambda: calls.__setitem__("b", calls["b"] + 1),
            repeats=4, warmup=2)
        assert calls == {"a": 6, "b": 6}        # 2 warmup + 4 timed each
        assert sa["repeats"] == sb["repeats"] == 4


class TestCLIGate:
    def test_cli_exits_1_on_regression(self, tmp_path, monkeypatch):
        """End-to-end: a baseline doctored 2x above reality trips exit 1."""
        suite = tmp_path / "bench_synth.py"
        suite.write_text(
            "def collect(profile):\n"
            "    return [{'name': 'synth.speedup', 'value': 1.0,\n"
            "             'unit': 'x', 'gate': True}]\n")
        inflated = _report({"synth.speedup": _metric(2.0)}, tag="baseline")
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(inflated))
        monkeypatch.setattr(runner, "BENCH_DIR", tmp_path)
        rc = runner.main([
            "--suite", "synth", "--tag", "head", "--out", str(tmp_path / "out"),
            "--against", str(base_path)])
        assert rc == 1
        report = json.loads((tmp_path / "out" / "BENCH_head.json").read_text())
        assert report["metrics"]["synth.speedup"]["value"] == 1.0

    def test_cli_exits_0_when_matching(self, tmp_path, monkeypatch):
        suite = tmp_path / "bench_synth.py"
        suite.write_text(
            "def collect(profile):\n"
            "    return [{'name': 'synth.speedup', 'value': 1.0,\n"
            "             'unit': 'x', 'gate': True}]\n")
        honest = _report({"synth.speedup": _metric(1.0)}, tag="baseline")
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(honest))
        monkeypatch.setattr(runner, "BENCH_DIR", tmp_path)
        rc = runner.main([
            "--suite", "synth", "--tag", "head", "--out", str(tmp_path / "out"),
            "--against", str(base_path)])
        assert rc == 0
