"""Strong scaling (constant global batch, Section III)."""
import pytest

from repro.hpc import SUMMIT
from repro.perf import ScalingModel


@pytest.fixture(scope="module")
def model():
    return ScalingModel("deeplabv3+", SUMMIT, "fp32", lag=1)


class TestStrongScaling:
    def test_doubling_gains_shrink_vs_weak(self, model):
        # Weak scaling: doubling workers nearly doubles images/s.  Strong
        # scaling at fixed global batch: the gain collapses as per-worker
        # compute shrinks toward the fixed communication cost.
        b = 8192
        weak_gain = (model.point(8192).images_per_second
                     / model.point(4096).images_per_second)
        strong_gain = (model.strong_scaling_point(8192, b).images_per_second
                       / model.strong_scaling_point(4096, b).images_per_second)
        assert weak_gain > 1.9
        assert strong_gain < weak_gain

    def test_single_worker_is_perfect(self, model):
        p = model.strong_scaling_point(1, 64)
        assert p.efficiency == pytest.approx(1.0)

    def test_throughput_saturates(self, model):
        # Images/s gains flatten as per-worker compute shrinks toward the
        # fixed communication cost.
        b = 4096
        r1 = model.strong_scaling_point(256, b).images_per_second
        r2 = model.strong_scaling_point(4096, b).images_per_second
        speedup = r2 / r1
        assert speedup < 16  # far below the ideal 16x

    def test_efficiency_monotone_decreasing(self, model):
        b = 8192
        effs = [model.strong_scaling_point(n, b).efficiency
                for n in (1, 64, 512, 4096, 8192)]
        assert all(e2 <= e1 + 1e-12 for e1, e2 in zip(effs, effs[1:]))

    def test_batch_smaller_than_workers_rejected(self, model):
        with pytest.raises(ValueError):
            model.strong_scaling_point(128, 64)

    def test_step_time_shrinks_with_workers(self, model):
        b = 4096
        t1 = model.strong_scaling_point(64, b).step_time_s
        t2 = model.strong_scaling_point(1024, b).step_time_s
        assert t2 < t1
