"""Throughput statistics (Section VI methodology) and table rendering."""
import numpy as np
import pytest

from repro.perf import (
    format_table,
    paper_vs_measured,
    peak_throughput,
    sustained_throughput,
)


class TestSustainedThroughput:
    def test_constant_rate(self):
        samples = np.full((50, 8), 2.0)     # 2 samples per rank per step
        times = np.full(50, 0.5)
        st = sustained_throughput(samples, times)
        assert st.median == pytest.approx(8 * 2 / 0.5)
        assert st.lo == st.hi == st.median
        assert st.err_plus == st.err_minus == 0.0

    def test_median_robust_to_outliers(self):
        samples = np.full((100, 4), 1.0)
        times = np.full(100, 1.0)
        times[:5] = 100.0  # straggler steps
        st = sustained_throughput(samples, times)
        assert st.median == pytest.approx(4.0)

    def test_central_68_ci(self):
        rng = np.random.default_rng(0)
        samples = np.full((1000, 2), 1.0)
        times = rng.lognormal(0.0, 0.2, size=1000)
        st = sustained_throughput(samples, times)
        assert st.lo < st.median < st.hi
        rates = 2.0 / times
        np.testing.assert_allclose(st.lo, np.quantile(rates, 0.16), rtol=1e-6)
        np.testing.assert_allclose(st.hi, np.quantile(rates, 0.84), rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            sustained_throughput(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            sustained_throughput(np.ones((5, 2)), np.ones(4))
        with pytest.raises(ValueError):
            sustained_throughput(np.ones((5, 2)), np.zeros(5))

    def test_peak_at_least_median(self):
        rng = np.random.default_rng(1)
        samples = np.full((100, 4), 1.0)
        times = rng.uniform(0.5, 1.5, size=100)
        st = sustained_throughput(samples, times)
        assert peak_throughput(samples, times) >= st.median


class TestReport:
    def test_format_table_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["v"], [[1234.5678], [0.0001234], [1.5]])
        assert "1.23e+03" in out
        assert "0.000123" in out
        assert "1.5" in out

    def test_paper_vs_measured(self):
        line = paper_vs_measured("eff", 90.7, 90.3, unit="%")
        assert "paper=90.7%" in line
        assert "measured=90.3%" in line
        assert "ratio=1.00" in line
