"""Epoch/validation overhead (Section VI's amortization claim)."""
import pytest

from repro.hpc import SUMMIT
from repro.perf import ScalingModel


@pytest.fixture(scope="module")
def model():
    return ScalingModel("tiramisu", SUMMIT, "fp32", lag=1)


class TestEpochOverhead:
    def test_validation_overhead_small(self, model):
        # "keeping the epoch sizes large enough that this overhead is
        # negligible once amortized over the steps"
        _, overhead = model.epoch_time(gpus=6144, samples_per_gpu=250)
        assert overhead < 0.05

    def test_overhead_constant_across_scale(self, model):
        # The staging layout holds per-GPU epoch size constant, so the
        # overhead fraction does not grow with GPU count.
        _, small = model.epoch_time(gpus=6, samples_per_gpu=250)
        _, large = model.epoch_time(gpus=24576, samples_per_gpu=250)
        assert large == pytest.approx(small, abs=0.01)

    def test_epoch_time_scales_with_samples(self, model):
        t1, _ = model.epoch_time(gpus=96, samples_per_gpu=250)
        t2, _ = model.epoch_time(gpus=96, samples_per_gpu=500)
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_paper_two_hour_convergence_window(self, model):
        # Section VII-C: convergence runs on up to 1024 nodes targeted "a
        # total training time of just over two hours".  With 250 samples
        # per GPU per epoch, a plausible epoch count fits that window.
        epoch_s, _ = model.epoch_time(gpus=6144, samples_per_gpu=250)
        total_hours = 60 * epoch_s / 3600  # 60 epochs
        assert 0.5 < total_hours < 6.0

    def test_small_epoch_rejected(self, model):
        with pytest.raises(ValueError):
            model.epoch_time(gpus=6, samples_per_gpu=0)
