"""Autodiff core: arithmetic, broadcasting, reductions, shape ops."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import Tensor, concatenate, no_grad, stack
from repro.framework.tensor import _unbroadcast


def fd_grad(f, x, eps=1e-6):
    """Central finite-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return g


class TestBasics:
    def test_leaf_has_no_parents(self):
        t = Tensor([1.0, 2.0])
        assert t.op_name == "leaf"
        assert t._parents == ()

    def test_shape_dtype_size(self):
        t = Tensor(np.zeros((2, 3), dtype=np.float32))
        assert t.shape == (2, 3)
        assert t.dtype == np.float32
        assert t.size == 6
        assert t.ndim == 2
        assert len(t) == 2

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_breaks_tape(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_numpy_returns_payload(self):
        data = np.arange(4.0)
        assert Tensor(data).numpy() is data


class TestArithmetic:
    def test_add_backward(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, [1, 1])
        np.testing.assert_allclose(y.grad, [1, 1])

    def test_mul_backward(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, [3, 4])
        np.testing.assert_allclose(y.grad, [1, 2])

    def test_sub_rsub(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        (10.0 - x).backward()
        np.testing.assert_allclose(x.grad, [-1.0])

    def test_div_backward(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        y = Tensor(np.array([2.0]), requires_grad=True)
        (x / y).backward()
        np.testing.assert_allclose(x.grad, [0.5])
        np.testing.assert_allclose(y.grad, [-1.0])

    def test_neg_pow(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        ((-x) ** 2).backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_scalar_coercion(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * 3 + 1).backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_broadcast_add_unbroadcasts_grad(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((3,)), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2, 2, 2])

    def test_broadcast_mul_keepdim_axis(self):
        x = Tensor(np.ones((2, 1, 3)), requires_grad=True)
        y = Tensor(np.ones((2, 4, 3)), requires_grad=True)
        (x * y).sum().backward()
        assert x.grad.shape == (2, 1, 3)
        np.testing.assert_allclose(x.grad, 4.0)

    def test_matmul_backward(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, fd_grad(lambda m: (m @ b).sum(), a),
                                   rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(tb.grad, fd_grad(lambda m: (a @ m).sum(), b),
                                   rtol=1e-5, atol=1e-7)

    def test_diamond_graph_accumulates(self):
        # x used twice: grad must accumulate through both paths.
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])

    def test_repeated_use_in_chain(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        z = (x + x) * x
        z.backward()
        np.testing.assert_allclose(x.grad, [4 * 1.5])


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_sum_axis_no_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        s = x.sum(axis=0)
        assert s.shape == (3,)
        s.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_sum_negative_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_mean_scales(self):
        x = Tensor(np.ones((4,)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, 0.25)

    def test_mean_axis_tuple(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        m = x.mean(axis=(1, 2))
        assert m.shape == (2,)
        m.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0 / 12)

    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.transpose(1, 0)
        assert y.shape == (3, 2)
        (y * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem_scatters_grad(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 1, 0, 0])

    def test_concatenate_splits_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        c = concatenate([a, b], axis=1)
        assert c.shape == (2, 5)
        (c * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0)
        np.testing.assert_allclose(b.grad, 2.0)

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 3)
        s.sum().backward()
        np.testing.assert_allclose(a.grad, 1.0)


class TestNonlinearities:
    @pytest.mark.parametrize("name", ["exp", "log", "sqrt", "sigmoid", "tanh"])
    def test_unary_matches_fd(self, name):
        rng = np.random.default_rng(1)
        x = np.abs(rng.normal(size=5)) + 0.5
        t = Tensor(x, requires_grad=True)
        getattr(t, name)().sum().backward()
        ref = fd_grad(lambda a: getattr(np, name if name != "sigmoid" else "tanh")(a).sum()
                      if name != "sigmoid" else (1 / (1 + np.exp(-a))).sum(), x)
        np.testing.assert_allclose(t.grad, ref, rtol=1e-4, atol=1e-6)

    def test_relu_gradient_mask(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0, 0, 1])

    def test_clip_gradient(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        x.clip(-1, 1).sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])


class TestNoGrad:
    def test_no_grad_blocks_tape(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            pass
        assert (x * 2).requires_grad


class TestUnbroadcast:
    @given(st.sampled_from([(3,), (1,), (2, 3), (1, 3), (2, 1), (1, 1)]))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shape):
        target = np.zeros(shape)
        g = np.ones(np.broadcast_shapes(shape, (4, 2, 3)))
        out = _unbroadcast(g, shape)
        assert out.shape == shape
        # Total mass is conserved.
        assert out.sum() == g.sum()


class TestHypothesisGradients:
    @given(
        st.integers(2, 4), st.integers(2, 4),
        st.sampled_from(["add", "mul", "div"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_binary_op_gradcheck(self, n, m, op):
        rng = np.random.default_rng(n * 10 + m)
        a = rng.normal(size=(n, m)) + 3.0
        b = rng.normal(size=(m,)) + 3.0  # broadcast path
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        f = {"add": lambda x, y: x + y, "mul": lambda x, y: x * y,
             "div": lambda x, y: x / y}[op]
        f(ta, tb).sum().backward()
        fnp = {"add": np.add, "mul": np.multiply, "div": np.divide}[op]
        np.testing.assert_allclose(
            ta.grad, fd_grad(lambda x: fnp(x, b).sum(), a), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(
            tb.grad, fd_grad(lambda y: fnp(a, y).sum(), b), rtol=1e-4, atol=1e-6)
