"""Mathematical invariants of the framework, property-based.

These pin down structural facts the layer implementations must satisfy
regardless of shapes or values: linearity and shift-equivariance of
convolution, normalization invariances, adjoint identities, and exactness
of the distributed reductions under permutation.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import World, allreduce
from repro.framework.losses import softmax_probs, weighted_cross_entropy
from repro.framework.ops import (
    batchnorm_forward,
    conv2d_backward_input,
    conv2d_forward,
    maxpool2d_forward,
)
from repro.framework.tensor import Tensor


def arrays(shape, seed):
    return np.random.default_rng(seed).normal(size=shape)


class TestConvProperties:
    @given(st.integers(0, 100), st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, seed, a, b):
        x = arrays((1, 2, 8, 8), seed)
        y = arrays((1, 2, 8, 8), seed + 1)
        w = arrays((3, 2, 3, 3), seed + 2)
        lhs = conv2d_forward(a * x + b * y, w, 1, 1, 1)
        rhs = a * conv2d_forward(x, w, 1, 1, 1) + b * conv2d_forward(y, w, 1, 1, 1)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-8)

    @given(st.integers(0, 50), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_translation_equivariance(self, seed, shift):
        # Shifting the input shifts the output (away from boundaries).
        x = arrays((1, 1, 12, 12), seed)
        w = arrays((1, 1, 3, 3), seed + 1)
        y = conv2d_forward(x, w, 1, 1, 1)
        x_shift = np.roll(x, shift, axis=3)
        y_shift = conv2d_forward(x_shift, w, 1, 1, 1)
        inner = slice(shift + 1, -(shift + 1))
        np.testing.assert_allclose(y_shift[:, :, :, inner],
                                   np.roll(y, shift, axis=3)[:, :, :, inner],
                                   rtol=1e-9, atol=1e-9)

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_adjoint_identity(self, seed):
        # <g, A x> == <A^T g, x> for the conv/dgrad pair.
        x = arrays((1, 2, 7, 9), seed)
        w = arrays((3, 2, 3, 3), seed + 1)
        y = conv2d_forward(x, w, 2, 1, 1)
        g = arrays(y.shape, seed + 2)
        dx = conv2d_backward_input(g, w, x.shape, 2, 1, 1)
        assert (g * y).sum() == pytest.approx((dx * x).sum(), rel=1e-9)

    @given(st.integers(0, 50), st.floats(0.1, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_scale_equivariance(self, seed, scale):
        x = arrays((1, 2, 6, 6), seed)
        w = arrays((2, 2, 3, 3), seed + 1)
        np.testing.assert_allclose(conv2d_forward(scale * x, w, 1, 1, 1),
                                   scale * conv2d_forward(x, w, 1, 1, 1),
                                   rtol=1e-8)


class TestPoolProperties:
    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_max_pool_monotone(self, seed):
        # x <= y elementwise implies pool(x) <= pool(y).
        x = arrays((1, 2, 8, 8), seed)
        y = x + np.abs(arrays((1, 2, 8, 8), seed + 1))
        px, _ = maxpool2d_forward(x, 2, 2)
        py, _ = maxpool2d_forward(y, 2, 2)
        assert (px <= py + 1e-12).all()

    @given(st.integers(0, 50), st.floats(-5, 5))
    @settings(max_examples=15, deadline=None)
    def test_max_pool_shift_covariance(self, seed, c):
        x = arrays((1, 1, 8, 8), seed)
        p1, _ = maxpool2d_forward(x + c, 2, 2)
        p0, _ = maxpool2d_forward(x, 2, 2)
        np.testing.assert_allclose(p1, p0 + c, rtol=1e-9, atol=1e-9)


class TestNormalizationProperties:
    @given(st.integers(0, 50), st.floats(0.5, 10.0), st.floats(-10, 10))
    @settings(max_examples=15, deadline=None)
    def test_batchnorm_affine_input_invariance(self, seed, scale, shift):
        # BN output is invariant to per-channel affine input changes.
        x = arrays((4, 2, 5, 5), seed)
        gamma = np.ones(2, np.float32)
        beta = np.zeros(2, np.float32)
        base, _ = batchnorm_forward(x, gamma, beta)
        moved, _ = batchnorm_forward(scale * x + shift, gamma, beta)
        np.testing.assert_allclose(moved, base, rtol=1e-4, atol=1e-4)

    @given(st.integers(0, 50), st.floats(-20, 20))
    @settings(max_examples=15, deadline=None)
    def test_softmax_shift_invariance(self, seed, c):
        z = arrays((3, 5), seed)
        np.testing.assert_allclose(softmax_probs(z + c, axis=1),
                                   softmax_probs(z, axis=1), rtol=1e-9,
                                   atol=1e-12)

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_loss_permutation_invariance(self, seed):
        # Shuffling the pixel order does not change the (mean) loss.
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(1, 3, 4, 4))
        labels = rng.integers(0, 3, size=(1, 4, 4))
        perm = rng.permutation(16)
        l_flat = logits.reshape(1, 3, 16)[:, :, perm].reshape(1, 3, 4, 4)
        lab_flat = labels.reshape(1, 16)[:, perm].reshape(1, 4, 4)
        a = weighted_cross_entropy(Tensor(logits), labels).item()
        b = weighted_cross_entropy(Tensor(l_flat), lab_flat).item()
        assert a == pytest.approx(b, rel=1e-9)


class TestReductionProperties:
    @given(st.integers(2, 6), st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_permutation_invariance(self, n, seed):
        # The reduced value is independent of which rank holds which buffer.
        rng = np.random.default_rng(seed)
        bufs = [rng.normal(size=13).astype(np.float64) for _ in range(n)]
        out1 = allreduce(World(n), bufs, strategy="ring")[0]
        perm = rng.permutation(n)
        out2 = allreduce(World(n), [bufs[i] for i in perm], strategy="ring")[0]
        np.testing.assert_allclose(out1, out2, rtol=1e-12)

    @given(st.integers(2, 6), st.floats(0.1, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_homogeneity(self, n, scale):
        rng = np.random.default_rng(int(scale * 100))
        bufs = [rng.normal(size=9).astype(np.float64) for _ in range(n)]
        base = allreduce(World(n), bufs, strategy="ring")[0]
        scaled = allreduce(World(n), [scale * b for b in bufs], strategy="ring")[0]
        np.testing.assert_allclose(scaled, scale * base, rtol=1e-10)


class TestAutogradProperties:
    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_gradient_of_sum_is_ones(self, seed):
        x = Tensor(arrays((3, 4), seed), requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((3, 4)))

    @given(st.integers(0, 50), st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=15, deadline=None)
    def test_grad_linearity(self, seed, a, b):
        # grad of (a f + b g) = a grad f + b grad g.
        base = arrays((5,), seed)

        def grad_of(fn):
            t = Tensor(base.copy(), requires_grad=True)
            fn(t).backward()
            return t.grad

        f = lambda t: (t * t).sum()
        g = lambda t: (t.exp()).sum()
        combined = grad_of(lambda t: f(t) * a + g(t) * b)
        np.testing.assert_allclose(combined, a * grad_of(f) + b * grad_of(g),
                                   rtol=1e-8, atol=1e-10)
