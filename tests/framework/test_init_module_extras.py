"""Initializers and remaining module-system edge cases."""
import numpy as np
import pytest

from repro.framework import init as initializers
from repro.framework.layers import Conv2D, Identity, Sequential
from repro.framework.module import Module
from repro.framework.parameter import Parameter


class TestInitializers:
    RNG = np.random.default_rng(0)

    def test_he_normal_std(self):
        w = initializers.he_normal(np.random.default_rng(0), (256, 128, 3, 3))
        fan_in = 128 * 9
        assert w.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.05)
        assert w.dtype == np.float32

    def test_he_uniform_bounds(self):
        w = initializers.he_uniform(np.random.default_rng(1), (64, 32, 3, 3))
        limit = np.sqrt(6.0 / (32 * 9))
        assert w.min() >= -limit and w.max() <= limit

    def test_glorot_uniform_bounds(self):
        w = initializers.glorot_uniform(np.random.default_rng(2), (100, 50))
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit

    def test_dense_shape_fans(self):
        w = initializers.he_normal(np.random.default_rng(3), (10, 20))
        assert w.shape == (10, 20)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            initializers.he_normal(np.random.default_rng(0), (3, 3, 3))

    def test_zeros_ones(self):
        assert initializers.zeros((2, 2)).sum() == 0
        assert initializers.ones((3,)).sum() == 3

    def test_deterministic(self):
        a = initializers.he_normal(np.random.default_rng(7), (8, 4, 3, 3))
        b = initializers.he_normal(np.random.default_rng(7), (8, 4, 3, 3))
        np.testing.assert_array_equal(a, b)


class TestModuleExtras:
    def test_modules_iterator_includes_self(self):
        seq = Sequential(Conv2D(2, 3, 3), Identity())
        mods = list(seq.modules())
        assert mods[0] is seq
        assert len(mods) == 3

    def test_add_module_registers(self):
        class Holder(Module):
            def forward(self, x):
                return self.inner(x)

        h = Holder()
        h.add_module("inner", Identity())
        assert "inner" in h._modules
        assert h(5) == 5

    def test_cast_parameters_fp16_with_masters(self):
        seq = Sequential(Conv2D(2, 3, 3, bias=False))
        seq.cast_parameters(np.float16)
        p = seq[0].weight
        assert p.data.dtype == np.float16
        assert p.master is not None

    def test_parameter_repr(self):
        p = Parameter(np.zeros((2, 3)), name="w")
        assert "w" in repr(p) and "(2, 3)" in repr(p)

    def test_load_state_dict_refreshes_masters(self):
        conv = Conv2D(2, 3, 3, bias=False, rng=np.random.default_rng(0))
        conv.weight.enable_master_copy()
        new = np.ones_like(conv.weight.data)
        Sequential(conv)  # just to exercise container paths
        conv.load_state_dict({"weight": new})
        np.testing.assert_array_equal(conv.weight.master, new.astype(np.float32))
