"""Convolution algorithm backends and the autotuner (Section VI analogue)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.ops import CONV_BACKENDS, ConvAutotuner, conv2d_forward
from repro.framework.ops.backends import conv2d_fft, conv2d_im2col

RNG = np.random.default_rng(0)


class TestBackendAgreement:
    @pytest.mark.parametrize("backend", ["im2col", "fft"])
    @pytest.mark.parametrize("stride,padding,dilation", [
        (1, 0, 1), (1, 1, 1), (2, 1, 1), (1, 2, 2), (1, 4, 4), (2, 3, 1),
    ])
    def test_matches_reference(self, backend, stride, padding, dilation):
        x = RNG.normal(size=(2, 3, 11, 13))
        w = RNG.normal(size=(4, 3, 3, 3))
        ref = conv2d_forward(x, w, stride, padding, dilation)
        got = CONV_BACKENDS[backend](x, w, stride, padding, dilation)
        np.testing.assert_allclose(got, ref, rtol=1e-8, atol=1e-8)

    def test_large_kernel(self):
        x = RNG.normal(size=(1, 2, 16, 16))
        w = RNG.normal(size=(3, 2, 7, 7))
        ref = conv2d_forward(x, w, 2, 3, 1)
        np.testing.assert_allclose(conv2d_im2col(x, w, 2, 3, 1), ref,
                                   rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(conv2d_fft(x, w, 2, 3, 1), ref,
                                   rtol=1e-7, atol=1e-7)

    def test_fp16_inputs(self):
        x = RNG.normal(size=(1, 2, 8, 8)).astype(np.float16)
        w = RNG.normal(size=(2, 2, 3, 3)).astype(np.float16)
        ref = conv2d_forward(x, w, 1, 1, 1)
        got = conv2d_im2col(x, w, 1, 1, 1)
        assert got.dtype == np.float16
        np.testing.assert_allclose(got.astype(np.float32),
                                   ref.astype(np.float32), rtol=1e-2, atol=1e-2)

    @given(st.integers(1, 2), st.integers(1, 3), st.sampled_from([1, 3, 5]),
           st.sampled_from([1, 2]))
    @settings(max_examples=20, deadline=None)
    def test_property_all_backends_agree(self, n, c, kernel, dilation):
        rng = np.random.default_rng(n * 37 + c * 11 + kernel)
        x = rng.normal(size=(n, c, 12, 12))
        w = rng.normal(size=(2, c, kernel, kernel))
        pad = dilation * (kernel - 1) // 2
        ref = conv2d_forward(x, w, 1, pad, dilation)
        for name, fn in CONV_BACKENDS.items():
            got = fn(x, w, 1, pad, dilation)
            np.testing.assert_allclose(got, ref, rtol=1e-7, atol=1e-7,
                                       err_msg=name)


class TestAutotuner:
    def test_caches_choice(self):
        tuner = ConvAutotuner()
        x = RNG.normal(size=(1, 2, 10, 10))
        w = RNG.normal(size=(3, 2, 3, 3))
        first = tuner.select(x, w, 1, 1, 1)
        assert len(tuner.cache) == 1
        second = tuner.select(x, w, 1, 1, 1)
        assert first == second
        assert len(tuner.cache) == 1  # no retune

    def test_different_shapes_tune_separately(self):
        tuner = ConvAutotuner()
        w = RNG.normal(size=(2, 2, 3, 3))
        tuner.select(RNG.normal(size=(1, 2, 8, 8)), w, 1, 1, 1)
        tuner.select(RNG.normal(size=(1, 2, 16, 16)), w, 1, 1, 1)
        assert len(tuner.cache) == 2

    def test_call_returns_correct_result(self):
        tuner = ConvAutotuner()
        x = RNG.normal(size=(1, 3, 9, 9))
        w = RNG.normal(size=(2, 3, 3, 3))
        ref = conv2d_forward(x, w, 1, 1, 1)
        np.testing.assert_allclose(tuner(x, w, 1, 1, 1), ref, rtol=1e-8)

    def test_timings_recorded(self):
        tuner = ConvAutotuner()
        x = RNG.normal(size=(1, 1, 6, 6))
        w = RNG.normal(size=(1, 1, 3, 3))
        tuner.select(x, w, 1, 1, 1)
        (sig, times), = tuner.timings.items()
        assert set(times) == set(CONV_BACKENDS)
        assert all(t >= 0 for t in times.values())

    def test_restricted_backends(self):
        tuner = ConvAutotuner(backends={"fft": conv2d_fft})
        x = RNG.normal(size=(1, 1, 6, 6))
        w = RNG.normal(size=(1, 1, 3, 3))
        assert tuner.select(x, w, 1, 1, 1) == "fft"

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError):
            ConvAutotuner(backends={})
