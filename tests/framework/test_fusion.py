"""Inference-only fusion: BN folding, fused epilogues, freeze_for_inference.

The contract: ``model.freeze_for_inference()`` returns a *new* model whose
eval-mode outputs match the original to 1e-5, while the original stays
fully trainable and its ``analyze()`` kernel records are bit-for-bit
unchanged — the fusion pass is opt-in at inference and invisible to the
training cost model.
"""
import numpy as np
import pytest

from repro.framework import Tensor, no_grad
from repro.framework.fusion import (
    FusedConvBiasReLU,
    FusedScaleShiftReLU,
    bn_scale_shift,
    fold_bn_into_conv,
    freeze,
    fuse_sequential,
)
from repro.framework.layers import BatchNorm2D, Conv2D, Identity, ReLU
from repro.framework.module import Sequential
from repro.core.networks.blocks import (
    Bottleneck,
    ConvBNReLU,
    DenseBlock,
    DenseLayer,
    TransitionDown,
)
from repro.core.inference import forward_windows

RNG = np.random.default_rng(11)


def _warm_bn(bn: BatchNorm2D, channels: int, steps: int = 3):
    """Give the BN non-trivial frozen statistics by running training steps."""
    bn.train(True)
    for _ in range(steps):
        x = Tensor(RNG.standard_normal((4, channels, 6, 6)).astype(np.float32)
                   * 2.0 + 0.5)
        bn(x)
    bn.gamma.data[:] = RNG.uniform(0.5, 1.5, channels).astype(np.float32)
    bn.beta.data[:] = RNG.uniform(-0.5, 0.5, channels).astype(np.float32)
    bn.train(False)


def _warm_module(mod, channels: int, hw: int = 10, steps: int = 3):
    """Run a few training forwards so every BN has real running stats."""
    mod.train(True)
    for _ in range(steps):
        mod(Tensor(RNG.standard_normal((2, channels, hw, hw))
                   .astype(np.float32)))
    mod.train(False)


class TestFolding:
    def test_scale_shift_matches_eval_bn(self):
        bn = BatchNorm2D(5)
        _warm_bn(bn, 5)
        scale, shift = bn_scale_shift(bn)
        x = RNG.standard_normal((2, 5, 7, 7)).astype(np.float32)
        want = bn(Tensor(x)).data
        got = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_fold_bn_into_conv_matches_sequential(self):
        conv = Conv2D(3, 6, 3, padding="same", bias=False,
                      rng=np.random.default_rng(0))
        bn = BatchNorm2D(6)
        _warm_bn(bn, 6)
        w, b = fold_bn_into_conv(conv, bn)
        x = RNG.standard_normal((2, 3, 9, 9)).astype(np.float32)
        want = bn(conv(Tensor(x))).data
        fused = FusedConvBiasReLU(w, b, stride=1, padding=1, dilation=1,
                                  relu=False)
        got = fused(Tensor(x)).data
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_fold_handles_conv_bias(self):
        conv = Conv2D(2, 4, 3, padding="same", bias=True,
                      rng=np.random.default_rng(0))
        conv.bias.data[:] = RNG.standard_normal(4).astype(np.float32)
        bn = BatchNorm2D(4)
        _warm_bn(bn, 4)
        x = RNG.standard_normal((1, 2, 8, 8)).astype(np.float32)
        want = bn(conv(Tensor(x))).data
        fused = FusedConvBiasReLU.from_conv_bn(conv, bn, relu=False)
        np.testing.assert_allclose(fused(Tensor(x)).data, want,
                                   rtol=1e-5, atol=1e-5)

    def test_fused_relu_epilogue(self):
        conv = Conv2D(3, 5, 3, padding="same", bias=False,
                      rng=np.random.default_rng(2))
        bn = BatchNorm2D(5)
        _warm_bn(bn, 5)
        relu = ReLU()
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        want = relu(bn(conv(Tensor(x)))).data
        fused = FusedConvBiasReLU.from_conv_bn(conv, bn, relu=True)
        got = fused(Tensor(x)).data
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)
        assert (got >= 0).all()

    def test_fused_module_has_no_trainable_parameters(self):
        conv = Conv2D(2, 3, 3, padding="same", bias=False,
                      rng=np.random.default_rng(0))
        bn = BatchNorm2D(3)
        fused = FusedConvBiasReLU.from_conv_bn(conv, bn)
        assert list(fused.parameters()) == []


class TestFuseSequential:
    def test_conv_bn_relu_pattern(self):
        rng = np.random.default_rng(3)
        seq = Sequential(
            Conv2D(3, 6, 3, padding="same", bias=False, rng=rng),
            BatchNorm2D(6),
            ReLU(),
            Conv2D(6, 4, 1, bias=False, rng=rng),
            BatchNorm2D(4),
        )
        _warm_module(seq, 3, hw=9)
        x = RNG.standard_normal((2, 3, 9, 9)).astype(np.float32)
        want = seq(Tensor(x)).data
        fused = fuse_sequential(seq)
        assert fused == 2
        assert isinstance(seq.layers[0], FusedConvBiasReLU)
        assert isinstance(seq.layers[1], Identity)      # absorbed BN
        assert isinstance(seq.layers[2], Identity)      # absorbed ReLU
        assert isinstance(seq.layers[3], FusedConvBiasReLU)
        np.testing.assert_allclose(seq(Tensor(x)).data, want,
                                   rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("block_factory,channels", [
        (lambda rng: ConvBNReLU(3, 8, 3, rng=rng), 3),
        (lambda rng: DenseLayer(4, 6, rng=rng), 4),
        (lambda rng: DenseBlock(4, 2, 3, rng=rng), 4),
        (lambda rng: TransitionDown(6, rng=rng), 6),
        (lambda rng: Bottleneck(8, 4, rng=rng), 8),      # projection branch
        (lambda rng: Bottleneck(16, 4, rng=rng), 16),    # identity branch
    ], ids=["convbnrelu", "denselayer", "denseblock", "transition",
            "bottleneck-proj", "bottleneck-id"])
    def test_block_hooks_match_eval(self, block_factory, channels):
        block = block_factory(np.random.default_rng(5))
        _warm_module(block, channels)
        x = RNG.standard_normal((2, channels, 10, 10)).astype(np.float32)

        def run(mod):
            # DenseBlock returns (stack, new_maps); normalize to a tuple.
            out = mod(Tensor(x))
            return out if isinstance(out, tuple) else (out,)

        with no_grad():
            want = [t.data for t in run(block)]
        frozen = freeze(block)
        got = [t.data for t in run(frozen)]
        assert len(got) == len(want)
        for g, w in zip(got, want):
            np.testing.assert_allclose(g, w, rtol=1e-4, atol=1e-5)


class TestFreeze:
    def _model(self):
        rng = np.random.default_rng(7)
        return Sequential(
            ConvBNReLU(3, 8, 3, rng=rng),
            Bottleneck(8, 4, rng=rng),
            Conv2D(16, 3, 1, bias=True, rng=rng),
        )

    def test_freeze_matches_eval_forward(self):
        model = self._model()
        _warm_module(model, 3)
        x = RNG.standard_normal((2, 3, 12, 12)).astype(np.float32)
        with no_grad():
            want = model(Tensor(x)).data
        frozen = model.freeze_for_inference()
        got = frozen(Tensor(x)).data
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_original_model_is_untouched_and_trainable(self):
        model = self._model()
        _warm_module(model, 3)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        n_params = len(list(model.parameters()))
        model.freeze_for_inference()
        after = model.state_dict()
        assert set(before) == set(after)
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])
        assert len(list(model.parameters())) == n_params
        model.train(True)
        assert model.training     # original still toggles into training mode

    def test_frozen_model_refuses_training_mode(self):
        model = self._model()
        frozen = model.freeze_for_inference()
        assert not frozen.training
        frozen.train(True)
        assert not frozen.training, "_frozen models must stay in eval"

    def test_frozen_stays_eval_through_forward_windows(self):
        model = self._model()
        _warm_module(model, 3)
        frozen = model.freeze_for_inference()
        tiles = [RNG.standard_normal((3, 12, 12)).astype(np.float32)
                 for _ in range(3)]
        with no_grad():
            want = [model(Tensor(t[None])).data[0] for t in tiles]
        outs = forward_windows(frozen, tiles, batch_size=2)
        assert not frozen.training
        for got, ref in zip(outs, want):
            np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-5)

    def test_analyze_records_unchanged_by_freeze(self):
        """Folding is opt-in at inference: the training-graph cost model of
        the *original* model must be bit-for-bit identical after freeze()."""
        model = self._model()
        def snap():
            ga = model.analyze((3, 12, 12), batch=2)
            return [(r.name, r.category, r.flops, r.bytes, r.count)
                    for r in ga.records]
        before = snap()
        model.freeze_for_inference()
        assert snap() == before

    def test_frozen_traces_fused_kernels(self):
        model = self._model()
        frozen = model.freeze_for_inference()
        ga = frozen.analyze((3, 12, 12), batch=1, include_backward=False)
        names = [r.name for r in ga.records]
        assert any("bias_relu_fwd" in n for n in names), names
        assert not any("bwd" in n for n in names), "frozen graph has no backward"

    def test_scale_shift_relu_matches_bn_relu(self):
        bn = BatchNorm2D(4)
        _warm_bn(bn, 4)
        fused = FusedScaleShiftReLU.from_bn(bn, relu=True)
        x = RNG.standard_normal((2, 4, 6, 6)).astype(np.float32)
        want = np.maximum(bn(Tensor(x)).data, 0.0)
        np.testing.assert_allclose(fused(Tensor(x)).data, want,
                                   rtol=1e-5, atol=1e-5)
