"""Planned im2col-GEMM convolutions: equivalence, caching, pad-once.

The plan rewrite must be invisible numerically: every planned kernel is
checked against the pre-plan per-tap reference oracle over strided,
dilated, padded, asymmetric and half-precision problems.  The stateful
parts — the LRU plan cache, the version-token workspace protocol, and the
pad-by-construction counter — get their invariants pinned directly.
"""
import numpy as np
import pytest

from repro.framework import Tensor
from repro.framework.layers import Conv2D
from repro.framework.ops import (
    ConvPlan,
    DepthwiseConvPlan,
    PlanCache,
    clear_plan_cache,
    conv2d_backward_input,
    conv2d_backward_input_reference,
    conv2d_backward_weight,
    conv2d_backward_weight_reference,
    conv2d_forward,
    conv2d_forward_reference,
    conv_output_size,
    depthwise_conv2d_backward_input,
    depthwise_conv2d_backward_weight,
    depthwise_conv2d_forward,
    depthwise_conv2d_forward_reference,
    get_conv_plan,
    plan_cache_stats,
)

RNG = np.random.default_rng(7)


def _case(n, c, f, h, w, k, stride, padding, dilation, dtype=np.float32,
          kw=None):
    kw = k if kw is None else kw
    x = RNG.standard_normal((n, c, h, w)).astype(dtype)
    wt = (RNG.standard_normal((f, c, k, kw)) * 0.2).astype(dtype)
    oh = conv_output_size(h, k, stride, padding, dilation)
    ow = conv_output_size(w, kw, stride, padding, dilation)
    g = RNG.standard_normal((n, f, oh, ow)).astype(dtype)
    return x, wt, g


CASES = [
    # (n, c, f, h, w, k, stride, padding, dilation)
    (2, 3, 5, 12, 14, 3, 1, 1, 1),     # the common 'same' 3x3
    (1, 4, 6, 16, 16, 3, 2, 1, 1),     # strided
    (2, 3, 4, 17, 15, 3, 1, 2, 2),     # dilated (atrous)
    (1, 2, 3, 11, 13, 5, 2, 3, 1),     # big pad, odd extents
    (1, 3, 2, 9, 9, 1, 1, 0, 1),       # pointwise, no pad
]


class TestPlannedEquivalence:
    @pytest.mark.parametrize("case", CASES, ids=[str(c) for c in CASES])
    def test_forward(self, case):
        n, c, f, h, w, k, s, p, d = case
        x, wt, _ = _case(*case)
        got = conv2d_forward(x, wt, s, p, d)
        want = conv2d_forward_reference(x, wt, s, p, d)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("case", CASES, ids=[str(c) for c in CASES])
    def test_backward_weight(self, case):
        n, c, f, h, w, k, s, p, d = case
        x, wt, g = _case(*case)
        got = conv2d_backward_weight(g, x, wt.shape, s, p, d)
        want = conv2d_backward_weight_reference(g, x, wt.shape, s, p, d)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("case", CASES, ids=[str(c) for c in CASES])
    def test_backward_input(self, case):
        n, c, f, h, w, k, s, p, d = case
        x, wt, g = _case(*case)
        got = conv2d_backward_input(g, wt, x.shape, s, p, d)
        want = conv2d_backward_input_reference(g, wt, x.shape, s, p, d)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_asymmetric_kernel(self):
        x, wt, _ = _case(1, 3, 4, 13, 11, 5, 1, 2, 1, kw=3)
        got = conv2d_forward(x, wt, 1, 2, 1)
        want = conv2d_forward_reference(x, wt, 1, 2, 1)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_fp16_forward_keeps_dtype(self):
        x, wt, _ = _case(1, 3, 4, 10, 12, 3, 1, 1, 1, dtype=np.float16)
        got = conv2d_forward(x, wt, 1, 1, 1)
        assert got.dtype == x.dtype
        want = conv2d_forward_reference(x, wt, 1, 1, 1)
        np.testing.assert_allclose(got.astype(np.float64),
                                   want.astype(np.float64),
                                   rtol=2e-3, atol=2e-3)

    def test_fp16_wgrad_accumulates_fp32(self):
        x, wt, g = _case(1, 3, 4, 10, 12, 3, 1, 1, 1, dtype=np.float16)
        got = conv2d_backward_weight(g, x, wt.shape, 1, 1, 1)
        want = conv2d_backward_weight_reference(g, x, wt.shape, 1, 1, 1)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-3)

    def test_depthwise_matches_reference(self):
        x = RNG.standard_normal((2, 5, 13, 11)).astype(np.float32)
        wt = (RNG.standard_normal((5, 3, 3)) * 0.3).astype(np.float32)
        for s, p, d in [(1, 1, 1), (2, 1, 1), (1, 2, 2)]:
            got = depthwise_conv2d_forward(x, wt, s, p, d)
            want = depthwise_conv2d_forward_reference(x, wt, s, p, d)
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_depthwise_backward_finite_difference(self):
        x = RNG.standard_normal((1, 2, 6, 6)).astype(np.float64)
        wt = RNG.standard_normal((2, 3, 3)).astype(np.float64)
        g = np.ones_like(depthwise_conv2d_forward(x, wt, 1, 1, 1))
        dw = depthwise_conv2d_backward_weight(g, x, wt.shape, 1, 1, 1)
        dx = depthwise_conv2d_backward_input(g, wt, x.shape, 1, 1, 1)
        eps = 1e-6
        wt2 = wt.copy()
        wt2[1, 2, 0] += eps
        num = (depthwise_conv2d_forward(x, wt2, 1, 1, 1).sum()
               - depthwise_conv2d_forward(x, wt, 1, 1, 1).sum()) / eps
        assert dw[1, 2, 0] == pytest.approx(num, rel=1e-4)
        x2 = x.copy()
        x2[0, 1, 3, 3] += eps
        num = (depthwise_conv2d_forward(x2, wt, 1, 1, 1).sum()
               - depthwise_conv2d_forward(x, wt, 1, 1, 1).sum()) / eps
        assert dx[0, 1, 3, 3] == pytest.approx(num, rel=1e-4)


class TestPlanCache:
    def test_lru_eviction_and_stats(self):
        cache = PlanCache(maxsize=2)
        mk = lambda h: ConvPlan((1, 2, h, h), (3, 2, 3, 3), 1, 1, 1)
        a = cache.get(("a",), lambda: mk(8))
        assert cache.get(("a",), lambda: mk(8)) is a      # hit
        cache.get(("b",), lambda: mk(9))
        cache.get(("c",), lambda: mk(10))                 # evicts "a"
        stats = cache.stats()
        assert stats == {"size": 2, "hits": 1, "misses": 3, "evictions": 1}
        b2 = cache.get(("a",), lambda: mk(8))
        assert b2 is not a                                # rebuilt after evict

    def test_lru_touch_on_hit(self):
        cache = PlanCache(maxsize=2)
        mk = lambda: ConvPlan((1, 1, 6, 6), (1, 1, 3, 3), 1, 1, 1)
        a = cache.get(("a",), mk)
        cache.get(("b",), mk)
        cache.get(("a",), mk)          # touch "a": "b" is now LRU
        cache.get(("c",), mk)          # evicts "b", not "a"
        assert cache.get(("a",), mk) is a

    def test_global_cache_reuses_plans(self):
        clear_plan_cache()
        x, wt, _ = _case(1, 3, 4, 10, 10, 3, 1, 1, 1)
        conv2d_forward(x, wt, 1, 1, 1)
        conv2d_forward(x, wt, 1, 1, 1)
        stats = plan_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_dtype_is_part_of_the_signature(self):
        clear_plan_cache()
        shape, wshape = (1, 2, 8, 8), (3, 2, 3, 3)
        p32 = get_conv_plan(shape, wshape, 1, 1, 1, np.float32)
        p16 = get_conv_plan(shape, wshape, 1, 1, 1, np.float16)
        assert p32 is not p16


class TestWorkspaceProtocol:
    def test_version_token_detects_stale_columns(self):
        plan = ConvPlan((1, 2, 8, 8), (3, 2, 3, 3), 1, 1, 1)
        x1 = RNG.standard_normal((1, 2, 8, 8)).astype(np.float32)
        x2 = RNG.standard_normal((1, 2, 8, 8)).astype(np.float32)
        t1 = plan.im2col(x1)
        t2 = plan.im2col(x2)          # overwrites the workspace
        assert t2 != t1
        fills = plan.col_fills
        cols = plan.columns_for(t1, x1)     # stale token -> transparent refill
        assert plan.col_fills == fills + 1
        w = (RNG.standard_normal((3, 2, 3, 3)) * 0.2).astype(np.float32)
        np.testing.assert_allclose(
            plan.forward_from_cols(cols, w),
            conv2d_forward_reference(x1, w, 1, 1, 1), rtol=1e-5, atol=1e-5)

    def test_valid_token_reuses_fill(self):
        plan = ConvPlan((1, 2, 8, 8), (3, 2, 3, 3), 1, 1, 1)
        x = RNG.standard_normal((1, 2, 8, 8)).astype(np.float32)
        token = plan.im2col(x)
        fills = plan.col_fills
        plan.columns_for(token, x)
        plan.columns_for(token, x)
        assert plan.col_fills == fills      # no refill while token is valid

    def test_deepcopy_starts_cold(self):
        import copy

        plan = ConvPlan((1, 2, 8, 8), (3, 2, 3, 3), 1, 1, 1)
        x = RNG.standard_normal((1, 2, 8, 8)).astype(np.float32)
        plan.im2col(x)
        clone = copy.deepcopy(plan)
        assert clone._cols is None and clone._xp is None
        assert clone.version == 0
        assert clone.key == plan.key

    def test_shape_mismatch_rejected(self):
        plan = ConvPlan((1, 2, 8, 8), (3, 2, 3, 3), 1, 1, 1)
        bad = np.zeros((1, 2, 9, 9), dtype=np.float32)
        with pytest.raises(ValueError, match="plan expects input"):
            plan.im2col(bad)


class TestPadOnce:
    """The layer-owned plan applies padding at most once per training step.

    Historically forward and wgrad each ran ``np.pad`` + im2col; the layer
    now shares one fill between them via the version token, so one
    forward + backward cycle costs exactly one pad and one column fill.
    """

    def test_layer_step_pads_once(self):
        layer = Conv2D(3, 4, 3, padding="same", bias=False,
                       rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((2, 3, 10, 10)).astype(np.float32),
                   requires_grad=True)
        out = layer(x)
        plan = next(iter(layer._plans.values()))
        assert plan.pad_fills == 1 and plan.col_fills == 1
        out.backward(np.ones_like(out.data))
        # wgrad reused the forward's columns; dgrad needs no im2col at all.
        assert plan.pad_fills == 1 and plan.col_fills == 1
        assert layer.weight.grad is not None
        assert x.grad is not None

    def test_double_forward_then_backward_is_safe(self):
        """Running the layer twice before backward invalidates the first
        token; the gradient must still be computed from the right input."""
        layer = Conv2D(2, 3, 3, padding="same", bias=False,
                       rng=np.random.default_rng(0))
        x1 = Tensor(RNG.standard_normal((1, 2, 8, 8)).astype(np.float32),
                    requires_grad=True)
        x2 = Tensor(RNG.standard_normal((1, 2, 8, 8)).astype(np.float32),
                    requires_grad=True)
        out1 = layer(x1)
        layer(x2)                       # same shape: overwrites the workspace
        out1.backward(np.ones_like(out1.data))
        want = conv2d_backward_weight_reference(
            np.ones_like(out1.data), x1.data, layer.weight.data.shape, 1, 1, 1)
        np.testing.assert_allclose(layer.weight.grad, want,
                                   rtol=1e-5, atol=1e-5)

    def test_layer_plan_slots_bounded(self):
        from repro.framework.layers.conv import _LAYER_PLAN_SLOTS

        layer = Conv2D(2, 3, 3, padding="same", bias=False,
                       rng=np.random.default_rng(0))
        for size in range(8, 8 + _LAYER_PLAN_SLOTS + 3):
            layer(Tensor(np.zeros((1, 2, size, size), dtype=np.float32)))
        assert len(layer._plans) == _LAYER_PLAN_SLOTS

    def test_layer_matches_reference_end_to_end(self):
        layer = Conv2D(3, 5, 3, padding="same", stride=2, dilation=1,
                       bias=True, rng=np.random.default_rng(1))
        x = RNG.standard_normal((2, 3, 12, 12)).astype(np.float32)
        out = layer(Tensor(x))
        want = conv2d_forward_reference(x, layer.weight.data, 2, 1, 1)
        want = want + layer.bias.data.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(out.data, want, rtol=1e-5, atol=1e-5)
