"""Layer library: eager/trace agreement, gradients, registration."""
import numpy as np
import pytest

from repro.framework import Tensor
from repro.framework.graph import GraphTracer
from repro.framework.layers import (
    AtrousConv2D,
    AvgPool2D,
    BatchNorm2D,
    BilinearUpsample2D,
    Conv2D,
    ConvTranspose2D,
    Dropout,
    GlobalAvgPool2D,
    Identity,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)

RNG = np.random.default_rng(0)


def trace_shape(layer, in_shape, batch=2):
    tracer = GraphTracer(batch, "fp32")
    probe = tracer.probe(*in_shape)
    return layer(probe).shape, tracer.finish()


def eager_shape(layer, in_shape, batch=2):
    x = Tensor(RNG.normal(size=(batch,) + in_shape).astype(np.float32),
               requires_grad=True)
    return layer(x).shape


LAYER_CASES = [
    (Conv2D(3, 8, 3), (3, 8, 12)),
    (Conv2D(3, 8, 3, stride=2), (3, 8, 12)),
    (Conv2D(3, 8, 5, padding="same"), (3, 10, 10)),
    (Conv2D(3, 8, 1, padding="valid"), (3, 8, 8)),
    (Conv2D(3, 8, 7, stride=2), (3, 16, 16)),
    (AtrousConv2D(4, 6, 3, dilation=4), (4, 16, 16)),
    (ConvTranspose2D(6, 3, 3, stride=2), (6, 5, 7)),
    (BatchNorm2D(5), (5, 6, 6)),
    (ReLU(), (2, 4, 4)),
    (Sigmoid(), (2, 4, 4)),
    (Tanh(), (2, 4, 4)),
    (MaxPool2D(2, 2), (3, 8, 8)),
    (MaxPool2D(3, 2, padding=1), (3, 8, 8)),
    (AvgPool2D(2, 2), (3, 8, 8)),
    (GlobalAvgPool2D(), (3, 8, 8)),
    (Dropout(0.3), (2, 6, 6)),
    (BilinearUpsample2D(2), (2, 4, 4)),
    (Identity(), (2, 4, 4)),
    (Sequential(Conv2D(3, 6, 3), ReLU(), MaxPool2D(2, 2)), (3, 8, 8)),
]


class TestEagerTraceAgreement:
    @pytest.mark.parametrize("layer,in_shape", LAYER_CASES,
                             ids=[f"{type(l).__name__}_{i}" for i, (l, _) in enumerate(LAYER_CASES)])
    def test_shapes_agree(self, layer, in_shape):
        traced, _ = trace_shape(layer, in_shape)
        assert traced == eager_shape(layer, in_shape)

    def test_trace_emits_records(self):
        _, analysis = trace_shape(Conv2D(3, 8, 3), (3, 8, 8))
        assert analysis.category_flops("conv_fwd") > 0
        assert analysis.category_flops("conv_bwd") == 2 * analysis.category_flops("conv_fwd")

    def test_fp16_trace_emits_casts(self):
        tracer = GraphTracer(1, "fp16")
        Conv2D(3, 8, 3)(tracer.probe(3, 8, 8))
        analysis = tracer.finish()
        assert analysis.category_kernels("cast") == 1

    def test_no_backward_trace(self):
        tracer = GraphTracer(1, "fp32", include_backward=False)
        Conv2D(3, 8, 3)(tracer.probe(3, 8, 8))
        analysis = tracer.finish()
        assert analysis.category_flops("conv_bwd") == 0


class TestConv2D:
    def test_gradients_reach_params(self):
        conv = Conv2D(2, 3, 3)
        x = Tensor(RNG.normal(size=(1, 2, 6, 6)).astype(np.float32))
        conv(x).sum().backward()
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None

    def test_no_bias(self):
        conv = Conv2D(2, 3, 3, bias=False)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_same_padding_even_kernel_raises(self):
        with pytest.raises(ValueError, match="odd kernel"):
            Conv2D(2, 3, 4, padding="same")

    def test_channel_mismatch_raises_in_trace(self):
        tracer = GraphTracer(1)
        with pytest.raises(ValueError, match="channels"):
            Conv2D(3, 8, 3)(tracer.probe(4, 8, 8))

    def test_deterministic_init_with_seeded_rng(self):
        a = Conv2D(2, 3, 3, rng=np.random.default_rng(9))
        b = Conv2D(2, 3, 3, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestConvTranspose2D:
    def test_exact_double_upsample(self):
        deconv = ConvTranspose2D(4, 2, 3, stride=2, padding=1, output_padding=1)
        x = Tensor(RNG.normal(size=(1, 4, 5, 6)).astype(np.float32))
        assert deconv(x).shape == (1, 2, 10, 12)

    def test_gradcheck(self):
        deconv = ConvTranspose2D(2, 2, 3, stride=2, padding=1, output_padding=1,
                                 rng=np.random.default_rng(1))
        deconv.weight.data = deconv.weight.data.astype(np.float64)
        deconv.bias.data = deconv.bias.data.astype(np.float64)
        x0 = RNG.normal(size=(1, 2, 4, 4))
        x = Tensor(x0, requires_grad=True)
        (deconv(x) ** 2).sum().backward()
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 3, 3)]:
            def loss(xv):
                return float((deconv(Tensor(xv)).data ** 2).sum())
            xp = x0.copy(); xp[idx] += eps
            xm = x0.copy(); xm[idx] -= eps
            fd = (loss(xp) - loss(xm)) / (2 * eps)
            np.testing.assert_allclose(x.grad[idx], fd, rtol=1e-5, atol=1e-7)

    def test_weight_grad_flows(self):
        deconv = ConvTranspose2D(2, 2, 3)
        x = Tensor(RNG.normal(size=(1, 2, 4, 4)).astype(np.float32))
        deconv(x).sum().backward()
        assert deconv.weight.grad is not None
        assert deconv.weight.grad.shape == deconv.weight.shape


class TestBatchNorm2D:
    def test_train_mode_updates_running_stats(self):
        bn = BatchNorm2D(2)
        x = Tensor(RNG.normal(loc=3.0, size=(4, 2, 5, 5)).astype(np.float32))
        before = bn.running_mean.copy()
        bn(x)
        assert not np.allclose(bn.running_mean, before)

    def test_eval_mode_uses_running_stats(self):
        bn = BatchNorm2D(1)
        bn.running_mean[:] = 2.0
        bn.running_var[:] = 1.0
        bn.eval()
        x = Tensor(np.full((1, 1, 2, 2), 2.0, dtype=np.float32))
        np.testing.assert_allclose(bn(x).data, 0.0, atol=1e-3)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channels"):
            BatchNorm2D(3)(Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32)))

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2D(2)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_state_roundtrip(self):
        bn = BatchNorm2D(2)
        bn.running_mean[:] = [1.0, 2.0]
        state = bn.state_dict()
        bn2 = BatchNorm2D(2)
        bn2.load_state_dict(state)
        np.testing.assert_allclose(bn2.running_mean, [1.0, 2.0])


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(np.ones((2, 3, 4, 4), dtype=np.float32))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_train_scales_survivors(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1, 1, 100, 100), dtype=np.float32))
        out = d(x).data
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0, rtol=1e-6)
        assert 0.4 < (out != 0).mean() < 0.6

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_zero_p_identity_in_train(self):
        d = Dropout(0.0)
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        np.testing.assert_array_equal(d(x).data, x.data)


class TestSequentialAndModule:
    def test_parameter_names_dotted(self):
        seq = Sequential(Conv2D(2, 3, 3), BatchNorm2D(3))
        names = [n for n, _ in seq.named_parameters()]
        assert "0.weight" in names and "1.gamma" in names

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5), BatchNorm2D(2))
        seq.eval()
        assert not seq[0].training and not seq[1].training
        seq.train()
        assert seq[0].training

    def test_num_parameters(self):
        conv = Conv2D(2, 3, 3)
        assert conv.num_parameters() == 3 * 2 * 9 + 3

    def test_state_dict_load_roundtrip(self):
        seq = Sequential(Conv2D(2, 3, 3, rng=np.random.default_rng(1)))
        state = seq.state_dict()
        seq2 = Sequential(Conv2D(2, 3, 3, rng=np.random.default_rng(2)))
        seq2.load_state_dict(state)
        np.testing.assert_array_equal(seq2[0].weight.data, seq[0].weight.data)

    def test_load_unknown_buffer_raises(self):
        seq = Sequential(Conv2D(2, 3, 3))
        with pytest.raises(KeyError):
            seq.load_state_dict({"nonexistent.thing": np.zeros(1)})

    def test_append(self):
        seq = Sequential(ReLU())
        seq.append(Identity())
        assert len(seq) == 2

    def test_zero_grad_clears(self):
        conv = Conv2D(2, 3, 3)
        x = Tensor(np.ones((1, 2, 5, 5), dtype=np.float32))
        conv(x).sum().backward()
        assert conv.weight.grad is not None
        conv.zero_grad()
        assert conv.weight.grad is None
