"""Mixed-precision machinery: loss scaling, FP16 policy, master weights."""
import numpy as np
import pytest

from repro.framework import LossScaler, Tensor, apply_fp16_policy, grads_finite
from repro.framework.dtypes import Precision, as_numpy_dtype, bytes_per_element, compute_dtype
from repro.framework.layers import BatchNorm2D, Conv2D, Sequential
from repro.framework.parameter import Parameter


class TestDtypes:
    def test_precision_lookup(self):
        assert Precision("fp16").np_dtype == np.float16
        assert Precision("fp32").itemsize == 4
        assert Precision("fp16").is_half

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            Precision("fp8")

    def test_compute_dtype_is_fp32_for_half(self):
        assert compute_dtype("fp16") == np.float32

    def test_helpers(self):
        assert as_numpy_dtype("fp16") == np.float16
        assert bytes_per_element("fp64") == 8

    def test_equality_with_string(self):
        assert Precision("fp16") == "fp16"
        assert Precision("fp16") != "fp32"


class TestParameterMaster:
    def test_master_copy_roundtrip(self):
        p = Parameter(np.array([1.0, 2.0], dtype=np.float32))
        p.enable_master_copy()
        p.cast_(np.float16)
        assert p.data.dtype == np.float16
        p.apply_update(np.array([1e-4, 1e-4]))
        # Master accumulates below-fp16-resolution updates.
        assert p.master[0] != 1.0
        assert p.master.dtype == np.float32

    def test_small_updates_accumulate_via_master(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        p.enable_master_copy()
        p.cast_(np.float16)
        for _ in range(100):
            p.apply_update(np.array([1e-5]))
        np.testing.assert_allclose(p.master, 1.001, rtol=1e-4)

    def test_without_master_updates_direct(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        p.apply_update(np.array([0.5, -0.5]))
        np.testing.assert_allclose(p.data, [1.5, 0.5])


class TestLossScaler:
    def _params_with_grads(self, grads):
        params = []
        for g in grads:
            p = Parameter(np.zeros_like(np.asarray(g, dtype=np.float32)))
            p.grad = np.asarray(g)
            params.append(p)
        return params

    def test_scale_loss_multiplies(self):
        s = LossScaler(init_scale=8.0, dynamic=False)
        loss = Tensor(np.array(2.0), requires_grad=True)
        assert s.scale_loss(loss).item() == 16.0

    def test_unscales_gradients(self):
        s = LossScaler(init_scale=4.0, dynamic=False)
        params = self._params_with_grads([np.array([8.0])])
        assert s.step(params)
        np.testing.assert_allclose(params[0].grad, [2.0])
        assert params[0].grad.dtype == np.float32

    def test_overflow_skips_and_backs_off(self):
        s = LossScaler(init_scale=1024.0, dynamic=True, backoff_factor=0.5)
        params = self._params_with_grads([np.array([np.inf])])
        assert not s.step(params)
        assert s.scale == 512.0
        assert params[0].grad is None
        assert s.num_overflows == 1

    def test_nan_detected(self):
        s = LossScaler(dynamic=True)
        params = self._params_with_grads([np.array([np.nan])])
        assert not s.step(params)

    def test_growth_after_interval(self):
        s = LossScaler(init_scale=2.0, dynamic=True, growth_interval=3,
                       growth_factor=2.0)
        for _ in range(3):
            params = self._params_with_grads([np.array([1.0])])
            assert s.step(params)
        assert s.scale == 4.0

    def test_static_never_changes(self):
        s = LossScaler(init_scale=16.0, dynamic=False, growth_interval=1)
        for _ in range(5):
            s.step(self._params_with_grads([np.array([1.0])]))
        assert s.scale == 16.0

    def test_scale_floor(self):
        s = LossScaler(init_scale=2.0, dynamic=True, min_scale=1.0)
        for _ in range(10):
            s.step(self._params_with_grads([np.array([np.inf])]))
        assert s.scale == 1.0

    def test_invalid_init_scale(self):
        with pytest.raises(ValueError):
            LossScaler(init_scale=0.0)

    def test_grads_finite_ignores_missing(self):
        p = Parameter(np.zeros(2))
        assert grads_finite([p])


class TestFp16Policy:
    def test_conv_weights_half_bn_fp32(self):
        model = Sequential(Conv2D(2, 3, 3), BatchNorm2D(3))
        apply_fp16_policy(model)
        conv, bn = model[0], model[1]
        assert conv.weight.data.dtype == np.float16
        assert conv.weight.master is not None
        assert bn.gamma.data.dtype == np.float32
        assert conv.bias.data.dtype == np.float32  # 1-D stays fp32

    def test_forward_in_fp16(self):
        model = Sequential(Conv2D(2, 3, 3, bias=False))
        apply_fp16_policy(model)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 6, 6)).astype(np.float16))
        out = model(x)
        assert out.dtype == np.float16
