"""Depthwise and separable convolutions."""
import numpy as np
import pytest

from repro.framework import Tensor
from repro.framework.graph import GraphTracer
from repro.framework.layers import Conv2D, DepthwiseConv2D, SeparableConv2D
from repro.framework.ops import (
    conv2d_forward,
    depthwise_conv2d_backward_input,
    depthwise_conv2d_backward_weight,
    depthwise_conv2d_flops,
    depthwise_conv2d_forward,
)

RNG = np.random.default_rng(0)


class TestDepthwiseKernel:
    def test_equals_grouped_dense_conv(self):
        # A depthwise conv == dense conv with a block-diagonal weight.
        x = RNG.normal(size=(2, 3, 8, 8))
        w = RNG.normal(size=(3, 3, 3))
        dense_w = np.zeros((3, 3, 3, 3))
        for c in range(3):
            dense_w[c, c] = w[c]
        got = depthwise_conv2d_forward(x, w, 1, 1, 1)
        ref = conv2d_forward(x, dense_w, 1, 1, 1)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("stride,padding,dilation", [
        (1, 1, 1), (2, 1, 1), (1, 2, 2),
    ])
    def test_gradcheck(self, stride, padding, dilation):
        x = RNG.normal(size=(1, 2, 6, 6))
        w = RNG.normal(size=(2, 3, 3))
        y = depthwise_conv2d_forward(x, w, stride, padding, dilation)
        g = RNG.normal(size=y.shape)
        dx = depthwise_conv2d_backward_input(g, w, x.shape, stride, padding, dilation)
        dw = depthwise_conv2d_backward_weight(g, x, w.shape, stride, padding, dilation)
        eps = 1e-6
        for idx in [(0, 0, 2, 3), (0, 1, 5, 5)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = ((depthwise_conv2d_forward(xp, w, stride, padding, dilation) * g).sum()
                  - (depthwise_conv2d_forward(xm, w, stride, padding, dilation) * g).sum()) / (2 * eps)
            np.testing.assert_allclose(dx[idx], fd, rtol=1e-5, atol=1e-8)
        for idx in [(0, 0, 0), (1, 2, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            fd = ((depthwise_conv2d_forward(x, wp, stride, padding, dilation) * g).sum()
                  - (depthwise_conv2d_forward(x, wm, stride, padding, dilation) * g).sum()) / (2 * eps)
            np.testing.assert_allclose(dw[idx], fd, rtol=1e-5, atol=1e-8)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            depthwise_conv2d_forward(np.zeros((1, 2, 4, 4)), np.zeros((3, 3, 3)))

    def test_flops_k2_cheaper_than_dense(self):
        from repro.framework.ops import conv2d_flops
        dw = depthwise_conv2d_flops(1, 64, 32, 32, 3, 3)
        dense = conv2d_flops(1, 64, 64, 32, 32, 3, 3)
        assert dense == 64 * dw  # dense costs C_out x more


class TestLayers:
    def test_depthwise_layer_shapes_and_grads(self):
        layer = DepthwiseConv2D(4, 3, dilation=2, rng=np.random.default_rng(1))
        x = Tensor(RNG.normal(size=(1, 4, 8, 8)).astype(np.float32),
                   requires_grad=True)
        y = layer(x)
        assert y.shape == (1, 4, 8, 8)
        y.sum().backward()
        assert layer.weight.grad is not None
        assert x.grad is not None

    def test_separable_shapes(self):
        layer = SeparableConv2D(4, 6, 3, dilation=4, rng=np.random.default_rng(2))
        x = Tensor(RNG.normal(size=(2, 4, 12, 12)).astype(np.float32))
        assert layer(x).shape == (2, 6, 12, 12)

    def test_separable_cheaper_than_dense_in_trace(self):
        tracer = GraphTracer(1)
        SeparableConv2D(32, 32, 3)(tracer.probe(32, 16, 16))
        sep = tracer.finish().category_flops("conv_fwd")
        tracer2 = GraphTracer(1)
        Conv2D(32, 32, 3)(tracer2.probe(32, 16, 16))
        dense = tracer2.finish().category_flops("conv_fwd")
        # Separable ~ (1/k^2 + 1/C_out) of dense -> large saving.
        assert sep < dense / 4

    def test_separable_param_count(self):
        layer = SeparableConv2D(8, 16, 3, bias=False)
        assert layer.num_parameters() == 8 * 9 + 8 * 16

    def test_trace_channel_check(self):
        tracer = GraphTracer(1)
        with pytest.raises(ValueError, match="channels"):
            DepthwiseConv2D(4, 3)(tracer.probe(5, 8, 8))
