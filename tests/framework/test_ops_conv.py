"""Convolution kernels: forward correctness and gradient checks."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.ops.conv import (
    conv2d_backward_input,
    conv2d_backward_weight,
    conv2d_flops,
    conv2d_forward,
    conv_output_size,
    conv_transpose_output_size,
)


def naive_conv2d(x, w, stride, padding, dilation):
    """Reference implementation: explicit loops."""
    n, c, h, wi = x.shape
    f, _, kh, kw = w.shape
    oh = conv_output_size(h, kh, stride, padding, dilation)
    ow = conv_output_size(wi, kw, stride, padding, dilation)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, f, oh, ow))
    for b in range(n):
        for o in range(f):
            for i in range(oh):
                for j in range(ow):
                    acc = 0.0
                    for ci in range(c):
                        for u in range(kh):
                            for v in range(kw):
                                acc += (xp[b, ci, i * stride + u * dilation,
                                           j * stride + v * dilation]
                                        * w[o, ci, u, v])
                    out[b, o, i, j] = acc
    return out


class TestGeometry:
    @pytest.mark.parametrize("size,k,s,p,d,expect", [
        (8, 3, 1, 1, 1, 8),      # 'same'
        (8, 3, 2, 1, 1, 4),      # stride-2 'same'
        (8, 7, 2, 3, 1, 4),      # ResNet stem
        (12, 3, 1, 2, 2, 12),    # atrous 'same'
        (12, 3, 1, 12, 12, 12),  # ASPP dilation
        (5, 3, 1, 0, 1, 3),      # valid
    ])
    def test_output_size(self, size, k, s, p, d, expect):
        assert conv_output_size(size, k, s, p, d) == expect

    def test_empty_output_raises(self):
        with pytest.raises(ValueError, match="empty"):
            conv_output_size(2, 5, 1, 0, 1)

    @pytest.mark.parametrize("size,k,s,p,op,expect", [
        (4, 3, 2, 1, 1, 8),    # exact 2x upsample
        (6, 3, 2, 1, 1, 12),
        (4, 2, 2, 0, 0, 8),
    ])
    def test_transpose_output_size(self, size, k, s, p, op, expect):
        assert conv_transpose_output_size(size, k, s, p, op) == expect

    def test_transpose_inverts_conv(self):
        # conv_output_size(deconv_output) == input for our decoder config.
        for h in (4, 6, 10):
            out = conv_transpose_output_size(h, 3, 2, 1, 1)
            assert conv_output_size(out, 3, 2, 1, 1) == h


class TestForward:
    @pytest.mark.parametrize("stride,padding,dilation", [
        (1, 0, 1), (1, 1, 1), (2, 1, 1), (1, 2, 2), (2, 0, 1), (1, 4, 4),
    ])
    def test_matches_naive(self, stride, padding, dilation):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3, 9, 10))
        w = rng.normal(size=(4, 3, 3, 3))
        got = conv2d_forward(x, w, stride, padding, dilation)
        want = naive_conv2d(x, w, stride, padding, dilation)
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)

    def test_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(conv2d_forward(x, w, 1, 1, 1), x)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel"):
            conv2d_forward(np.zeros((1, 2, 4, 4)), np.zeros((1, 3, 3, 3)))

    def test_preserves_dtype_fp32(self):
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        assert conv2d_forward(x, w, 1, 1, 1).dtype == np.float32

    def test_fp16_accumulates_in_fp32(self):
        # Summing many small values: fp16 accumulation would lose them.
        x = np.full((1, 1, 1, 4096), 2**-11, dtype=np.float16)
        w = np.ones((1, 1, 1, 4095), dtype=np.float16)
        out = conv2d_forward(x, w, 1, 0, 1)
        assert out.dtype == np.float16
        # True sum = 4095 * 2^-11 ~ 2.0; fp16-accumulated would stall at ~1.0.
        assert float(out[0, 0, 0, 0]) > 1.9


class TestBackward:
    @pytest.mark.parametrize("stride,padding,dilation", [
        (1, 1, 1), (2, 1, 1), (1, 2, 2),
    ])
    def test_input_grad_fd(self, stride, padding, dilation):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        y = conv2d_forward(x, w, stride, padding, dilation)
        g = rng.normal(size=y.shape)
        dx = conv2d_backward_input(g, w, x.shape, stride, padding, dilation)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 3, 2), (0, 0, 5, 5)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = ((conv2d_forward(xp, w, stride, padding, dilation) * g).sum()
                  - (conv2d_forward(xm, w, stride, padding, dilation) * g).sum()) / (2 * eps)
            np.testing.assert_allclose(dx[idx], fd, rtol=1e-5, atol=1e-7)

    @pytest.mark.parametrize("stride,padding,dilation", [
        (1, 1, 1), (2, 1, 1), (1, 2, 2),
    ])
    def test_weight_grad_fd(self, stride, padding, dilation):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        y = conv2d_forward(x, w, stride, padding, dilation)
        g = rng.normal(size=y.shape)
        dw = conv2d_backward_weight(g, x, w.shape, stride, padding, dilation)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2), (1, 0, 1, 1)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            fd = ((conv2d_forward(x, wp, stride, padding, dilation) * g).sum()
                  - (conv2d_forward(x, wm, stride, padding, dilation) * g).sum()) / (2 * eps)
            np.testing.assert_allclose(dw[idx], fd, rtol=1e-5, atol=1e-7)

    def test_wgrad_fp32_for_fp16_inputs(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float16)
        g = np.ones((1, 1, 4, 4), dtype=np.float16)
        dw = conv2d_backward_weight(g, x, (1, 1, 3, 3), 1, 1, 1)
        assert dw.dtype == np.float32

    def test_adjoint_identity(self):
        # <g, conv(x)> == <dgrad(g), x>: dgrad is the exact adjoint.
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(3, 2, 3, 3))
        y = conv2d_forward(x, w, 2, 1, 1)
        g = rng.normal(size=y.shape)
        dx = conv2d_backward_input(g, w, x.shape, 2, 1, 1)
        np.testing.assert_allclose((g * y).sum(), (dx * x).sum(), rtol=1e-10)


class TestFlops:
    def test_paper_worked_example(self):
        # Section VI: 3x3 conv, 1152x768, 48->32 channels, batch 2 = 48.9e9.
        flops = conv2d_flops(2, 48, 32, 768, 1152, 3, 3)
        assert flops == 3 * 3 * 1152 * 768 * 48 * 32 * 2 * 2
        assert abs(flops / 1e9 - 48.9) < 0.05

    @given(st.integers(1, 4), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_linear_in_batch(self, n, cin, cout):
        one = conv2d_flops(1, cin, cout, 5, 7, 3, 3)
        assert conv2d_flops(n, cin, cout, 5, 7, 3, 3) == n * one


class TestHypothesisRoundtrip:
    @given(
        st.integers(1, 2), st.integers(1, 3), st.integers(1, 3),
        st.integers(1, 2), st.sampled_from([1, 2]),
    )
    @settings(max_examples=20, deadline=None)
    def test_forward_matches_naive_random(self, n, cin, cout, stride, dilation):
        rng = np.random.default_rng(42)
        h = w = 8
        x = rng.normal(size=(n, cin, h, w))
        wt = rng.normal(size=(cout, cin, 3, 3))
        padding = dilation  # 'same'-ish
        got = conv2d_forward(x, wt, stride, padding, dilation)
        want = naive_conv2d(x, wt, stride, padding, dilation)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)
