"""Graph tracing: kernel records, aggregation, probe semantics."""
import numpy as np
import pytest

from repro.framework import functional as F
from repro.framework.graph import CATEGORIES, GraphAnalysis, GraphTracer, KernelRecord, ShapeProbe
from repro.framework.layers import Conv2D, ReLU, Sequential
from repro.framework.module import Module


class TestKernelRecord:
    def test_valid_categories(self):
        for c in CATEGORIES:
            KernelRecord("k", c, 10, 20)

    def test_invalid_category_raises(self):
        with pytest.raises(ValueError, match="category"):
            KernelRecord("k", "bogus", 1, 1)


class TestGraphTracer:
    def test_probe_shape(self):
        tr = GraphTracer(batch=4, precision="fp32")
        p = tr.probe(3, 8, 12)
        assert p.shape == (4, 3, 8, 12)
        assert p.size == 4 * 3 * 8 * 12

    def test_tensor_bytes_fp16(self):
        tr = GraphTracer(1, "fp16")
        assert tr.tensor_bytes((2, 3)) == 12

    def test_emit_and_aggregate(self):
        tr = GraphTracer(1)
        tr.emit("a", "conv_fwd", 100, 10)
        tr.emit("b", "conv_fwd", 50, 5)
        tr.emit("c", "copy", 0, 7)
        a = tr.finish()
        assert a.category_flops("conv_fwd") == 150
        assert a.category_bytes("conv_fwd") == 15
        assert a.category_kernels("conv_fwd") == 2
        assert a.total_flops == 150
        assert a.total_bytes == 22
        assert a.categories() == ["conv_fwd", "copy"]

    def test_flops_per_sample_normalizes_by_batch(self):
        tr = GraphTracer(batch=4)
        tr.emit("a", "conv_fwd", 400, 1)
        assert tr.finish().flops_per_sample() == 100

    def test_summary_structure(self):
        tr = GraphTracer(1)
        tr.emit("a", "optimizer", 5, 6)
        s = tr.finish().summary()
        assert s["optimizer"] == {"flops": 5, "bytes": 6, "kernels": 1}


class TestModuleAnalyze:
    def test_analyze_returns_analysis(self):
        model = Sequential(Conv2D(3, 4, 3), ReLU())
        a = model.analyze((3, 8, 8), batch=2)
        assert isinstance(a, GraphAnalysis)
        assert a.total_flops > 0

    def test_analyze_scales_with_resolution(self):
        model = Sequential(Conv2D(3, 4, 3))
        a1 = model.analyze((3, 8, 8))
        a2 = model.analyze((3, 16, 16))
        # Fully convolutional: FLOPs scale with pixel count.
        assert a2.category_flops("conv_fwd") == 4 * a1.category_flops("conv_fwd")

    def test_analyze_requires_probe_output(self):
        class Bad(Module):
            def forward(self, x):
                return 42

        with pytest.raises(TypeError, match="ShapeProbe"):
            Bad().analyze((3, 8, 8))


class TestFunctionalProbes:
    def test_add_shape_checked(self):
        tr = GraphTracer(1)
        a = tr.probe(3, 4, 4)
        b = tr.probe(3, 4, 4)
        out = F.add(a, b)
        assert out.shape == a.shape
        with pytest.raises(ValueError, match="mismatch"):
            F.add(a, tr.probe(3, 4, 5))

    def test_concat_channels(self):
        tr = GraphTracer(2)
        out = F.concat([tr.probe(3, 4, 4), tr.probe(5, 4, 4)], axis=1)
        assert out.shape == (2, 8, 4, 4)
        a = tr.finish()
        assert a.category_bytes("copy") > 0

    def test_concat_mismatch_raises(self):
        tr = GraphTracer(1)
        with pytest.raises(ValueError, match="mismatch"):
            F.concat([tr.probe(3, 4, 4), tr.probe(3, 5, 4)], axis=1)

    def test_relu_probe_passthrough(self):
        tr = GraphTracer(1)
        p = tr.probe(3, 4, 4)
        assert F.relu(p).shape == p.shape

    def test_functional_eager_paths(self):
        from repro.framework import Tensor
        x = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        y = Tensor(np.array([3.0, 4.0]))
        np.testing.assert_allclose(F.add(x, y).data, [4.0, 2.0])
        np.testing.assert_allclose(F.relu(x).data, [1.0, 0.0])
        out = F.concat([x, y], axis=0)
        assert out.shape == (4,)
