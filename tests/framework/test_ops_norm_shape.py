"""Batch-norm and shape-op kernels."""
import numpy as np
import pytest

from repro.framework.ops.norm import batchnorm_backward, batchnorm_forward, batchnorm_infer
from repro.framework.ops.shape import (
    bilinear_upsample_backward,
    bilinear_upsample_forward,
    crop2d,
    pad2d_backward,
    pad2d_forward,
)


class TestBatchNorm:
    def test_normalizes_per_channel(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(4, 3, 8, 8))
        gamma = np.ones(3, dtype=np.float32)
        beta = np.zeros(3, dtype=np.float32)
        out, _ = batchnorm_forward(x, gamma, beta)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_affine_params_applied(self):
        x = np.random.default_rng(1).normal(size=(2, 2, 4, 4))
        gamma = np.array([2.0, 3.0], dtype=np.float32)
        beta = np.array([-1.0, 1.0], dtype=np.float32)
        out, _ = batchnorm_forward(x, gamma, beta)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), beta, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), gamma, rtol=1e-3)

    def test_backward_gradcheck(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 2, 3, 3))
        gamma = rng.normal(size=2) + 1.5
        beta = rng.normal(size=2)
        out, cache = batchnorm_forward(x, gamma, beta)
        g = rng.normal(size=out.shape)
        dx, dgamma, dbeta = batchnorm_backward(g, cache)
        eps = 1e-5

        def loss(xv):
            return (batchnorm_forward(xv, gamma, beta)[0] * g).sum()

        for idx in [(0, 0, 0, 0), (1, 1, 2, 2), (0, 1, 1, 0)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = (loss(xp) - loss(xm)) / (2 * eps)
            np.testing.assert_allclose(dx[idx], fd, rtol=1e-3, atol=1e-5)
        # Parameter grads.
        for k in range(2):
            gp = gamma.copy(); gp[k] += eps
            gm = gamma.copy(); gm[k] -= eps
            fd = ((batchnorm_forward(x, gp, beta)[0] * g).sum()
                  - (batchnorm_forward(x, gm, beta)[0] * g).sum()) / (2 * eps)
            np.testing.assert_allclose(dgamma[k], fd, rtol=1e-3)
        np.testing.assert_allclose(dbeta, g.sum(axis=(0, 2, 3)), rtol=1e-5)

    def test_infer_uses_running_stats(self):
        x = np.full((1, 1, 2, 2), 10.0)
        out = batchnorm_infer(x, np.ones(1), np.zeros(1),
                              running_mean=np.array([10.0]),
                              running_var=np.array([4.0]))
        np.testing.assert_allclose(out, 0.0, atol=1e-3)

    def test_fp16_stays_fp16(self):
        x = np.random.default_rng(0).normal(size=(2, 2, 4, 4)).astype(np.float16)
        out, _ = batchnorm_forward(x, np.ones(2, np.float32), np.zeros(2, np.float32))
        assert out.dtype == np.float16


class TestPadCrop:
    def test_pad_then_backward_roundtrip(self):
        x = np.random.default_rng(0).normal(size=(1, 2, 4, 5))
        padded = pad2d_forward(x, (1, 2, 3, 4))
        assert padded.shape == (1, 2, 7, 12)
        np.testing.assert_allclose(pad2d_backward(padded, (1, 2, 3, 4)), x)

    def test_crop_center(self):
        x = np.arange(36.0).reshape(1, 1, 6, 6)
        c = crop2d(x, 4, 4)
        assert c.shape == (1, 1, 4, 4)
        assert c[0, 0, 0, 0] == x[0, 0, 1, 1]

    def test_crop_too_big_raises(self):
        with pytest.raises(ValueError, match="cannot crop"):
            crop2d(np.zeros((1, 1, 3, 3)), 4, 4)


class TestBilinear:
    def test_constant_field_preserved(self):
        x = np.full((1, 2, 3, 4), 7.0)
        out = bilinear_upsample_forward(x, 6, 8)
        np.testing.assert_allclose(out, 7.0, rtol=1e-6)

    def test_exact_2x_known_values(self):
        x = np.array([[[[0.0, 1.0]]]])
        out = bilinear_upsample_forward(x, 1, 4, align_corners=True)
        np.testing.assert_allclose(out[0, 0, 0], [0, 1 / 3, 2 / 3, 1.0], atol=1e-6)

    def test_adjoint_identity(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 4, 5))
        y = bilinear_upsample_forward(x, 8, 10)
        g = rng.normal(size=y.shape)
        dx = bilinear_upsample_backward(g, x.shape)
        np.testing.assert_allclose((y * g).sum(), (x * dx).sum(), rtol=1e-5)

    def test_mass_conserved_in_backward(self):
        g = np.ones((1, 1, 8, 8))
        dx = bilinear_upsample_backward(g, (1, 1, 4, 4))
        np.testing.assert_allclose(dx.sum(), g.sum(), rtol=1e-6)

    def test_downsample_also_works(self):
        x = np.random.default_rng(2).normal(size=(1, 1, 8, 8))
        out = bilinear_upsample_forward(x, 4, 4)
        assert out.shape == (1, 1, 4, 4)
