"""Weighted softmax cross-entropy: values, gradients, weighting."""
import numpy as np
import pytest

from repro.framework import Tensor
from repro.framework.losses import log_softmax, softmax, softmax_probs, weighted_cross_entropy


class TestSoftmax:
    def test_probs_sum_to_one(self):
        z = np.random.default_rng(0).normal(size=(2, 5, 3, 3))
        p = softmax_probs(z, axis=1)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-6)

    def test_stable_for_large_logits(self):
        z = np.array([[1000.0, 1001.0]])
        p = softmax_probs(z, axis=1)
        assert np.isfinite(p).all()
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_log_softmax_consistent(self):
        z = np.random.default_rng(1).normal(size=(4, 3))
        np.testing.assert_allclose(np.exp(log_softmax(z, axis=1)),
                                   softmax_probs(z, axis=1), rtol=1e-6)

    def test_softmax_tensor_gradcheck(self):
        rng = np.random.default_rng(2)
        z0 = rng.normal(size=(2, 4))
        z = Tensor(z0, requires_grad=True)
        g = rng.normal(size=(2, 4))
        p = softmax(z, axis=1)
        p.backward(g)
        eps = 1e-6
        for idx in [(0, 0), (1, 3)]:
            zp = z0.copy(); zp[idx] += eps
            zm = z0.copy(); zm[idx] -= eps
            fd = ((softmax_probs(zp, 1) * g).sum() - (softmax_probs(zm, 1) * g).sum()) / (2 * eps)
            np.testing.assert_allclose(z.grad[idx], fd, rtol=1e-5, atol=1e-8)


class TestWeightedCrossEntropy:
    def _setup(self, seed=0, n=2, k=3, h=4, w=5):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, k, h, w))
        labels = rng.integers(0, k, size=(n, h, w))
        weights = rng.uniform(0.5, 2.0, size=(n, h, w)).astype(np.float32)
        return logits, labels, weights

    def test_matches_manual(self):
        logits, labels, weights = self._setup()
        t = Tensor(logits, requires_grad=True)
        loss = weighted_cross_entropy(t, labels, weights)
        logp = log_softmax(logits, axis=1)
        ni, hi, wi = np.ogrid[:2, :4, :5]
        manual = (weights * -logp[ni, labels, hi, wi]).sum() / weights.sum()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-6)

    def test_mean_normalization(self):
        logits, labels, weights = self._setup()
        t = Tensor(logits)
        l1 = weighted_cross_entropy(t, labels, weights, normalization="mean")
        l2 = weighted_cross_entropy(t, labels, weights, normalization="weighted_mean")
        ratio = l1.item() / l2.item()
        np.testing.assert_allclose(ratio, weights.sum() / weights.size, rtol=1e-5)

    def test_unweighted_default(self):
        logits, labels, _ = self._setup()
        t = Tensor(logits)
        l_none = weighted_cross_entropy(t, labels, None)
        l_ones = weighted_cross_entropy(t, labels, np.ones((2, 4, 5)))
        np.testing.assert_allclose(l_none.item(), l_ones.item(), rtol=1e-7)

    def test_gradient_fd(self):
        logits, labels, weights = self._setup(seed=3, n=1, k=3, h=2, w=2)
        t = Tensor(logits, requires_grad=True)
        weighted_cross_entropy(t, labels, weights).backward()
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 2, 1, 1), (0, 1, 0, 1)]:
            lp = logits.copy(); lp[idx] += eps
            lm = logits.copy(); lm[idx] -= eps
            fp = weighted_cross_entropy(Tensor(lp), labels, weights).item()
            fm = weighted_cross_entropy(Tensor(lm), labels, weights).item()
            fd = (fp - fm) / (2 * eps)
            np.testing.assert_allclose(t.grad[idx], fd, rtol=1e-4, atol=1e-7)

    def test_perfect_prediction_low_loss(self):
        labels = np.zeros((1, 2, 2), dtype=np.int64)
        logits = np.zeros((1, 3, 2, 2))
        logits[:, 0] = 50.0
        loss = weighted_cross_entropy(Tensor(logits), labels)
        assert loss.item() < 1e-6

    def test_weight_increases_class_gradient(self):
        # Heavier weight on a pixel -> larger gradient magnitude there.
        logits = np.zeros((1, 2, 1, 2))
        labels = np.array([[[0, 0]]])
        w_hi = np.array([[[10.0, 1.0]]], dtype=np.float32)
        t = Tensor(logits, requires_grad=True)
        weighted_cross_entropy(t, labels, w_hi, normalization="mean").backward()
        assert abs(t.grad[0, 0, 0, 0]) > abs(t.grad[0, 0, 0, 1])

    def test_label_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="labels shape"):
            weighted_cross_entropy(Tensor(np.zeros((1, 3, 2, 2))),
                                   np.zeros((1, 3, 3), dtype=int))

    def test_label_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            weighted_cross_entropy(Tensor(np.zeros((1, 3, 2, 2))),
                                   np.full((1, 2, 2), 5))

    def test_bad_normalization_raises(self):
        with pytest.raises(ValueError, match="normalization"):
            weighted_cross_entropy(Tensor(np.zeros((1, 3, 2, 2))),
                                   np.zeros((1, 2, 2), dtype=int),
                                   normalization="bogus")

    def test_fp16_logits_grad_dtype(self):
        logits = np.zeros((1, 3, 2, 2), dtype=np.float16)
        t = Tensor(logits, requires_grad=True)
        weighted_cross_entropy(t, np.zeros((1, 2, 2), dtype=int)).backward()
        assert t.grad.dtype == np.float16
