"""Pooling kernels: forward vs naive, gradient routing."""
import numpy as np
import pytest

from repro.framework.ops.pool import (
    avgpool2d_backward,
    avgpool2d_forward,
    maxpool2d_backward,
    maxpool2d_forward,
)


def naive_maxpool(x, k, s, p):
    n, c, h, w = x.shape
    oh = (h + 2 * p - k) // s + 1
    ow = (w + 2 * p - k) // s + 1
    xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf)
    out = np.empty((n, c, oh, ow))
    for b in range(n):
        for ci in range(c):
            for i in range(oh):
                for j in range(ow):
                    out[b, ci, i, j] = xp[b, ci, i * s : i * s + k, j * s : j * s + k].max()
    return out


class TestMaxPool:
    @pytest.mark.parametrize("k,s,p", [(2, 2, 0), (3, 2, 1), (3, 1, 1), (2, 1, 0)])
    def test_matches_naive(self, k, s, p):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8))
        out, _ = maxpool2d_forward(x, k, s, p)
        np.testing.assert_allclose(out, naive_maxpool(x, k, s, p))

    def test_backward_routes_to_argmax(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out, arg = maxpool2d_forward(x, 2, 2, 0)
        g = np.array([[[[10.0]]]])
        dx = maxpool2d_backward(g, arg, x.shape, 2, 2, 0)
        np.testing.assert_allclose(dx, [[[[0, 0], [0, 10.0]]]])

    def test_overlapping_windows_accumulate(self):
        # 3x3/1 pool: the global max feeds several outputs.
        x = np.zeros((1, 1, 5, 5))
        x[0, 0, 2, 2] = 100.0
        out, arg = maxpool2d_forward(x, 3, 1, 0)
        g = np.ones_like(out)
        dx = maxpool2d_backward(g, arg, x.shape, 3, 1, 0)
        assert dx[0, 0, 2, 2] == 9.0  # max visible to all 9 windows
        assert dx.sum() == out.size

    def test_tie_breaks_to_first_tap(self):
        x = np.ones((1, 1, 2, 2))
        out, arg = maxpool2d_forward(x, 2, 2, 0)
        dx = maxpool2d_backward(np.ones_like(out), arg, x.shape, 2, 2, 0)
        assert dx.sum() == 1.0  # exactly one input credited

    def test_gradcheck(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 6, 6)) * 10  # spread values: no ties
        out, arg = maxpool2d_forward(x, 3, 2, 1)
        g = rng.normal(size=out.shape)
        dx = maxpool2d_backward(g, arg, x.shape, 3, 2, 1)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 3, 3), (0, 0, 5, 5)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = ((maxpool2d_forward(xp, 3, 2, 1)[0] * g).sum()
                  - (maxpool2d_forward(xm, 3, 2, 1)[0] * g).sum()) / (2 * eps)
            np.testing.assert_allclose(dx[idx], fd, rtol=1e-5, atol=1e-7)

    def test_preserves_dtype(self):
        x = np.zeros((1, 1, 4, 4), dtype=np.float16)
        out, _ = maxpool2d_forward(x, 2, 2, 0)
        assert out.dtype == np.float16


class TestAvgPool:
    def test_uniform_input(self):
        x = np.full((1, 1, 4, 4), 3.0)
        out = avgpool2d_forward(x, 2, 2, 0)
        np.testing.assert_allclose(out, 3.0)

    def test_backward_spreads_uniformly(self):
        g = np.array([[[[4.0]]]])
        dx = avgpool2d_backward(g, (1, 1, 2, 2), 2, 2, 0)
        np.testing.assert_allclose(dx, 1.0)

    def test_adjoint_identity(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 6, 6))
        y = avgpool2d_forward(x, 3, 2, 1)
        g = rng.normal(size=y.shape)
        dx = avgpool2d_backward(g, x.shape, 3, 2, 1)
        np.testing.assert_allclose((y * g).sum(), (x * dx).sum(), rtol=1e-8)
