"""Exporters: Chrome trace validity, comm-timeline merge, JSONL, text report."""
import json

import pytest

from repro.comm import (
    ReadinessSchedule,
    build_timeline,
    fuse_order,
    hierarchical_negotiation,
)
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    read_jsonl,
    render_metrics_report,
    write_chrome_trace,
    write_jsonl,
)


def make_spans():
    tr = Tracer()
    with tr.span("step", category="trainer", step=0):
        with tr.span("forward", category="trainer"):
            pass
        with tr.span("read_sample", category="io"):
            pass
        tr.instant("overflow", category="trainer")
    return tr.spans()


def make_comm_events():
    names = [f"layer{i}.grad" for i in range(4)]
    schedule = ReadinessSchedule.random(4, len(names), seed=2)
    negotiation = hierarchical_negotiation(schedule, radix=2)
    sizes = {n: 2000 for n in names}
    ordered = [names[t] for t in negotiation.order]
    fusion = fuse_order(ordered, sizes, threshold_bytes=4000)
    return build_timeline(negotiation, fusion, names)


class TestChromeTrace:
    def test_loads_with_json_and_timestamps_consistent(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, make_spans())
        doc = json.loads(path.read_text())
        complete = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert complete
        for rec in complete:
            assert rec["ts"] >= 0
            assert rec["dur"] > 0

    def test_children_within_parents(self):
        doc = chrome_trace(make_spans())
        complete = {r["args"]["span_id"]: r for r in doc["traceEvents"]
                    if r["ph"] == "X"}
        for rec in complete.values():
            parent = rec["args"]["parent_id"]
            if parent in complete:
                p = complete[parent]
                assert rec["ts"] >= p["ts"] - 1e-6
                assert rec["ts"] + rec["dur"] <= p["ts"] + p["dur"] + 1.0

    def test_one_process_per_component(self):
        doc = chrome_trace(make_spans())
        names = {r["args"]["name"]: r["pid"] for r in doc["traceEvents"]
                 if r.get("name") == "process_name"}
        assert {"trainer", "io"} <= set(names)
        assert names["trainer"] != names["io"]
        by_cat_pid = {(r["cat"], r["pid"]) for r in doc["traceEvents"]
                      if r["ph"] in ("X", "i")}
        for cat, pid in by_cat_pid:
            assert names[cat] == pid

    def test_instant_events_exported(self):
        doc = chrome_trace(make_spans())
        instants = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "overflow"

    def test_comm_timeline_merges_into_own_process(self):
        events = make_comm_events()
        doc = chrome_trace(make_spans(), comm_events=events)
        procs = {r["args"]["name"]: r["pid"] for r in doc["traceEvents"]
                 if r.get("name") == "process_name"}
        assert "comm.exchange" in procs
        comm_recs = [r for r in doc["traceEvents"]
                     if r.get("pid") == procs["comm.exchange"]
                     and r["ph"] == "X"]
        assert len(comm_recs) == len(events)
        # comm events keep their own serialized shape (the single serializer)
        assert {r["cat"] for r in comm_recs} <= {"negotiate", "allreduce"}


class TestJsonl:
    def test_round_trip(self, tmp_path):
        spans = make_spans()
        reg = MetricsRegistry()
        reg.counter("steps").inc(3)
        reg.histogram("lat").observe(1.0)
        path = tmp_path / "log.jsonl"
        n = write_jsonl(path, spans, reg)
        assert n == len(spans) + 1
        loaded, snapshot = read_jsonl(path)
        assert len(loaded) == len(spans)
        for a, b in zip(loaded, spans):
            assert a == b
        assert snapshot["counters"]["steps"] == 3

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_jsonl(path, make_spans(), None)
        for line in path.read_text().splitlines():
            rec = json.loads(line)
            assert rec["type"] in ("span", "metrics")


class TestTextReport:
    def test_report_contains_all_series(self):
        reg = MetricsRegistry()
        reg.counter("trainer.steps").inc(10)
        reg.gauge("io.queue_depth").set(4)
        for v in (0.1, 0.2, 0.3):
            reg.histogram("trainer.step_time_s").observe(v)
        text = render_metrics_report(reg, title="test report",
                                     extra_lines=["footer line"])
        assert "test report" in text
        assert "trainer.steps" in text and "10" in text
        assert "io.queue_depth" in text
        assert "trainer.step_time_s" in text
        assert "central 68%" in text
        assert text.rstrip().endswith("footer line")
