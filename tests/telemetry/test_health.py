"""Health engine: rule kinds, firing/resolved lifecycle, reporting."""
import json

import pytest

from repro.telemetry import (HealthEngine, HealthRule, SimulatedClock,
                             StreamingAggregator, Telemetry,
                             default_health_rules)


def make_engine(rules, window_s=1.0, telemetry=None, **kwargs):
    streams = StreamingAggregator(clock=SimulatedClock(), window_s=window_s,
                                  **kwargs)
    return streams, HealthEngine(rules, streams, telemetry=telemetry)


def feed(streams, series, values, start=0.0, **labels):
    """One observation per consecutive window, starting at ``start``."""
    for i, v in enumerate(values):
        streams.observe(series, v, t=start + i + 0.5, **labels)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            HealthRule(name="x", series="s", kind="nope")

    def test_unknown_severity_op_stat_rejected(self):
        with pytest.raises(ValueError):
            HealthRule(name="x", series="s", severity="fatal")
        with pytest.raises(ValueError):
            HealthRule(name="x", series="s", op="!=")
        with pytest.raises(ValueError):
            HealthRule(name="x", series="s", stat="p99")


class TestThreshold:
    def test_fire_then_resolve_lifecycle(self):
        rule = HealthRule(name="hot", series="q", kind="threshold",
                          stat="mean", op=">", value=10.0)
        streams, eng = make_engine([rule])
        feed(streams, "q", [5.0, 20.0, 20.0, 5.0])
        fired = eng.evaluate(t=4.0)
        assert [a.rule for a in fired] == ["hot"]
        (alert,) = eng.alerts
        assert alert.state == "resolved"
        assert alert.fired_at == pytest.approx(2.0)   # end of first breach
        assert alert.resolved_at == pytest.approx(4.0)

    def test_for_windows_requires_streak(self):
        rule = HealthRule(name="hot", series="q", value=10.0, for_windows=2)
        streams, eng = make_engine([rule])
        feed(streams, "q", [20.0, 5.0, 20.0, 5.0])    # never two in a row
        assert eng.evaluate(t=4.0) == []
        feed(streams, "q", [20.0, 20.0], start=4.0)
        assert len(eng.evaluate(t=6.0)) == 1

    def test_resolve_windows_requires_ok_streak(self):
        rule = HealthRule(name="hot", series="q", value=10.0,
                          resolve_windows=2)
        streams, eng = make_engine([rule])
        feed(streams, "q", [20.0, 5.0, 20.0])
        eng.evaluate(t=3.0)
        assert len(eng.firing()) == 1                 # one OK isn't enough
        feed(streams, "q", [5.0, 5.0], start=3.0)
        eng.evaluate(t=5.0)
        assert eng.firing() == []

    def test_glob_series_matches_every_label(self):
        rule = HealthRule(name="shed", series="serve.shed*", stat="total",
                          op=">", value=0.0)
        streams, eng = make_engine([rule])
        streams.observe("serve.shed", 1.0, t=0.5, lane="bulk")
        streams.observe("serve.shed", 1.0, t=0.5, lane="rt")
        eng.evaluate(t=1.0)
        assert sorted(a.series for a in eng.firing()) == [
            "serve.shed{lane=bulk}", "serve.shed{lane=rt}"]


class TestRateOfChange:
    def test_world_shrink_fires_on_negative_derivative(self):
        rule = HealthRule(name="shrunk", series="dist.world_size",
                          kind="rate_of_change", stat="last", op="<",
                          value=0.0)
        streams, eng = make_engine([rule])
        feed(streams, "dist.world_size", [8.0, 8.0, 7.0, 7.0])
        fired = eng.evaluate(t=4.0)
        assert [a.rule for a in fired] == ["shrunk"]
        (alert,) = eng.alerts
        assert alert.state == "resolved"              # steady again at 7
        assert alert.value == pytest.approx(-1.0)     # ranks per second

    def test_first_window_has_no_derivative(self):
        rule = HealthRule(name="shrunk", series="w", kind="rate_of_change",
                          stat="last", op="<", value=0.0)
        streams, eng = make_engine([rule])
        feed(streams, "w", [7.0])                     # no baseline yet
        assert eng.evaluate(t=1.0) == []


class TestEwmaAnomaly:
    def test_jump_after_flat_baseline_fires(self):
        rule = HealthRule(name="anom", series="st", kind="ewma_anomaly",
                          sigma=3.0, warmup=3)
        streams, eng = make_engine([rule])
        feed(streams, "st", [1.0] * 6 + [4.0])
        fired = eng.evaluate(t=7.0)
        assert [a.rule for a in fired] == ["anom"]
        # Even off a zero-variance baseline the z-score stays finite
        # (clamped to +/-99 when the EW std is exactly zero): JSON-safe.
        assert 3.0 <= abs(fired[0].value) <= 99.0
        json.dumps(fired[0].as_dict())

    def test_warmup_suppresses_early_windows(self):
        rule = HealthRule(name="anom", series="st", kind="ewma_anomaly",
                          sigma=3.0, warmup=5)
        streams, eng = make_engine([rule])
        feed(streams, "st", [1.0, 1.0, 9.0])          # jump inside warmup
        assert eng.evaluate(t=3.0) == []


class TestSloBurn:
    def test_burn_fraction_fires_and_reports_context(self):
        rule = HealthRule(name="slo", series="lat", kind="slo_burn",
                          stat="median", op=">", slo_target=0.5,
                          budget_fraction=0.5, budget_windows=4)
        streams, eng = make_engine([rule])
        feed(streams, "lat", [1.0, 1.0, 1.0, 0.1])
        fired = eng.evaluate(t=4.0)
        assert len(fired) == 1
        assert fired[0].context["burn"] == pytest.approx(0.75)

    def test_under_budget_stays_quiet(self):
        rule = HealthRule(name="slo", series="lat", kind="slo_burn",
                          stat="median", op=">", slo_target=0.5,
                          budget_fraction=0.5, budget_windows=4)
        streams, eng = make_engine([rule])
        feed(streams, "lat", [0.1, 1.0, 0.1, 0.1])    # 25% burn
        assert eng.evaluate(t=4.0) == []


class TestImbalance:
    def test_straggler_rank_named_from_series_label(self):
        rule = HealthRule(name="imb", series="rank_s{rank=*}",
                          kind="imbalance", stat="mean", value=2.0)
        streams, eng = make_engine([rule])
        for rank in range(4):
            streams.observe("rank_s", 4.0 if rank == 3 else 1.0,
                            t=0.5, rank=rank)
        fired = eng.evaluate(t=1.0)
        assert len(fired) == 1
        assert fired[0].context["straggler_rank"] == 3
        assert fired[0].context["ratio"] == pytest.approx(4.0)

    def test_balanced_family_stays_quiet(self):
        rule = HealthRule(name="imb", series="rank_s{rank=*}",
                          kind="imbalance", stat="mean", value=2.0)
        streams, eng = make_engine([rule])
        for rank in range(4):
            streams.observe("rank_s", 1.0, t=0.5, rank=rank)
        assert eng.evaluate(t=1.0) == []

    def test_single_series_window_skipped(self):
        rule = HealthRule(name="imb", series="rank_s{rank=*}",
                          kind="imbalance", stat="mean", value=2.0)
        streams, eng = make_engine([rule])
        streams.observe("rank_s", 9.0, t=0.5, rank=0)  # no family to skew
        assert eng.evaluate(t=1.0) == []


class TestEngineIntegration:
    def test_alerts_mirrored_into_telemetry(self):
        tel = Telemetry(clock=SimulatedClock())
        rule = HealthRule(name="hot", series="q", value=10.0)
        streams, eng = make_engine([rule], telemetry=tel)
        feed(streams, "q", [20.0, 5.0])
        eng.evaluate(t=2.0)
        names = [s.name for s in tel.tracer.spans()]
        assert "health_fired" in names and "health_resolved" in names
        assert tel.metrics.counter("health.alerts_fired",
                                   rule="hot").value == 1
        assert tel.metrics.counter("health.alerts_resolved",
                                   rule="hot").value == 1

    def test_report_and_render(self):
        rule = HealthRule(name="hot", series="q", value=10.0)
        streams, eng = make_engine([rule])
        feed(streams, "q", [20.0])
        eng.evaluate(t=1.0)
        report = json.loads(json.dumps(eng.report()))
        assert report["rules"][0]["name"] == "hot"
        assert report["firing"][0]["state"] == "firing"
        assert "q" in report["series"]
        text = eng.render()
        assert "FIRING" in text and "hot" in text

    def test_evaluate_without_new_windows_is_empty(self):
        rule = HealthRule(name="hot", series="q", value=10.0)
        _, eng = make_engine([rule])
        assert eng.evaluate(t=5.0) == []

    def test_attach_health_on_session(self):
        tel = Telemetry(clock=SimulatedClock())
        tel.attach_health(window_s=0.5)
        assert tel.streams is not None and tel.health is not None
        assert tel.streams.window_s == 0.5
        again = tel.health
        tel.attach_health()                            # idempotent
        assert tel.health is again
        tel.clear()
        assert tel.streams is None and tel.health is None


class TestDefaultRules:
    def test_stock_rules_cover_all_subsystems(self):
        rules = default_health_rules()
        names = {r.name for r in rules}
        assert {"step_time_anomaly", "rank_imbalance", "step_time_slo_burn",
                "comm_message_drops", "step_retries", "world_shrunk",
                "serve_latency_slo_burn", "serve_shedding"} <= names
        kinds = {r.kind for r in rules}
        assert kinds == {"ewma_anomaly", "imbalance", "slo_burn",
                         "threshold", "rate_of_change"}
