"""Cross-layer integration: instrumented trainer/io/comm/sim hot paths."""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.comm import HorovodConfig
from repro.core import DistributedTrainer, TrainConfig, Trainer
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.io.pipeline import PrefetchPipeline
from repro.perf.eventsim import TrainingRunConfig, simulate_training_run
from repro.telemetry import SimulatedClock, Telemetry, activate

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=6, seed=1, channels=4)


def tiny_model(seed=7):
    return Tiramisu(TiramisuConfig(in_channels=4, base_filters=8, growth=4,
                                   down_layers=(2,), bottleneck_layers=1,
                                   kernel=3, dropout=0.0),
                    rng=np.random.default_rng(seed))


class TestTrainerInstrumentation:
    def test_step_spans_and_metrics(self, dataset):
        tel = Telemetry()
        trainer = Trainer(tiny_model(), TrainConfig(lr=0.05, optimizer="sgd"),
                          class_frequencies(dataset.labels), telemetry=tel)
        trainer.train_step(dataset.images[:1], dataset.labels[:1])
        names = [s.name for s in tel.tracer.spans()]
        assert "train_step" in names
        assert "forward" in names and "backward" in names
        assert "optimizer_step" in names
        assert tel.metrics.counter("trainer.steps").value == 1
        assert tel.metrics.histogram("trainer.step_time_s").count == 1

    def test_forward_backward_nested_under_step(self, dataset):
        tel = Telemetry()
        trainer = Trainer(tiny_model(), TrainConfig(lr=0.05, optimizer="sgd"),
                          class_frequencies(dataset.labels), telemetry=tel)
        trainer.train_step(dataset.images[:1], dataset.labels[:1])
        spans = {s.name: s for s in tel.tracer.spans()}
        step_id = spans["train_step"].span_id
        assert spans["forward"].parent_id == step_id
        assert spans["backward"].parent_id == step_id

    def test_disabled_telemetry_records_nothing(self, dataset):
        trainer = Trainer(tiny_model(), TrainConfig(lr=0.05, optimizer="sgd"),
                          class_frequencies(dataset.labels))
        r = trainer.train_step(dataset.images[:1], dataset.labels[:1])
        assert np.isfinite(r.loss)   # default session is disabled; no error

    def test_activate_scopes_the_session(self, dataset):
        tel = Telemetry()
        trainer = Trainer(tiny_model(), TrainConfig(lr=0.05, optimizer="sgd"),
                          class_frequencies(dataset.labels))
        with activate(tel):
            trainer.train_step(dataset.images[:1], dataset.labels[:1])
        trainer.train_step(dataset.images[1:2], dataset.labels[1:2])
        # Only the step inside the activate() scope was recorded.
        assert tel.metrics.counter("trainer.steps").value == 1


class TestDistributedInstrumentation:
    def test_exchange_spans_and_comm_metrics(self, dataset):
        tel = Telemetry()
        with activate(tel):
            dt = DistributedTrainer(
                tiny_model, 2, TrainConfig(lr=0.05, optimizer="sgd"),
                class_frequencies(dataset.labels),
                horovod=HorovodConfig(algorithm="ring",
                                      control_plane="hierarchical",
                                      fusion_threshold_bytes=1 << 20))
            batches = [(dataset.images[:1], dataset.labels[:1]),
                       (dataset.images[1:2], dataset.labels[1:2])]
            dt.train_step(batches)
        cats = {s.category for s in tel.tracer.spans()}
        assert "trainer" in cats and "comm" in cats
        names = {s.name for s in tel.tracer.spans()}
        assert {"gradient_exchange", "negotiate", "fused_allreduce",
                "allreduce.ring"} <= names
        snap = tel.metrics.snapshot()
        assert snap["counters"]["comm.exchange_bytes"] > 0
        assert snap["counters"]["comm.fused_bytes"] > 0
        assert any(k.startswith("comm.negotiation_rounds")
                   for k in snap["counters"])


class TestPipelineInstrumentation:
    def test_read_latency_and_queue_depth(self):
        tel = Telemetry()
        pipe = PrefetchPipeline(lambda i: i * 2, range(10), num_workers=2,
                                prefetch_depth=4, telemetry=tel)
        assert list(pipe) == [i * 2 for i in range(10)]
        assert tel.metrics.histogram("io.read_latency_s").count == 10
        assert tel.metrics.counter("io.samples_read").value == 10
        g = tel.metrics.gauge("io.queue_depth")
        assert g.updates > 0 and g.max <= 4
        read_spans = [s for s in tel.tracer.spans() if s.name == "read_sample"]
        assert len(read_spans) == 10
        assert all(s.category == "io" for s in read_spans)


class TestEventsimVirtualTime:
    def test_virtual_spans_cover_the_run(self):
        tel = Telemetry(clock=SimulatedClock())
        cfg = TrainingRunConfig(ranks=3, steps=4, compute_time_s=0.1,
                                allreduce_time_s=0.02, overlap_fraction=0.5,
                                seed=0)
        result = simulate_training_run(cfg, telemetry=tel)
        spans = tel.tracer.spans()
        steps = [s for s in spans if s.name == "sim_step"]
        computes = [s for s in spans if s.name == "compute"]
        assert len(steps) == 4
        assert len(computes) == 4 * 3
        # Spans carry simulation time, not wall time: total virtual extent
        # matches the result's total simulated seconds.
        assert max(s.end_us for s in steps) == pytest.approx(
            result.total_time_s * 1e6, rel=1e-6)
        # Steps are serialized in virtual time.
        ordered = sorted(steps, key=lambda s: s.start_us)
        for a, b in zip(ordered, ordered[1:]):
            assert b.start_us >= a.end_us - 1e-6

    def test_compute_spans_parented_to_their_step(self):
        tel = Telemetry(clock=SimulatedClock())
        cfg = TrainingRunConfig(ranks=2, steps=2, compute_time_s=0.1, seed=0)
        simulate_training_run(cfg, telemetry=tel)
        spans = tel.tracer.spans()
        step_ids = {s.span_id for s in spans if s.name == "sim_step"}
        for c in (s for s in spans if s.name == "compute"):
            assert c.parent_id in step_ids

    def test_untraced_run_matches_traced_run(self):
        cfg = TrainingRunConfig(ranks=3, steps=5, compute_time_s=0.1,
                                compute_jitter=0.05, seed=3)
        plain = simulate_training_run(cfg)
        traced = simulate_training_run(cfg, telemetry=Telemetry(
            clock=SimulatedClock()))
        np.testing.assert_allclose(plain.step_times, traced.step_times)

    def test_metrics_recorded(self):
        tel = Telemetry(clock=SimulatedClock())
        simulate_training_run(
            TrainingRunConfig(ranks=2, steps=3, compute_time_s=0.1),
            telemetry=tel)
        assert tel.metrics.counter("sim.steps").value == 3
        assert tel.metrics.histogram("sim.step_time_s").count == 3
