"""Metrics registry: counters, gauges, percentile math, labels, snapshots."""
import numpy as np
import pytest

from repro.perf.stats import ThroughputStats
from repro.telemetry import MetricsRegistry, series_key


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotonic(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("a", rank=0) is reg.counter("a", rank=0)
        assert reg.counter("a", rank=0) is not reg.counter("a", rank=1)


class TestGauge:
    def test_tracks_envelope(self):
        g = MetricsRegistry().gauge("depth")
        for v in (3, 8, 1, 5):
            g.set(v)
        assert g.value == 5
        assert g.min == 1
        assert g.max == 8
        assert g.updates == 4


class TestHistogram:
    def test_percentiles_match_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(0.0, 1.0, size=500)
        h = MetricsRegistry().histogram("lat")
        for v in values:
            h.observe(v)
        s = h.summary()
        assert s.count == 500
        assert s.median == pytest.approx(np.percentile(values, 50))
        assert s.p16 == pytest.approx(np.percentile(values, 16))
        assert s.p84 == pytest.approx(np.percentile(values, 84))
        assert s.p99 == pytest.approx(np.percentile(values, 99))
        assert s.mean == pytest.approx(values.mean())
        assert s.min == pytest.approx(values.min())
        assert s.max == pytest.approx(values.max())

    def test_central68_reuses_paper_stats(self):
        values = np.linspace(1.0, 100.0, 200)
        h = MetricsRegistry().histogram("t")
        for v in values:
            h.observe(v)
        stats = h.central68()
        assert isinstance(stats, ThroughputStats)
        lo, med, hi = np.quantile(values, [0.16, 0.5, 0.84])
        assert stats.median == pytest.approx(med)
        assert stats.lo == pytest.approx(lo)
        assert stats.hi == pytest.approx(hi)
        assert stats.err_plus == pytest.approx(hi - med)
        assert stats.err_minus == pytest.approx(med - lo)

    def test_empty_histogram_summary(self):
        s = MetricsRegistry().histogram("empty").summary()
        assert s.count == 0
        assert s.median == 0.0


class TestSeriesKeys:
    def test_labels_sorted_canonically(self):
        assert series_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert series_key("m", {}) == "m"


class TestSnapshot:
    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("bytes", rank=0).inc(100)
        reg.gauge("depth").set(3)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["bytes{rank=0}"] == 100
        assert snap["gauges"]["depth"]["value"] == 3
        assert snap["histograms"]["lat"]["count"] == 1

    def test_unset_gauges_excluded(self):
        reg = MetricsRegistry()
        reg.gauge("never_set")
        assert reg.snapshot()["gauges"] == {}


class TestDisabled:
    def test_disabled_registry_hands_out_noops(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestHistogramEdgeCases:
    def test_single_sample_collapses_every_percentile(self):
        h = MetricsRegistry().histogram("one")
        h.observe(2.5)
        s = h.summary()
        assert s.count == 1
        assert (s.mean, s.min, s.max) == (2.5, 2.5, 2.5)
        assert s.median == s.p16 == s.p84 == s.p99 == 2.5

    def test_all_identical_samples_have_zero_spread(self):
        h = MetricsRegistry().histogram("flat")
        for _ in range(100):
            h.observe(7.0)
        s = h.summary()
        assert s.count == 100
        assert s.p16 == s.median == s.p84 == 7.0
        stats = h.central68()
        assert stats.err_plus == 0.0 and stats.err_minus == 0.0

    def test_nan_sample_rejected(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.1)
        with pytest.raises(ValueError):
            h.observe(float("nan"))
        assert h.count == 1          # the poison sample never landed
        assert np.isfinite(h.summary().median)

    def test_empty_histogram_central68_is_zero(self):
        stats = MetricsRegistry().histogram("empty").central68()
        assert (stats.median, stats.lo, stats.hi) == (0.0, 0.0, 0.0)
