"""Cross-rank trace analyzer: links, attribution, stragglers, critical path.

The attribution tests build spans with *known* intervals via
``Tracer.emit`` on a simulated clock, so every phase total is exact; the
end-to-end tests run real :class:`repro.comm.simmpi.World` traffic under an
active session.  The breakdown cross-validation pins the acceptance
criterion: analyzer phase totals agree with ``perf.breakdown`` within 1%.
"""
import pytest

from repro.comm import World
from repro.errors import MessageDropped
from repro.perf.breakdown import kernel_breakdown
from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.telemetry import (CrossRankTrace, SimulatedClock, Telemetry,
                             activate)
from repro.telemetry.distributed import PHASE_OF_CATEGORY


def sim_tel():
    return Telemetry(clock=SimulatedClock())


class TestMessageLinks:
    def test_simmpi_sends_match_recvs(self):
        tel = sim_tel()
        with activate(tel):
            w = World(3)
            for dst in (1, 2):
                w.send(b"x", src=0, dst=dst)
            assert w.recv(dst=1, src=0) == b"x"
            assert w.recv(dst=2, src=0) == b"x"
        cross = CrossRankTrace(tel.tracer.spans())
        assert len(cross.links) == 2
        assert len(cross.matched()) == 2
        assert cross.unmatched() == []
        for link in cross.matched():
            assert link.send.args["msg_edge"] == "send"
            assert link.recv.args["msg_edge"] == "recv"
            assert link.send.lane == 0          # sender rank lane
            assert link.recv.lane in (1, 2)     # receiver rank lane

    def test_in_flight_send_is_unmatched(self):
        tel = sim_tel()
        with activate(tel):
            w = World(2)
            w.send(b"x", src=0, dst=1)          # never received
        cross = CrossRankTrace(tel.tracer.spans())
        (link,) = cross.unmatched()
        assert link.send is not None and link.recv is None

    def test_dropped_message_recorded_as_drop_edge(self):
        plan = FaultPlan((FaultSpec(kind="drop_msg", step=0),))
        injector = FaultInjector(plan)
        injector.begin_step(0)
        tel = sim_tel()
        with activate(tel):
            w = World(2, fault_injector=injector)
            w.send(b"x", src=0, dst=1)
            with pytest.raises(MessageDropped):
                w.recv(dst=1, src=0)
        cross = CrossRankTrace(tel.tracer.spans())
        (link,) = cross.links.values()
        assert link.dropped and link.matched
        assert tel.metrics.counter("comm.dropped_messages").value == 1

    def test_untraced_wire_unchanged(self):
        w = World(2)                            # no active session
        w.send(b"x", src=0, dst=1)
        assert w.recv(dst=1, src=0) == b"x"
        assert w.stats.sent_messages[0] == 1    # exact accounting holds


def emit_step(tracer, step, t0):
    """One synthetic step with known attribution, offset to start at t0.

    Envelope [t0, t0+10]: trainer [0,6], comm [4,7], io [7,8],
    resilience [8,10] (claims nothing) -> compute 4, comm 3, io 1, stall 2.
    """
    tracer.emit("compute", t0 + 0.0, 6.0, category="trainer", lane=0,
                step=step, rank=0)
    tracer.emit("exchange", t0 + 4.0, 3.0, category="comm", lane=0,
                step=step)
    tracer.emit("read", t0 + 7.0, 1.0, category="io", lane=0, step=step)
    tracer.emit("recovery", t0 + 8.0, 2.0, category="resilience", lane=0,
                step=step)


class TestStepAttribution:
    def test_phases_partition_the_envelope_exactly(self):
        tel = sim_tel()
        emit_step(tel.tracer, step=0, t0=0.0)
        (b,) = CrossRankTrace(tel.tracer.spans()).step_breakdowns()
        assert b.compute_s == pytest.approx(4.0)
        assert b.comm_s == pytest.approx(3.0)
        assert b.io_s == pytest.approx(1.0)
        assert b.stall_s == pytest.approx(2.0)
        assert (b.compute_s + b.comm_s + b.io_s + b.stall_s
                == pytest.approx(b.total_s))

    def test_overlap_priority_comm_over_io_over_compute(self):
        tel = sim_tel()
        # Three fully-overlapping spans [0, 4]: comm wins the whole window.
        tel.tracer.emit("c", 0.0, 4.0, category="trainer", lane=0, step=0)
        tel.tracer.emit("x", 0.0, 4.0, category="comm", lane=0, step=0)
        tel.tracer.emit("r", 0.0, 4.0, category="io", lane=0, step=0)
        (b,) = CrossRankTrace(tel.tracer.spans()).step_breakdowns()
        assert b.comm_s == pytest.approx(4.0)
        assert b.io_s == 0.0 and b.compute_s == 0.0 and b.stall_s == 0.0

    def test_unstepped_span_falls_into_containing_envelope(self):
        tel = sim_tel()
        emit_step(tel.tracer, step=0, t0=0.0)
        emit_step(tel.tracer, step=1, t0=20.0)
        tel.tracer.emit("helper", 21.0, 1.0, category="io", lane=2)  # no step
        groups = CrossRankTrace(tel.tracer.spans()).step_spans()
        assert any(s.name == "helper" for s in groups[1])
        assert not any(s.name == "helper" for s in groups[0])

    def test_straggler_is_argmax_of_per_rank_time(self):
        tel = sim_tel()
        for rank in range(4):
            dur = 8.0 if rank == 2 else 2.0
            tel.tracer.emit("compute", 0.0, dur, category="trainer",
                            lane=rank, step=0, rank=rank)
        cross = CrossRankTrace(tel.tracer.spans())
        (b,) = cross.step_breakdowns()
        assert b.straggler_rank == 2
        assert b.per_rank_s[2] == pytest.approx(8.0)
        assert cross.straggler_counts() == {2: 1}

    def test_summarize_gives_median_and_central_68(self):
        tel = sim_tel()
        for step in range(5):
            emit_step(tel.tracer, step=step, t0=step * 20.0)
        summary = CrossRankTrace(tel.tracer.spans()).summarize()
        assert set(summary) == {"compute", "comm", "io", "stall"}
        assert summary["compute"].median == pytest.approx(4.0)
        assert summary["comm"].median == pytest.approx(3.0)
        assert summary["stall"].median == pytest.approx(2.0)

    def test_empty_trace_summarizes_to_zeros(self):
        summary = CrossRankTrace([]).summarize()
        assert summary["compute"].median == 0.0


class TestCriticalPath:
    def test_path_crosses_a_message_link(self):
        # produce on rank lane 0 -> wire message -> consume on rank lane 1:
        # the only causal route back to "produce" is the message edge.
        tel = sim_tel()
        tr = tel.tracer
        pid = tr.emit("produce", 0.0, 1.0, category="trainer", lane=0,
                      step=0)
        tr.emit("send 0->1", 1.0, 0.0, category="comm.msg", lane=0,
                parent_id=pid, step=0, msg_edge="send", msg_id=1,
                src=0, dst=1, tag=0)
        tr.emit("recv 0->1", 1.5, 0.0, category="comm.msg", lane=1,
                step=0, msg_edge="recv", msg_id=1, src=0, dst=1, tag=0)
        tr.emit("consume", 1.5, 2.0, category="trainer", lane=1, step=0)
        cross = CrossRankTrace(tr.spans())
        names = [s.name for s in cross.critical_path(0)]
        assert names == ["produce", "consume"]

    def test_unknown_step_gives_empty_path(self):
        assert CrossRankTrace([]).critical_path(7) == []


class TestBreakdownCrossValidation:
    """Acceptance gate: analyzer agrees with perf.breakdown within 1%."""

    PHASE_OF_KERNEL = {"allreduce": "comm", "copy": "io", "idle": None}

    @pytest.mark.parametrize("network,precision",
                             [("tiramisu", "fp16"), ("tiramisu", "fp32")])
    def test_phase_totals_match_kernel_breakdown(self, network, precision):
        table = kernel_breakdown(network, precision)
        # Lay the table's kernel categories end-to-end as one step's spans:
        # compute-class rows -> trainer, allreduce -> comm, copy -> io, and
        # idle becomes a gap (no span), which must surface as stall.
        tel = sim_tel()
        expected = {"compute": 0.0, "comm": 0.0, "io": 0.0, "stall": 0.0}
        t = 0.0
        for row in table.rows:
            phase = self.PHASE_OF_KERNEL.get(row.category, "compute")
            if phase is not None:
                category = {"compute": "trainer", "comm": "comm",
                            "io": "io"}[phase]
                tel.tracer.emit(row.category, t, row.time_s,
                                category=category, lane=0, step=0)
                expected[phase] += row.time_s
            else:
                expected["stall"] += row.time_s
            t += row.time_s
        # Close the envelope at the true step end so trailing idle counts.
        tel.tracer.emit("step_end", t, 0.0, category="trainer", lane=0,
                        step=0)
        (b,) = CrossRankTrace(tel.tracer.spans()).step_breakdowns()
        assert b.total_s == pytest.approx(table.total_time_s, rel=1e-6)
        for phase, want in expected.items():
            got = b.phase_seconds()[phase]
            assert got == pytest.approx(want, rel=0.01, abs=1e-6), phase

    def test_phase_map_covers_trainer_serve_comm_io(self):
        assert PHASE_OF_CATEGORY["trainer"] == "compute"
        assert PHASE_OF_CATEGORY["comm"] == "comm"
        assert PHASE_OF_CATEGORY["io"] == "io"
        assert "resilience" not in PHASE_OF_CATEGORY
