"""Span tracer: nesting, thread-locality, simulated clocks, zero overhead."""
import threading
import time

import pytest

from repro.telemetry import (
    NULL_SPAN,
    SimulatedClock,
    Telemetry,
    Tracer,
    activate,
    get_active,
    traced,
)


class TestNesting:
    def test_parent_child_ids(self):
        tr = Tracer()
        with tr.span("outer", category="trainer"):
            with tr.span("inner", category="trainer"):
                with tr.span("leaf", category="trainer"):
                    pass
        spans = {s.name: s for s in tr.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["leaf"].parent_id == spans["inner"].span_id

    def test_siblings_share_parent(self):
        tr = Tracer()
        with tr.span("parent"):
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        spans = {s.name: s for s in tr.spans()}
        assert spans["a"].parent_id == spans["b"].parent_id == spans["parent"].span_id

    def test_span_ids_unique(self):
        tr = Tracer()
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        ids = [s.span_id for s in tr.spans()]
        assert len(set(ids)) == len(ids)

    def test_children_nested_within_parent_interval(self):
        tr = Tracer()
        with tr.span("outer"):
            time.sleep(0.001)
            with tr.span("inner"):
                time.sleep(0.001)
            time.sleep(0.001)
        spans = {s.name: s for s in tr.spans()}
        outer, inner = spans["outer"], spans["inner"]
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us + 1.0   # float slack (us)
        assert outer.duration_us > inner.duration_us

    def test_exception_still_records_and_pops(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in tr.spans()] == ["boom"]
        with tr.span("after"):
            pass
        assert {s.name: s for s in tr.spans()}["after"].parent_id is None


class TestThreads:
    def test_stacks_are_thread_local(self):
        tr = Tracer()
        done = threading.Event()

        def worker():
            with tr.span("worker_span"):
                done.wait(1.0)

        t = threading.Thread(target=worker)
        with tr.span("main_span"):
            t.start()
            done.set()
            t.join()
        spans = {s.name: s for s in tr.spans()}
        # The worker's span is NOT a child of the main thread's open span.
        assert spans["worker_span"].parent_id is None
        assert spans["worker_span"].lane != spans["main_span"].lane


class TestDisabled:
    def test_disabled_span_is_shared_null(self):
        tr = Tracer(enabled=False)
        assert tr.span("anything") is NULL_SPAN
        with tr.span("x"):
            pass
        assert tr.spans() == []
        tr.instant("marker")
        assert tr.spans() == []

    def test_disabled_overhead_is_negligible(self):
        tr = Tracer(enabled=False)
        n = 20000
        start = time.perf_counter()
        for _ in range(n):
            with tr.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        # Generous bound: the no-op path must stay well under 10us/call.
        assert elapsed / n < 10e-6

    def test_default_active_session_is_disabled(self):
        assert not get_active().enabled
        assert get_active().tracer.span("x") is NULL_SPAN


class TestSimulatedClock:
    def test_spans_carry_virtual_time(self):
        clock = SimulatedClock()
        tr = Tracer(clock=clock)
        clock.advance_to(1.5)
        with tr.span("virtual"):
            clock.advance(0.25)
        (s,) = tr.spans()
        assert s.start_us == pytest.approx(1.5e6)
        assert s.duration_us == pytest.approx(0.25e6)

    def test_emit_records_pre_timed_spans(self):
        tr = Tracer(clock=SimulatedClock())
        parent = tr.emit("step", start_s=2.0, duration_s=1.0,
                         category="sim", lane=0)
        tr.emit("compute", start_s=2.0, duration_s=0.7, category="sim",
                lane=1, parent_id=parent, rank=0)
        spans = {s.name: s for s in tr.spans()}
        assert spans["compute"].parent_id == spans["step"].span_id
        assert spans["compute"].start_us == pytest.approx(2e6)
        assert spans["compute"].args["rank"] == 0

    def test_clock_cannot_go_backwards(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        clock.advance_to(5.0)
        assert clock.advance_to(1.0) == 5.0   # no-op jump backwards


class TestTracedDecorator:
    def test_traced_uses_active_session(self):
        @traced(category="app")
        def compute(x):
            return x * 2

        tel = Telemetry()
        with activate(tel):
            assert compute(21) == 42
        (s,) = tel.tracer.spans()
        assert "compute" in s.name

    def test_traced_explicit_name_and_tracer(self):
        tr = Tracer()

        @traced("custom_name", category="io", tracer=tr)
        def fn():
            return 7

        assert fn() == 7
        assert tr.spans()[0].name == "custom_name"
        assert tr.spans()[0].category == "io"

    def test_traced_no_session_is_noop(self):
        @traced
        def plain():
            return 1

        assert plain() == 1   # runs fine against the disabled default


class TestInstant:
    def test_instant_records_marker(self):
        tr = Tracer()
        with tr.span("step"):
            tr.instant("overflow", category="trainer", scale=1024.0)
        spans = {s.name: s for s in tr.spans()}
        mark = spans["overflow"]
        assert mark.kind == "instant"
        assert mark.duration_us == 0.0
        assert mark.parent_id == spans["step"].span_id
        assert mark.args["scale"] == 1024.0
