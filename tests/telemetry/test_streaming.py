"""Streaming aggregator: tumbling windows, registry sampling, EWMA, subs."""
import math

import pytest

from repro.telemetry import (Ewma, MetricsRegistry, SimulatedClock,
                             StreamingAggregator, WindowSummary)


def make(window_s=1.0, **kwargs):
    clock = SimulatedClock()
    return clock, StreamingAggregator(clock=clock, window_s=window_s, **kwargs)


class TestTumblingWindows:
    def test_windows_align_to_floor_of_t(self):
        _, agg = make()
        agg.observe("x", 1.0, t=0.2)
        agg.observe("x", 3.0, t=0.9)
        agg.observe("x", 5.0, t=1.1)      # next bucket
        closed = agg.advance(1.0)
        assert len(closed) == 1
        w = closed[0]
        assert (w.start, w.end) == (0.0, 1.0)
        assert w.count == 2
        assert w.mean == pytest.approx(2.0)
        assert w.total == pytest.approx(4.0)
        assert w.rate == pytest.approx(4.0)
        assert w.last == pytest.approx(3.0)

    def test_advance_closes_strictly_before_current_window(self):
        _, agg = make()
        agg.observe("x", 1.0, t=0.5)
        assert agg.advance(0.99) == []           # window 0 still open
        assert len(agg.advance(1.0)) == 1        # now it closes
        assert agg.advance(5.0) == []            # nothing new to close

    def test_closed_ordered_by_window_then_series(self):
        _, agg = make()
        agg.observe("b", 1.0, t=0.5)
        agg.observe("a", 1.0, t=0.5)
        agg.observe("a", 1.0, t=1.5)
        closed = agg.advance(2.0)
        assert [(w.series, w.start) for w in closed] == [
            ("a", 0.0), ("b", 0.0), ("a", 1.0)]

    def test_labels_become_series_keys(self):
        _, agg = make()
        agg.observe("rank_s", 1.0, t=0.5, rank=3)
        (w,) = agg.advance(1.0)
        assert w.series == "rank_s{rank=3}"

    def test_clockless_observe_requires_explicit_t(self):
        agg = StreamingAggregator(clock=None, window_s=1.0)
        with pytest.raises(ValueError):
            agg.observe("x", 1.0)
        agg.observe("x", 1.0, t=0.5)      # explicit t is fine

    def test_keep_windows_bounds_history(self):
        _, agg = make(keep_windows=3)
        for i in range(10):
            agg.observe("x", float(i), t=i + 0.5)
        agg.advance(10.0)
        hist = agg.summaries("x")
        assert len(hist) == 3
        assert [w.start for w in hist] == [7.0, 8.0, 9.0]

    def test_simulated_clock_drives_default_timestamps(self):
        clock, agg = make()
        clock.advance(0.5)
        agg.observe("x", 2.0)              # lands at t=0.5
        clock.advance(1.0)
        closed = agg.advance()             # closes window 0 at t=1.5
        assert len(closed) == 1
        assert closed[0].start == 0.0


class TestRegistrySampling:
    def test_counter_deltas_not_cumulative_values(self):
        _, agg = make()
        reg = MetricsRegistry()
        c = reg.counter("steps")
        c.inc(3)
        agg.sample(reg, t=0.5)
        c.inc(2)
        agg.sample(reg, t=1.5)
        agg.advance(2.0)
        totals = [w.total for w in agg.summaries("steps")]
        assert totals == [pytest.approx(3.0), pytest.approx(2.0)]

    def test_unchanged_counter_contributes_nothing(self):
        _, agg = make()
        reg = MetricsRegistry()
        reg.counter("steps").inc()
        assert agg.sample(reg, t=0.5) == 1
        assert agg.sample(reg, t=1.5) == 0     # no delta, no observation

    def test_gauges_sampled_as_values(self):
        _, agg = make()
        reg = MetricsRegistry()
        reg.gauge("world").set(8)
        agg.sample(reg, t=0.5)
        reg.gauge("world").set(7)
        agg.sample(reg, t=1.5)
        agg.advance(2.0)
        assert [w.last for w in agg.summaries("world")] == [8.0, 7.0]

    def test_histogram_samples_consumed_once(self):
        _, agg = make()
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(0.1)
        h.observe(0.2)
        agg.sample(reg, t=0.5)
        h.observe(0.4)
        agg.sample(reg, t=0.6)             # only the new sample lands
        agg.advance(1.0)
        (w,) = agg.summaries("lat")
        assert w.count == 3
        assert w.total == pytest.approx(0.7)


class TestEwma:
    def test_first_update_seeds_mean(self):
        e = Ewma(halflife_s=2.0)
        e.update(10.0, t=0.0)
        assert e.mean == 10.0
        assert e.std == 0.0

    def test_halflife_semantics(self):
        e = Ewma(halflife_s=2.0)
        e.update(0.0, t=0.0)
        e.update(10.0, t=2.0)              # exactly one half-life later
        assert e.mean == pytest.approx(5.0)

    def test_zscore_inf_on_zero_variance_jump(self):
        e = Ewma(halflife_s=1.0)
        e.update(1.0, t=0.0)
        e.update(1.0, t=1.0)
        assert e.zscore(1.0) == 0.0
        assert math.isinf(e.zscore(2.0))

    def test_aggregator_maintains_per_series_ewma(self):
        _, agg = make(ewma_halflife_s=4.0)
        for i in range(5):
            agg.observe("x", 2.0, t=i + 0.5)
        agg.advance(5.0)
        e = agg.ewma("x")
        assert e is not None
        assert e.updates == 5
        assert e.mean == pytest.approx(2.0)

    def test_invalid_halflife_rejected(self):
        with pytest.raises(ValueError):
            Ewma(halflife_s=0.0)


class TestSubscriptionsAndCursor:
    def test_glob_subscription_delivers_matching_windows(self):
        _, agg = make()
        got = []
        agg.subscribe("serve.latency_s*", got.append)
        agg.observe("serve.latency_s", 0.1, t=0.5, lane="bulk")
        agg.observe("trainer.step_time_s", 1.0, t=0.5)
        agg.advance(1.0)
        assert [w.series for w in got] == ["serve.latency_s{lane=bulk}"]

    def test_unsubscribe_stops_delivery(self):
        _, agg = make()
        got = []
        sid = agg.subscribe("x", got.append)
        agg.observe("x", 1.0, t=0.5)
        agg.advance(1.0)
        assert agg.unsubscribe(sid)
        agg.observe("x", 1.0, t=1.5)
        agg.advance(2.0)
        assert len(got) == 1
        assert not agg.unsubscribe(sid)    # second removal is a no-op

    def test_closed_since_cursor_sees_each_window_once(self):
        _, agg = make()
        agg.observe("x", 1.0, t=0.5)
        agg.advance(1.0)
        cursor, batch = agg.closed_since(0)
        assert len(batch) == 1
        agg.observe("x", 2.0, t=1.5)
        agg.advance(2.0)
        cursor, batch = agg.closed_since(cursor)
        assert [w.mean for w in batch] == [2.0]
        cursor2, batch = agg.closed_since(cursor)
        assert batch == [] and cursor2 == cursor

    def test_window_summary_serializes(self):
        _, agg = make()
        agg.observe("x", 1.0, t=0.5)
        (w,) = agg.advance(1.0)
        d = w.as_dict()
        assert d["series"] == "x" and d["count"] == 1
        assert isinstance(w, WindowSummary)
        assert w.width == pytest.approx(1.0)


class TestValidation:
    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError):
            StreamingAggregator(window_s=0.0)
