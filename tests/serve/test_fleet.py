"""The serve fleet: autoscaler policy, routing, scale events, e2e drill."""
import numpy as np
import pytest

from repro.resilience import FaultPlan
from repro.serve import (FleetConfig, FleetServer, Replay, ReplayConfig,
                         replay_workload, summarize_fleet)
from repro.serve.fleet import Autoscaler, AutoscalerConfig, FleetRequest
from repro.telemetry import Telemetry, activate
from repro.telemetry.streaming import WindowSummary


def window(series, end, *, mean=0.0, rate=0.0, last=0.0, total=0.0):
    return WindowSummary(series=series, start=end - 1.0, end=end, count=1,
                         total=total, mean=mean, minimum=mean, maximum=mean,
                         last=last, rate=rate, median=mean, p16=mean,
                         p84=mean)


class TestAutoscalerPolicy:
    def feed(self, scaler, cell, end, rps, service_ms, backlog=0.0):
        scaler.observe(window(f"fleet.arrivals{{cell={cell}}}", end,
                              rate=rps))
        scaler.observe(window(f"fleet.service_ms{{cell={cell}}}", end,
                              mean=service_ms))
        scaler.observe(window(f"fleet.queue_windows{{cell={cell}}}", end,
                              last=backlog))

    def test_grows_when_demand_exceeds_capacity(self):
        scaler = Autoscaler(AutoscalerConfig(), windows_per_request=4.0)
        for t in range(1, 6):
            self.feed(scaler, "east", float(t), rps=200.0, service_ms=4.0)
        # demand = 200 req/s * 4 windows * 4ms = 3.2 replica-equivalents.
        assert scaler.demand_replicas("east") == pytest.approx(3.2, rel=0.1)
        decision = scaler.decide("east", 6.0, current_replicas=2)
        assert decision.kind == "grow"
        assert decision.delta > 0
        assert decision.target >= 4

    def test_grow_respects_cooldown_and_step(self):
        cfg = AutoscalerConfig(grow_cooldown_s=5.0, max_grow_step=2)
        scaler = Autoscaler(cfg, windows_per_request=4.0)
        for t in range(1, 6):
            self.feed(scaler, "east", float(t), rps=400.0, service_ms=4.0)
        first = scaler.decide("east", 6.0, 1)
        assert first.kind == "grow" and first.delta == 2   # capped step
        again = scaler.decide("east", 7.0, 3)
        assert again.kind == "hold"
        assert "cooling down" in again.reason

    def test_shrink_needs_hysteresis_margin(self):
        cfg = AutoscalerConfig(shrink_utilization=0.45)
        scaler = Autoscaler(cfg, windows_per_request=4.0)
        for t in range(1, 8):
            self.feed(scaler, "east", float(t), rps=30.0, service_ms=4.0)
        # demand ~0.5 replicas; at 4 replicas predicted utilization ~0.12
        # sits under the shrink floor -> shrink, one replica at a time.
        decision = scaler.decide("east", 9.0, 4)
        assert decision.kind == "shrink" and decision.delta == -1
        # At 1 replica (the floor) it must hold even when idle.
        floor = scaler.decide("east", 20.0, 1)
        assert floor.kind == "hold"

    def test_backlog_counts_toward_demand(self):
        scaler = Autoscaler(AutoscalerConfig(drain_horizon_s=2.0),
                            windows_per_request=4.0)
        for t in range(1, 4):
            self.feed(scaler, "east", float(t), rps=10.0, service_ms=4.0,
                      backlog=2000.0)
        # Steady demand is tiny but 2000 queued windows at 4ms each must
        # drain within 2s: + 4 replica-equivalents of backlog pressure.
        assert scaler.demand_replicas("east") > 3.0

    def test_cells_are_independent(self):
        scaler = Autoscaler(AutoscalerConfig(), windows_per_request=4.0)
        for t in range(1, 6):
            self.feed(scaler, "east", float(t), rps=300.0, service_ms=4.0)
            self.feed(scaler, "west", float(t), rps=5.0, service_ms=4.0)
        assert scaler.decide("east", 6.0, 1).kind == "grow"
        assert scaler.decide("west", 6.0, 1).kind == "hold"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(shrink_utilization=0.9,
                             target_utilization=0.7)


class TestReplay:
    def test_replay_workload_is_deterministic(self):
        cfg = ReplayConfig(num_requests=5000, duration_s=60.0, seed=3)
        a, b = replay_workload(cfg), replay_workload(cfg)
        assert np.array_equal(a.arrival_s, b.arrival_s)
        assert np.array_equal(a.key, b.key)
        assert np.array_equal(a.lane, b.lane)

    def test_arrivals_sorted_and_bounded(self):
        cfg = ReplayConfig(num_requests=5000, duration_s=60.0, seed=1,
                           bursts=((20.0, 10.0, 3.0),))
        replay = replay_workload(cfg)
        assert len(replay) == 5000
        assert np.all(np.diff(replay.arrival_s) >= 0)
        assert replay.arrival_s[0] >= 0.0
        assert replay.arrival_s[-1] <= 60.0

    def test_burst_concentrates_arrivals(self):
        quiet = ReplayConfig(num_requests=20000, duration_s=100.0, seed=0,
                             diurnal_amplitude=0.0)
        bursty = ReplayConfig(num_requests=20000, duration_s=100.0, seed=0,
                              diurnal_amplitude=0.0,
                              bursts=((40.0, 20.0, 4.0),))
        q = replay_workload(quiet).arrival_s
        b = replay_workload(bursty).arrival_s
        in_burst = lambda t: (40.0 <= t) & (t < 60.0)   # noqa: E731
        assert in_burst(b).mean() > 2.0 * in_burst(q).mean()

    def test_zipf_keys_have_head_mass(self):
        replay = replay_workload(ReplayConfig(
            num_requests=50000, duration_s=60.0, snapshot_pool=1000,
            zipf_exponent=1.1, seed=2))
        _, counts = np.unique(replay.key, return_counts=True)
        top = np.sort(counts)[-10:].sum()
        assert top / len(replay) > 0.10   # top-1% of keys > 10% of traffic

    def test_from_requests_roundtrip(self):
        reqs = [FleetRequest(request_id=i, key=i % 3, lane="bulk",
                             cell="east", arrival_s=float(i), windows=2)
                for i in range(5)]
        replay = Replay.from_requests(reqs, lanes=("interactive", "bulk"),
                                      cells=("east",))
        assert len(replay) == 5
        got = replay.request(3)
        assert got.key == 0 and got.lane == "bulk" and got.windows == 2

    def test_validates_columns(self):
        with pytest.raises(ValueError):
            Replay(arrival_s=np.array([1.0, 0.5]),
                   key=np.zeros(2, dtype=np.int64),
                   lane=np.zeros(2), cell=np.zeros(2),
                   windows=np.full(2, 4),
                   lanes=("interactive",), cells=("c",))


def drill(requests=20000, duration=120.0, plan=None, sharded=True,
          cells=("east", "west"), bursts=((40.0, 20.0, 3.0),),
          autoscale=True, spillover=True, seed=7):
    replay = replay_workload(ReplayConfig(
        num_requests=requests, duration_s=duration, cells=cells,
        bursts=bursts, seed=seed))
    cfg = FleetConfig(
        cells=cells, initial_replicas=2, sharded=sharded,
        spillover=spillover, cache_budget_bytes=2 << 20,
        autoscaler=(AutoscalerConfig(max_replicas=8)
                    if autoscale else None))
    server = FleetServer(cfg, plan=plan)
    result = server.run(replay)
    return server, result, summarize_fleet(result, server, replay)


class TestFleetServer:
    def test_every_request_reaches_a_terminal_state(self):
        _, result, report = drill(requests=5000, duration=60.0, bursts=())
        assert int((result.status == 0).sum()) == 0
        assert report.offered == 5000
        assert report.served + report.shed + report.failed == 5000
        assert report.lost_admitted == 0

    def test_sharded_routing_is_key_stable(self):
        server, result, _ = drill(requests=5000, duration=60.0, bursts=(),
                                  autoscale=False)
        # With no scale events, a key served twice in one cell is served
        # by the same replica both times (the cache-affinity contract).
        replay = replay_workload(ReplayConfig(
            num_requests=5000, duration_s=60.0, cells=("east", "west"),
            seed=7))
        served = result.status == 1
        local = served & ~result.spilled
        for cell_idx in (0, 1):
            mask = local & (replay.cell == cell_idx) \
                & (result.served_cell == cell_idx)
            owners = {}
            for key, rep in zip(replay.key[mask], result.replica[mask]):
                assert owners.setdefault(int(key), int(rep)) == int(rep)

    def test_unsharded_fragments_the_cache(self):
        _, _, sharded = drill(requests=20000, seed=5)
        _, _, flat = drill(requests=20000, seed=5, sharded=False)
        assert sharded.hit_rate > flat.hit_rate

    def test_spillover_absorbs_homeless_requests(self):
        # Kill every replica in east mid-run: its traffic must flow to
        # west (spillover), not be lost or failed.
        plan = FaultPlan.parse("rank_fail@30:rank=0;rank_fail@30:rank=1")
        _, result, report = drill(requests=5000, duration=60.0, bursts=(),
                                  autoscale=False, plan=plan)
        assert report.failed == 0
        assert report.lost_admitted == 0
        assert report.cells["east"]["replicas"] == 0
        assert report.spilled > 0

    def test_no_spillover_sheds_instead(self):
        plan = FaultPlan.parse("rank_fail@30:rank=0;rank_fail@30:rank=1")
        _, _, report = drill(requests=5000, duration=60.0, bursts=(),
                             autoscale=False, spillover=False, plan=plan)
        # New arrivals to the dead cell are refused, not rerouted.  The
        # only cross-cell moves allowed are the handful of requests
        # already admitted at kill time (never dropped, even unsharded).
        assert report.shed > 0
        assert report.spilled < 10
        assert report.spilled < report.shed
        assert report.lost_admitted == 0

    def test_total_fleet_loss_fails_loudly(self):
        plan = FaultPlan.parse(";".join(
            f"rank_fail@30:rank={r}" for r in range(4)))
        _, result, report = drill(requests=5000, duration=60.0, bursts=(),
                                  autoscale=False, plan=plan)
        assert report.failed > 0
        assert report.lost_admitted == 0          # failed, never silent
        assert int((result.status == 0).sum()) == 0

    def test_run_is_deterministic(self):
        _, a, _ = drill(requests=8000)
        _, b, _ = drill(requests=8000)
        assert np.array_equal(a.status, b.status)
        assert np.array_equal(a.completed_s, b.completed_s, equal_nan=True)
        assert np.array_equal(a.replica, b.replica)

    def test_replay_vocabulary_must_match(self):
        replay = replay_workload(ReplayConfig(
            num_requests=10, duration_s=1.0, cells=("only",)))
        server = FleetServer(FleetConfig(cells=("east", "west")))
        with pytest.raises(ValueError):
            server.run(replay)


class TestScaleEvents:
    def test_e2e_burst_scaleout_and_kill(self):
        """The acceptance drill: diurnal+burst replay, scale-out, kill.

        Asserts the ISSUE's acceptance criteria: every scale-out remaps
        <= 1.5/N of sampled cache keys, the warm-tile hit rate recovers
        to >= 90% of its pre-scale level within the drill, and a
        mid-burst replica kill loses zero admitted requests.
        """
        plan = FaultPlan.parse("rank_fail@50:rank=0")
        server, _, report = drill(plan=plan)
        grows = [e for e in report.scale_events if e.kind == "grow"]
        kills = [e for e in report.scale_events if e.kind == "kill"]
        assert grows, "burst never triggered a scale-out"
        assert len(kills) == 1
        for event in grows:
            n = event.replicas_after
            assert event.remap_fraction <= 1.5 / n, (
                f"grow at t={event.t} remapped {event.remap_fraction:.3f}"
                f" with {n} replicas (bound {1.5 / n:.3f})")
        # Warm-tile survival: hit rate back to >= 90% of pre-scale
        # (recovery fields are filled by summarize_fleet's trace scan).
        recovered = [e for e in grows if e.recovered_s is not None]
        assert recovered, "hit rate never recovered after scale-out"
        for event in recovered:
            assert event.recovered_s > event.t
            assert event.recovery_hit_rate >= 0.9 * event.pre_hit_rate
        # The kill invariant: zero admitted requests lost.
        assert report.lost_admitted == 0
        assert report.failed == 0

    def test_kill_requeues_inflight_to_survivors(self):
        plan = FaultPlan.parse("rank_fail@45:rank=0")
        server, result, report = drill(plan=plan)
        assert report.lost_admitted == 0
        killed = [e for e in report.scale_events if e.kind == "kill"]
        assert killed and killed[0].replica == 0
        # Nothing served by the dead replica after its death.
        served = result.status == 1
        death_t = killed[0].t
        after = served & (result.completed_s > death_t)
        assert not np.any(result.replica[after] == 0)

    def test_shrink_retires_youngest_first(self):
        server, _, report = drill()
        shrinks = [e for e in report.scale_events if e.kind == "shrink"]
        grows = [e for e in report.scale_events if e.kind == "grow"]
        if not (shrinks and grows):
            pytest.skip("this seed produced no shrink after a grow")
        # A shrink following a grow retires a grown (young) replica, not
        # one of the initial ones (ids 0..3 here).
        late = [s for s in shrinks if any(g.t < s.t and g.cell == s.cell
                                          for g in grows)]
        assert any(s.replica > 3 for s in late)

    def test_warmup_ramp_limits_new_replica_share(self):
        # While a replica is ramping, it serves only part of its shard;
        # after warm-up it owns all of it.  Compare the shares.
        plan = None
        server, result, report = drill(plan=plan)
        grows = [e for e in report.scale_events if e.kind == "grow"]
        assert grows
        # The ramp mechanic is unit-tested via ramp_fraction directly.
        from repro.serve.fleet.fleet import FleetReplica

        rep = FleetReplica(9, "east", 2, 1 << 20, added_s=10.0,
                           warmup_s=2.0)
        assert rep.ramp_fraction(10.0) == 0.0
        assert rep.ramp_fraction(11.0) == pytest.approx(0.5)
        assert rep.ramp_fraction(12.0) == 1.0
        assert rep.ramp_fraction(99.0) == 1.0


class TestFleetTelemetry:
    def test_health_alerts_fire_and_resolve(self):
        tel = Telemetry(enabled=True)
        with activate(tel):
            plan = FaultPlan.parse("rank_fail@50:rank=0")
            drill(plan=plan)
        shrunk = [a for a in tel.health.alerts
                  if a.rule == "fleet_cell_shrunk"]
        assert shrunk, "replica loss never raised fleet_cell_shrunk"
        assert any(a.state == "resolved" for a in shrunk)

    def test_fleet_metrics_published_per_cell(self):
        tel = Telemetry(enabled=True)
        with activate(tel):
            drill(requests=5000, duration=60.0, bursts=())
        counters = tel.metrics.snapshot()["counters"]
        assert counters.get("fleet.arrivals{cell=east}", 0) > 0
        assert counters.get("fleet.served{cell=west}", 0) > 0

    def test_runs_without_an_active_session(self):
        # No activated Telemetry: the fleet still autoscales off its own
        # private session and leaves the global state untouched.
        _, _, report = drill(requests=5000, duration=60.0)
        assert report.served > 0
