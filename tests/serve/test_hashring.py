"""HashRing: stability under churn, vnode balance, process determinism."""
import subprocess
import sys

import pytest

from repro.serve.fleet import HashRing, remap_fraction

KEYS = list(range(10_000))


class TestMembership:
    def test_empty_ring_assigns_nothing(self):
        ring = HashRing()
        assert len(ring) == 0
        assert ring.assign(42) is None
        assert ring.ownership() == {}

    def test_add_remove_roundtrip(self):
        ring = HashRing(nodes=(0, 1, 2))
        assert ring.nodes == [0, 1, 2]
        assert 1 in ring
        ring.remove(1)
        assert 1 not in ring
        assert ring.nodes == [0, 2]
        ring.add(1)
        assert ring.nodes == [0, 1, 2]

    def test_add_is_idempotent(self):
        ring = HashRing(nodes=(0,), vnodes=8)
        before = ring.assignment(KEYS[:100])
        ring.add(0)
        assert ring.assignment(KEYS[:100]) == before

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestStableAssignmentUnderChurn:
    def test_adding_one_replica_remaps_at_most_bound(self):
        # The consistent-hashing contract: going N -> N+1 moves only the
        # slice the new node takes over, ~1/(N+1) in expectation and
        # always <= 1.5/(N+1) with enough vnodes.
        for n in (2, 4, 8):
            ring = HashRing(nodes=range(n), vnodes=64)
            before = ring.assignment(KEYS)
            ring.add(n)
            after = ring.assignment(KEYS)
            moved = remap_fraction(before, after)
            assert moved <= 1.5 / (n + 1), (
                f"{n}->{n + 1} replicas moved {moved:.3f} of keys")
            # Every moved key landed on the new node, nowhere else.
            for k in KEYS:
                if before[k] != after[k]:
                    assert after[k] == n

    def test_removing_one_replica_remaps_only_its_keys(self):
        ring = HashRing(nodes=range(5), vnodes=64)
        before = ring.assignment(KEYS)
        ring.remove(2)
        after = ring.assignment(KEYS)
        for k in KEYS:
            if before[k] == 2:
                assert after[k] != 2
            else:
                # Survivors keep every key they already owned.
                assert after[k] == before[k]
        assert remap_fraction(before, after) <= 1.5 / 5

    def test_exclusion_is_next_owner_fallback(self):
        ring = HashRing(nodes=range(4), vnodes=32)
        for key in KEYS[:500]:
            owner = ring.assign(key)
            fallback = ring.assign(key, exclude=(owner,))
            assert fallback is not None and fallback != owner
            # Excluding everything yields no owner.
            assert ring.assign(key, exclude=tuple(range(4))) is None
            # The fallback matches what removal would produce.
        ring2 = HashRing(nodes=range(4), vnodes=32)
        key = 123
        owner = ring2.assign(key)
        fallback = ring2.assign(key, exclude=(owner,))
        ring2.remove(owner)
        assert ring2.assign(key) == fallback


class TestVirtualNodeBalance:
    def test_ownership_sums_to_one(self):
        ring = HashRing(nodes=range(6), vnodes=64)
        shares = ring.ownership()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_more_vnodes_tighten_balance(self):
        def spread(vnodes):
            ring = HashRing(nodes=range(8), vnodes=vnodes)
            shares = ring.ownership().values()
            return max(shares) / (1.0 / 8)

        assert spread(256) < spread(4)

    def test_balanced_within_factor_two_at_64_vnodes(self):
        ring = HashRing(nodes=range(8), vnodes=64)
        for node, share in ring.ownership().items():
            assert 0.5 / 8 < share < 2.0 / 8, (
                f"node {node} owns {share:.3f} of the space")

    def test_key_fraction_is_roughly_uniform(self):
        ring = HashRing(nodes=(0,))
        fracs = [ring.key_fraction(k) for k in KEYS]
        assert all(0.0 <= f < 1.0 for f in fracs)
        assert 0.45 < sum(fracs) / len(fracs) < 0.55


class TestDeterminism:
    def test_same_inputs_same_ring(self):
        a = HashRing(nodes=range(5), vnodes=32, salt="cell0")
        b = HashRing(nodes=range(5), vnodes=32, salt="cell0")
        assert a.assignment(KEYS) == b.assignment(KEYS)

    def test_salt_shards_independently(self):
        a = HashRing(nodes=range(5), vnodes=32, salt="east")
        b = HashRing(nodes=range(5), vnodes=32, salt="west")
        same = sum(1 for k in KEYS if a.assign(k) == b.assign(k))
        # ~1/5 agreement by chance; identical rings would be 100%.
        assert same / len(KEYS) < 0.5

    def test_insertion_order_is_irrelevant(self):
        a = HashRing(nodes=(0, 1, 2, 3), vnodes=32)
        b = HashRing(nodes=(3, 1, 0, 2), vnodes=32)
        assert a.assignment(KEYS) == b.assignment(KEYS)

    def test_assignment_stable_across_processes(self):
        # The point of SHA-1 over builtin hash(): a fresh interpreter
        # (fresh PYTHONHASHSEED) must shard identically, or the server,
        # its tests, and a replayed run disagree about key ownership.
        script = (
            "from repro.serve.fleet import HashRing\n"
            "ring = HashRing(nodes=range(4), vnodes=16, salt='cell0')\n"
            "print([ring.assign(k) for k in range(200)])\n")
        outs = {
            subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True, timeout=60).stdout
            for _ in range(2)}
        assert len(outs) == 1
        here = HashRing(nodes=range(4), vnodes=16, salt="cell0")
        assert outs.pop().strip() == str(
            [here.assign(k) for k in range(200)])
