"""Admission control, priority lanes, and the micro-batcher triggers."""
import numpy as np
import pytest

from repro.serve import (AdmissionConfig, AdmissionController, BatchPolicy,
                         InferenceRequest, MicroBatcher, RequestQueue)


def request(rid, lane="interactive", arrival=0.0):
    image = np.zeros((1, 4, 4), np.float32)
    return InferenceRequest(rid, image, lane=lane, arrival_s=arrival)


def make_queue(max_depth=4, slo_s=(), windows_per_request=1):
    config = AdmissionConfig(max_depth=max_depth, slo_s=slo_s)
    controller = AdmissionController(config, num_replicas=1)
    return RequestQueue(config, controller,
                        windows_per_request=windows_per_request), controller


class TestAdmissionConfig:
    def test_validates(self):
        with pytest.raises(ValueError):
            AdmissionConfig(lanes=())
        with pytest.raises(ValueError):
            AdmissionConfig(lanes=("a", "a"))
        with pytest.raises(ValueError):
            AdmissionConfig(max_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_s=(("nope", 0.1),))
        with pytest.raises(ValueError):
            AdmissionConfig(slo_s=(("interactive", 0.0),))

    def test_slo_for(self):
        cfg = AdmissionConfig(slo_s=(("interactive", 0.05),))
        assert cfg.slo_for("interactive") == 0.05
        assert cfg.slo_for("bulk") is None


class TestBackpressure:
    def test_depth_cap_sheds_queue_full(self):
        queue, _ = make_queue(max_depth=2)
        assert queue.offer(request(0), 0.0) == (True, None)
        assert queue.offer(request(1), 0.0) == (True, None)
        admitted, reason = queue.offer(request(2), 0.0)
        assert not admitted and reason == "queue_full"
        assert queue.depth() == 2

    def test_caps_are_per_lane(self):
        queue, _ = make_queue(max_depth=1)
        assert queue.offer(request(0, "interactive"), 0.0)[0]
        assert queue.offer(request(1, "bulk"), 0.0)[0]
        assert not queue.offer(request(2, "interactive"), 0.0)[0]

    def test_unknown_lane_rejected(self):
        queue, _ = make_queue()
        with pytest.raises(ValueError, match="unknown lane"):
            queue.offer(request(0, lane="vip"), 0.0)


class TestSloShedding:
    def test_sheds_when_estimated_wait_exceeds_slo(self):
        queue, controller = make_queue(
            max_depth=64, slo_s=(("interactive", 0.01),),
            windows_per_request=10)
        controller.observe_service(0.005)       # 5 ms per window
        assert queue.offer(request(0), 0.0)[0]  # empty queue: no wait
        # 10 queued windows * 5 ms = 50 ms estimated wait > 10 ms SLO.
        admitted, reason = queue.offer(request(1), 0.0)
        assert not admitted and reason == "slo"

    def test_no_shedding_before_first_observation(self):
        queue, _ = make_queue(slo_s=(("interactive", 1e-9),),
                              windows_per_request=100)
        for rid in range(3):
            assert queue.offer(request(rid), 0.0)[0]

    def test_lane_without_slo_only_depth_gated(self):
        queue, controller = make_queue(
            max_depth=64, slo_s=(("interactive", 0.01),),
            windows_per_request=10)
        controller.observe_service(0.005)
        queue.offer(request(0), 0.0)
        assert queue.offer(request(1, lane="bulk"), 0.0)[0]

    def test_ewma_converges(self):
        controller = AdmissionController(AdmissionConfig(), num_replicas=2)
        for _ in range(100):
            controller.observe_service(0.004)
        assert controller.ewma_window_s == pytest.approx(0.004, rel=1e-3)
        # Two replicas halve the estimated wait.
        assert controller.estimated_wait_s(10) == pytest.approx(0.02,
                                                                rel=1e-3)


class TestPriorityOrdering:
    def test_pop_drains_interactive_before_bulk(self):
        queue, _ = make_queue(max_depth=8)
        queue.offer(request(0, "bulk"), 0.0)
        queue.offer(request(1, "interactive"), 0.0)
        queue.offer(request(2, "bulk"), 0.0)
        queue.offer(request(3, "interactive"), 0.0)
        batch = queue.pop(3)
        assert [r.request_id for r in batch] == [1, 3, 0]

    def test_fifo_within_lane(self):
        queue, _ = make_queue(max_depth=8)
        for rid in range(4):
            queue.offer(request(rid), float(rid))
        assert [r.request_id for r in queue.pop(10)] == [0, 1, 2, 3]

    def test_drain_empties(self):
        queue, _ = make_queue(max_depth=8)
        for rid in range(3):
            queue.offer(request(rid), 0.0)
        assert len(queue.drain()) == 3
        assert queue.depth() == 0


class TestMicroBatcher:
    def test_not_ready_when_empty(self):
        queue, _ = make_queue()
        batcher = MicroBatcher(BatchPolicy(4, 0.002), queue)
        assert not batcher.ready(0.0)
        assert batcher.next_deadline() is None

    def test_size_trigger(self):
        queue, _ = make_queue(max_depth=8)
        batcher = MicroBatcher(BatchPolicy(max_batch_size=2,
                                           max_wait_s=10.0), queue)
        queue.offer(request(0), 0.0)
        assert not batcher.ready(0.0)           # under size, under age
        queue.offer(request(1), 0.0)
        assert batcher.ready(0.0)               # size trigger, age ignored
        assert len(batcher.take(0.0)) == 2

    def test_age_trigger(self):
        queue, _ = make_queue(max_depth=8)
        batcher = MicroBatcher(BatchPolicy(max_batch_size=8,
                                           max_wait_s=0.002), queue)
        queue.offer(request(0), 0.0)
        assert batcher.next_deadline() == pytest.approx(0.002)
        assert not batcher.ready(0.0015)
        assert batcher.ready(0.002)
        assert len(batcher.take(0.002)) == 1

    def test_take_caps_at_max_batch_size(self):
        queue, _ = make_queue(max_depth=8)
        batcher = MicroBatcher(BatchPolicy(max_batch_size=3,
                                           max_wait_s=0.0), queue)
        for rid in range(5):
            queue.offer(request(rid), 0.0)
        assert len(batcher.take(0.0)) == 3
        assert queue.depth() == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-1.0)
