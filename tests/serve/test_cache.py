"""Tile cache: content keying, LRU eviction, byte budget, stats."""
import numpy as np
import pytest

from repro.serve import TileCache


def tile(seed, shape=(3, 8, 8)):
    return np.random.default_rng(seed).standard_normal(shape).astype(
        np.float32)


class TestKeying:
    def test_same_content_same_key(self):
        cache = TileCache(1 << 20)
        a = tile(0)
        assert cache.key(a) == cache.key(a.copy())

    def test_different_content_different_key(self):
        cache = TileCache(1 << 20)
        assert cache.key(tile(0)) != cache.key(tile(1))

    def test_key_covers_shape_and_dtype(self):
        cache = TileCache(1 << 20)
        a = tile(0)
        assert cache.key(a) != cache.key(a.reshape(3, 4, 16))
        assert cache.key(a) != cache.key(a.astype(np.float64))

    def test_model_key_invalidates(self):
        a = tile(0)
        assert (TileCache(1, model_key="v0").key(a)
                != TileCache(1, model_key="v1").key(a))

    def test_noncontiguous_tile_keys_like_contiguous(self):
        cache = TileCache(1 << 20)
        big = tile(0, (3, 16, 16))
        view = big[:, 2:10, 4:12]
        assert not view.flags["C_CONTIGUOUS"]
        assert cache.key(view) == cache.key(np.ascontiguousarray(view))


class TestLRU:
    def test_hit_after_put(self):
        cache = TileCache(1 << 20)
        t = tile(0)
        k = cache.key(t)
        assert cache.get(k) is None
        value = np.ones((2, 8, 8), np.float32)
        cache.put(k, value)
        np.testing.assert_array_equal(cache.get(k), value)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_evicts_least_recently_used(self):
        block = np.ones((1, 8, 8), np.float32)      # 256 bytes
        cache = TileCache(3 * block.nbytes)
        for name in ("a", "b", "c"):
            cache.put(name, block.copy())
        assert cache.get("a") is not None           # refresh "a"
        cache.put("d", block.copy())                # evicts "b", not "a"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 3

    def test_stored_bytes_tracks_budget(self):
        block = np.ones((1, 8, 8), np.float32)
        cache = TileCache(2 * block.nbytes)
        for name in ("a", "b", "c", "d"):
            cache.put(name, block.copy())
        assert cache.stats.stored_bytes <= cache.budget_bytes
        assert len(cache) == 2

    def test_oversized_entry_not_stored(self):
        cache = TileCache(16)
        cache.put("big", np.ones((4, 8, 8), np.float32))
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_replace_same_key_no_double_count(self):
        block = np.ones((1, 8, 8), np.float32)
        cache = TileCache(10 * block.nbytes)
        cache.put("a", block.copy())
        cache.put("a", block.copy())
        assert cache.stats.stored_bytes == block.nbytes
        assert len(cache) == 1

    def test_clear(self):
        cache = TileCache(1 << 20)
        cache.put("a", np.ones((1, 4, 4), np.float32))
        cache.clear()
        assert len(cache) == 0 and cache.stats.stored_bytes == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            TileCache(-1)


class TestStats:
    def test_hit_rate(self):
        cache = TileCache(1 << 20)
        cache.put("a", np.ones((1, 4, 4), np.float32))
        cache.get("a")
        cache.get("missing")
        doc = cache.stats.as_dict()
        assert doc["hit_rate"] == 0.5
        assert doc["hits"] == 1 and doc["misses"] == 1

    def test_empty_hit_rate_zero(self):
        assert TileCache(1).stats.hit_rate == 0.0
