"""End-to-end serving: virtual-time event loop, faults, SLOs, telemetry."""
import numpy as np
import pytest

from repro.core.inference import predict_tiled
from repro.framework import Tensor
from repro.framework.module import Module
from repro.resilience import FaultPlan
from repro.serve import (FixedServiceTime, InferenceRequest, InferenceServer,
                         ServeConfig, WorkloadConfig, summarize,
                         synth_workload)
from repro.telemetry import Telemetry, activate


class MeanModel(Module):
    """Elementwise model: logits (v, -v) — bitwise batch-invariant."""

    def forward(self, x):
        data = x.data.astype(np.float32)
        return Tensor(np.stack([data[:, 0], -data[:, 0]], axis=1))


CONFIG = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4), num_replicas=2,
                     max_batch_size=4, max_wait_s=0.002, forward_batch=16)
SERVICE = FixedServiceTime(per_batch_s=0.0, per_window_s=0.0005)


def burst(n, t=0.0, hw=(16, 16), lane="interactive", seed=0):
    rng = np.random.default_rng(seed)
    return [InferenceRequest(i, rng.standard_normal(
        (2, *hw)).astype(np.float32), lane=lane, arrival_s=t)
        for i in range(n)]


def run(config=CONFIG, requests=None, plan=None, service=SERVICE,
        workload=None):
    server = InferenceServer(MeanModel, config, plan=plan,
                             service_model=service)
    if requests is None:
        requests = synth_workload(workload or WorkloadConfig(
            num_requests=24, rate_rps=2000.0, image_hw=(16, 16),
            channels=2, seed=5))
    responses = server.serve(requests)
    return server, requests, responses


class TestHappyPath:
    def test_every_request_gets_one_response_in_id_order(self):
        _, requests, responses = run()
        assert [r.request_id for r in responses] == sorted(
            r.request_id for r in requests)
        assert all(r.status == "served" for r in responses)

    def test_served_maps_match_offline_tiled_inference(self):
        server, requests, responses = run()
        model = MeanModel()
        for req, resp in list(zip(requests, responses))[:6]:
            expected = predict_tiled(model, req.image, (8, 8), (4, 4))
            np.testing.assert_array_equal(resp.class_map, expected)
        assert server.cache.stats.lookups > 0

    def test_micro_batching_coalesces_bursts(self):
        _, _, responses = run(requests=burst(8))
        assert {r.batch_size for r in responses} == {4}
        assert all(r.latency_s > 0 for r in responses)

    def test_interactive_lane_served_ahead_of_bulk(self):
        config = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4),
                             num_replicas=1, max_batch_size=4,
                             max_wait_s=0.002, forward_batch=16)
        reqs = burst(4, lane="bulk", seed=1) + [
            InferenceRequest(10 + i, r.image, lane="interactive",
                             arrival_s=0.0)
            for i, r in enumerate(burst(4, seed=2))]
        server, _, responses = run(config=config, requests=reqs)
        report = summarize(responses, server)
        assert report.lanes["interactive"].p50_ms < report.lanes[
            "bulk"].p50_ms

    def test_deterministic_given_fixed_service_model(self):
        _, _, first = run()
        _, _, second = run()
        assert [(r.status, r.latency_s, r.replica_id) for r in first] == \
               [(r.status, r.latency_s, r.replica_id) for r in second]


class TestFaultsEndToEnd:
    def test_replica_kill_mid_burst_loses_no_admitted_request(self):
        plan = FaultPlan.parse("rank_fail@1:rank=1", seed=0)
        server, requests, responses = run(requests=burst(16), plan=plan)
        report = summarize(responses, server)
        assert report.replica_failures == 1
        assert report.alive_replicas == [0]
        assert report.served == len(requests)
        assert report.lost_admitted == 0
        assert report.dispatch_retries >= 1
        # Survivor's answers are still correct.
        model = MeanModel()
        victim = responses[-1]
        np.testing.assert_array_equal(
            victim.class_map,
            predict_tiled(model, requests[victim.request_id].image,
                          (8, 8), (4, 4)))

    def test_total_pool_loss_fails_loudly_not_silently(self):
        config = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4),
                             num_replicas=1, max_batch_size=4,
                             max_wait_s=0.002, forward_batch=16)
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        _, requests, responses = run(config=config, requests=burst(8),
                                     plan=plan)
        assert len(responses) == len(requests)
        assert all(r.status == "failed" for r in responses)
        assert all(r.error for r in responses)


class TestOverload:
    def test_low_load_sheds_nothing(self):
        workload = WorkloadConfig(num_requests=16, rate_rps=50.0,
                                  image_hw=(16, 16), channels=2, seed=1)
        server, _, responses = run(workload=workload)
        report = summarize(responses, server)
        assert report.shed == 0 and report.lost_admitted == 0

    def test_overload_sheds_queue_full_and_loses_nothing_admitted(self):
        config = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4),
                             num_replicas=1, max_batch_size=2,
                             max_wait_s=0.001, forward_batch=16,
                             max_depth=3)
        service = FixedServiceTime(per_batch_s=0.0, per_window_s=0.01)
        _, requests, responses = run(
            config=config, requests=burst(32), service=service)
        server = None
        shed = [r for r in responses if r.status == "shed"]
        served = [r for r in responses if r.status == "served"]
        assert shed and served
        assert all(r.shed_reason == "queue_full" for r in shed)
        assert len(shed) + len(served) == len(requests)

    def test_slo_shedding_kicks_in_once_estimator_warm(self):
        config = ServeConfig(window_hw=(8, 8), stride_hw=(4, 4),
                             num_replicas=1, max_batch_size=2,
                             max_wait_s=0.001, forward_batch=16,
                             max_depth=64,
                             slo_s=(("interactive", 0.005),))
        service = FixedServiceTime(per_batch_s=0.0, per_window_s=0.01)
        # Two waves: the first warms the EWMA, the second hits the SLO gate.
        reqs = burst(4, t=0.0) + [
            InferenceRequest(100 + i, r.image, lane="interactive",
                             arrival_s=0.5)
            for i, r in enumerate(burst(8, seed=3))]
        server, _, responses = run(config=config, requests=reqs,
                                   service=service)
        report = summarize(responses, server)
        assert report.shed_by_reason.get("slo", 0) > 0
        assert report.lost_admitted == 0


class TestTelemetryIntegration:
    def test_counters_histograms_and_spans_land_on_active_session(self):
        tel = Telemetry()
        plan = FaultPlan.parse("rank_fail@1:rank=1", seed=0)
        with activate(tel):
            server, _, responses = run(requests=burst(12), plan=plan)
        counters = tel.metrics.snapshot()["counters"]

        def total(name):
            return sum(v for k, v in counters.items()
                       if k == name or k.startswith(name + "{"))

        assert total("serve.admitted") == 12
        assert total("serve.served") == 12
        assert total("serve.batches") == server.batcher.batches_formed
        assert total("serve.replica_failures") == 1
        assert total("serve.cache.misses") > 0
        names = {s.name for s in tel.tracer.spans()}
        assert {"serve_batch", "request", "replica_failed"} <= names
        # Request spans carry virtual-time durations matching the response.
        req_spans = [s for s in tel.tracer.spans() if s.name == "request"]
        assert len(req_spans) == 12

    def test_runs_clean_without_active_session(self):
        _, _, responses = run(requests=burst(4))
        assert all(r.status == "served" for r in responses)


class TestLoadGenerator:
    def test_deterministic_for_same_seed(self):
        cfg = WorkloadConfig(num_requests=12, seed=9)
        a, b = synth_workload(cfg), synth_workload(cfg)
        assert [(r.arrival_s, r.lane) for r in a] == \
               [(r.arrival_s, r.lane) for r in b]
        np.testing.assert_array_equal(a[5].image, b[5].image)

    def test_seed_changes_stream(self):
        a = synth_workload(WorkloadConfig(num_requests=12, seed=0))
        b = synth_workload(WorkloadConfig(num_requests=12, seed=1))
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_repeat_fraction_reuses_snapshots(self):
        reqs = synth_workload(WorkloadConfig(num_requests=64,
                                             repeat_fraction=0.5, seed=2))
        unique = {r.image.tobytes() for r in reqs}
        assert len(unique) < len(reqs)
        none_shared = synth_workload(WorkloadConfig(
            num_requests=16, repeat_fraction=0.0, seed=2))
        assert len({r.image.tobytes() for r in none_shared}) == 16

    def test_arrivals_strictly_increase(self):
        reqs = synth_workload(WorkloadConfig(num_requests=32, seed=4))
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times) and times[0] > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=0)
        with pytest.raises(ValueError):
            WorkloadConfig(rate_rps=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(lane_weights=(1.0,))
        with pytest.raises(ValueError):
            WorkloadConfig(repeat_fraction=1.5)


class TestReport:
    def test_summarize_accounting(self):
        server, requests, responses = run(requests=burst(8))
        report = summarize(responses, server)
        assert report.offered == 8
        assert report.served == 8
        assert report.admitted == 8
        assert report.throughput_rps > 0
        assert report.mean_batch_size == 4.0
        doc = report.as_dict()
        assert doc["lost_admitted"] == 0
        assert 0.0 <= doc["cache_hit_rate"] <= 1.0
        assert doc["lanes"]["interactive"]["served"] == 8

    def test_request_image_must_be_chw(self):
        with pytest.raises(ValueError):
            InferenceRequest(0, np.zeros((4, 4), np.float32))
