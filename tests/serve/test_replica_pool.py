"""Replica pool: routing, elastic degradation, retry-on-survivor."""
import numpy as np
import pytest

from repro.errors import ReproError
from repro.framework import Tensor
from repro.framework.module import Module
from repro.resilience import (FaultInjector, FaultPlan, RetriesExhausted,
                              RetryPolicy)
from repro.serve import InferenceRequest, ReplicaPool, TileCache


class MeanModel(Module):
    """Logit 0 = channel-0 value (elementwise, so batch-invariant)."""

    def forward(self, x):
        data = x.data.astype(np.float32)
        return Tensor(np.stack([data[:, 0], -data[:, 0]], axis=1))


class BrokenModel(Module):
    def forward(self, x):
        raise ReproError("replica wedged")


def requests(n, hw=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    return [InferenceRequest(i, rng.standard_normal(
        (2, *hw)).astype(np.float32), arrival_s=0.0) for i in range(n)]


def make_pool(num_replicas=2, factory=MeanModel, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3,
                                           backoff_base_s=0.001,
                                           max_backoff_s=0.01))
    return ReplicaPool(factory, num_replicas, window_hw=(4, 4),
                       stride_hw=(2, 2), forward_batch=8, **kwargs)


class TestRouting:
    def test_least_loaded_idle_replica_wins(self):
        pool = make_pool(3)
        pool.replicas[0].busy_until = 5.0
        pool.replicas[1].busy_until = 1.0
        pool.replicas[2].busy_until = 3.0
        assert pool.free_replica(2.0).replica_id == 1   # only idle one
        assert pool.free_replica(4.0).replica_id == 1   # least-loaded idle
        assert pool.free_replica(0.5) is None

    def test_none_when_all_busy(self):
        pool = make_pool(2)
        for r in pool.replicas:
            r.busy_until = 10.0
        assert pool.free_replica(0.0) is None
        assert pool.next_free_s() == 10.0

    def test_dead_replicas_leave_routing(self):
        pool = make_pool(2)
        pool._mark_dead(pool.replicas[0], reason="test")
        assert pool.alive_ids == [1]
        assert pool.dead_ids == [0]
        assert pool.free_replica(0.0).replica_id == 1


class TestExecute:
    def test_batch_produces_one_map_per_request(self):
        pool = make_pool(2)
        reqs = requests(3)
        result = pool.execute(reqs, now=0.0)
        assert len(result.class_maps) == 3
        assert result.class_maps[0].shape == (8, 8)
        assert result.windows == 3 * 9      # 3x3 positions per 8x8 image
        assert result.retries == 0

    def test_class_map_thresholds_channel0(self):
        pool = make_pool(1)
        reqs = requests(1)
        result = pool.execute(reqs, now=0.0)
        # MeanModel logits are (v, -v): argmax is 1 exactly where v < 0.
        expected = (reqs[0].image[0] < 0).astype(int)
        np.testing.assert_array_equal(result.class_maps[0], expected)

    def test_shared_cache_dedupes_repeat_windows(self):
        cache = TileCache(1 << 20)
        pool = make_pool(1, cache=cache)
        reqs = requests(1)
        pool.execute(reqs, now=0.0)
        misses_first = cache.stats.misses
        pool.execute(reqs, now=1.0)         # same content: all hits
        assert cache.stats.misses == misses_first
        assert cache.stats.hits >= 9


class TestFaultTolerance:
    def test_injected_failure_retries_on_survivor(self):
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        pool = make_pool(2, injector=FaultInjector(plan))
        result = pool.execute(requests(2), now=0.0)
        assert result.replica_id == 1       # survivor computed the answer
        assert result.retries == 1
        assert result.failures == [0]
        assert result.backoff_s > 0
        assert pool.dead_ids == [0]

    def test_replica_exception_marks_dead_and_retries(self):
        built = []

        def factory():
            model = BrokenModel() if not built else MeanModel()
            built.append(model)
            return model

        pool = make_pool(2, factory=factory)
        result = pool.execute(requests(1), now=0.0)
        assert result.replica_id == 1
        assert pool.dead_ids == [0]

    def test_all_dead_exhausts_retries(self):
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        pool = make_pool(1, injector=FaultInjector(plan))
        with pytest.raises(RetriesExhausted):
            pool.execute(requests(1), now=0.0)
        assert pool.alive_ids == []

    def test_busy_survivor_still_takes_retried_batch(self):
        plan = FaultPlan.parse("rank_fail@0:rank=0", seed=0)
        pool = make_pool(2, injector=FaultInjector(plan))
        pool.replicas[1].busy_until = 100.0     # busy but alive
        result = pool.execute(requests(1), now=0.0)
        assert result.replica_id == 1


class TestValidation:
    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            make_pool(0)
