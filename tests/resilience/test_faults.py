"""Fault plans, the runtime injector, and the retry machinery."""
import numpy as np
import pytest

from repro.errors import FaultInjected, ReadFault
from repro.hpc.events import EventQueue
from repro.resilience import (FAULT_KINDS, FaultInjector, FaultPlan,
                              FaultSpec, RetriesExhausted, RetryPolicy,
                              RetryState, with_retries)


class TestFaultSpec:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike")

    def test_rank_fail_needs_rank(self):
        with pytest.raises(ValueError, match="rank"):
            FaultSpec("rank_fail", step=3)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultSpec("read_fault", step=-1)
        with pytest.raises(ValueError):
            FaultSpec("read_fault", count=0)
        with pytest.raises(ValueError):
            FaultSpec("slow_read", factor=0.0)
        with pytest.raises(ValueError):
            FaultSpec("drop_msg", prob=1.5)


class TestFaultPlanParse:
    def test_parse_full_syntax(self):
        plan = FaultPlan.parse(
            "rank_fail@3:rank=1;read_fault@1;drop_msg@2:count=2,prob=0.5",
            seed=9)
        assert len(plan) == 3
        assert plan.seed == 9
        rf, rd, dm = plan.specs
        assert (rf.kind, rf.step, rf.rank) == ("rank_fail", 3, 1)
        assert (rd.kind, rd.step, rd.count) == ("read_fault", 1, 1)
        assert (dm.kind, dm.count, dm.prob) == ("drop_msg", 2, 0.5)

    def test_parse_roundtrips_through_describe(self):
        text = "rank_fail@3:rank=1;drop_msg@2:count=2,prob=0.5;read_fault@1"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()).describe() == plan.describe()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("read_fault@0:volume=11")
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.parse("read_fault@0:count")

    def test_empty_plan(self):
        plan = FaultPlan.parse("  ;  ")
        assert len(plan) == 0
        assert plan.describe() == ""

    def test_of_kind(self):
        plan = FaultPlan.parse("read_fault@0;read_fault@2;drop_msg@1")
        assert len(plan.of_kind("read_fault")) == 2
        assert len(plan.of_kind("straggler")) == 0


class TestInjector:
    def test_rank_failures_arm_at_step(self):
        plan = FaultPlan([FaultSpec("rank_fail", step=2, rank=1)])
        inj = FaultInjector(plan)
        assert inj.begin_step(0) == []
        assert inj.begin_step(2) == [1]
        assert inj.failed_ranks == frozenset({1})
        assert inj.counts["rank_fail"] == 1

    def test_read_fault_exhausts_after_count(self):
        plan = FaultPlan([FaultSpec("read_fault", step=0, count=2)])
        inj = FaultInjector(plan)
        inj.begin_step(0)
        for _ in range(2):
            with pytest.raises(ReadFault):
                inj.check_read("/data/a")
        assert inj.check_read("/data/a") == 1.0  # budget spent: retry succeeds

    def test_read_fault_path_filter(self):
        plan = FaultPlan([FaultSpec("read_fault", step=0, path="victim")])
        inj = FaultInjector(plan)
        inj.begin_step(0)
        assert inj.check_read("/data/innocent") == 1.0
        with pytest.raises(ReadFault) as info:
            inj.check_read("/data/victim-3")
        assert info.value.path == "/data/victim-3"

    def test_read_fault_is_fault_injected_and_oserror(self):
        plan = FaultPlan([FaultSpec("read_fault", step=0)])
        inj = FaultInjector(plan)
        inj.begin_step(0)
        with pytest.raises(FaultInjected):
            inj.check_read("x")
        inj2 = FaultInjector(plan)
        inj2.begin_step(0)
        with pytest.raises(OSError):
            inj2.check_read("x")

    def test_slow_read_returns_factor(self):
        plan = FaultPlan([FaultSpec("slow_read", step=0, factor=3.0)])
        inj = FaultInjector(plan)
        inj.begin_step(0)
        assert inj.check_read("a") == 3.0
        assert inj.check_read("a") == 1.0

    def test_straggler_perturbs_event_queue(self):
        plan = FaultPlan([FaultSpec("straggler", step=0, rank=1, factor=4.0)])
        inj = FaultInjector(plan)
        inj.begin_step(0)
        q = EventQueue(fault_injector=inj)
        fired = []
        q.schedule(1.0, lambda: fired.append("fast"), rank=0)
        q.schedule(1.0, lambda: fired.append("slow"), rank=1)
        q.run()
        assert fired == ["fast", "slow"]
        assert q.now == pytest.approx(4.0)
        assert inj.counts["straggler"] == 1

    def test_counts_and_total(self):
        plan = FaultPlan([FaultSpec("read_fault", step=0, count=2),
                          FaultSpec("slow_read", step=0)])
        inj = FaultInjector(plan)
        inj.begin_step(0)
        for _ in range(2):
            with pytest.raises(ReadFault):
                inj.check_read("a")
        inj.check_read("a")
        assert inj.counts["read_fault"] == 2
        assert inj.counts["slow_read"] == 1
        assert inj.total_injected == 3
        assert set(inj.counts) == set(FAULT_KINDS)

    def test_deterministic_replay(self):
        def run(seed):
            plan = FaultPlan([FaultSpec("drop_msg", step=0, count=4,
                                        prob=0.3)], seed=seed)
            inj = FaultInjector(plan)
            inj.begin_step(0)
            return [inj.message_action(0, 1, 0) for _ in range(30)]

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_schedule_exponential_and_capped(self):
        p = RetryPolicy(max_attempts=5, backoff_base_s=0.1,
                        backoff_factor=2.0, max_backoff_s=0.3, jitter=0.0)
        assert p.delays() == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_jitter_seeded(self):
        p = RetryPolicy(max_attempts=4, jitter=0.5, seed=3)
        assert p.delays() == p.delays()
        assert p.delays() != RetryPolicy(max_attempts=4, jitter=0.5,
                                         seed=4).delays()


class TestWithRetries:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        state = RetryState()
        out = with_retries(flaky, RetryPolicy(max_attempts=3), state=state)
        assert out == "ok"
        assert state.attempts == 3 and state.retries == 2
        assert len(state.errors) == 2

    def test_exhaustion_raises_with_cause(self):
        def broken():
            raise OSError("permanent")

        with pytest.raises(RetriesExhausted) as info:
            with_retries(broken, RetryPolicy(max_attempts=2))
        assert info.value.attempts == 2
        assert isinstance(info.value.last, OSError)
        assert isinstance(info.value.__cause__, OSError)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def typo():
            calls.append(1)
            raise TypeError("bug, not transient")

        with pytest.raises(TypeError):
            with_retries(typo, RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_sleep_pluggable_and_accounted(self):
        slept = []

        def flaky():
            if not slept:
                raise OSError("once")
            return 1

        state = RetryState()
        p = RetryPolicy(max_attempts=2, backoff_base_s=0.25, jitter=0.0)
        with_retries(flaky, p, sleep=slept.append, state=state)
        assert slept == pytest.approx([0.25])
        assert state.backoff_total_s == pytest.approx(0.25)

    def test_shared_state_accumulates_across_calls(self):
        state = RetryState()

        def once_bad():
            if state.retries < 1:
                raise OSError("x")
            return 1

        p = RetryPolicy(max_attempts=2)
        with_retries(once_bad, p, state=state)
        with_retries(lambda: 2, p, state=state)
        assert state.attempts == 3
        assert state.retries == 1
