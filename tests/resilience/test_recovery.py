"""End-to-end fault tolerance: elastic shrink, autoresume, acceptance run."""
import numpy as np
import pytest

from repro.climate import ClimateDataset, Grid, class_frequencies
from repro.core import DistributedTrainer, TrainConfig
from repro.core.networks import Tiramisu, TiramisuConfig
from repro.resilience import (FaultInjector, FaultPlan, FaultSpec,
                              RetryPolicy, mean_eval_loss,
                              run_resilient_training)

GRID = Grid(16, 24)


@pytest.fixture(scope="module")
def dataset():
    return ClimateDataset.synthesize(GRID, num_samples=16, seed=0, channels=4)


@pytest.fixture(scope="module")
def freqs(dataset):
    return class_frequencies(dataset.labels)


def factory(seed=0):
    def make():
        return Tiramisu(
            TiramisuConfig(in_channels=4, base_filters=8, growth=8,
                           down_layers=(2,), bottleneck_layers=2,
                           kernel=3, dropout=0.0),
            rng=np.random.default_rng(seed))
    return make


def provider_for(dataset):
    def provider(step, rank, world_size):
        idx = (step * world_size + rank) % len(dataset)
        return dataset.images[idx:idx + 1], dataset.labels[idx:idx + 1]
    return provider


def eval_batches_for(dataset, n=8):
    idx = (list(dataset.splits.validation) + list(dataset.splits.train))[:n]
    return [(dataset.images[i:i + 1], dataset.labels[i:i + 1]) for i in idx]


CONFIG = TrainConfig(lr=0.01, optimizer="larc")


class TestShrink:
    def test_shrink_drops_dead_and_keeps_consistency(self, dataset, freqs):
        dt = DistributedTrainer(factory(), 4, CONFIG, freqs)
        prov = provider_for(dataset)
        dt.train_step([prov(0, r, 4) for r in range(4)])
        info = dt.shrink([2], lr_scaling="none")
        assert info == {"old_size": 4, "new_size": 3,
                        "failed_ranks": [2], "lr_factor": 1.0}
        assert dt.world_size == 3 and len(dt.trainers) == 3
        assert dt.max_replica_divergence() == 0.0
        # The shrunk world still trains.
        result = dt.train_step([prov(1, r, 3) for r in range(3)])
        assert np.isfinite(result.mean_loss)
        assert dt.max_replica_divergence() == 0.0

    def test_shrink_rescales_lr(self, freqs):
        for scaling, expect in (("linear", 0.5), ("sqrt", np.sqrt(0.5)),
                                ("none", 1.0)):
            dt = DistributedTrainer(factory(), 4, CONFIG, freqs)
            lr0 = dt.trainers[0].optimizer.lr
            info = dt.shrink([0, 3], lr_scaling=scaling)
            assert info["lr_factor"] == pytest.approx(expect)
            for t in dt.trainers:
                assert t.optimizer.lr == pytest.approx(lr0 * expect)

    def test_shrink_validates(self, freqs):
        dt = DistributedTrainer(factory(), 2, CONFIG, freqs)
        with pytest.raises(ValueError, match="zero survivors"):
            dt.shrink([0, 1])
        with pytest.raises(ValueError, match="out of range"):
            dt.shrink([5])


class TestResilientRun:
    def test_fault_free_run_matches_plain_distributed(self, dataset, freqs):
        prov = provider_for(dataset)
        report = run_resilient_training(factory(), CONFIG, 2, prov, steps=3,
                                        class_frequencies=freqs)
        dt = DistributedTrainer(factory(), 2, CONFIG, freqs)
        plain = [dt.train_step([prov(s, r, 2) for r in range(2)]).mean_loss
                 for s in range(3)]
        np.testing.assert_allclose(report.losses, plain, rtol=1e-6)
        assert report.steps_completed == 3
        assert report.injected == {}

    def test_acceptance_faulty_run_recovers_within_tolerance(
            self, dataset, freqs):
        """ISSUE acceptance: 8 ranks, 1 rank failure + 2 read faults,
        the run completes via elastic recovery and the final model is
        within 5% of the fault-free baseline on a fixed eval set."""
        prov = provider_for(dataset)
        evals = eval_batches_for(dataset)

        baseline = run_resilient_training(factory(), CONFIG, 8, prov,
                                          steps=6, class_frequencies=freqs)
        base_loss = mean_eval_loss(baseline.trainer, evals)

        plan = FaultPlan.parse("rank_fail@2:rank=1;read_fault@1;read_fault@4",
                               seed=0)
        faulty = run_resilient_training(factory(), CONFIG, 8, prov, steps=6,
                                        plan=plan, class_frequencies=freqs,
                                        lr_scaling="linear")

        assert faulty.steps_completed == 6
        assert faulty.start_world_size == 8
        assert faulty.final_world_size == 7     # shrank around the dead rank
        assert faulty.rank_failures == [1]
        assert faulty.recoveries == 1
        assert faulty.read_retries >= 2         # both injected reads retried
        assert faulty.injected == {"rank_fail": 1, "read_fault": 2}

        faulty_loss = mean_eval_loss(faulty.trainer, evals)
        rel = abs(faulty_loss - base_loss) / abs(base_loss)
        assert rel <= 0.05, (base_loss, faulty_loss, rel)

    def test_dropped_messages_survived_by_step_retry_or_wire(self, dataset,
                                                             freqs):
        prov = provider_for(dataset)
        plan = FaultPlan([FaultSpec("drop_msg", step=1, count=2)], seed=3)
        report = run_resilient_training(factory(), CONFIG, 4, prov, steps=3,
                                        plan=plan, class_frequencies=freqs)
        assert report.steps_completed == 3
        assert report.injected.get("drop_msg") == 2

    def test_checkpoint_autoresume(self, dataset, freqs, tmp_path):
        prov = provider_for(dataset)
        first = run_resilient_training(
            factory(), CONFIG, 2, prov, steps=4, class_frequencies=freqs,
            checkpoint_dir=tmp_path, checkpoint_every=2)
        assert first.checkpoints_saved == 2

        # A rerun on the same directory restarts from the latest checkpoint
        # (step 4) instead of step 0, and only trains the remaining steps.
        second = run_resilient_training(
            factory(), CONFIG, 2, prov, steps=6, class_frequencies=freqs,
            checkpoint_dir=tmp_path, checkpoint_every=2)
        assert second.resumed_at_step == 4
        assert second.resumed_from is not None
        assert second.steps_completed == 2

        # The resumed run reproduces an uninterrupted 6-step run exactly.
        straight = run_resilient_training(factory(), CONFIG, 2, prov,
                                          steps=6, class_frequencies=freqs)
        np.testing.assert_allclose(second.losses, straight.losses[4:],
                                   rtol=1e-6)

    def test_residuals_survive_autoresume(self, dataset, freqs, tmp_path):
        # Error-feedback residuals are comm-layer state: a resumed
        # compressed run must carry them forward bit-exactly, or the
        # compressor silently re-drops the gradient mass it had promised.
        from repro.comm import EngineConfig
        prov = provider_for(dataset)
        cfg = EngineConfig(compression="topk", compression_ratio=0.05)
        first = run_resilient_training(
            factory(), CONFIG, 2, prov, steps=2, class_frequencies=freqs,
            checkpoint_dir=tmp_path, checkpoint_every=2, engine=cfg)
        saved = first.trainer.comm_state()
        assert saved  # residuals exist after two compressed steps

        second = run_resilient_training(
            factory(), CONFIG, 2, prov, steps=4, class_frequencies=freqs,
            checkpoint_dir=tmp_path, checkpoint_every=2, engine=cfg)
        assert second.resumed_at_step == 2

        straight = run_resilient_training(
            factory(), CONFIG, 2, prov, steps=4, class_frequencies=freqs,
            engine=EngineConfig(compression="topk", compression_ratio=0.05))
        np.testing.assert_allclose(second.losses, straight.losses[2:],
                                   rtol=1e-6)
        final_resumed = second.trainer.comm_state()
        final_straight = straight.trainer.comm_state()
        for key, value in final_straight.items():
            np.testing.assert_array_equal(final_resumed[key], value)

    def test_resume_disabled_starts_fresh(self, dataset, freqs, tmp_path):
        prov = provider_for(dataset)
        run_resilient_training(factory(), CONFIG, 2, prov, steps=2,
                               class_frequencies=freqs,
                               checkpoint_dir=tmp_path, checkpoint_every=1)
        report = run_resilient_training(factory(), CONFIG, 2, prov, steps=2,
                                        class_frequencies=freqs,
                                        checkpoint_dir=tmp_path,
                                        checkpoint_every=0, resume=False)
        assert report.resumed_from is None
        assert report.steps_completed == 2


class TestReaderFaults:
    def test_threaded_reader_retries_injected_faults(self, tmp_path):
        from repro.climate.hdf5store import SampleFileStore
        from repro.io.readers import ThreadedReader

        store = SampleFileStore(tmp_path / "ds")
        for i in range(8):
            store.write_sample(i, np.zeros((2, 4, 4), dtype=np.float32),
                               np.zeros((4, 4), dtype=np.int8))
        # count < max_attempts so even if one sample absorbs every injected
        # fault its retry budget still covers them.
        plan = FaultPlan([FaultSpec("read_fault", step=0, count=2)])
        injector = FaultInjector(plan)
        injector.begin_step(0)
        reader = ThreadedReader(store, num_workers=2,
                                fault_injector=injector,
                                retry=RetryPolicy(max_attempts=3,
                                                  backoff_base_s=0.0))
        samples, result = reader.read_indices(list(range(8)))
        assert all(s is not None for s in samples)
        assert result.faults_retried == 2
        assert injector.counts["read_fault"] == 2
