"""Integration: every shipped example runs to completion.

These execute the real scripts in subprocesses — the same commands the
README tells a new user to run — and check their key output lines, so the
examples can never silently rot.
"""
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 420) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Validation: mean IoU" in out
        assert "class frequencies" in out

    def test_distributed_training(self):
        out = run_example("distributed_training.py")
        assert "replicas bit-identical" in out
        assert "fused collectives" in out

    def test_mixed_precision(self):
        out = run_example("mixed_precision.py")
        assert "steps skipped" in out
        assert "master dtype float32" in out

    def test_scaling_study(self):
        out = run_example("scaling_study.py")
        assert "Weak scaling (Figure 4)" in out
        assert "Data staging (Section V-A1)" in out
        assert "Horovod control plane" in out

    def test_flop_analysis(self):
        out = run_example("flop_analysis.py")
        assert "48.9 GFLOPs (paper: 48.9)" in out
        assert "deeplabv3+" in out

    def test_staging_and_pipeline(self):
        out = run_example("staging_and_pipeline.py")
        assert "consistent=True" in out
        assert "GPU idle" in out

    def test_storm_analytics(self):
        out = run_example("storm_analytics.py")
        assert "storms planted" in out
        assert "Basin summary" in out

    def test_serving(self):
        out = run_example("serving.py")
        assert "served 48/48" in out
        assert "cache hit rate" in out
        assert "replica failures: 1" in out
        assert "No admitted request lost." in out

    def test_model_parallel(self):
        out = run_example("model_parallel.py")
        assert "max abs error" in out
        assert "reduction 5.9x" in out

    def test_trace_training(self):
        out = run_example("trace_training.py")
        assert "trace spans:" in out
        assert "sustained throughput: median" in out
        assert "last step span tree" in out

    def test_lint_report(self):
        out = run_example("lint_report.py")
        assert "Rule catalog vs findings" in out
        assert "Findings per module" in out
        assert "analysis.files_scanned" in out
        assert "CI gate against the committed baseline: clean" in out

    def test_cli_report(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "report"],
            capture_output=True, text=True, timeout=420,
        )
        assert proc.returncode == 0
        assert "Reproduction summary" in proc.stdout
        assert "37" in proc.stdout  # the TC penalty-ratio row
