"""Unified exception hierarchy: structure and backward compatibility."""
import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError), name

    def test_subsystem_bases(self):
        assert issubclass(errors.RankError, errors.CommError)
        assert issubclass(errors.DeadlockError, errors.CommError)
        assert issubclass(errors.StagingConfigError, errors.StagingError)
        assert issubclass(errors.StagingReadError, errors.StagingError)
        assert issubclass(errors.CheckpointFormatError, errors.CheckpointError)
        assert issubclass(errors.CheckpointConfigMismatch, errors.CheckpointError)
        for injected in (errors.RankFailure, errors.ReadFault,
                         errors.MessageDropped):
            assert issubclass(injected, errors.FaultInjected)

    def test_legacy_builtin_compatibility(self):
        """except clauses written against the old bare raises keep working."""
        assert issubclass(errors.RankError, ValueError)
        assert issubclass(errors.DeadlockError, LookupError)
        assert issubclass(errors.StagingConfigError, ValueError)
        assert issubclass(errors.StagingReadError, OSError)
        assert issubclass(errors.CheckpointFormatError, ValueError)
        assert issubclass(errors.CheckpointConfigMismatch, ValueError)
        assert issubclass(errors.ReadFault, OSError)

    def test_one_clause_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.MessageDropped(0, 1, 7)
        with pytest.raises(errors.ReproError):
            raise errors.StagingReadError("bad", path="/x")


class TestPayloads:
    def test_rank_failure_carries_rank(self):
        exc = errors.RankFailure(3)
        assert exc.rank == 3
        assert "rank 3" in str(exc)

    def test_staging_read_error_carries_path(self):
        exc = errors.StagingReadError("unreadable", path="/data/f-0.npz")
        assert exc.path == "/data/f-0.npz"

    def test_read_fault_carries_path(self):
        exc = errors.ReadFault("injected", path="sample-4")
        assert exc.path == "sample-4"

    def test_message_dropped_identifies_channel(self):
        exc = errors.MessageDropped(2, 5, 100)
        assert (exc.src, exc.dst, exc.tag) == (2, 5, 100)
        assert "rank 2" in str(exc) and "rank 5" in str(exc)


class TestLegacySites:
    """The migrated raise sites produce the new types."""

    def test_world_rank_error(self):
        from repro.comm import World
        w = World(2)
        with pytest.raises(errors.RankError):
            w.send(1, 0, 5)

    def test_world_deadlock_error(self):
        from repro.comm import World
        w = World(2)
        with pytest.raises(errors.DeadlockError):
            w.recv(1, 0)

    def test_staging_config_error(self):
        from repro.hpc import SUMMIT
        from repro.io import plan_staging
        with pytest.raises(errors.StagingConfigError):
            plan_staging(SUMMIT, 1000, 1e6, 16, strategy="telepathy")

    def test_checkpoint_mismatch_error(self, tmp_path):
        import numpy as np

        from repro.core import CheckpointManager, TrainConfig, Trainer
        from repro.core.networks import Tiramisu, TiramisuConfig

        def make(cfg):
            model = Tiramisu(
                TiramisuConfig(in_channels=2, base_filters=4, growth=4,
                               down_layers=(1,), bottleneck_layers=1,
                               kernel=3, dropout=0.0),
                rng=np.random.default_rng(0))
            return Trainer(model, cfg)

        mgr = CheckpointManager(tmp_path)
        mgr.save(make(TrainConfig(lr=0.05, optimizer="sgd")), step=1)
        with pytest.raises(errors.CheckpointConfigMismatch):
            mgr.load(make(TrainConfig(lr=0.05, optimizer="adam")))
