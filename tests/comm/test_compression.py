"""Top-k gradient compression with error feedback (Section VIII-B)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import SparseGradient, TopKCompressor, World, sparse_allreduce


class TestTopKCompressor:
    def test_keeps_largest_magnitudes(self):
        c = TopKCompressor(ratio=0.25)
        g = np.array([0.1, -5.0, 0.2, 3.0, 0.05, -0.3, 0.0, 1.0])
        sparse = c.compress("w", g)
        assert sparse.values.size == 2
        assert set(np.abs(sparse.values)) == {5.0, 3.0}

    def test_densify_roundtrip(self):
        c = TopKCompressor(ratio=0.5)
        g = np.arange(8.0).reshape(2, 4)
        sparse = c.compress("w", g)
        dense = sparse.densify()
        assert dense.shape == (2, 4)
        # Kept entries equal the originals, dropped are zero.
        kept = dense != 0
        np.testing.assert_allclose(dense[kept], g.astype(np.float32)[kept])

    def test_error_feedback_carries_residual(self):
        c = TopKCompressor(ratio=0.25)
        g = np.array([4.0, 1.0, 1.0, 1.0])
        first = c.compress("w", g)
        np.testing.assert_allclose(first.densify(), [4, 0, 0, 0])
        # Residual [0,1,1,1] is added to the next gradient.
        second = c.compress("w", np.zeros(4))
        assert second.densify().sum() == pytest.approx(1.0)
        assert c.residual_norm("w") > 0

    def test_residual_conservation(self):
        # compressed + residual == gradient + previous residual, always.
        c = TopKCompressor(ratio=0.3)
        rng = np.random.default_rng(0)
        prev_res = np.zeros(20, dtype=np.float32)
        for _ in range(5):
            g = rng.normal(size=20).astype(np.float32)
            sparse = c.compress("w", g)
            new_res = c._residual["w"]
            np.testing.assert_allclose(sparse.densify().ravel() + new_res,
                                       g + prev_res, rtol=1e-6, atol=1e-6)
            prev_res = new_res.copy()

    def test_ratio_one_keeps_everything(self):
        c = TopKCompressor(ratio=1.0)
        g = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(c.compress("w", g).densify(), g)

    def test_per_tensor_residuals_independent(self):
        c = TopKCompressor(ratio=0.5)
        c.compress("a", np.array([1.0, 2.0]))
        c.compress("b", np.array([3.0, 4.0]))
        assert c.residual_norm("a") != c.residual_norm("b")

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)
        with pytest.raises(ValueError):
            TopKCompressor(ratio=1.5)

    def test_reset(self):
        c = TopKCompressor(ratio=0.5)
        c.compress("w", np.array([1.0, 2.0]))
        c.reset()
        assert c.residual_norm("w") == 0.0

    def test_compression_saves_bytes(self):
        c = TopKCompressor(ratio=0.01)
        g = np.random.default_rng(1).normal(size=10000).astype(np.float32)
        sparse = c.compress("w", g)
        assert sparse.nbytes < g.nbytes / 10


class TestSparseAllreduce:
    def test_equals_mean_of_sparsified(self):
        n = 4
        rng = np.random.default_rng(2)
        compressors = [TopKCompressor(ratio=0.2) for _ in range(n)]
        grads = [rng.normal(size=(5, 5)).astype(np.float32) for _ in range(n)]
        sparse = [c.compress("w", g) for c, g in zip(compressors, grads)]
        expect = np.mean([s.densify() for s in sparse], axis=0)
        world = World(n)
        results = sparse_allreduce(world, sparse)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-6, atol=1e-7)

    def test_bandwidth_reduction_measured(self):
        n = 4
        size = 10000
        rng = np.random.default_rng(3)
        sparse = [TopKCompressor(ratio=0.01).compress("w", rng.normal(size=size))
                  for _ in range(n)]
        world = World(n)
        sparse_allreduce(world, sparse)
        dense_volume = n * (n - 1) * size * 4  # equivalent naive allgather
        assert world.stats.total_bytes < dense_volume / 15

    def test_shape_mismatch(self):
        a = SparseGradient(np.array([0]), np.array([1.0], dtype=np.float32), (4,))
        b = SparseGradient(np.array([0]), np.array([1.0], dtype=np.float32), (5,))
        with pytest.raises(ValueError):
            sparse_allreduce(World(2), [a, b])

    def test_count_mismatch(self):
        a = SparseGradient(np.array([0]), np.array([1.0], dtype=np.float32), (4,))
        with pytest.raises(ValueError):
            sparse_allreduce(World(3), [a, a])

    @given(st.integers(2, 5), st.floats(0.05, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_property_exact_mean(self, n, ratio):
        rng = np.random.default_rng(int(ratio * 1000) + n)
        sparse = [TopKCompressor(ratio=ratio).compress("w",
                                                       rng.normal(size=30))
                  for _ in range(n)]
        expect = np.mean([s.densify() for s in sparse], axis=0)
        results = sparse_allreduce(World(n), sparse)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-5, atol=1e-6)


class TestConvergenceWithCompression:
    # Error-feedback theory (Stich et al.) needs the step size scaled with
    # the compression ratio: a coordinate touched every ~1/ratio steps
    # receives its *accumulated* gradient, so lr must satisfy
    # lr / ratio * L < 2 or the delayed update overshoots.
    LR = 0.04  # ratio 0.1, quadratic with L = 2 -> stable

    def test_error_feedback_converges_on_quadratic(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=50).astype(np.float32) * 5
        c = TopKCompressor(ratio=0.1)
        for _ in range(600):
            grad = 2 * x
            x = x - self.LR * c.compress("x", grad).densify().ravel()
        assert np.abs(x).max() < 1e-3

    def test_without_feedback_leaves_small_coords_frozen(self):
        # Without the residual, coordinates that never make the top-k are
        # never updated; with it, every coordinate is eventually served.
        rng = np.random.default_rng(5)
        x0 = rng.normal(size=50).astype(np.float32) * 5

        def run(feedback: bool):
            x = x0.copy()
            c = TopKCompressor(ratio=0.1)
            for _ in range(600):
                grad = 2 * x
                sparse = c.compress("x", grad)
                if not feedback:
                    c.reset()  # discard the residual every step
                x = x - self.LR * sparse.densify().ravel()
            return float(np.abs(x).sum())

        assert run(feedback=True) < 0.01 * run(feedback=False)

    def test_oversized_lr_diverges_without_ratio_scaling(self):
        # The failure mode that motivates the lr/ratio rule.
        rng = np.random.default_rng(6)
        x = rng.normal(size=50).astype(np.float32) * 5
        start = float(np.abs(x).max())
        c = TopKCompressor(ratio=0.1)
        for _ in range(200):
            x = x - 0.5 * c.compress("x", 2 * x).densify().ravel()
        assert np.abs(x).max() > start  # overshoot-driven growth
