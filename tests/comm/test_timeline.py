"""Horovod-timeline reconstruction."""
import json

import numpy as np
import pytest

from repro.comm import (
    ReadinessSchedule,
    build_timeline,
    fuse_order,
    hierarchical_negotiation,
    to_chrome_trace,
)
from repro.comm.timeline import chrome_trace_records, merge_chrome_traces


@pytest.fixture()
def exchange():
    names = [f"layer{i}.grad" for i in range(6)]
    schedule = ReadinessSchedule.random(8, len(names), seed=1)
    negotiation = hierarchical_negotiation(schedule, radix=4)
    sizes = {n: 1000 * (i + 1) for i, n in enumerate(names)}
    ordered = [names[t] for t in negotiation.order]
    fusion = fuse_order(ordered, sizes, threshold_bytes=3000)
    return names, negotiation, fusion


class TestTimeline:
    def test_event_structure(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        negotiate = [e for e in events if e.phase == "negotiate"]
        allreduce = [e for e in events if e.phase == "allreduce"]
        assert len(negotiate) == len(names)
        assert len(allreduce) == fusion.num_collectives

    def test_allreduce_starts_after_negotiation(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        decisions = {e.name: e.duration_us for e in events
                     if e.phase == "negotiate"}
        for e in events:
            if e.phase != "allreduce":
                continue
            # The buffer cannot start before its slowest member negotiated.
            members = e.name.split("+")
            known = [decisions[m] for m in members if m in decisions]
            if known:
                assert e.start_us >= max(known) - 1e-6

    def test_buffers_serialized(self, exchange):
        names, negotiation, fusion = exchange
        events = [e for e in build_timeline(negotiation, fusion, names)
                  if e.phase == "allreduce"]
        for a, b in zip(events, events[1:]):
            assert b.start_us >= a.start_us + a.duration_us - 1e-6

    def test_duration_scales_with_bandwidth(self, exchange):
        names, negotiation, fusion = exchange
        fast = build_timeline(negotiation, fusion, names,
                              allreduce_seconds_per_byte=1e-10)
        slow = build_timeline(negotiation, fusion, names,
                              allreduce_seconds_per_byte=1e-8)
        fa = [e for e in fast if e.phase == "allreduce"][0]
        sa = [e for e in slow if e.phase == "allreduce"][0]
        assert sa.duration_us == pytest.approx(100 * fa.duration_us, rel=1e-6)

    def test_chrome_trace_is_valid_json(self, exchange):
        names, negotiation, fusion = exchange
        doc = to_chrome_trace(build_timeline(negotiation, fusion, names))
        doc = json.loads(json.dumps(doc))     # must be JSON-serializable
        assert "traceEvents" in doc
        assert {rec["ph"] for rec in doc["traceEvents"]} == {"M", "X"}
        for rec in doc["traceEvents"]:
            if rec["ph"] != "X":
                continue                      # lane/process metadata records
            assert rec["dur"] > 0
            assert set(rec) >= {"name", "cat", "ts", "pid", "tid"}

    def test_chrome_trace_writes_path_and_returns_dict(self, exchange, tmp_path):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        out = tmp_path / "comm_trace.json"
        doc = to_chrome_trace(events, path=out)
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk == doc
        xs = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert len(xs) == len(events)

    def test_name_count_mismatch_rejected(self, exchange):
        names, negotiation, fusion = exchange
        with pytest.raises(ValueError):
            build_timeline(negotiation, fusion, names[:-1])


class TestChromeMetadata:
    def test_metadata_emitted_once_per_lane(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        records = chrome_trace_records(events, pid=3,
                                       process_name="comm.exchange")
        meta = [r for r in records if r["ph"] == "M"]
        keys = [(r["name"], r["pid"], r.get("tid")) for r in meta]
        assert len(keys) == len(set(keys))          # no duplicates
        proc = [r for r in meta if r["name"] == "process_name"]
        assert len(proc) == 1
        assert proc[0]["args"]["name"] == "comm.exchange"

    def test_lane_zero_named_negotiate(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        records = chrome_trace_records(events)
        threads = {r["tid"]: r["args"]["name"] for r in records
                   if r["ph"] == "M" and r["name"] == "thread_name"}
        assert threads[0] == "negotiate"
        assert all(name.startswith("allreduce-")
                   for tid, name in threads.items() if tid != 0)

    def test_seen_meta_dedupes_across_calls(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        seen = set()
        first = chrome_trace_records(events, seen_meta=seen)
        second = chrome_trace_records(events, seen_meta=seen)
        assert any(r["ph"] == "M" for r in first)
        assert not any(r["ph"] == "M" for r in second)


class TestMergeChromeTraces:
    def test_merge_keeps_first_metadata_and_all_events(self):
        a = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1,
             "args": {"name": "one"}},
            {"ph": "X", "name": "e1", "cat": "c", "ts": 0, "dur": 1,
             "pid": 1, "tid": 0}]}
        b = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1,
             "args": {"name": "two"}},      # duplicate key: dropped
            {"ph": "X", "name": "e2", "cat": "c", "ts": 5, "dur": 1,
             "pid": 1, "tid": 0}],
             "displayTimeUnit": "ms"}
        merged = merge_chrome_traces(a, b)
        meta = [r for r in merged["traceEvents"] if r["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["args"]["name"] == "one"    # first doc wins
        assert [r["name"] for r in merged["traceEvents"]
                if r["ph"] == "X"] == ["e1", "e2"]
        assert merged["displayTimeUnit"] == "ms"   # extra keys preserved

    def test_merge_distinct_pids_keep_both_metas(self):
        docs = [{"traceEvents": [{"ph": "M", "name": "process_name",
                                  "pid": p, "args": {"name": f"p{p}"}}]}
                for p in (1, 2)]
        merged = merge_chrome_traces(*docs)
        assert len(merged["traceEvents"]) == 2

    def test_merged_doc_is_json_serializable(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        doc = to_chrome_trace(events)
        merged = merge_chrome_traces(doc, doc)
        json.loads(json.dumps(merged))
        xs = [r for r in merged["traceEvents"] if r["ph"] == "X"]
        assert len(xs) == 2 * len(events)          # events never deduped
