"""Horovod-timeline reconstruction."""
import json

import numpy as np
import pytest

from repro.comm import (
    ReadinessSchedule,
    build_timeline,
    fuse_order,
    hierarchical_negotiation,
    to_chrome_trace,
)


@pytest.fixture()
def exchange():
    names = [f"layer{i}.grad" for i in range(6)]
    schedule = ReadinessSchedule.random(8, len(names), seed=1)
    negotiation = hierarchical_negotiation(schedule, radix=4)
    sizes = {n: 1000 * (i + 1) for i, n in enumerate(names)}
    ordered = [names[t] for t in negotiation.order]
    fusion = fuse_order(ordered, sizes, threshold_bytes=3000)
    return names, negotiation, fusion


class TestTimeline:
    def test_event_structure(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        negotiate = [e for e in events if e.phase == "negotiate"]
        allreduce = [e for e in events if e.phase == "allreduce"]
        assert len(negotiate) == len(names)
        assert len(allreduce) == fusion.num_collectives

    def test_allreduce_starts_after_negotiation(self, exchange):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        decisions = {e.name: e.duration_us for e in events
                     if e.phase == "negotiate"}
        for e in events:
            if e.phase != "allreduce":
                continue
            # The buffer cannot start before its slowest member negotiated.
            members = e.name.split("+")
            known = [decisions[m] for m in members if m in decisions]
            if known:
                assert e.start_us >= max(known) - 1e-6

    def test_buffers_serialized(self, exchange):
        names, negotiation, fusion = exchange
        events = [e for e in build_timeline(negotiation, fusion, names)
                  if e.phase == "allreduce"]
        for a, b in zip(events, events[1:]):
            assert b.start_us >= a.start_us + a.duration_us - 1e-6

    def test_duration_scales_with_bandwidth(self, exchange):
        names, negotiation, fusion = exchange
        fast = build_timeline(negotiation, fusion, names,
                              allreduce_seconds_per_byte=1e-10)
        slow = build_timeline(negotiation, fusion, names,
                              allreduce_seconds_per_byte=1e-8)
        fa = [e for e in fast if e.phase == "allreduce"][0]
        sa = [e for e in slow if e.phase == "allreduce"][0]
        assert sa.duration_us == pytest.approx(100 * fa.duration_us, rel=1e-6)

    def test_chrome_trace_is_valid_json(self, exchange):
        names, negotiation, fusion = exchange
        doc = to_chrome_trace(build_timeline(negotiation, fusion, names))
        doc = json.loads(json.dumps(doc))     # must be JSON-serializable
        assert "traceEvents" in doc
        for rec in doc["traceEvents"]:
            assert rec["ph"] == "X"
            assert rec["dur"] > 0
            assert set(rec) >= {"name", "cat", "ts", "pid", "tid"}

    def test_chrome_trace_writes_path_and_returns_dict(self, exchange, tmp_path):
        names, negotiation, fusion = exchange
        events = build_timeline(negotiation, fusion, names)
        out = tmp_path / "comm_trace.json"
        doc = to_chrome_trace(events, path=out)
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk == doc
        assert len(doc["traceEvents"]) == len(events)

    def test_name_count_mismatch_rejected(self, exchange):
        names, negotiation, fusion = exchange
        with pytest.raises(ValueError):
            build_timeline(negotiation, fusion, names[:-1])
