"""Horovod gradient exchange: fusion, averaging, configuration."""
import numpy as np
import pytest

from repro.comm import HorovodConfig, World, allreduce_gradients, fuse_order
from repro.framework.dtypes import FP16


class TestFusion:
    def test_respects_threshold(self):
        sizes = {"a": 40, "b": 40, "c": 40}
        plan = fuse_order(["a", "b", "c"], sizes, threshold_bytes=80)
        assert plan.groups == [["a", "b"], ["c"]]
        assert plan.group_bytes == [80, 40]

    def test_single_oversized_tensor_gets_own_group(self):
        plan = fuse_order(["big", "a"], {"big": 1000, "a": 10}, threshold_bytes=100)
        assert plan.groups == [["big"], ["a"]]

    def test_order_preserved(self):
        names = [f"t{i}" for i in range(10)]
        plan = fuse_order(names, {n: 1 for n in names}, threshold_bytes=3)
        flat = [n for g in plan.groups for n in g]
        assert flat == names

    def test_huge_threshold_single_collective(self):
        plan = fuse_order(["a", "b"], {"a": 5, "b": 5}, threshold_bytes=10**9)
        assert plan.num_collectives == 1


class TestConfig:
    def test_defaults_valid(self):
        cfg = HorovodConfig()
        assert cfg.algorithm == "hierarchical"

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            HorovodConfig(algorithm="smoke-signals")

    def test_invalid_control_plane(self):
        with pytest.raises(ValueError):
            HorovodConfig(control_plane="anarchy")


class TestExchange:
    def _grads(self, n, seed=0):
        rng = np.random.default_rng(seed)
        return [
            {f"layer{i}.w": rng.normal(size=(4, 3)).astype(np.float32)
             for i in range(5)}
            for _ in range(n)
        ]

    @pytest.mark.parametrize("algo,n", [("ring", 4), ("tree", 5), ("naive", 3),
                                        ("hierarchical", 12)])
    def test_result_is_mean(self, algo, n):
        grads = self._grads(n, seed=n)
        w = World(n)
        cfg = HorovodConfig(algorithm=algo, fusion_threshold_bytes=100)
        avg, report = allreduce_gradients(w, grads, cfg)
        expect = {k: np.mean([g[k] for g in grads], axis=0) for k in grads[0]}
        for r in range(n):
            for k in expect:
                np.testing.assert_allclose(avg[r][k], expect[k], rtol=1e-5,
                                           atol=1e-6)

    def test_all_ranks_identical(self):
        grads = self._grads(4)
        avg, _ = allreduce_gradients(World(4), grads,
                                     HorovodConfig(algorithm="ring"))
        for k in avg[0]:
            for r in range(1, 4):
                np.testing.assert_array_equal(avg[r][k], avg[0][k])

    def test_fusion_reduces_collectives(self):
        grads = self._grads(4)
        w = World(4)
        small = allreduce_gradients(w, grads, HorovodConfig(
            algorithm="ring", fusion_threshold_bytes=8))[1]
        big = allreduce_gradients(World(4), grads, HorovodConfig(
            algorithm="ring", fusion_threshold_bytes=10**9))[1]
        assert big.fusion.num_collectives < small.fusion.num_collectives
        assert big.fusion.num_collectives == 1

    def test_name_mismatch_raises(self):
        grads = self._grads(2)
        grads[1] = {"other": np.zeros((2, 2), dtype=np.float32)}
        with pytest.raises(ValueError, match="differ"):
            allreduce_gradients(World(2), grads)

    def test_wrong_rank_count_raises(self):
        with pytest.raises(ValueError, match="gradient dicts"):
            allreduce_gradients(World(3), self._grads(2))

    def test_report_counts_traffic(self):
        grads = self._grads(4)
        _, report = allreduce_gradients(World(4), grads,
                                        HorovodConfig(algorithm="ring"))
        assert report.data_messages > 0
        assert report.data_bytes > 0
        assert len(report.negotiation.order) == 5

    def test_dtype_preserved(self):
        grads = [{"w": np.ones((2, 2), dtype=FP16)} for _ in range(2)]
        avg, _ = allreduce_gradients(World(2), grads,
                                     HorovodConfig(algorithm="ring"))
        assert avg[0]["w"].dtype == FP16
