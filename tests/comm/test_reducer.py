"""All-reduce strategies: exactness, traffic shape, facade semantics."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CommStrategy,
    World,
    allreduce,
    available_strategies,
    get_strategy,
    register_strategy,
)

ALGOS = ["naive", "ring", "tree"]


def make_buffers(n, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size).astype(np.float32) for _ in range(n)]


class TestCorrectness:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_sum_exact(self, algo, n):
        bufs = make_buffers(n, 23, seed=n)
        expect = np.sum(bufs, axis=0)
        w = World(n)
        results = allreduce(w, bufs, strategy=algo)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_average(self, algo):
        bufs = make_buffers(4, 17)
        w = World(4)
        results = allreduce(w, bufs, strategy=algo, average=True)
        expect = np.mean(bufs, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("gpn,mrpn,nodes", [(6, 4, 2), (6, 4, 4), (6, 6, 3),
                                                (4, 2, 2), (6, 1, 2), (6, 4, 1)])
    def test_hierarchical_sum(self, gpn, mrpn, nodes):
        n = gpn * nodes
        bufs = make_buffers(n, 31, seed=n)
        expect = np.sum(bufs, axis=0)
        w = World(n)
        results = allreduce(w, bufs, strategy="hierarchical", gpus_per_node=gpn,
                            mpi_ranks_per_node=mrpn)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-4, atol=1e-4)

    def test_hierarchical_divisibility_check(self):
        w = World(5)
        with pytest.raises(ValueError, match="divisible"):
            allreduce(w, make_buffers(5, 4), strategy="hierarchical",
                      gpus_per_node=6)

    def test_hierarchical_mpi_ranks_check(self):
        w = World(6)
        with pytest.raises(ValueError, match="mpi_ranks_per_node"):
            allreduce(w, make_buffers(6, 4), strategy="hierarchical",
                      gpus_per_node=6, mpi_ranks_per_node=7)

    def test_multidimensional_buffers(self):
        bufs = [b.reshape(4, 6) for b in make_buffers(3, 24)]
        w = World(3)
        results = allreduce(w, bufs, strategy="ring")
        assert results[0].shape == (4, 6)
        np.testing.assert_allclose(results[0], np.sum(bufs, axis=0), rtol=1e-5)

    def test_buffer_count_mismatch(self):
        w = World(3)
        with pytest.raises(ValueError, match="buffers"):
            allreduce(w, make_buffers(2, 4), strategy="ring")

    def test_buffer_shape_mismatch(self):
        w = World(2)
        with pytest.raises(ValueError, match="shape"):
            allreduce(w, [np.zeros(3), np.zeros(4)], strategy="ring")

    def test_inputs_not_mutated(self):
        bufs = make_buffers(3, 11)
        copies = [b.copy() for b in bufs]
        allreduce(World(3), bufs, strategy="ring")
        for b, c in zip(bufs, copies):
            np.testing.assert_array_equal(b, c)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_strategies()) >= {"naive", "ring", "tree",
                                               "hierarchical"}

    def test_unknown_strategy_lists_available(self):
        with pytest.raises(ValueError, match="ring"):
            get_strategy("quantum")
        with pytest.raises(ValueError, match="unknown comm strategy"):
            allreduce(World(2), make_buffers(2, 4), strategy="quantum")

    def test_duplicate_registration_rejected(self):
        ring = get_strategy("ring")
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(ring)
        # Idempotent replace is explicit.
        register_strategy(ring, overwrite=True)
        assert get_strategy("ring") is ring

    def test_register_requires_strategy(self):
        with pytest.raises(TypeError, match="CommStrategy"):
            register_strategy(lambda w, b: b)

    def test_custom_strategy_dispatch(self):
        def doubled(world, buffers, average, tag):
            total = np.sum(buffers, axis=0)
            return [2 * total for _ in range(world.size)]

        register_strategy(CommStrategy("doubled-test", doubled, 90))
        try:
            bufs = make_buffers(3, 5)
            out = allreduce(World(3), bufs, strategy="doubled-test")
            np.testing.assert_allclose(out[0], 2 * np.sum(bufs, axis=0),
                                       rtol=1e-5)
        finally:
            from repro.comm.api import _REGISTRY
            _REGISTRY.pop("doubled-test", None)

    def test_strategy_instance_accepted_directly(self):
        ring = get_strategy("ring")
        bufs = make_buffers(2, 9)
        out = allreduce(World(2), bufs, strategy=ring)
        np.testing.assert_allclose(out[0], np.sum(bufs, axis=0), rtol=1e-5)

    def test_modeled_time_orders_ring_vs_tree(self):
        from repro.hpc.specs import SUMMIT
        ring = get_strategy("ring")
        tree = get_strategy("tree")
        kw = dict(nvlink=SUMMIT.node.nvlink, interconnect=SUMMIT.interconnect)
        # Large payloads favour bandwidth-optimal ring; tiny favour tree.
        assert ring.modeled_time(16, 64e6, **kw) < tree.modeled_time(16, 64e6, **kw)
        assert tree.modeled_time(16, 64.0, **kw) < ring.modeled_time(16, 64.0, **kw)

    def test_no_model_strategy_raises(self):
        s = CommStrategy("modelless-test", lambda w, b, a, t: b, 91)
        with pytest.raises(ValueError, match="no cost model"):
            s.modeled_time(4, 1e6, nvlink=None, interconnect=None)


class TestDeprecatedWrappers:
    """The four legacy free functions still work but warn (RPR009)."""

    def test_wrappers_warn_and_match_facade(self):
        from repro.comm import reducer
        n = 6
        bufs = make_buffers(n, 13)
        expect = np.sum(bufs, axis=0)
        legacy = [
            (reducer.naive_allreduce, {}),
            (reducer.ring_allreduce, {}),
            (reducer.tree_allreduce, {}),
            (reducer.hierarchical_allreduce,
             dict(gpus_per_node=3, mpi_ranks_per_node=2)),
        ]
        for fn, kw in legacy:
            with pytest.warns(DeprecationWarning, match="repro.comm.allreduce"):
                results = fn(World(n), bufs, **kw)
            for r in results:
                np.testing.assert_allclose(r, expect, rtol=1e-4, atol=1e-4)


class TestTrafficShape:
    def test_ring_message_count(self):
        # Reduce-scatter + all-gather: 2 (n-1) rounds of n messages.
        n = 5
        w = World(n)
        allreduce(w, make_buffers(n, 40), strategy="ring")
        assert w.stats.total_messages == 2 * (n - 1) * n

    def test_ring_is_bandwidth_optimal(self):
        # Each rank sends ~2 (n-1)/n * V bytes.
        n, size = 4, 100
        w = World(n)
        allreduce(w, make_buffers(n, size), strategy="ring")
        per_rank = w.stats.sent_bytes[0]
        expect = 2 * (n - 1) / n * size * 4
        assert abs(per_rank - expect) / expect < 0.1

    def test_tree_message_count_logarithmic(self):
        n = 8
        w = World(n)
        allreduce(w, make_buffers(n, 16), strategy="tree")
        # Binomial reduce + broadcast: 2 (n-1) total messages.
        assert w.stats.total_messages == 2 * (n - 1)

    def test_naive_concentrates_on_root(self):
        n = 6
        w = World(n)
        allreduce(w, make_buffers(n, 8), strategy="naive")
        assert w.stats.recv_messages[0] == n - 1
        assert w.stats.sent_messages[0] == n - 1


class TestHypothesis:
    @given(st.integers(2, 10), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_ring_any_size(self, n, length):
        bufs = make_buffers(n, length, seed=n * 100 + length)
        w = World(n)
        results = allreduce(w, bufs, strategy="ring")
        expect = np.sum(bufs, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-4, atol=1e-4)

    @given(st.integers(2, 12), st.integers(1, 32))
    @settings(max_examples=25, deadline=None)
    def test_tree_any_size(self, n, length):
        bufs = make_buffers(n, length, seed=n * 7 + length)
        w = World(n)
        results = allreduce(w, bufs, strategy="tree")
        expect = np.sum(bufs, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-4, atol=1e-4)


class TestFacadeReexport:
    def test_reducer_lazily_reexports_allreduce(self):
        # The RPR009 autofix rewrites ``reducer.ring_allreduce(...)`` to
        # ``reducer.allreduce(..., strategy="ring")``; the facade must be
        # reachable through the reducer module for those fixes to run.
        from repro.comm import reducer
        from repro.comm.api import allreduce as facade

        assert reducer.allreduce is facade
        assert "allreduce" in reducer.__all__

    def test_unknown_attribute_still_raises(self):
        from repro.comm import reducer

        with pytest.raises(AttributeError):
            reducer.not_a_thing
