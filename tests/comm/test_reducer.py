"""All-reduce algorithms: exactness and traffic shape."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    World,
    hierarchical_allreduce,
    naive_allreduce,
    ring_allreduce,
    tree_allreduce,
)

ALGOS = {
    "naive": (naive_allreduce, {}),
    "ring": (ring_allreduce, {}),
    "tree": (tree_allreduce, {}),
}


def make_buffers(n, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=size).astype(np.float32) for _ in range(n)]


class TestCorrectness:
    @pytest.mark.parametrize("algo", list(ALGOS))
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_sum_exact(self, algo, n):
        fn, kw = ALGOS[algo]
        bufs = make_buffers(n, 23, seed=n)
        expect = np.sum(bufs, axis=0)
        w = World(n)
        results = fn(w, bufs, **kw)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("algo", list(ALGOS))
    def test_average(self, algo):
        fn, kw = ALGOS[algo]
        bufs = make_buffers(4, 17)
        w = World(4)
        results = fn(w, bufs, average=True, **kw)
        expect = np.mean(bufs, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("gpn,mrpn,nodes", [(6, 4, 2), (6, 4, 4), (6, 6, 3),
                                                (4, 2, 2), (6, 1, 2), (6, 4, 1)])
    def test_hierarchical_sum(self, gpn, mrpn, nodes):
        n = gpn * nodes
        bufs = make_buffers(n, 31, seed=n)
        expect = np.sum(bufs, axis=0)
        w = World(n)
        results = hierarchical_allreduce(w, bufs, gpus_per_node=gpn,
                                         mpi_ranks_per_node=mrpn)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-4, atol=1e-4)

    def test_hierarchical_divisibility_check(self):
        w = World(5)
        with pytest.raises(ValueError, match="divisible"):
            hierarchical_allreduce(w, make_buffers(5, 4), gpus_per_node=6)

    def test_hierarchical_mpi_ranks_check(self):
        w = World(6)
        with pytest.raises(ValueError, match="mpi_ranks_per_node"):
            hierarchical_allreduce(w, make_buffers(6, 4), gpus_per_node=6,
                                   mpi_ranks_per_node=7)

    def test_multidimensional_buffers(self):
        bufs = [b.reshape(4, 6) for b in make_buffers(3, 24)]
        w = World(3)
        results = ring_allreduce(w, bufs)
        assert results[0].shape == (4, 6)
        np.testing.assert_allclose(results[0], np.sum(bufs, axis=0), rtol=1e-5)

    def test_buffer_count_mismatch(self):
        w = World(3)
        with pytest.raises(ValueError, match="buffers"):
            ring_allreduce(w, make_buffers(2, 4))

    def test_buffer_shape_mismatch(self):
        w = World(2)
        with pytest.raises(ValueError, match="shape"):
            ring_allreduce(w, [np.zeros(3), np.zeros(4)])

    def test_inputs_not_mutated(self):
        bufs = make_buffers(3, 11)
        copies = [b.copy() for b in bufs]
        ring_allreduce(World(3), bufs)
        for b, c in zip(bufs, copies):
            np.testing.assert_array_equal(b, c)


class TestTrafficShape:
    def test_ring_message_count(self):
        # Reduce-scatter + all-gather: 2 (n-1) rounds of n messages.
        n = 5
        w = World(n)
        ring_allreduce(w, make_buffers(n, 40))
        assert w.stats.total_messages == 2 * (n - 1) * n

    def test_ring_is_bandwidth_optimal(self):
        # Each rank sends ~2 (n-1)/n * V bytes.
        n, size = 4, 100
        w = World(n)
        ring_allreduce(w, make_buffers(n, size))
        per_rank = w.stats.sent_bytes[0]
        expect = 2 * (n - 1) / n * size * 4
        assert abs(per_rank - expect) / expect < 0.1

    def test_tree_message_count_logarithmic(self):
        n = 8
        w = World(n)
        tree_allreduce(w, make_buffers(n, 16))
        # Binomial reduce + broadcast: 2 (n-1) total messages.
        assert w.stats.total_messages == 2 * (n - 1)

    def test_naive_concentrates_on_root(self):
        n = 6
        w = World(n)
        naive_allreduce(w, make_buffers(n, 8))
        assert w.stats.recv_messages[0] == n - 1
        assert w.stats.sent_messages[0] == n - 1


class TestHypothesis:
    @given(st.integers(2, 10), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_ring_any_size(self, n, length):
        bufs = make_buffers(n, length, seed=n * 100 + length)
        w = World(n)
        results = ring_allreduce(w, bufs)
        expect = np.sum(bufs, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-4, atol=1e-4)

    @given(st.integers(2, 12), st.integers(1, 32))
    @settings(max_examples=25, deadline=None)
    def test_tree_any_size(self, n, length):
        bufs = make_buffers(n, length, seed=n * 7 + length)
        w = World(n)
        results = tree_allreduce(w, bufs)
        expect = np.sum(bufs, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expect, rtol=1e-4, atol=1e-4)
