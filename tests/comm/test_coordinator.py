"""Horovod control planes: total order, message bounds (Section V-A3)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    ReadinessSchedule,
    centralized_negotiation,
    hierarchical_negotiation,
    tree_children,
    tree_parent,
)


class TestTreeStructure:
    def test_root_has_no_parent(self):
        assert tree_parent(0, 4) is None

    def test_parent_child_consistency(self):
        size, radix = 50, 4
        for r in range(1, size):
            p = tree_parent(r, radix)
            assert r in tree_children(p, radix, size)

    def test_children_bounded_by_radix(self):
        for r in range(20):
            assert len(tree_children(r, 3, 20)) <= 3

    def test_all_ranks_reachable(self):
        size, radix = 37, 2
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for c in tree_children(node, radix, size):
                seen.add(c)
                frontier.append(c)
        assert seen == set(range(size))


class TestSchedule:
    def test_shape(self):
        s = ReadinessSchedule.random(8, 20, seed=0)
        assert s.ranks == 8
        assert s.tensors == 20
        assert (s.times >= 0).all()

    def test_ranks_disagree_on_order(self):
        s = ReadinessSchedule.random(4, 50, seed=1)
        orders = [tuple(np.argsort(s.times[r])) for r in range(4)]
        assert len(set(orders)) > 1  # TF's independent scheduling


class TestNegotiation:
    def test_same_total_order_both_protocols(self):
        s = ReadinessSchedule.random(32, 64, seed=2)
        c = centralized_negotiation(s)
        h = hierarchical_negotiation(s, radix=4)
        assert c.order == h.order
        assert sorted(c.order) == list(range(64))

    def test_order_respects_readiness(self):
        # A tensor everyone finished early is scheduled before a late one.
        times = np.zeros((4, 2))
        times[:, 1] = 10.0
        s = ReadinessSchedule(times)
        assert centralized_negotiation(s).order == [0, 1]

    def test_centralized_root_load_linear_in_ranks(self):
        t = 100
        small = centralized_negotiation(ReadinessSchedule.random(16, t, seed=3))
        big = centralized_negotiation(ReadinessSchedule.random(256, t, seed=3))
        assert big.controller_load > 10 * small.controller_load
        # Root handles 2 (n-1) messages per tensor.
        assert big.controller_load == 2 * 255 * t

    def test_hierarchical_bounded_per_rank(self):
        # "no rank sends or receives more than r+1 messages for each tensor"
        for radix in (2, 4, 8):
            s = ReadinessSchedule.random(100, 30, seed=radix)
            h = hierarchical_negotiation(s, radix=radix)
            per_rank = (h.messages_sent + h.messages_received) / 30
            assert per_rank.max() <= 2 * (radix + 1)

    def test_hierarchical_scale_independent(self):
        # Root load per tensor does not grow with world size.
        t = 20
        loads = []
        for ranks in (64, 512):
            s = ReadinessSchedule.random(ranks, t, seed=5)
            h = hierarchical_negotiation(s, radix=4)
            loads.append(h.per_tensor_max_messages())
        assert loads[1] <= loads[0] + 1e-9

    def test_radix_insensitivity_of_order(self):
        # Paper: no measurable difference for radix 2..8; order certainly equal.
        s = ReadinessSchedule.random(64, 40, seed=6)
        orders = [hierarchical_negotiation(s, radix=r).order for r in (2, 4, 8)]
        assert orders[0] == orders[1] == orders[2]

    def test_invalid_radix(self):
        s = ReadinessSchedule.random(4, 4)
        with pytest.raises(ValueError):
            hierarchical_negotiation(s, radix=0)

    def test_decision_times_sorted(self):
        s = ReadinessSchedule.random(16, 32, seed=7)
        d = centralized_negotiation(s).decision_times
        assert (np.diff(d) >= 0).all()

    def test_hop_latency_delays_decisions(self):
        s = ReadinessSchedule.random(64, 10, seed=8)
        fast = hierarchical_negotiation(s, radix=2, hop_latency=0.0)
        slow = hierarchical_negotiation(s, radix=2, hop_latency=1.0)
        assert (slow.decision_times >= fast.decision_times).all()
        assert slow.decision_times.sum() > fast.decision_times.sum()

    @given(st.integers(2, 64), st.integers(1, 40), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_orders_agree_and_bounded(self, ranks, tensors, radix):
        s = ReadinessSchedule.random(ranks, tensors, seed=ranks * tensors)
        c = centralized_negotiation(s)
        h = hierarchical_negotiation(s, radix=radix)
        assert c.order == h.order
        per_rank = (h.messages_sent + h.messages_received) / tensors
        assert per_rank.max() <= 2 * (radix + 1)
