"""Alpha-beta cost models for collectives and control planes."""
import pytest

from repro.comm import (
    Link,
    centralized_control_time,
    hierarchical_allreduce_time,
    hierarchical_control_time,
    ring_allreduce_time,
    tree_allreduce_time,
)

FAST = Link(alpha=1e-6, bandwidth=10e9)


class TestRingTree:
    def test_single_rank_free(self):
        assert ring_allreduce_time(1, 1e6, FAST) == 0.0
        assert tree_allreduce_time(1, 1e6, FAST) == 0.0

    def test_ring_bandwidth_term_bounded(self):
        # As n grows the bandwidth term approaches 2V/B.
        v = 1e9
        t_big = ring_allreduce_time(10_000, v, Link(alpha=0.0, bandwidth=10e9))
        assert abs(t_big - 2 * v / 10e9) / (2 * v / 10e9) < 0.01

    def test_ring_latency_linear(self):
        link = Link(alpha=1e-5, bandwidth=1e15)
        t1 = ring_allreduce_time(100, 1.0, link)
        t2 = ring_allreduce_time(200, 1.0, link)
        assert t2 / t1 == pytest.approx(398 / 198, rel=1e-6)

    def test_tree_latency_logarithmic(self):
        link = Link(alpha=1e-5, bandwidth=1e15)
        t1 = tree_allreduce_time(16, 1.0, link)
        t2 = tree_allreduce_time(256, 1.0, link)
        assert t2 / t1 == pytest.approx(2.0, rel=1e-6)

    def test_crossover_small_messages_favor_tree(self):
        # Tiny payload, many ranks: tree (log rounds) beats ring (linear).
        link = Link(alpha=5e-6, bandwidth=10e9)
        v = 1e3
        assert tree_allreduce_time(1024, v, link) < ring_allreduce_time(1024, v, link)

    def test_crossover_large_messages_favor_ring(self):
        # Huge payload, few ranks: ring's bandwidth optimality wins.
        link = Link(alpha=5e-6, bandwidth=10e9)
        v = 1e9
        assert ring_allreduce_time(8, v, link) < tree_allreduce_time(8, v, link)

    def test_monotone_in_volume(self):
        assert ring_allreduce_time(8, 2e6, FAST) > ring_allreduce_time(8, 1e6, FAST)
        assert tree_allreduce_time(8, 2e6, FAST) > tree_allreduce_time(8, 1e6, FAST)


class TestHierarchical:
    NVLINK = Link(alpha=3e-6, bandwidth=150e9)
    IB = Link(alpha=1.5e-6, bandwidth=6.25e9)

    def test_beats_flat_tree_over_all_gpus(self):
        # The hybrid's rationale: NVLink absorbs the intra-node volume and
        # only V/4 crosses each IB device.
        nodes, v = 1024, 100e6
        flat = tree_allreduce_time(nodes * 6, v, self.IB)
        hybrid = hierarchical_allreduce_time(nodes, v, self.NVLINK, self.IB)
        assert hybrid < flat

    def test_single_node_is_nvlink_only(self):
        t = hierarchical_allreduce_time(1, 10e6, self.NVLINK, self.IB)
        # No inter-node term.
        intra = ring_allreduce_time(6, 10e6, self.NVLINK)
        assert t < 2 * intra + 1e-3

    def test_more_parallel_devices_faster(self):
        t2 = hierarchical_allreduce_time(512, 100e6, self.NVLINK, self.IB,
                                         parallel_devices=2)
        t4 = hierarchical_allreduce_time(512, 100e6, self.NVLINK, self.IB,
                                         parallel_devices=4)
        assert t4 < t2


class TestControlPlane:
    def test_centralized_linear_in_ranks(self):
        t1 = centralized_control_time(1000, 110)
        t2 = centralized_control_time(27360, 110)
        assert t2 / t1 == pytest.approx(27359 / 999, rel=1e-6)

    def test_hierarchical_nearly_flat(self):
        t_small = hierarchical_control_time(1000, 110)
        t_big = hierarchical_control_time(27360, 110)
        assert t_big < 2 * t_small

    def test_paper_magnitude_reduction(self):
        # "millions of messages per second" -> "mere thousands": at 27360
        # ranks the hierarchical plane is orders of magnitude cheaper.
        ranks, tensors = 27360, 110
        central = centralized_control_time(ranks, tensors)
        hier = hierarchical_control_time(ranks, tensors)
        assert central / hier > 100

    def test_single_rank_free(self):
        assert hierarchical_control_time(1, 110) == 0.0
