"""Adaptive gradient-exchange engine: selection, fusion, compression, overlap."""
import numpy as np
import pytest

from repro.comm import EngineConfig, GradientExchangeEngine, World
from repro.telemetry import Telemetry, activate

SPEC_SMALL = [(f"layer{i}.w", (4, 8)) for i in range(16)]
SPEC_MIXED = [("stem.w", (64, 16, 3, 3)), ("stem.b", (64,)),
              ("block.w", (32, 64, 3, 3)), ("block.b", (32,)),
              ("head.w", (3, 32, 1, 1)), ("head.b", (3,))]


def make_grads(n, spec, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {name: rng.normal(size=shape).astype(np.float32)
         for name, shape in spec}
        for _ in range(n)
    ]


def expected_mean(grads):
    return {k: np.mean([g[k] for g in grads], axis=0)
            for k in grads[0]}


class TestConfig:
    def test_defaults_valid(self):
        cfg = EngineConfig()
        assert cfg.compression is None and cfg.autotune and cfg.overlap

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown comm strategy"):
            EngineConfig(strategies=("ring", "quantum"))

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            EngineConfig(strategies=())

    def test_unknown_compression_rejected(self):
        with pytest.raises(ValueError, match="compression"):
            EngineConfig(compression="fp4")

    def test_nonpositive_bucket_rejected(self):
        with pytest.raises(ValueError, match="bucket_bytes"):
            EngineConfig(bucket_bytes=0)


class TestDenseExchange:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_matches_mean(self, n):
        grads = make_grads(n, SPEC_MIXED, seed=n)
        engine = GradientExchangeEngine(n)
        averaged, report = engine.exchange(World(n), grads)
        want = expected_mean(grads)
        for r in range(n):
            for k, v in want.items():
                np.testing.assert_allclose(averaged[r][k], v,
                                           rtol=1e-5, atol=1e-6)
        assert report.dense_bytes == sum(g.nbytes for g in grads[0].values())
        assert report.wire_bytes == report.dense_bytes

    def test_replicas_bit_identical(self):
        grads = make_grads(3, SPEC_MIXED, seed=4)
        averaged, _ = GradientExchangeEngine(3).exchange(World(3), grads)
        for k in grads[0]:
            np.testing.assert_array_equal(averaged[0][k], averaged[1][k])
            np.testing.assert_array_equal(averaged[0][k], averaged[2][k])

    def test_canonical_key_order_restored(self):
        grads = make_grads(2, SPEC_MIXED, seed=1)
        averaged, _ = GradientExchangeEngine(2).exchange(World(2), grads)
        assert list(averaged[0]) == list(grads[0])

    def test_shapes_and_dtypes_preserved(self):
        grads = make_grads(2, SPEC_MIXED, seed=2)
        averaged, _ = GradientExchangeEngine(2).exchange(World(2), grads)
        for k, g in grads[0].items():
            assert averaged[0][k].shape == g.shape
            assert averaged[0][k].dtype == g.dtype

    def test_rank_count_mismatch_rejected(self):
        grads = make_grads(2, SPEC_SMALL)
        with pytest.raises(ValueError, match="gradient dicts"):
            GradientExchangeEngine(3).exchange(World(3), grads)

    def test_name_mismatch_rejected(self):
        grads = make_grads(2, SPEC_SMALL)
        grads[1] = {f"other.{k}": v for k, v in grads[1].items()}
        with pytest.raises(ValueError, match="tensor names"):
            GradientExchangeEngine(2).exchange(World(2), grads)


class TestBucketing:
    def test_fusion_cuts_collectives(self):
        # 16 small tensors fuse into far fewer collectives (>= 4x cut).
        grads = make_grads(2, SPEC_SMALL)
        cfg = EngineConfig(bucket_bytes=4 * 1024 * 1024)
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        assert report.fusion.num_collectives * 4 <= len(SPEC_SMALL)

    def test_tiny_buckets_disable_fusion(self):
        grads = make_grads(2, SPEC_SMALL)
        cfg = EngineConfig(bucket_bytes=1)  # every tensor overflows its bucket
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        assert report.fusion.num_collectives == len(SPEC_SMALL)

    def test_buckets_packed_in_backward_order(self):
        grads = make_grads(2, SPEC_MIXED)
        cfg = EngineConfig(bucket_bytes=1 << 30)
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        names = [n for group in report.fusion.groups for n in group]
        assert names == list(reversed([n for n, _ in SPEC_MIXED]))

    def test_decisions_cover_every_bucket(self):
        grads = make_grads(2, SPEC_SMALL)
        cfg = EngineConfig(bucket_bytes=256)
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        assert sorted(report.decisions) == list(range(report.fusion.num_collectives))
        assert set(report.decisions.values()) <= {"ring", "tree",
                                                  "hierarchical", "naive"}


class TestSelection:
    def test_hierarchical_needs_full_nodes(self):
        engine = GradientExchangeEngine(12)
        assert "hierarchical" in engine._candidates(12, 1 << 20)
        assert "hierarchical" not in engine._candidates(5, 1 << 20)
        assert "hierarchical" not in engine._candidates(8, 1 << 20)

    def test_candidates_sorted_by_model(self):
        engine = GradientExchangeEngine(8)
        from repro.comm import get_strategy
        cfg = engine.config
        for nbytes in (64, 1 << 16, 1 << 26):
            names = engine._candidates(8, nbytes)
            times = [get_strategy(n).modeled_time(
                8, float(nbytes), nvlink=cfg.nvlink,
                interconnect=cfg.interconnect,
                **engine._strategy_params(n)) for n in names]
            assert times == sorted(times)

    def test_autotune_settles_after_trying_all(self):
        grads = make_grads(4, SPEC_SMALL)
        engine = GradientExchangeEngine(4)  # candidates: ring/tree/naive
        key = None
        for step in range(4):
            _, report = engine.exchange(World(4), grads)
        key = (4, engine._size_class(report.fusion.group_bytes[0]))
        assert key in engine._settled
        measured = engine._measured[key]
        assert set(measured) == set(engine._candidates(4, 1))
        # The settled choice is the measured argmin — by construction it can
        # never be slower than the worst fixed algorithm at this size.
        assert engine._settled[key] == min(measured, key=measured.get)
        assert measured[engine._settled[key]] <= max(measured.values())

    def test_settled_choice_is_stable(self):
        grads = make_grads(4, SPEC_SMALL)
        engine = GradientExchangeEngine(4)
        for _ in range(4):
            engine.exchange(World(4), grads)
        first = engine.select(4, SPEC_SMALL[0][1][0] * SPEC_SMALL[0][1][1] * 4)
        for _ in range(3):
            engine.exchange(World(4), grads)
        assert engine.select(4, SPEC_SMALL[0][1][0] * SPEC_SMALL[0][1][1] * 4) == first

    def test_autotune_off_uses_model(self):
        cfg = EngineConfig(autotune=False)
        engine = GradientExchangeEngine(4, cfg)
        grads = make_grads(4, SPEC_SMALL)
        engine.exchange(World(4), grads)
        assert engine._measured == {} and engine._settled == {}
        assert engine.select(4, 1 << 20) == engine._candidates(4, 1 << 20)[0]


class TestCompressedExchange:
    def test_topk_cuts_wire_bytes(self):
        grads = make_grads(3, SPEC_MIXED, seed=9)
        cfg = EngineConfig(compression="topk", compression_ratio=0.01)
        _, report = GradientExchangeEngine(3, cfg).exchange(World(3), grads)
        assert report.wire_bytes < report.dense_bytes / 10
        assert report.compression_ratio > 10
        assert set(report.decisions.values()) == {"topk"}

    def test_topk_replicas_bit_identical(self):
        grads = make_grads(3, SPEC_MIXED, seed=10)
        cfg = EngineConfig(compression="topk", compression_ratio=0.05)
        averaged, _ = GradientExchangeEngine(3, cfg).exchange(World(3), grads)
        for k in grads[0]:
            np.testing.assert_array_equal(averaged[0][k], averaged[1][k])
            np.testing.assert_array_equal(averaged[0][k], averaged[2][k])

    def test_topk_ratio_one_is_exact(self):
        grads = make_grads(2, SPEC_MIXED, seed=11)
        cfg = EngineConfig(compression="topk", compression_ratio=1.0)
        averaged, _ = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        want = expected_mean(grads)
        for k, v in want.items():
            np.testing.assert_allclose(averaged[0][k], v, rtol=1e-5, atol=1e-6)

    def test_int8_approximates_mean(self):
        grads = make_grads(3, SPEC_MIXED, seed=12)
        cfg = EngineConfig(compression="int8")
        averaged, report = GradientExchangeEngine(3, cfg).exchange(
            World(3), grads)
        want = expected_mean(grads)
        for k, v in want.items():
            # Quantization error is bounded by half a step (~peak/254).
            peak = max(float(np.abs(grads[r][k]).max()) for r in range(3))
            np.testing.assert_allclose(averaged[0][k], v,
                                       atol=peak / 100, rtol=0)
        # One byte per element plus per-tensor scales: ~4x saving on fp32.
        assert report.compression_ratio > 3.5
        assert set(report.decisions.values()) == {"int8"}

    def test_int8_replicas_bit_identical(self):
        grads = make_grads(4, SPEC_MIXED, seed=13)
        cfg = EngineConfig(compression="int8")
        averaged, _ = GradientExchangeEngine(4, cfg).exchange(World(4), grads)
        for k in grads[0]:
            for r in (1, 2, 3):
                np.testing.assert_array_equal(averaged[0][k], averaged[r][k])

    def test_compressor_world_mismatch_rejected(self):
        cfg = EngineConfig(compression="topk")
        engine = GradientExchangeEngine(3, cfg)
        with pytest.raises(ValueError, match="sized for 3"):
            engine.exchange(World(2), make_grads(2, SPEC_SMALL))


class TestErrorFeedback:
    def test_residuals_deterministic_under_fixed_seed(self):
        # Same seed, same config -> bit-identical residual state.
        cfg = EngineConfig(compression="topk", compression_ratio=0.02)
        states = []
        for _ in range(2):
            engine = GradientExchangeEngine(3, cfg)
            for step in range(3):
                engine.exchange(World(3), make_grads(3, SPEC_MIXED, seed=step))
            states.append(engine.comm_state())
        assert sorted(states[0]) == sorted(states[1])
        for key in states[0]:
            np.testing.assert_array_equal(states[0][key], states[1][key])

    def test_residuals_accumulate_per_rank_per_tensor(self):
        cfg = EngineConfig(compression="topk", compression_ratio=0.01)
        engine = GradientExchangeEngine(2, cfg)
        engine.exchange(World(2), make_grads(2, SPEC_MIXED, seed=3))
        state = engine.comm_state()
        names = [n for n, _ in SPEC_MIXED]
        assert sorted(state) == sorted(f"rank{r}.{n}"
                                       for r in range(2) for n in names)
        assert all(np.linalg.norm(v) > 0 for v in state.values())

    def test_state_roundtrip_bit_exact(self):
        cfg = EngineConfig(compression="int8")
        a = GradientExchangeEngine(2, cfg)
        for step in range(2):
            a.exchange(World(2), make_grads(2, SPEC_MIXED, seed=step))
        saved = a.comm_state()

        b = GradientExchangeEngine(2, cfg)
        b.load_comm_state(saved)
        for key, value in saved.items():
            np.testing.assert_array_equal(b.comm_state()[key], value)
        # The restored engine continues exactly where the original would.
        next_grads = make_grads(2, SPEC_MIXED, seed=99)
        out_a, _ = a.exchange(World(2), next_grads)
        out_b, _ = b.exchange(World(2), next_grads)
        for k in next_grads[0]:
            np.testing.assert_array_equal(out_a[0][k], out_b[0][k])

    def test_dense_engine_has_no_comm_state(self):
        engine = GradientExchangeEngine(2)
        engine.exchange(World(2), make_grads(2, SPEC_SMALL))
        assert engine.comm_state() == {}
        engine.load_comm_state({"rank0.x": np.ones(3)})  # no-op, no error

    def test_shrink_drops_only_failed_ranks(self):
        cfg = EngineConfig(compression="topk", compression_ratio=0.02)
        engine = GradientExchangeEngine(3, cfg)
        engine.exchange(World(3), make_grads(3, SPEC_MIXED, seed=5))
        before = engine.comm_state()
        engine.shrink([0, 2])  # rank 1 failed
        after = engine.comm_state()
        assert engine.world_size == 2
        names = [n for n, _ in SPEC_MIXED]
        assert sorted(after) == sorted(f"rank{r}.{n}"
                                       for r in range(2) for n in names)
        for name in names:
            np.testing.assert_array_equal(after[f"rank0.{name}"],
                                          before[f"rank0.{name}"])
            np.testing.assert_array_equal(after[f"rank1.{name}"],
                                          before[f"rank2.{name}"])
        # The shrunk engine keeps exchanging at the new size.
        averaged, _ = engine.exchange(World(2), make_grads(2, SPEC_MIXED))
        assert list(averaged[0]) == names


class TestOverlap:
    def test_fraction_bounded(self):
        grads = make_grads(2, SPEC_SMALL)
        cfg = EngineConfig(bucket_bytes=256)
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        assert 0.0 <= report.overlap_fraction <= 1.0

    def test_disabled_overlap_reports_zero(self):
        grads = make_grads(2, SPEC_SMALL)
        cfg = EngineConfig(overlap=False)
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        assert report.overlap_fraction == 0.0

    def test_single_bucket_cannot_hide_comm(self):
        # One bucket is ready only after all backward compute: nothing to
        # overlap with, so the full comm time is exposed.
        grads = make_grads(2, SPEC_MIXED)
        cfg = EngineConfig(bucket_bytes=1 << 30)
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        assert report.fusion.num_collectives == 1
        assert report.overlap_fraction == 0.0

    def test_slow_compute_hides_comm(self):
        # When backward compute dominates, early buckets' comm hides under
        # the compute still producing later buckets.
        grads = make_grads(2, SPEC_SMALL)
        cfg = EngineConfig(bucket_bytes=256, compute_s_per_byte=1e-3)
        _, report = GradientExchangeEngine(2, cfg).exchange(World(2), grads)
        assert report.fusion.num_collectives > 1
        assert report.overlap_fraction > 0.5


class TestTelemetry:
    def test_counters_and_spans_emitted(self):
        grads = make_grads(2, SPEC_SMALL)
        tel = Telemetry()
        with activate(tel):
            _, report = GradientExchangeEngine(2).exchange(World(2), grads)
        assert tel.metrics.counter("comm.engine.exchanges").value == 1
        assert (tel.metrics.counter("comm.engine.collectives").value
                == report.fusion.num_collectives)
        assert (tel.metrics.counter("comm.engine.bytes_on_wire").value
                == report.data_bytes)
        names = [s.name for s in tel.tracer.spans()]
        assert "engine.exchange" in names and "engine.bucket" in names
