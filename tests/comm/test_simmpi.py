"""Functional MPI substrate."""
import numpy as np
import pytest

from repro.comm import World
from repro.errors import (DeadlockError, MessageDropped, RankError,
                          RankFailure)
from repro.resilience import FaultInjector, FaultPlan, FaultSpec


class TestPointToPoint:
    def test_send_recv(self):
        w = World(2)
        w.send(np.arange(3), 0, 1)
        out = w.recv(1, 0)
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_fifo_order_per_channel(self):
        w = World(2)
        w.send("a", 0, 1)
        w.send("b", 0, 1)
        assert w.recv(1, 0) == "a"
        assert w.recv(1, 0) == "b"

    def test_tags_separate_channels(self):
        w = World(2)
        w.send("x", 0, 1, tag=1)
        w.send("y", 0, 1, tag=2)
        assert w.recv(1, 0, tag=2) == "y"
        assert w.recv(1, 0, tag=1) == "x"

    def test_recv_without_message_is_deadlock(self):
        w = World(2)
        with pytest.raises(LookupError, match="deadlock"):
            w.recv(1, 0)

    def test_payload_copied_on_send(self):
        w = World(2)
        data = np.zeros(3)
        w.send(data, 0, 1)
        data[:] = 99
        np.testing.assert_array_equal(w.recv(1, 0), [0, 0, 0])

    def test_rank_validation(self):
        w = World(2)
        with pytest.raises(ValueError):
            w.send(1, 0, 5)
        with pytest.raises(ValueError):
            w.recv(2, 0)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(0)

    def test_pending_count(self):
        w = World(2)
        assert w.pending(1, 0) == 0
        w.send(1, 0, 1)
        assert w.pending(1, 0) == 1


class TestTrafficStats:
    def test_message_and_byte_accounting(self):
        w = World(3)
        w.send(np.zeros(10, dtype=np.float32), 0, 1)
        w.send(np.zeros(5, dtype=np.float64), 1, 2)
        assert w.stats.total_messages == 2
        assert w.stats.total_bytes == 40 + 40
        assert w.stats.sent_messages[0] == 1
        w.recv(1, 0)
        assert w.stats.recv_messages[1] == 1

    def test_control_message_nominal_size(self):
        w = World(2)
        w.send({"ready": True}, 0, 1)
        assert w.stats.total_bytes == 64

    def test_reset(self):
        w = World(2)
        w.send(1, 0, 1)
        w.stats.reset()
        assert w.stats.total_messages == 0

    def test_max_messages_per_rank(self):
        w = World(3)
        for _ in range(3):
            w.send(1, 0, 1)
        for _ in range(3):
            w.recv(1, 0)
        assert w.stats.max_messages_per_rank() == 3


class TestErrorPaths:
    def test_send_rank_out_of_range(self):
        w = World(3)
        with pytest.raises(RankError, match="out of range"):
            w.send(1, 0, 3)
        with pytest.raises(RankError):
            w.send(1, -1, 0)

    def test_recv_rank_out_of_range(self):
        w = World(3)
        with pytest.raises(RankError):
            w.recv(3, 0)
        with pytest.raises(RankError):
            w.recv(0, -2)

    def test_rank_error_is_still_value_error(self):
        w = World(2)
        with pytest.raises(ValueError):
            w.send(1, 0, 9)

    def test_recv_on_empty_queue_is_deadlock_error(self):
        w = World(2)
        with pytest.raises(DeadlockError, match="deadlock"):
            w.recv(1, 0)

    def test_recv_wrong_tag_is_deadlock_error(self):
        w = World(2)
        w.send("x", 0, 1, tag=1)
        with pytest.raises(DeadlockError):
            w.recv(1, 0, tag=2)

    def test_failed_rank_poisons_send_and_recv(self):
        w = World(3)
        w.send("pre", 0, 2)
        w.fail_rank(2)
        with pytest.raises(RankFailure) as info:
            w.send("post", 0, 2)
        assert info.value.rank == 2
        with pytest.raises(RankFailure):
            w.recv(2, 0)
        assert w.failed_ranks == frozenset({2})
        assert w.alive_ranks() == [0, 1]

    def test_drain_discards_pending(self):
        w = World(2)
        w.send("a", 0, 1)
        w.send("b", 0, 1, tag=5)
        assert w.drain() == 2
        assert w.pending(1, 0) == 0


def _drop_world(count=1, step=0, prob=None, seed=0, size=2):
    plan = FaultPlan([FaultSpec("drop_msg", step=step, count=count,
                                prob=prob)], seed=seed)
    injector = FaultInjector(plan)
    injector.begin_step(step)
    return World(size, fault_injector=injector), injector


class TestFaultHooks:
    def test_dropped_message_raises_at_receiver(self):
        w, injector = _drop_world()
        w.send("lost", 0, 1)
        with pytest.raises(MessageDropped) as info:
            w.recv(1, 0)
        assert (info.value.src, info.value.dst) == (0, 1)
        assert injector.counts["drop_msg"] == 1
        assert w.stats.total_dropped == 1

    def test_drop_budget_exhausts(self):
        w, _ = _drop_world(count=1)
        w.send("lost", 0, 1)
        w.send("kept", 0, 1)
        with pytest.raises(MessageDropped):
            w.recv(1, 0)
        assert w.recv(1, 0) == "kept"

    def test_recv_reliable_resends_after_drop(self):
        w, _ = _drop_world(count=1)
        w.send("payload", 0, 1)
        out = w.recv_reliable(1, 0, resend=lambda: "payload")
        assert out == "payload"

    def test_duplicate_is_deduplicated_on_receive(self):
        plan = FaultPlan([FaultSpec("dup_msg", step=0, count=1)])
        injector = FaultInjector(plan)
        injector.begin_step(0)
        w = World(2, fault_injector=injector)
        w.send("once", 0, 1)
        w.send("two", 0, 1)
        assert w.recv(1, 0) == "once"
        assert w.recv(1, 0) == "two"     # the retransmission was skipped
        with pytest.raises(DeadlockError):
            w.recv(1, 0)
        assert w.stats.total_duplicated == 1

    def test_probabilistic_drops_deterministic_under_seed(self):
        def decisions(seed):
            w, _ = _drop_world(count=3, prob=0.5, seed=seed)
            out = []
            for i in range(10):
                w.send(i, 0, 1)
                try:
                    out.append(w.recv(1, 0))
                except MessageDropped:
                    out.append("drop")
            return out

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)  # seed actually matters
        assert decisions(7).count("drop") == 3

    def test_faults_arm_only_at_their_step(self):
        plan = FaultPlan([FaultSpec("drop_msg", step=2)])
        injector = FaultInjector(plan)
        w = World(2, fault_injector=injector)
        injector.begin_step(0)
        w.send("safe", 0, 1)
        assert w.recv(1, 0) == "safe"
        injector.begin_step(2)
        w.send("lost", 0, 1)
        with pytest.raises(MessageDropped):
            w.recv(1, 0)

    def test_uninjected_world_unaffected(self):
        w = World(2)
        w.send("x", 0, 1)
        assert w.recv(1, 0) == "x"
        assert w.stats.total_dropped == 0


class TestReferenceCollectives:
    def test_gather(self):
        w = World(4)
        out = w.gather([10, 11, 12, 13], root=0)
        assert out == [10, 11, 12, 13]
        assert w.stats.recv_messages[0] == 3

    def test_broadcast(self):
        w = World(4)
        out = w.broadcast("hello", root=0)
        assert out == ["hello"] * 4

    def test_gather_needs_all_values(self):
        w = World(3)
        with pytest.raises(ValueError):
            w.gather([1, 2], root=0)


class TestCollectiveChecks:
    def test_off_by_default_and_noop(self):
        w = World(2)
        assert w.collective_checks is False
        w.announce_collective(0, "allreduce", 7)   # no-op, nothing pending
        assert w.collective_rounds == 0

    def test_agreed_round_completes(self):
        w = World(3, collective_checks=True)
        for r in range(3):
            w.announce_collective(r, "allreduce", 7, (4,), "float32")
        assert w.collective_rounds == 1

    def test_disagreeing_signature_raises_at_call_site(self):
        from repro.errors import CollectiveMismatch

        w = World(2, collective_checks=True)
        w.announce_collective(0, "allreduce", 7, (4,), "float32")
        with pytest.raises(CollectiveMismatch, match="disagreement"):
            w.announce_collective(1, "allreduce", 7, (8,), "float32")

    def test_divergent_schedule_raises(self):
        from repro.errors import CollectiveMismatch

        w = World(2, collective_checks=True)
        w.announce_collective(0, "allreduce", 7)
        with pytest.raises(CollectiveMismatch, match="divergent"):
            w.announce_collective(0, "broadcast", 8)

    def test_failed_rank_excluded_from_round(self):
        w = World(3, collective_checks=True)
        w.fail_rank(2)
        w.announce_collective(0, "allreduce", 7)
        w.announce_collective(1, "allreduce", 7)
        assert w.collective_rounds == 1

    def test_reference_collectives_announce(self):
        w = World(2, collective_checks=True)
        w.broadcast("hello", root=0)
        w.gather(["a", "b"], root=0)
        assert w.collective_rounds == 2

    def test_allreduce_facade_announces(self):
        from repro.comm import allreduce

        w = World(2, collective_checks=True)
        bufs = [np.ones(4, dtype=np.float32) for _ in range(2)]
        allreduce(w, bufs, strategy="ring")
        assert w.collective_rounds >= 1

    def test_mismatch_is_a_comm_error(self):
        from repro.errors import CollectiveMismatch, CommError

        assert issubclass(CollectiveMismatch, CommError)
