"""Functional MPI substrate."""
import numpy as np
import pytest

from repro.comm import World


class TestPointToPoint:
    def test_send_recv(self):
        w = World(2)
        w.send(np.arange(3), 0, 1)
        out = w.recv(1, 0)
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_fifo_order_per_channel(self):
        w = World(2)
        w.send("a", 0, 1)
        w.send("b", 0, 1)
        assert w.recv(1, 0) == "a"
        assert w.recv(1, 0) == "b"

    def test_tags_separate_channels(self):
        w = World(2)
        w.send("x", 0, 1, tag=1)
        w.send("y", 0, 1, tag=2)
        assert w.recv(1, 0, tag=2) == "y"
        assert w.recv(1, 0, tag=1) == "x"

    def test_recv_without_message_is_deadlock(self):
        w = World(2)
        with pytest.raises(LookupError, match="deadlock"):
            w.recv(1, 0)

    def test_payload_copied_on_send(self):
        w = World(2)
        data = np.zeros(3)
        w.send(data, 0, 1)
        data[:] = 99
        np.testing.assert_array_equal(w.recv(1, 0), [0, 0, 0])

    def test_rank_validation(self):
        w = World(2)
        with pytest.raises(ValueError):
            w.send(1, 0, 5)
        with pytest.raises(ValueError):
            w.recv(2, 0)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(0)

    def test_pending_count(self):
        w = World(2)
        assert w.pending(1, 0) == 0
        w.send(1, 0, 1)
        assert w.pending(1, 0) == 1


class TestTrafficStats:
    def test_message_and_byte_accounting(self):
        w = World(3)
        w.send(np.zeros(10, dtype=np.float32), 0, 1)
        w.send(np.zeros(5, dtype=np.float64), 1, 2)
        assert w.stats.total_messages == 2
        assert w.stats.total_bytes == 40 + 40
        assert w.stats.sent_messages[0] == 1
        w.recv(1, 0)
        assert w.stats.recv_messages[1] == 1

    def test_control_message_nominal_size(self):
        w = World(2)
        w.send({"ready": True}, 0, 1)
        assert w.stats.total_bytes == 64

    def test_reset(self):
        w = World(2)
        w.send(1, 0, 1)
        w.stats.reset()
        assert w.stats.total_messages == 0

    def test_max_messages_per_rank(self):
        w = World(3)
        for _ in range(3):
            w.send(1, 0, 1)
        for _ in range(3):
            w.recv(1, 0)
        assert w.stats.max_messages_per_rank() == 3


class TestReferenceCollectives:
    def test_gather(self):
        w = World(4)
        out = w.gather([10, 11, 12, 13], root=0)
        assert out == [10, 11, 12, 13]
        assert w.stats.recv_messages[0] == 3

    def test_broadcast(self):
        w = World(4)
        out = w.broadcast("hello", root=0)
        assert out == ["hello"] * 4

    def test_gather_needs_all_values(self):
        w = World(3)
        with pytest.raises(ValueError):
            w.gather([1, 2], root=0)
