"""Setup shim: lets ``pip install -e .`` work on offline machines without
the ``wheel`` package (metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
