"""Model replicas and the least-loaded, fault-tolerant dispatch pool.

Scale-out serving mirrors the training topology: N identical model
replicas (same weights, like the post-broadcast Horovod ranks) with
batches routed to whichever replica frees up first.  Resilience reuses
the training stack's machinery directly:

* a replica that raises :class:`~repro.errors.FaultInjected` (from a
  seeded :class:`~repro.resilience.FaultPlan`, stepped once per dispatch)
  or any other :class:`~repro.errors.ReproError` is marked dead and the
  *same batch* is retried on a survivor under a
  :class:`~repro.resilience.RetryPolicy` — no admitted request is lost
  while any replica survives;
* the pool degrades elastically the way
  :meth:`repro.core.DistributedTrainer.shrink` does — dead replicas leave
  the routing set, the survivors absorb the load, and telemetry records
  the shrink (``serve.replica_failures``, ``serve.pool_size``).

Replicas run the *real* cross-request window stacking: every batch's
windows are gathered into one list, deduplicated through the shared
:class:`~repro.serve.cache.TileCache`, and forwarded in chunks of
``forward_batch`` (see :func:`repro.core.inference.forward_windows`).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.inference import blend_windows, forward_windows, tile_positions
from ..errors import RankFailure, ReproError
from ..framework.module import Module
from ..resilience import RetryPolicy, RetryState, with_retries
from ..telemetry import get_active
from ..telemetry.clock import WallClock
from .request import InferenceRequest

__all__ = ["Replica", "BatchResult", "ReplicaPool"]


class Replica:
    """One model instance plus its scheduling state."""

    def __init__(self, replica_id: int, model: Module, clock=None):
        self.replica_id = int(replica_id)
        self.model = model
        # compute_s must be *measured* wall time even when a simulated
        # telemetry clock drives the virtual service clock it feeds, so
        # the default is an explicit WallClock, not the session clock.
        self.clock = clock if clock is not None else WallClock()
        self.alive = True
        self.busy_until = 0.0        # server-clock time this replica frees up
        self.batches = 0
        self.items = 0
        self.windows = 0
        self.failed_reason: str | None = None

    def run_batch(self, requests: list[InferenceRequest],
                  window_hw: tuple[int, int],
                  stride_hw: tuple[int, int] | None,
                  forward_batch: int, cache=None
                  ) -> tuple[list[np.ndarray], float, int]:
        """Segment every request in one stacked pass.

        Returns ``(class_maps, compute_s, n_windows)`` where ``compute_s``
        is the measured wall time of the real forward work — the number
        the server feeds its virtual service clock and the admission
        controller's EWMA.
        """
        wh, ww = window_hw
        t0 = self.clock.now()
        all_tiles: list[np.ndarray] = []
        layout = []
        for req in requests:
            _, h, w = req.image.shape
            sh, sw = stride_hw or (wh // 2, ww // 2)
            ys = tile_positions(h, wh, sh)
            xs = tile_positions(w, ww, sw)
            start = len(all_tiles)
            all_tiles.extend(req.image[:, y0: y0 + wh, x0: x0 + ww]
                             for y0 in ys for x0 in xs)
            layout.append((start, len(all_tiles) - start, ys, xs, (h, w)))
        outs = forward_windows(self.model, all_tiles,
                               batch_size=forward_batch, cache=cache)
        maps = []
        for start, count, ys, xs, hw in layout:
            logits = blend_windows(outs[start: start + count], ys, xs,
                                   hw, window_hw)
            maps.append(np.argmax(logits, axis=0))
        compute_s = self.clock.now() - t0
        self.batches += 1
        self.items += len(requests)
        self.windows += len(all_tiles)
        return maps, compute_s, len(all_tiles)


@dataclass
class BatchResult:
    """Outcome of one (possibly retried) batch dispatch."""

    class_maps: list[np.ndarray]
    replica_id: int
    compute_s: float
    windows: int
    retries: int = 0
    backoff_s: float = 0.0
    failures: list[int] = field(default_factory=list)   # replicas that died


class ReplicaPool:
    """N replicas, least-loaded routing, retry-on-survivor dispatch."""

    def __init__(self, model_factory, num_replicas: int,
                 window_hw: tuple[int, int],
                 stride_hw: tuple[int, int] | None = None,
                 forward_batch: int = 32,
                 cache=None,
                 retry: RetryPolicy | None = None,
                 injector=None):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.window_hw = tuple(window_hw)
        self.stride_hw = tuple(stride_hw) if stride_hw else None
        self.forward_batch = int(forward_batch)
        self.cache = cache
        self.retry = retry or RetryPolicy(max_attempts=3, backoff_base_s=0.001,
                                          max_backoff_s=0.01)
        self.injector = injector
        self.replicas = [Replica(i, model_factory())
                         for i in range(num_replicas)]
        self._dispatches = 0

    # -- membership --------------------------------------------------------

    @property
    def alive_replicas(self) -> list[Replica]:
        return [r for r in self.replicas if r.alive]

    @property
    def alive_ids(self) -> list[int]:
        return [r.replica_id for r in self.alive_replicas]

    @property
    def dead_ids(self) -> list[int]:
        return [r.replica_id for r in self.replicas if not r.alive]

    def next_free_s(self) -> float | None:
        """Earliest time any live replica frees up (None if none live)."""
        alive = self.alive_replicas
        if not alive:
            return None
        return min(r.busy_until for r in alive)

    def free_replica(self, now: float) -> Replica | None:
        """Least-loaded live replica that is idle at ``now``."""
        candidates = [r for r in self.alive_replicas if r.busy_until <= now]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.busy_until, r.replica_id))

    # -- elastic degradation ----------------------------------------------

    def _mark_dead(self, replica: Replica, reason: str) -> None:
        """Drop a replica from routing — the serving analogue of
        :meth:`repro.core.DistributedTrainer.shrink`."""
        if not replica.alive:
            return
        replica.alive = False
        replica.failed_reason = reason
        tel = get_active()
        if tel.enabled:
            tel.metrics.counter("serve.replica_failures").inc()
            tel.metrics.gauge("serve.pool_size").set(len(self.alive_replicas))
            tel.tracer.instant("replica_failed", category="serve",
                               replica=replica.replica_id, reason=reason)

    # -- dispatch ----------------------------------------------------------

    def execute(self, requests: list[InferenceRequest],
                now: float) -> BatchResult:
        """Run one batch, retrying on survivors after a replica failure.

        Raises :class:`~repro.resilience.RetriesExhausted` only when the
        retry budget runs out (e.g. every replica is dead); any admitted
        batch completes as long as a survivor exists within the budget.
        """
        step = self._dispatches
        self._dispatches += 1
        if self.injector is not None:
            self.injector.begin_step(step)
        failures: list[int] = []
        state = RetryState()

        def attempt():
            replica = self.free_replica(now)
            if replica is None:
                # Survivors may exist but be busy; route to the least
                # loaded one anyway — a retried batch must not stall.
                alive = self.alive_replicas
                if not alive:
                    raise ReproError("no live replicas in the pool")
                replica = min(alive,
                              key=lambda r: (r.busy_until, r.replica_id))
            if (self.injector is not None
                    and replica.replica_id in self.injector.failed_ranks):
                self._mark_dead(replica, reason="injected rank failure")
                failures.append(replica.replica_id)
                raise RankFailure(replica.replica_id)
            try:
                maps, compute_s, windows = replica.run_batch(
                    requests, self.window_hw, self.stride_hw,
                    self.forward_batch, cache=self.cache)
            except ReproError as exc:
                self._mark_dead(replica, reason=repr(exc))
                failures.append(replica.replica_id)
                raise
            return replica, maps, compute_s, windows

        replica, maps, compute_s, windows = with_retries(
            attempt, self.retry, retry_on=(ReproError,),
            label="serve.dispatch", state=state)
        return BatchResult(
            class_maps=maps, replica_id=replica.replica_id,
            compute_s=compute_s, windows=windows,
            retries=state.retries, backoff_s=state.backoff_total_s,
            failures=failures)
