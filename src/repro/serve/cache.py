"""Content-keyed LRU tile cache over sliding-window logits.

Climate snapshots arrive with heavy spatial and temporal redundancy — the
same basin gets re-segmented as analysts pan across a timestep, and bulk
re-scoring repeats whole snapshots.  Since tiled inference decomposes
every request into fixed-size windows, caching *per-window logits* keyed
on window **content** lets overlapping or repeated regions skip the model
forward entirely, across requests and across replicas (all replicas share
one cache because they share identical weights).

Keys are SHA-1 of the raw window bytes plus shape/dtype plus the pool's
``model_key``, so a weight change (new ``model_key``) invalidates
everything and two numerically identical windows from different requests
collide — which is exactly the point.  The budget is in *bytes* of stored
logits, evicting least-recently-used entries; an entry larger than the
whole budget is simply not stored.
"""
from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "TileCache"]


@dataclass
class CacheStats:
    """Monotonic counters for one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stored_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "stored_bytes": self.stored_bytes,
                "hit_rate": self.hit_rate}


class TileCache:
    """Byte-budgeted LRU of per-window logit blocks.

    Satisfies the duck type :func:`repro.core.inference.forward_windows`
    consults: ``key(tile)``, ``get(key)``, ``put(key, value)``.
    """

    def __init__(self, budget_bytes: int, model_key: str = ""):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = int(budget_bytes)
        self.model_key = str(model_key)
        self.stats = CacheStats()
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying ------------------------------------------------------------

    def key(self, tile: np.ndarray) -> str:
        """Content key: window bytes + shape + dtype + model version."""
        h = hashlib.sha1()
        h.update(self.model_key.encode())
        h.update(str(tile.shape).encode())
        h.update(str(tile.dtype).encode())
        h.update(np.ascontiguousarray(tile).tobytes())
        return h.hexdigest()

    # -- lookup / insert ---------------------------------------------------

    def get(self, key: str) -> np.ndarray | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, value: np.ndarray) -> None:
        if value.nbytes > self.budget_bytes:
            return                  # would evict the whole cache for nothing
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.stored_bytes -= old.nbytes
        self._entries[key] = value
        self.stats.stored_bytes += value.nbytes
        while self.stats.stored_bytes > self.budget_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.stats.stored_bytes -= evicted.nbytes
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.stats.stored_bytes = 0
