"""Request/response records for the inference service.

A request is one (C, H, W) climate snapshot to segment; the server's
answer is the argmax class map from seam-free tiled inference
(:mod:`repro.core.inference`).  Every offered request gets exactly one
response — ``served`` with a class map, ``shed`` by admission control, or
``failed`` when no live replica remains — so callers can audit that no
admitted request was ever lost (the resilience acceptance invariant).

Timestamps are seconds on the server's clock (a
:class:`repro.telemetry.SimulatedClock` in tests and the CLI, so queueing
and batching dynamics are deterministic and virtual-time latencies are
exact).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DEFAULT_LANES", "InferenceRequest", "InferenceResponse"]

#: Priority lanes, highest priority first: interactive requests are
#: batched ahead of bulk backfill traffic.
DEFAULT_LANES = ("interactive", "bulk")


@dataclass
class InferenceRequest:
    """One snapshot to segment, with its arrival metadata."""

    request_id: int
    image: np.ndarray               # (C, H, W) float32 snapshot
    lane: str = "interactive"
    arrival_s: float = 0.0          # offered time on the server clock
    enqueued_s: float | None = None  # set on admission

    def __post_init__(self):
        if self.image.ndim != 3:
            raise ValueError(
                f"request image must be (C, H, W); got {self.image.shape}")


@dataclass
class InferenceResponse:
    """The terminal outcome of one request."""

    request_id: int
    lane: str
    status: str                     # "served" | "shed" | "failed"
    arrival_s: float
    completed_s: float | None = None
    replica_id: int | None = None   # survivor that computed the answer
    batch_size: int = 0             # size of the micro-batch it rode in
    class_map: np.ndarray | None = field(default=None, repr=False)
    shed_reason: str | None = None  # "queue_full" | "slo" when shed
    error: str | None = None        # exception repr when failed

    @property
    def latency_s(self) -> float | None:
        """Admission-to-completion latency (None unless served)."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s
