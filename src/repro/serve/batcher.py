"""Dynamic micro-batching: coalesce concurrent requests into model batches.

Per-request inference wastes the accelerator: each tiny forward pays the
full per-call overhead (framework dispatch, im2col setup, BLAS launch)
for one window of data.  The micro-batcher holds arriving requests just
long enough to form a batch, trading a bounded queueing delay for a
multiplicative throughput win (the ``bench_serving`` benchmark pins the
>= 3x figure at batch size 8).

The policy is the classic two-knob one (as in ORBIT-2-style serving
stacks): flush when ``max_batch_size`` requests are waiting, or when the
oldest waiting request has aged ``max_wait_s`` — whichever comes first.
All timing reads the server's clock (a
:class:`repro.telemetry.SimulatedClock` in tests), so batch-formation
behaviour is deterministic and wall-clock-free under test.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..telemetry import get_active
from .queue import RequestQueue
from .request import InferenceRequest

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """The two knobs: size trigger and age trigger."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


class MicroBatcher:
    """Decides when the queue's head becomes a dispatchable batch."""

    def __init__(self, policy: BatchPolicy, queue: RequestQueue):
        self.policy = policy
        self.queue = queue
        self.batches_formed = 0

    def ready(self, now: float) -> bool:
        """True when a batch should be dispatched at time ``now``."""
        depth = self.queue.depth()
        if depth == 0:
            return False
        if depth >= self.policy.max_batch_size:
            return True
        oldest = self.queue.oldest_enqueue_s()
        return oldest is not None and now - oldest >= self.policy.max_wait_s

    def next_deadline(self) -> float | None:
        """Absolute time the age trigger fires (None when queue is empty)."""
        oldest = self.queue.oldest_enqueue_s()
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def take(self, now: float) -> list[InferenceRequest]:
        """Pop the next batch (priority order); records batch-size metrics."""
        batch = self.queue.pop(self.policy.max_batch_size)
        if batch:
            self.batches_formed += 1
            tel = get_active()
            if tel.enabled:
                tel.metrics.counter("serve.batches").inc()
                tel.metrics.histogram("serve.batch_size").observe(len(batch))
                for req in batch:
                    tel.metrics.histogram(
                        "serve.queue_wait_s", lane=req.lane).observe(
                            now - (req.enqueued_s or now))
        return batch
