"""Consistent-hash shard map over replicas, with virtual nodes.

Sharding the tile-key space across replicas is what lets warm tiles
survive scale events: with plain modulo hashing, adding one replica to a
pool of N remaps ~(N-1)/N of all keys — every cache in the fleet goes
cold at once.  A consistent-hash ring remaps only the slice the new
replica takes over (~1/N in expectation), so the steady-state hit rate
dips by one shard's worth and recovers, instead of collapsing.

Implementation notes:

* **Deterministic across processes.**  Points come from SHA-1 of
  ``"{salt}/{node}#{vnode}"`` — never the builtin ``hash()``, whose
  per-process randomization would scatter the shard map between the
  server, its tests, and a replayed run.
* **Virtual nodes** smooth ownership: each replica contributes
  ``vnodes`` points, so the max/mean ownership ratio concentrates toward
  1 as ``vnodes`` grows (the balance the fleet's least-loaded fallback
  no longer has to correct).
* **Exclusion lookup.**  ``assign(key, exclude={r})`` walks past a
  replica's points, yielding the key's *next* owner — the routing used
  both for the warm-up admission ramp (keys not yet ramped onto a new
  replica stay with their previous owner) and for draining a dead one.
"""
from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "remap_fraction"]

_HASH_BITS = 64
_HASH_MASK = (1 << _HASH_BITS) - 1


def _digest(text: str) -> int:
    """Stable 64-bit hash of ``text`` (SHA-1 prefix, process-independent)."""
    return int.from_bytes(
        hashlib.sha1(text.encode()).digest()[:8], "big") & _HASH_MASK


class HashRing:
    """Consistent hashing of keys onto integer node ids.

    Parameters
    ----------
    nodes:
        Initial node ids (any hashable ints).
    vnodes:
        Virtual nodes per node; more points = tighter balance.
    salt:
        Namespace mixed into every point hash, so two rings over the same
        node ids (e.g. two cells) shard the key space independently.
    """

    def __init__(self, nodes=(), vnodes: int = 64, salt: str = ""):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self.salt = str(salt)
        self._nodes: set[int] = set()
        self._points: list[tuple[int, int]] = []    # sorted (hash, node)
        self._hashes: list[int] = []                # parallel hash column
        self._key_cache: dict[int, int] = {}
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return int(node) in self._nodes

    @property
    def nodes(self) -> list[int]:
        return sorted(self._nodes)

    def add(self, node: int) -> None:
        """Insert ``node``'s virtual points (no-op if already present)."""
        node = int(node)
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            h = _digest(f"{self.salt}/{node}#{v}")
            idx = bisect.bisect_left(self._hashes, h)
            self._points.insert(idx, (h, node))
            self._hashes.insert(idx, h)

    def remove(self, node: int) -> None:
        """Drop ``node``'s points; its keys flow to their ring successors."""
        node = int(node)
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]
        self._hashes = [h for h, _ in self._points]

    # -- lookup --------------------------------------------------------------

    def key_hash(self, key) -> int:
        """Position of ``key`` on the ring (cached for int keys)."""
        if isinstance(key, int):
            h = self._key_cache.get(key)
            if h is None:
                h = self._key_cache[key] = _digest(f"{self.salt}?{key}")
            return h
        return _digest(f"{self.salt}?{key}")

    def key_fraction(self, key) -> float:
        """Stable per-key uniform in [0, 1) — the admission-ramp coin."""
        return (self.key_hash(key) & 0xFFFF) / 65536.0

    def assign(self, key, exclude=()) -> int | None:
        """Owner of ``key``: the first point at/after its hash, clockwise.

        ``exclude`` skips nodes (warm-up fallback, drain routing); returns
        ``None`` when the ring is empty or fully excluded.
        """
        if not self._points:
            return None
        if exclude and not (self._nodes - set(exclude)):
            return None
        h = self.key_hash(key)
        n = len(self._points)
        idx = bisect.bisect_left(self._hashes, h)
        for step in range(n):
            node = self._points[(idx + step) % n][1]
            if node not in exclude:
                return node
        return None

    # -- diagnostics ---------------------------------------------------------

    def ownership(self) -> dict[int, float]:
        """Fraction of the hash space each node owns (sums to 1.0)."""
        if not self._points:
            return {}
        spans: dict[int, int] = {n: 0 for n in self._nodes}
        prev = self._hashes[-1] - (1 << _HASH_BITS)    # wraparound arc
        for h, node in self._points:
            spans[node] += h - prev
            prev = h
        total = float(1 << _HASH_BITS)
        return {n: spans[n] / total for n in sorted(spans)}

    def assignment(self, keys) -> dict:
        """Current owner for every key in ``keys`` (remap measurement)."""
        return {k: self.assign(k) for k in keys}


def remap_fraction(before: dict, after: dict) -> float:
    """Fraction of shared keys whose owner changed between two snapshots."""
    common = before.keys() & after.keys()
    if not common:
        return 0.0
    moved = sum(1 for k in common if before[k] != after[k])
    return moved / len(common)
