"""Telemetry-driven autoscaling: streaming windows in, scale decisions out.

The autoscaler closes the loop the streaming layer was built for: it
subscribes to the fleet's per-cell series on the session's
:class:`~repro.telemetry.streaming.StreamingAggregator` —

* ``fleet.arrivals{cell=X}`` (counter delta per window → offered rate),
* ``fleet.service_ms{cell=X}`` (gauge → EWMA per-window service time),
* ``fleet.queue_windows{cell=X}`` (gauge → backlog pressure),

folds each into a time-decayed :class:`~repro.telemetry.streaming.Ewma`,
and on every control tick converts them into a demand estimate::

    demand_replicas = arrival_rps * windows_per_request * service_s
                      + backlog_windows * service_s / drain_horizon_s
    target = ceil(demand_replicas / target_utilization)

Growth and shrink are deliberately asymmetric, the way
:meth:`repro.core.DistributedTrainer.shrink` treats losing ranks as the
careful path: growth reacts fast (short cooldown, up to
``max_grow_step`` replicas at once, each admitted through a warm-up
ramp), shrink is slow (long cooldown, one replica per decision, only
when the surviving set would still sit under the utilization target with
hysteresis).  Every decision is returned as a :class:`ScaleDecision` so
the fleet can apply, trace, and report it.
"""
from __future__ import annotations

import math
import re
from dataclasses import dataclass

from ...telemetry.streaming import Ewma, StreamingAggregator, WindowSummary

__all__ = ["AutoscalerConfig", "ScaleDecision", "Autoscaler"]

_CELL_LABEL = re.compile(r"\{cell=([^,}]+)")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs for one fleet's autoscaler (shared by all cells)."""

    min_replicas: int = 1
    max_replicas: int = 16
    target_utilization: float = 0.70    # demand / capacity we steer toward
    shrink_utilization: float = 0.45    # hysteresis: shrink only below this
    grow_cooldown_s: float = 2.0
    shrink_cooldown_s: float = 8.0
    max_grow_step: int = 2              # replicas added per decision
    max_shrink_step: int = 1            # replicas removed per decision
    warmup_s: float = 2.0               # admission ramp for a new replica
    drain_horizon_s: float = 2.0        # time budget to absorb the backlog
    ewma_halflife_s: float = 4.0

    def __post_init__(self):
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0.0 <= self.shrink_utilization < self.target_utilization:
            raise ValueError(
                "shrink_utilization must sit below target_utilization")
        if self.max_grow_step < 1 or self.max_shrink_step < 1:
            raise ValueError("scale steps must be >= 1")
        if self.warmup_s < 0 or self.drain_horizon_s <= 0:
            raise ValueError("warmup_s >= 0 and drain_horizon_s > 0 required")


@dataclass(frozen=True)
class ScaleDecision:
    """One cell's verdict at one control tick."""

    t: float
    cell: str
    kind: str                   # "grow" | "shrink" | "hold"
    delta: int                  # replicas to add (+) or remove (-)
    target: int                 # clamped target replica count
    current: int
    reason: str
    arrival_rps: float
    service_window_s: float
    backlog_windows: float
    predicted_utilization: float

    def as_dict(self) -> dict:
        return {
            "t": self.t, "cell": self.cell, "kind": self.kind,
            "delta": self.delta, "target": self.target,
            "current": self.current, "reason": self.reason,
            "arrival_rps": self.arrival_rps,
            "service_window_s": self.service_window_s,
            "backlog_windows": self.backlog_windows,
            "predicted_utilization": self.predicted_utilization,
        }


class _CellSignals:
    """EWMA-tracked load signals for one cell."""

    __slots__ = ("arrival_rps", "service_window_s", "backlog_windows",
                 "last_grow_t", "last_shrink_t")

    def __init__(self, halflife_s: float):
        self.arrival_rps = Ewma(halflife_s)
        self.service_window_s = Ewma(halflife_s)
        self.backlog_windows = 0.0
        self.last_grow_t = -math.inf
        self.last_shrink_t = -math.inf


class Autoscaler:
    """Per-cell grow/shrink policy over streaming telemetry windows.

    Attach with :meth:`subscribe` (the fleet does this at construction);
    thereafter every closed ``fleet.*`` window updates the cell's EWMAs,
    and :meth:`decide` turns the current signals into a
    :class:`ScaleDecision`.  Pure function of the observed windows — no
    wall clock, no randomness — so a replayed run scales identically.
    """

    def __init__(self, config: AutoscalerConfig,
                 windows_per_request: float = 1.0):
        self.config = config
        self.windows_per_request = float(windows_per_request)
        self.decisions: list[ScaleDecision] = []
        self._cells: dict[str, _CellSignals] = {}

    # -- streaming input -----------------------------------------------------

    def subscribe(self, streams: StreamingAggregator) -> int:
        """Route every closed ``fleet.*`` window into :meth:`observe`."""
        return streams.subscribe("fleet.*", self.observe)

    def _signals(self, cell: str) -> _CellSignals:
        sig = self._cells.get(cell)
        if sig is None:
            sig = self._cells[cell] = _CellSignals(
                self.config.ewma_halflife_s)
        return sig

    def observe(self, summary: WindowSummary) -> None:
        """Fold one closed streaming window into the owning cell's EWMAs."""
        m = _CELL_LABEL.search(summary.series)
        if m is None:
            return
        sig = self._signals(m.group(1))
        if summary.series.startswith("fleet.arrivals{"):
            sig.arrival_rps.update(summary.rate, summary.end)
        elif summary.series.startswith("fleet.service_ms{"):
            sig.service_window_s.update(summary.mean / 1e3, summary.end)
        elif summary.series.startswith("fleet.queue_windows{"):
            sig.backlog_windows = summary.last

    # -- the policy ----------------------------------------------------------

    def demand_replicas(self, cell: str) -> float:
        """Replica-equivalents of current demand (steady state + backlog)."""
        sig = self._signals(cell)
        service = sig.service_window_s.mean
        if service <= 0 or sig.service_window_s.updates == 0:
            return 0.0
        steady = (sig.arrival_rps.mean * self.windows_per_request * service)
        drain = sig.backlog_windows * service / self.config.drain_horizon_s
        return max(steady, 0.0) + max(drain, 0.0)

    def decide(self, cell: str, now: float,
               current_replicas: int) -> ScaleDecision:
        """Grow/shrink/hold verdict for ``cell`` at ``now``."""
        cfg = self.config
        sig = self._signals(cell)
        demand = self.demand_replicas(cell)
        target = max(cfg.min_replicas,
                     min(cfg.max_replicas,
                         math.ceil(demand / cfg.target_utilization)
                         if demand > 0 else cfg.min_replicas))
        predicted = demand / max(current_replicas, 1)
        kind, delta, reason = "hold", 0, "within band"
        if target > current_replicas:
            if now - sig.last_grow_t >= cfg.grow_cooldown_s:
                delta = min(target - current_replicas, cfg.max_grow_step)
                kind = "grow"
                reason = (f"demand {demand:.2f} replicas > "
                          f"{current_replicas} at target utilization "
                          f"{cfg.target_utilization:.0%}")
                sig.last_grow_t = now
            else:
                reason = "grow wanted but cooling down"
        elif (target < current_replicas
              and current_replicas > cfg.min_replicas
              and predicted < cfg.shrink_utilization):
            if now - sig.last_shrink_t >= cfg.shrink_cooldown_s:
                delta = -min(current_replicas - target,
                             cfg.max_shrink_step,
                             current_replicas - cfg.min_replicas)
                kind = "shrink"
                reason = (f"predicted utilization {predicted:.0%} < "
                          f"shrink floor {cfg.shrink_utilization:.0%}")
                sig.last_shrink_t = now
            else:
                reason = "shrink wanted but cooling down"
        decision = ScaleDecision(
            t=now, cell=cell, kind=kind, delta=delta,
            target=target, current=current_replicas, reason=reason,
            arrival_rps=sig.arrival_rps.mean,
            service_window_s=sig.service_window_s.mean,
            backlog_windows=sig.backlog_windows,
            predicted_utilization=predicted)
        if kind != "hold":
            self.decisions.append(decision)
        return decision
