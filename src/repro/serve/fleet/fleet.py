"""The fleet server: cells, sharded replicas, autoscaling, spillover.

One discrete-event loop generalizes :class:`repro.serve.InferenceServer`
across a *fleet*: each **cell** owns a set of replicas behind a
consistent-hash shard map (:class:`~.hashring.HashRing`), requests route
to the replica that owns their tile keys (so its
:class:`~repro.serve.cache.TileCache` shard stays hot), and a
telemetry-driven :class:`~.autoscaler.Autoscaler` grows/shrinks each
cell at every control tick.  Cross-cell routing kicks in when a cell's
estimated wait blows the lane's SLO budget: the request **spills** to
the cheapest cell still inside budget, and is shed only when every cell
is out of budget — overload degrades to remote (cold-cache) service
before it degrades to refusals.

Scale at the paper's level ("millions of users") forces a columnar
request format: :class:`Replay` carries a million virtual requests as a
handful of numpy arrays, and :class:`FleetResult` records the terminal
outcome of each the same way, so the whole replay fits comfortably in
memory and summarizes with vectorized numpy.  Everything runs on a
:class:`~repro.telemetry.SimulatedClock`: same replay, same seed — same
admissions, same scale events, same report, byte for byte.

Service time is a calibrated parametric model (per-batch overhead +
per-window compute, with cache hits ~10x cheaper than misses), not a
measured model forward — at 10^6 requests the routing/caching/scaling
*dynamics* are the object under test, and the per-window constants are
taken from the measured ``bench_serving`` numbers.
"""
from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ...resilience import FaultPlan
from ...telemetry import SimulatedClock, Telemetry, get_active
from ..cache import TileCache
from ..request import DEFAULT_LANES
from .autoscaler import Autoscaler, AutoscalerConfig
from .hashring import HashRing, remap_fraction

__all__ = ["FleetRequest", "Replay", "FleetConfig", "FleetReplica",
           "ScaleEventRecord", "FleetResult", "FleetServer",
           "FleetReport", "summarize_fleet",
           "STATUS_SERVED", "STATUS_SHED", "STATUS_FAILED"]

# Terminal statuses in FleetResult.status (0 = still pending, i.e. lost).
STATUS_SERVED = 1
STATUS_SHED = 2
STATUS_FAILED = 3

_SHED_REASONS = ("", "queue_full", "slo")
_MAX_WINDOWS = 64           # tile-key packing: key*64 + window index
_KEY_SAMPLE_CAP = 20_000    # per-cell key sample for remap measurement
_HIT_TRACE_TICKS = 5        # trailing ticks defining "current" hit rate
_RECOVERY_TICKS = 3         # rolling ticks that must clear the bar


@dataclass(frozen=True)
class FleetRequest:
    """One virtual request (the friendly, non-columnar view)."""

    request_id: int
    key: int                    # snapshot/tile-group content id
    lane: str = "interactive"
    cell: str = "cell0"         # home cell (client locality)
    arrival_s: float = 0.0
    windows: int = 4            # tile windows this request decomposes into


class Replay:
    """A columnar request stream: one numpy column per request field.

    A million :class:`FleetRequest` objects would cost hundreds of MB of
    python object headers; the same stream as six arrays costs ~20 MB
    and iterates by index.  ``lanes``/``cells`` are the vocabularies the
    int columns index into.
    """

    def __init__(self, arrival_s: np.ndarray, key: np.ndarray,
                 lane: np.ndarray, cell: np.ndarray, windows: np.ndarray,
                 lanes: tuple[str, ...], cells: tuple[str, ...]):
        n = len(arrival_s)
        if not (len(key) == len(lane) == len(cell) == len(windows) == n):
            raise ValueError("replay columns must share one length")
        if n and np.any(np.diff(arrival_s) < 0):
            raise ValueError("arrival_s must be sorted")
        if windows.size and (windows.min() < 1
                             or windows.max() > _MAX_WINDOWS):
            raise ValueError(f"windows must be in [1, {_MAX_WINDOWS}]")
        self.arrival_s = np.ascontiguousarray(arrival_s, dtype=np.float64)
        self.key = np.ascontiguousarray(key, dtype=np.int64)
        self.lane = np.ascontiguousarray(lane, dtype=np.int16)
        self.cell = np.ascontiguousarray(cell, dtype=np.int16)
        self.windows = np.ascontiguousarray(windows, dtype=np.int16)
        self.lanes = tuple(lanes)
        self.cells = tuple(cells)

    def __len__(self) -> int:
        return len(self.arrival_s)

    def request(self, i: int) -> FleetRequest:
        """Materialise request ``i`` as a :class:`FleetRequest`."""
        return FleetRequest(
            request_id=i, key=int(self.key[i]),
            lane=self.lanes[self.lane[i]], cell=self.cells[self.cell[i]],
            arrival_s=float(self.arrival_s[i]),
            windows=int(self.windows[i]))

    @classmethod
    def from_requests(cls, requests, lanes=None, cells=None) -> "Replay":
        """Build a replay from explicit :class:`FleetRequest` objects."""
        reqs = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        lanes = tuple(lanes if lanes is not None
                      else dict.fromkeys(r.lane for r in reqs))
        cells = tuple(cells if cells is not None
                      else sorted(set(r.cell for r in reqs)))
        return cls(
            arrival_s=np.array([r.arrival_s for r in reqs]),
            key=np.array([r.key for r in reqs], dtype=np.int64),
            lane=np.array([lanes.index(r.lane) for r in reqs]),
            cell=np.array([cells.index(r.cell) for r in reqs]),
            windows=np.array([r.windows for r in reqs]),
            lanes=lanes, cells=cells)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology, batching, service model, and control-loop knobs."""

    cells: tuple[str, ...] = ("cell0",)
    initial_replicas: int = 2       # per cell
    lanes: tuple[str, ...] = DEFAULT_LANES
    max_batch_size: int = 8
    max_wait_s: float = 0.004       # batch age trigger
    max_depth: int = 512            # per-replica, per-lane queue cap
    #: Per-lane estimated-wait budgets; a request whose home-cell wait
    #: blows the budget spills to the cheapest in-budget cell, and sheds
    #: with reason ``slo`` only when no cell is in budget.
    slo_s: tuple[tuple[str, float], ...] = (("interactive", 0.25),)
    service_base_s: float = 0.002   # per-batch dispatch overhead
    service_window_s: float = 0.004  # per *uncached* window compute
    cached_window_s: float | None = None    # default: 10% of a miss
    cache_budget_bytes: int = 4 << 20       # per replica
    tile_bytes: int = 4096          # accounted bytes of one cached tile
    vnodes: int = 64
    sharded: bool = True            # False: least-loaded routing (ablation)
    spillover: bool = True
    window_s: float = 1.0           # control tick = streaming window
    autoscaler: AutoscalerConfig | None = field(
        default_factory=AutoscalerConfig)   # None pins the initial size
    ewma_alpha: float = 0.2         # per-cell service-time estimator

    def __post_init__(self):
        if not self.cells or len(set(self.cells)) != len(self.cells):
            raise ValueError("cells must be non-empty and unique")
        if self.initial_replicas < 1:
            raise ValueError("initial_replicas must be >= 1")
        if self.max_batch_size < 1 or self.max_depth < 1:
            raise ValueError("max_batch_size and max_depth must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.service_window_s <= 0 or self.service_base_s < 0:
            raise ValueError("service model times must be positive")
        for lane, slo in self.slo_s:
            if slo <= 0:
                raise ValueError("slo_s targets must be positive")

    @property
    def hit_service_s(self) -> float:
        return (self.cached_window_s if self.cached_window_s is not None
                else 0.1 * self.service_window_s)


class FleetReplica:
    """One shard-owning replica: queues, cache shard, scheduling state."""

    __slots__ = ("replica_id", "cell", "cache", "added_s", "warmup_s",
                 "alive", "draining", "busy_until", "queues", "queued",
                 "queued_windows", "epoch", "inflight", "served", "batches",
                 "failed_reason")

    def __init__(self, replica_id: int, cell: str, num_lanes: int,
                 cache_budget: int, added_s: float = float("-inf"),
                 warmup_s: float = 0.0):
        from collections import deque

        self.replica_id = replica_id
        self.cell = cell
        self.cache = TileCache(cache_budget, model_key=f"replica{replica_id}")
        self.added_s = added_s
        self.warmup_s = warmup_s
        self.alive = True
        self.draining = False
        self.busy_until = 0.0
        self.queues = tuple(deque() for _ in range(num_lanes))
        self.queued = 0
        self.queued_windows = 0
        self.epoch = 0              # increments per dispatch (stale events)
        self.inflight: list[int] | None = None
        self.served = 0
        self.batches = 0
        self.failed_reason: str | None = None

    @property
    def routable(self) -> bool:
        return self.alive and not self.draining

    def ramp_fraction(self, now: float) -> float:
        """Admitted key fraction during warm-up (1.0 once fully warm)."""
        if self.warmup_s <= 0:
            return 1.0
        return min(1.0, max(0.0, (now - self.added_s) / self.warmup_s))


@dataclass
class ScaleEventRecord:
    """One scale-out/scale-in/kill, with its measured cache consequences."""

    t: float
    cell: str
    kind: str                   # "grow" | "shrink" | "kill"
    replica: int
    replicas_after: int
    remap_fraction: float       # sampled keys whose owner changed
    sampled_keys: int
    pre_hit_rate: float         # trailing hit rate just before the event
    recovered_s: float | None = None    # first time hit rate re-cleared
    recovery_hit_rate: float | None = None

    def as_dict(self) -> dict:
        return {
            "t": self.t, "cell": self.cell, "kind": self.kind,
            "replica": self.replica, "replicas_after": self.replicas_after,
            "remap_fraction": self.remap_fraction,
            "sampled_keys": self.sampled_keys,
            "pre_hit_rate": self.pre_hit_rate,
            "recovered_s": self.recovered_s,
            "recovery_hit_rate": self.recovery_hit_rate,
        }


class FleetResult:
    """Columnar terminal outcomes, one row per offered request."""

    def __init__(self, n: int):
        self.status = np.zeros(n, dtype=np.int8)
        self.completed_s = np.full(n, np.nan)
        self.replica = np.full(n, -1, dtype=np.int32)
        self.served_cell = np.full(n, -1, dtype=np.int16)
        self.spilled = np.zeros(n, dtype=bool)
        self.shed_reason = np.zeros(n, dtype=np.int8)

    def __len__(self) -> int:
        return len(self.status)

    def response(self, i: int) -> dict:
        """Row ``i`` as a dict (tests and debugging)."""
        return {
            "request_id": i,
            "status": ("pending", "served", "shed", "failed")[self.status[i]],
            "completed_s": (None if np.isnan(self.completed_s[i])
                            else float(self.completed_s[i])),
            "replica": int(self.replica[i]),
            "served_cell": int(self.served_cell[i]),
            "spilled": bool(self.spilled[i]),
            "shed_reason": _SHED_REASONS[self.shed_reason[i]] or None,
        }


class _Cell:
    """Runtime state for one cell: shard map, replicas, estimators."""

    __slots__ = ("name", "index", "ring", "replicas", "ewma_window_s",
                 "keys_seen", "hit_trace", "last_hits", "last_misses",
                 "c_arrivals", "c_served", "c_spill", "c_retries",
                 "c_shed", "g_queue", "g_service", "g_replicas",
                 "g_hit_rate")

    def __init__(self, name: str, index: int, vnodes: int, metrics):
        self.name = name
        self.index = index
        self.ring = HashRing(vnodes=vnodes, salt=name)
        self.replicas: dict[int, FleetReplica] = {}
        self.ewma_window_s: float | None = None
        self.keys_seen: set[int] = set()
        self.hit_trace: list[tuple[float, int, int]] = []  # (t, dh, dm)
        self.last_hits = 0
        self.last_misses = 0
        # Cached instrument handles: one dict lookup at build time, one
        # method call per event on the 10^6-request hot path.
        self.c_arrivals = metrics.counter("fleet.arrivals", cell=name)
        self.c_served = metrics.counter("fleet.served", cell=name)
        self.c_spill = metrics.counter("fleet.spillover", cell=name)
        self.c_retries = metrics.counter("fleet.retries", cell=name)
        self.c_shed = {reason: metrics.counter("fleet.shed", cell=name,
                                               reason=reason)
                       for reason in _SHED_REASONS[1:]}
        self.g_queue = metrics.gauge("fleet.queue_windows", cell=name)
        self.g_service = metrics.gauge("fleet.service_ms", cell=name)
        self.g_replicas = metrics.gauge("fleet.replicas", cell=name)
        self.g_hit_rate = metrics.gauge("fleet.cache.hit_rate", cell=name)

    # -- replica membership --------------------------------------------------

    def live(self) -> list[FleetReplica]:
        return [r for r in self.replicas.values() if r.routable]

    def observe_service(self, per_window_s: float, alpha: float) -> None:
        if per_window_s <= 0:
            return
        if self.ewma_window_s is None:
            self.ewma_window_s = per_window_s
        else:
            self.ewma_window_s = ((1 - alpha) * self.ewma_window_s
                                  + alpha * per_window_s)

    def cache_totals(self) -> tuple[int, int]:
        hits = misses = 0
        for rep in self.replicas.values():
            hits += rep.cache.stats.hits
            misses += rep.cache.stats.misses
        return hits, misses

    def trailing_hit_rate(self, ticks: int = _HIT_TRACE_TICKS) -> float:
        tail = self.hit_trace[-ticks:]
        hits = sum(h for _, h, _ in tail)
        total = hits + sum(m for _, _, m in tail)
        return hits / total if total else 0.0


class FleetServer:
    """Discrete-event serving across autoscaled, sharded cells."""

    def __init__(self, config: FleetConfig | None = None,
                 clock: SimulatedClock | None = None,
                 plan: FaultPlan | None = None):
        self.config = config or FleetConfig()
        cfg = self.config
        self.clock = clock or SimulatedClock()
        session = get_active()
        # Autoscaling and hit-rate tracking need live instruments even
        # when no session is activated; a private enabled session keeps
        # the fleet self-contained without touching the global state.
        self.tel = (session if session.enabled
                    else Telemetry(enabled=True, clock=self.clock))
        self.streams = self.tel.attach_streams(window_s=cfg.window_s)
        if self.tel.health is None:
            from ...telemetry.health import fleet_health_rules

            self.tel.attach_health(rules=fleet_health_rules())
        self.health = self.tel.health
        self.autoscaler = (Autoscaler(cfg.autoscaler)
                           if cfg.autoscaler is not None else None)
        if self.autoscaler is not None:
            self.autoscaler.subscribe(self.streams)
        self.cells: dict[str, _Cell] = {
            name: _Cell(name, i, cfg.vnodes, self.tel.metrics)
            for i, name in enumerate(cfg.cells)}
        self._cell_order = list(self.cells.values())
        self.replicas: dict[int, FleetReplica] = {}
        self._next_replica = 0
        self.scale_events: list[ScaleEventRecord] = []
        self.total_retries = 0
        self._slo_by_lane = [dict(cfg.slo_s).get(lane)
                             for lane in cfg.lanes]
        # One shared tile payload: the cache accounts bytes per entry, and
        # every tile is the same logical size, so one array serves all.
        self._tile_value = np.zeros(max(cfg.tile_bytes, 4) // 4,
                                    dtype=np.float32)
        kills = [(float(s.step), int(s.rank))
                 for s in (plan.of_kind("rank_fail") if plan else ())]
        self._kills = sorted(kills)
        for name in cfg.cells:
            for _ in range(cfg.initial_replicas):
                self._add_replica(self.cells[name], 0.0, warm=False,
                                  record=False)

    # -- replica lifecycle ---------------------------------------------------

    def _add_replica(self, cell: _Cell, now: float, warm: bool = True,
                     record: bool = True) -> FleetReplica:
        cfg = self.config
        warmup = (self.autoscaler.config.warmup_s
                  if warm and self.autoscaler is not None else 0.0)
        rep = FleetReplica(
            self._next_replica, cell.name, len(cfg.lanes),
            cfg.cache_budget_bytes,
            added_s=now if warm else float("-inf"),
            warmup_s=warmup)
        rep.busy_until = now
        self._next_replica += 1
        self.replicas[rep.replica_id] = rep
        cell.replicas[rep.replica_id] = rep
        sample = cell.keys_seen
        before = cell.ring.assignment(sample) if record and sample else {}
        cell.ring.add(rep.replica_id)
        if record:
            after = cell.ring.assignment(sample) if sample else {}
            self._record_scale(cell, now, "grow", rep.replica_id,
                               before, after)
        return rep

    def _remove_replica(self, cell: _Cell, rep: FleetReplica, now: float,
                        kind: str) -> None:
        """Shrink (graceful drain) or kill (abrupt) one replica."""
        sample = cell.keys_seen
        before = cell.ring.assignment(sample) if sample else {}
        cell.ring.remove(rep.replica_id)
        after = cell.ring.assignment(sample) if sample else {}
        queued = [i for q in rep.queues for i in q]
        for q in rep.queues:
            q.clear()
        rep.queued = 0
        rep.queued_windows = 0
        if kind == "kill":
            rep.alive = False
            rep.draining = False
            rep.failed_reason = "injected replica failure"
            inflight = rep.inflight or []
            rep.inflight = None
            rep.epoch += 1          # voids its pending completion event
            if inflight:
                self.total_retries += len(inflight)
                cell.c_retries.inc(len(inflight))
            queued = inflight + queued
        elif rep.inflight is not None:
            rep.draining = True     # in-flight batch completes, then idles
        else:                       # idle: nothing to drain, retire now
            rep.alive = False
            rep.failed_reason = "scaled in"
        self._record_scale(cell, now, kind, rep.replica_id, before, after)
        if self.tel.enabled:
            self.tel.tracer.instant(
                "replica_failed" if kind == "kill" else "replica_drained",
                category="fleet", cell=cell.name, replica=rep.replica_id)
        # Survivors absorb the displaced work (DistributedTrainer.shrink
        # in reverse order: routing first, then the backlog).
        for i in queued:
            self._enqueue_admitted(i, now)

    def _record_scale(self, cell: _Cell, now: float, kind: str,
                      replica: int, before: dict, after: dict) -> None:
        self.scale_events.append(ScaleEventRecord(
            t=now, cell=cell.name, kind=kind, replica=replica,
            replicas_after=len(cell.live()),
            remap_fraction=remap_fraction(before, after),
            sampled_keys=len(before),
            pre_hit_rate=cell.trailing_hit_rate()))
        if self.tel.enabled:
            self.tel.tracer.instant(
                "fleet_scale", category="fleet", kind=kind,
                cell=cell.name, replica=replica,
                replicas=len(cell.live()))

    # -- routing -------------------------------------------------------------

    def _owner(self, cell: _Cell, key: int, now: float
               ) -> FleetReplica | None:
        """Shard owner for ``key``, honouring the warm-up admission ramp."""
        if not self.config.sharded:
            live = cell.live()
            if not live:
                return None
            return min(live, key=lambda r: (r.queued_windows, r.busy_until,
                                            r.replica_id))
        owner = cell.ring.assign(key)
        if owner is None:
            return None
        rep = cell.replicas[owner]
        frac = rep.ramp_fraction(now)
        if frac < 1.0 and cell.ring.key_fraction(key) >= frac:
            prev = cell.ring.assign(key, exclude=(owner,))
            if prev is not None:
                return cell.replicas[prev]
        return rep

    def _estimated_wait(self, cell: _Cell, rep: FleetReplica,
                        now: float) -> float:
        service = cell.ewma_window_s
        if service is None:
            service = self.config.service_window_s
        return (max(rep.busy_until - now, 0.0)
                + rep.queued_windows * service)

    def _admit(self, i: int, now: float) -> None:
        """Route request ``i``: home shard, spillover, or shed."""
        cfg = self.config
        home = self._cell_order[self._req_cell[i]]
        home.c_arrivals.inc()
        key = int(self._req_key[i])
        if len(home.keys_seen) < _KEY_SAMPLE_CAP:
            home.keys_seen.add(key)
        lane = self._req_lane[i]
        slo = self._slo_by_lane[lane]
        rep = self._owner(home, key, now)
        blown = depth_full = False
        if rep is not None:
            depth_full = len(rep.queues[lane]) >= cfg.max_depth
            blown = (slo is not None
                     and self._estimated_wait(home, rep, now) > slo)
        if rep is not None and not depth_full and not blown:
            self._enqueue(rep, i, now)
            return
        # Home cell is dead, full, or out of budget: try the other cells.
        best = None
        best_wait = float("inf")
        if cfg.spillover:
            for cell in self._cell_order:
                if cell is home:
                    continue
                cand = self._owner(cell, key, now)
                if cand is None or len(cand.queues[lane]) >= cfg.max_depth:
                    continue
                wait = self._estimated_wait(cell, cand, now)
                if slo is not None and wait > slo:
                    continue
                if wait < best_wait:
                    best, best_wait = cand, wait
        if best is not None:
            self._result.spilled[i] = True
            home.c_spill.inc()
            self._enqueue(best, i, now)
            return
        if rep is None and all(not c.live() for c in self._cell_order):
            self._result.status[i] = STATUS_FAILED
            return
        reason = "slo" if blown else "queue_full"
        self._result.status[i] = STATUS_SHED
        self._result.shed_reason[i] = _SHED_REASONS.index(reason)
        home.c_shed[reason].inc()

    def _enqueue(self, rep: FleetReplica, i: int, now: float) -> None:
        rep.queues[self._req_lane[i]].append(i)
        rep.queued += 1
        rep.queued_windows += self._req_windows[i]
        self._enq_t[i] = now
        self._maybe_dispatch(rep, now)

    def _enqueue_admitted(self, i: int, now: float) -> None:
        """Re-home an already-admitted request after its replica died."""
        cell = self._cell_order[self._req_cell[i]]
        rep = self._owner(cell, int(self._req_key[i]), now)
        if rep is None:
            for other in self._cell_order:
                rep = self._owner(other, int(self._req_key[i]), now)
                if rep is not None:
                    self._result.spilled[i] = True
                    break
        if rep is None:         # the whole fleet is dead: fail loudly
            self._result.status[i] = STATUS_FAILED
            return
        # Depth caps do not apply: the request was admitted, and an
        # admitted request must never be silently dropped.
        rep.queues[self._req_lane[i]].append(i)
        rep.queued += 1
        rep.queued_windows += self._req_windows[i]
        self._maybe_dispatch(rep, now)

    # -- batching / dispatch -------------------------------------------------

    def _oldest_enqueue(self, rep: FleetReplica) -> float:
        oldest = float("inf")
        for q in rep.queues:
            if q:
                t = self._enq_t[q[0]]
                if t < oldest:
                    oldest = t
        return oldest

    def _maybe_dispatch(self, rep: FleetReplica, now: float) -> None:
        """Dispatch if the batch triggers fire, else arm the age deadline."""
        if not rep.alive or rep.busy_until > now or rep.queued == 0:
            return
        if rep.queued >= self.config.max_batch_size:
            self._dispatch(rep, now)
            return
        # Compare against the same float the deadline heap stores — a
        # subtraction-based age check can round the other way at the
        # exact firing instant and re-arm the due deadline forever.
        deadline = self._oldest_enqueue(rep) + self.config.max_wait_s
        if now >= deadline:
            self._dispatch(rep, now)
        else:
            heapq.heappush(self._deadlines, (deadline, rep.replica_id))

    def _dispatch(self, rep: FleetReplica, now: float) -> None:
        cfg = self.config
        batch: list[int] = []
        for q in rep.queues:        # lanes are priority-ordered
            while q and len(batch) < cfg.max_batch_size:
                batch.append(q.popleft())
        if not batch:
            return
        rep.queued -= len(batch)
        cache = rep.cache
        tile = self._tile_value
        hits = misses = nwin = 0
        for i in batch:
            base = int(self._req_key[i]) << 6
            w = int(self._req_windows[i])
            nwin += w
            for off in range(w):
                if cache.get(base | off) is None:
                    cache.put(base | off, tile)
                    misses += 1
                else:
                    hits += 1
        rep.queued_windows -= nwin
        service = (cfg.service_base_s + cfg.service_window_s * misses
                   + cfg.hit_service_s * hits)
        rep.busy_until = now + service
        rep.inflight = batch
        rep.epoch += 1
        rep.batches += 1
        cell = self.cells[rep.cell]
        cell.observe_service(service / max(nwin, 1), cfg.ewma_alpha)
        heapq.heappush(self._completions,
                       (rep.busy_until, rep.replica_id, rep.epoch))

    def _complete(self, rep: FleetReplica, now: float) -> None:
        batch = rep.inflight or []
        rep.inflight = None
        cell = self.cells[rep.cell]
        res = self._result
        for i in batch:
            res.status[i] = STATUS_SERVED
            res.completed_s[i] = now
            res.replica[i] = rep.replica_id
            res.served_cell[i] = cell.index
        rep.served += len(batch)
        cell.c_served.inc(len(batch))
        if rep.draining and rep.queued == 0:
            rep.draining = False
            rep.alive = False
            rep.failed_reason = "scaled in"
            return
        self._maybe_dispatch(rep, now)

    # -- the control tick ----------------------------------------------------

    def _tick(self, now: float) -> None:
        for cell in self._cell_order:
            live = cell.live()
            cell.g_queue.set(sum(r.queued_windows for r in live))
            cell.g_replicas.set(len(live))
            if cell.ewma_window_s is not None:
                cell.g_service.set(cell.ewma_window_s * 1e3)
            hits, misses = cell.cache_totals()
            dh, dm = hits - cell.last_hits, misses - cell.last_misses
            cell.last_hits, cell.last_misses = hits, misses
            cell.hit_trace.append((now, dh, dm))
            if dh + dm:
                cell.g_hit_rate.set(dh / (dh + dm))
        self.streams.tick(self.tel.metrics, t=now)
        if self.health is not None:
            self.health.evaluate(t=now)
        if self.autoscaler is None:
            return
        for cell in self._cell_order:
            live = cell.live()
            decision = self.autoscaler.decide(cell.name, now, len(live))
            if decision.delta > 0:
                for _ in range(decision.delta):
                    self._add_replica(cell, now)
            elif decision.delta < 0:
                # Retire the youngest replicas first: coldest caches,
                # least key-space disruption (LIFO, mirroring shrink).
                victims = sorted(cell.live(),
                                 key=lambda r: (r.added_s, r.replica_id),
                                 reverse=True)[:-decision.delta]
                for rep in victims:
                    if len(cell.live()) <= 1:
                        break
                    self._remove_replica(cell, rep, now, "shrink")

    # -- the event loop ------------------------------------------------------

    def run(self, replay: Replay) -> FleetResult:
        """Serve the whole replay; returns the columnar outcomes."""
        cfg = self.config
        if tuple(replay.lanes) != tuple(cfg.lanes):
            raise ValueError(f"replay lanes {replay.lanes} != fleet lanes "
                             f"{cfg.lanes}")
        if tuple(replay.cells) != tuple(cfg.cells):
            raise ValueError(f"replay cells {replay.cells} != fleet cells "
                             f"{cfg.cells}")
        n = len(replay)
        if self.autoscaler is not None and n:
            # Demand is estimated in tile-windows; tell the autoscaler
            # how many windows an average request fans out into.
            self.autoscaler.windows_per_request = float(
                replay.windows.mean())
        self._req_key = replay.key
        self._req_lane = replay.lane
        self._req_cell = replay.cell
        self._req_windows = replay.windows
        self._enq_t = np.zeros(n)
        self._result = FleetResult(n)
        self._completions: list[tuple[float, int, int]] = []
        self._deadlines: list[tuple[float, int]] = []
        arrivals = replay.arrival_s
        kills = list(self._kills)
        clock = self.clock
        i = 0
        next_tick = (np.floor(clock.now() / cfg.window_s) + 1) * cfg.window_s
        while True:
            now = clock.now()
            progressed = False
            # 1. Retire due completions (stale epochs are voided kills).
            while self._completions and self._completions[0][0] <= now:
                _, rid, epoch = heapq.heappop(self._completions)
                rep = self.replicas[rid]
                if rep.epoch == epoch and rep.inflight is not None:
                    self._complete(rep, now)
                progressed = True
            # 2. Inject due replica kills.
            while kills and kills[0][0] <= now:
                _, rid = kills.pop(0)
                rep = self.replicas.get(rid)
                if rep is not None and rep.alive:
                    cell = self.cells[rep.cell]
                    self._remove_replica(cell, rep, now, "kill")
                progressed = True
            # 3. Admit due arrivals.
            while i < n and arrivals[i] <= now:
                self._admit(i, now)
                i += 1
                progressed = True
            # 4. Fire due batch-age deadlines.
            while self._deadlines and self._deadlines[0][0] <= now:
                _, rid = heapq.heappop(self._deadlines)
                self._maybe_dispatch(self.replicas[rid], now)
                progressed = True
            # 5. Control tick (telemetry windows, health, autoscaler).
            if now >= next_tick:
                self._tick(now)
                next_tick += cfg.window_s
                progressed = True
            if progressed:
                continue
            # Jump to the next event.
            pending = (i < n or self._completions
                       or any(r.queued for r in self.replicas.values()))
            if not pending:
                # Drained: one final tick closes the last stream windows.
                clock.advance_to(next_tick)
                self._tick(clock.now())
                break
            candidates = []
            if i < n:
                candidates.append(arrivals[i])
            if self._completions:
                candidates.append(self._completions[0][0])
            if self._deadlines:
                candidates.append(self._deadlines[0][0])
            candidates.append(next_tick)
            target = min(c for c in candidates if c > now) \
                if any(c > now for c in candidates) else None
            if target is None:
                break               # defensive: nothing can progress
            clock.advance_to(target)
        return self._result


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


@dataclass
class FleetReport:
    """End-of-replay accounting across the whole fleet."""

    offered: int
    admitted: int
    served: int
    shed: int
    failed: int
    spilled: int
    retries: int
    shed_by_reason: dict
    lanes: dict
    cells: dict
    makespan_s: float
    throughput_rps: float
    hit_rate: float
    scale_events: list
    autoscaler: dict
    replicas_final: dict

    @property
    def lost_admitted(self) -> int:
        """Admitted requests without a terminal response (must stay 0)."""
        return self.admitted - self.served - self.failed

    @property
    def spillover_vs_shed(self) -> float:
        """Overload absorbed remotely instead of refused (1.0 = all)."""
        pressured = self.spilled + self.shed
        return self.spilled / pressured if pressured else 0.0

    def as_dict(self) -> dict:
        doc = {k: v for k, v in self.__dict__.items()
               if k != "scale_events"}
        doc["scale_events"] = [e.as_dict() for e in self.scale_events]
        doc["lost_admitted"] = self.lost_admitted
        doc["spillover_vs_shed"] = self.spillover_vs_shed
        return doc


def _recovery(cell: _Cell, event: ScaleEventRecord) -> None:
    """Fill the event's hit-rate recovery fields from the cell's trace."""
    after = [(t, h, m) for t, h, m in cell.hit_trace if t > event.t]
    bar = 0.9 * event.pre_hit_rate
    for k in range(len(after)):
        tail = after[max(0, k - _RECOVERY_TICKS + 1): k + 1]
        hits = sum(h for _, h, _ in tail)
        total = hits + sum(m for _, _, m in tail)
        if total and hits / total >= bar:
            event.recovered_s = after[k][0]
            event.recovery_hit_rate = hits / total
            return


def summarize_fleet(result: FleetResult, server: FleetServer,
                    replay: Replay) -> FleetReport:
    """Fold a replay's columnar outcomes into one report."""
    cfg = server.config
    status = result.status
    served_mask = status == STATUS_SERVED
    shed_mask = status == STATUS_SHED
    failed_mask = status == STATUS_FAILED
    served = int(served_mask.sum())
    shed = int(shed_mask.sum())
    failed = int(failed_mask.sum())
    shed_by_reason = {}
    for code, name in enumerate(_SHED_REASONS):
        if code == 0:
            continue
        count = int((result.shed_reason[shed_mask] == code).sum())
        if count:
            shed_by_reason[name] = count
    lanes = {}
    for li, lane in enumerate(replay.lanes):
        lane_mask = replay.lane == li
        lane_served = served_mask & lane_mask
        lat = (result.completed_s[lane_served]
               - replay.arrival_s[lane_served])
        p50, p99 = (np.percentile(lat, [50, 99]) if lat.size
                    else (0.0, 0.0))
        lanes[lane] = {"served": int(lane_served.sum()),
                       "shed": int((shed_mask & lane_mask).sum()),
                       "p50_ms": float(p50) * 1e3,
                       "p99_ms": float(p99) * 1e3}
    cells = {}
    for name, cell in server.cells.items():
        hits, misses = cell.cache_totals()
        in_mask = served_mask & (result.served_cell == cell.index)
        home_mask = replay.cell == cell.index
        cells[name] = {
            "served": int(in_mask.sum()),
            "offered": int(home_mask.sum()),
            "shed": int((shed_mask & home_mask).sum()),
            "spilled_out": int((result.spilled & home_mask).sum()),
            "spilled_in": int((result.spilled & in_mask).sum()),
            "replicas": len(cell.live()),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
    hits = sum(c.cache_totals()[0] for c in server.cells.values())
    lookups = hits + sum(c.cache_totals()[1] for c in server.cells.values())
    makespan = throughput = 0.0
    if served:
        start = float(replay.arrival_s[served_mask].min())
        end = float(np.nanmax(result.completed_s))
        makespan = end - start
        throughput = served / makespan if makespan > 0 else 0.0
    for event in server.scale_events:
        _recovery(server.cells[event.cell], event)
    decisions = (server.autoscaler.decisions
                 if server.autoscaler is not None else [])
    return FleetReport(
        offered=len(result), admitted=len(result) - shed,
        served=served, shed=shed, failed=failed,
        spilled=int(result.spilled.sum()),
        retries=server.total_retries,
        shed_by_reason=shed_by_reason, lanes=lanes, cells=cells,
        makespan_s=makespan, throughput_rps=throughput,
        hit_rate=hits / lookups if lookups else 0.0,
        scale_events=list(server.scale_events),
        autoscaler={
            "decisions": [d.as_dict() for d in decisions],
            "grows": sum(1 for d in decisions if d.kind == "grow"),
            "shrinks": sum(1 for d in decisions if d.kind == "shrink"),
        },
        replicas_final={name: len(cell.live())
                        for name, cell in server.cells.items()})
