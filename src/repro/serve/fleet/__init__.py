"""Autoscaling, sharded serve fleet: replicas, cells, and the scale loop.

`repro.serve` ends at one replica pool behind one queue.  This package is
the fleet layer the paper-scale serving story needs ("millions of
users"): many replicas across **cells**, each owning a stable shard of
the tile-key space, with capacity that follows the offered load:

* a :class:`HashRing` (:mod:`.hashring`) — consistent hashing with
  virtual nodes, so a scale event remaps only ~1/N of the key space and
  warm tiles survive on the replicas that already hold them;
* a telemetry-driven :class:`Autoscaler` (:mod:`.autoscaler`) — consumes
  the :class:`~repro.telemetry.streaming.StreamingAggregator` windows
  (EWMA arrival rate, service time, queue depth) and grows/shrinks each
  cell's replica set, shrink mirroring
  :meth:`repro.core.DistributedTrainer.shrink`, growth ramping admission
  over a warm-up window;
* multi-cell routing (:mod:`.fleet`) — per-cell SLOs with cross-cell
  spillover when a cell's estimated wait blows its budget, and shedding
  only when every cell is out of budget;
* a columnar million-request :class:`Replay` format plus
  :class:`FleetServer`, the discrete-event loop that serves it
  deterministically on a :class:`~repro.telemetry.SimulatedClock`.

Entry points: build a :class:`FleetServer`, feed it a
:func:`repro.serve.loadgen.replay_workload` stream, and fold the result
with :func:`summarize_fleet`.  ``repro fleet`` wraps exactly that.
"""
from .autoscaler import Autoscaler, AutoscalerConfig, ScaleDecision
from .fleet import (
    FleetConfig,
    FleetReplica,
    FleetReport,
    FleetRequest,
    FleetResult,
    FleetServer,
    Replay,
    ScaleEventRecord,
    summarize_fleet,
)
from .hashring import HashRing, remap_fraction

__all__ = [
    "HashRing",
    "remap_fraction",
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleDecision",
    "FleetConfig",
    "FleetRequest",
    "FleetReplica",
    "FleetServer",
    "FleetReport",
    "FleetResult",
    "Replay",
    "ScaleEventRecord",
    "summarize_fleet",
]
