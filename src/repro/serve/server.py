"""The inference server: one event loop tying queue, batcher, pool, cache.

Discrete-event serving on a virtual clock.  Arrivals are admitted (or
shed) the moment the clock reaches them; the micro-batcher flushes on its
size/age triggers; batches dispatch to the least-loaded free replica; and
completions retire at ``dispatch + service_time``.  The *results* are real
(replicas run the actual model over the actual windows); only the
passage of time is virtual — by default each batch's virtual service time
is its **measured** compute wall time, so throughput and latency numbers
reflect the real cost of the work, while tests can pin a
:class:`FixedServiceTime` to make every queueing decision deterministic.

This mirrors how the training side couples its simulators to telemetry:
spans land on the active session with virtual timestamps
(``tracer.emit``), counters cover every admission/shed/serve/fail
decision, and per-request latency histograms use the paper's
median + central-68% summary convention.
"""
from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..resilience import FaultInjector, FaultPlan, RetriesExhausted, RetryPolicy
from ..telemetry import SimulatedClock, get_active
from .batcher import BatchPolicy, MicroBatcher
from .cache import TileCache
from .queue import AdmissionConfig, AdmissionController, RequestQueue
from .replica import BatchResult, ReplicaPool
from .request import DEFAULT_LANES, InferenceRequest, InferenceResponse

__all__ = ["ServeConfig", "FixedServiceTime", "measured_service",
           "InferenceServer", "ServeReport", "summarize"]


def measured_service(compute_s: float, n_requests: int,
                     n_windows: int) -> float:
    """Default service model: virtual time = measured compute wall time."""
    return compute_s


@dataclass(frozen=True)
class FixedServiceTime:
    """Deterministic service model for tests: affine in window count."""

    per_batch_s: float = 0.0
    per_window_s: float = 0.001

    def __call__(self, compute_s: float, n_requests: int,
                 n_windows: int) -> float:
        return self.per_batch_s + self.per_window_s * n_windows


@dataclass(frozen=True)
class ServeConfig:
    """Everything the server needs beyond the model itself."""

    window_hw: tuple[int, int] = (8, 8)
    stride_hw: tuple[int, int] | None = None    # default: half-window overlap
    num_replicas: int = 2
    max_batch_size: int = 8
    max_wait_s: float = 0.002
    forward_batch: int = 32         # windows stacked per model call
    lanes: tuple[str, ...] = DEFAULT_LANES
    max_depth: int = 64             # per-lane queue cap (backpressure)
    slo_s: tuple[tuple[str, float], ...] = ()   # per-lane shed targets
    cache_budget_bytes: int = 32 << 20          # 0 disables the tile cache
    freeze: bool = True             # replicas run the fused inference graph
    retry: RetryPolicy = RetryPolicy(max_attempts=3, backoff_base_s=0.001,
                                     max_backoff_s=0.01)

    def __post_init__(self):
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.cache_budget_bytes < 0:
            raise ValueError("cache_budget_bytes must be >= 0")


class InferenceServer:
    """Admission -> micro-batching -> replica dispatch -> completion."""

    def __init__(self, model_factory, config: ServeConfig | None = None,
                 clock: SimulatedClock | None = None,
                 plan: FaultPlan | None = None,
                 service_model=None, model_key: str = "model-v0"):
        self.config = config or ServeConfig()
        cfg = self.config
        self.clock = clock or SimulatedClock()
        self.injector = FaultInjector(plan) if plan is not None else None
        self.cache = (TileCache(cfg.cache_budget_bytes, model_key=model_key)
                      if cfg.cache_budget_bytes else None)
        if cfg.freeze:
            # Each replica serves the BN-folded, fusion-rewritten graph
            # (repro.framework.fusion); the caller's model is untouched.
            base_factory = model_factory

            def model_factory():
                model = base_factory()
                fz = getattr(model, "freeze_for_inference", None)
                return fz() if callable(fz) else model
        self.pool = ReplicaPool(
            model_factory, cfg.num_replicas, cfg.window_hw,
            stride_hw=cfg.stride_hw, forward_batch=cfg.forward_batch,
            cache=self.cache, retry=cfg.retry, injector=self.injector)
        admission_cfg = AdmissionConfig(lanes=cfg.lanes,
                                        max_depth=cfg.max_depth,
                                        slo_s=cfg.slo_s)
        self.admission = AdmissionController(admission_cfg, cfg.num_replicas)
        self.queue = RequestQueue(admission_cfg, self.admission)
        self.batcher = MicroBatcher(
            BatchPolicy(cfg.max_batch_size, cfg.max_wait_s), self.queue)
        self.service_model = service_model or measured_service
        self.total_retries = 0
        self._cache_synced = {"hits": 0, "misses": 0, "evictions": 0}

    # -- the event loop ----------------------------------------------------

    def serve(self, requests: list[InferenceRequest]
              ) -> list[InferenceResponse]:
        """Drive every request to a terminal response, in virtual time.

        Returns one response per offered request, ordered by request id.
        """
        arrivals = sorted(requests,
                          key=lambda r: (r.arrival_s, r.request_id))
        responses: dict[int, InferenceResponse] = {}
        inflight: list = []     # heap: (completion_s, seq, batch, result, t0)
        seq = 0
        i = 0
        while i < len(arrivals) or self.queue.depth() or inflight:
            now = self.clock.now()
            progressed = False
            # Retire completions due at `now`.
            while inflight and inflight[0][0] <= now:
                comp_t, _, batch, result, dispatched = heapq.heappop(inflight)
                self._complete(batch, result, dispatched, comp_t, responses)
                progressed = True
            # Admit (or shed) arrivals due at `now`.
            while i < len(arrivals) and arrivals[i].arrival_s <= now:
                req = arrivals[i]
                i += 1
                admitted, reason = self.queue.offer(req, now)
                if not admitted:
                    responses[req.request_id] = InferenceResponse(
                        req.request_id, req.lane, "shed", req.arrival_s,
                        shed_reason=reason)
                progressed = True
            # Total pool loss: everything still owed fails loudly.
            if not self.pool.alive_replicas and (
                    self.queue.depth() or i < len(arrivals)):
                for req in self.queue.drain() + arrivals[i:]:
                    responses[req.request_id] = self._failed(
                        req, "no live replicas in the pool")
                i = len(arrivals)
                progressed = True
            # Dispatch while a batch is ready and a replica is free.
            while self.batcher.ready(now):
                if self.pool.free_replica(now) is None:
                    break
                batch = self.batcher.take(now)
                seq += 1
                self._dispatch(batch, now, seq, responses, inflight)
                progressed = True
            if progressed:
                continue
            # Nothing actionable at `now`: jump to the next event.
            candidates = []
            if i < len(arrivals):
                candidates.append(arrivals[i].arrival_s)
            if inflight:
                candidates.append(inflight[0][0])
            if self.queue.depth():
                deadline = self.batcher.next_deadline()
                if deadline is not None:
                    candidates.append(deadline)
            candidates = [t for t in candidates if t > now]
            if not candidates:
                break               # defensive: nothing can ever progress
            self.clock.advance_to(min(candidates))
        return [responses[r.request_id] for r in
                sorted(requests, key=lambda r: r.request_id)]

    # -- internals ---------------------------------------------------------

    def _failed(self, req: InferenceRequest, error: str) -> InferenceResponse:
        tel = get_active()
        if tel.enabled:
            tel.metrics.counter("serve.failed", lane=req.lane).inc()
        return InferenceResponse(req.request_id, req.lane, "failed",
                                 req.arrival_s, error=error)

    def _dispatch(self, batch: list[InferenceRequest], now: float, seq: int,
                  responses: dict, inflight: list) -> None:
        tel = get_active()
        try:
            result = self.pool.execute(batch, now)
        except RetriesExhausted as exc:
            for req in batch:
                responses[req.request_id] = self._failed(req, repr(exc))
            return
        finally:
            self._sync_cache_counters(tel)
        duration = self.service_model(
            result.compute_s, len(batch), result.windows) + result.backoff_s
        completion = now + duration
        self.pool.replicas[result.replica_id].busy_until = completion
        heapq.heappush(inflight, (completion, seq, batch, result, now))
        if result.windows:
            self.admission.observe_service(duration / result.windows)
        if result.retries:
            self.total_retries += result.retries
            if tel.enabled:
                tel.metrics.counter("serve.dispatch_retries").inc(
                    result.retries)

    def _complete(self, batch: list[InferenceRequest], result: BatchResult,
                  dispatched: float, comp_t: float, responses: dict) -> None:
        tel = get_active()
        tracer = tel.tracer
        batch_span = 0
        if tel.enabled:
            batch_span = tracer.emit(
                "serve_batch", start_s=tracer.epoch + dispatched,
                duration_s=comp_t - dispatched, category="serve",
                lane=result.replica_id, replica=result.replica_id,
                requests=len(batch), windows=result.windows,
                retries=result.retries)
        for req, class_map in zip(batch, result.class_maps):
            resp = InferenceResponse(
                req.request_id, req.lane, "served", req.arrival_s,
                completed_s=comp_t, replica_id=result.replica_id,
                batch_size=len(batch), class_map=class_map)
            responses[req.request_id] = resp
            if tel.enabled:
                tel.metrics.counter("serve.served", lane=req.lane).inc()
                tel.metrics.histogram("serve.latency_s",
                                      lane=req.lane).observe(resp.latency_s)
                if tel.streams is not None:
                    # Streamed at the request's *virtual* completion time so
                    # windowed latency/SLO-burn rules see server-clock time.
                    tel.streams.observe("serve.latency_s", resp.latency_s,
                                        t=comp_t, lane=req.lane)
                tracer.emit(
                    "request", start_s=tracer.epoch + req.arrival_s,
                    duration_s=resp.latency_s, category="serve",
                    lane=result.replica_id, parent_id=batch_span,
                    request=req.request_id, req_lane=req.lane)

    def _sync_cache_counters(self, tel) -> None:
        """Mirror cache-stat deltas into telemetry counters."""
        if self.cache is None or not tel.enabled:
            return
        stats = self.cache.stats
        for name, current in (("hits", stats.hits),
                              ("misses", stats.misses),
                              ("evictions", stats.evictions)):
            delta = current - self._cache_synced[name]
            if delta:
                tel.metrics.counter(f"serve.cache.{name}").inc(delta)
                self._cache_synced[name] = current


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


@dataclass
class LaneSummary:
    """Served-latency distribution for one priority lane."""

    served: int = 0
    shed: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    def as_dict(self) -> dict:
        return {"served": self.served, "shed": self.shed,
                "p50_ms": self.p50_ms, "p99_ms": self.p99_ms}


@dataclass
class ServeReport:
    """End-of-run accounting over one workload's responses."""

    offered: int
    admitted: int
    served: int
    shed: int
    failed: int
    shed_by_reason: dict
    lanes: dict
    makespan_s: float
    throughput_rps: float
    cache: dict | None
    replica_failures: int
    dispatch_retries: int
    batches: int
    mean_batch_size: float
    alive_replicas: list = field(default_factory=list)

    @property
    def lost_admitted(self) -> int:
        """Admitted requests without a served response (must stay 0)."""
        return self.admitted - self.served

    def as_dict(self) -> dict:
        doc = {k: v for k, v in self.__dict__.items() if k != "lanes"}
        doc["lanes"] = {name: lane.as_dict()
                       for name, lane in self.lanes.items()}
        doc["lost_admitted"] = self.lost_admitted
        if self.cache is not None:
            doc["cache_hit_rate"] = self.cache.get("hit_rate", 0.0)
        return doc


def summarize(responses: list[InferenceResponse],
              server: InferenceServer) -> ServeReport:
    """Fold a run's responses (plus server state) into one report."""
    served = [r for r in responses if r.status == "served"]
    shed = [r for r in responses if r.status == "shed"]
    failed = [r for r in responses if r.status == "failed"]
    shed_by_reason: dict[str, int] = {}
    for r in shed:
        reason = r.shed_reason or "unknown"
        shed_by_reason[reason] = shed_by_reason.get(reason, 0) + 1
    lanes: dict[str, LaneSummary] = {}
    for lane in server.config.lanes:
        lane_served = [r for r in served if r.lane == lane]
        summary = LaneSummary(
            served=len(lane_served),
            shed=sum(1 for r in shed if r.lane == lane))
        if lane_served:
            lat = np.asarray([r.latency_s for r in lane_served])
            p50, p99 = np.percentile(lat, [50, 99])
            summary.p50_ms = float(p50) * 1e3
            summary.p99_ms = float(p99) * 1e3
        lanes[lane] = summary
    makespan = 0.0
    throughput = 0.0
    if served:
        start = min(r.arrival_s for r in served)
        end = max(r.completed_s for r in served)
        makespan = end - start
        throughput = len(served) / makespan if makespan > 0 else 0.0
    pool = server.pool
    sizes = [r.batch_size for r in served]
    return ServeReport(
        offered=len(responses),
        admitted=len(served) + len(failed),
        served=len(served), shed=len(shed), failed=len(failed),
        shed_by_reason=shed_by_reason,
        lanes=lanes, makespan_s=makespan, throughput_rps=throughput,
        # `is not None`, not truthiness: TileCache defines __len__, so a
        # cache that never got a put (e.g. every request shed) is falsy
        # and would report "no cache configured" on exactly the failure
        # paths where the stats matter.
        cache=(server.cache.stats.as_dict()
               if server.cache is not None else None),
        replica_failures=len(pool.dead_ids),
        dispatch_retries=server.total_retries,
        batches=server.batcher.batches_formed,
        mean_batch_size=float(np.mean(sizes)) if sizes else 0.0,
        alive_replicas=pool.alive_ids)
