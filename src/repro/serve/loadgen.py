"""Seeded synthetic load generator for the inference service.

Produces a deterministic open-loop workload: Poisson arrivals at a target
offered rate, lane assignment by weight, and a tunable fraction of
repeat snapshots (re-submissions of an earlier image) so the tile cache
has real redundancy to exploit.  Everything derives from one
``numpy.random.default_rng(seed)`` stream, so a (config, seed) pair
always yields byte-identical requests — the property the CLI, the CI
smoke job, and ``bench_serving`` all lean on.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .request import DEFAULT_LANES, InferenceRequest

__all__ = ["WorkloadConfig", "synth_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one synthetic request stream."""

    num_requests: int = 64
    rate_rps: float = 200.0          # offered arrival rate (Poisson)
    image_hw: tuple[int, int] = (16, 16)
    channels: int = 16               # matches the paper's 16-channel stack
    lanes: tuple[str, ...] = DEFAULT_LANES
    lane_weights: tuple[float, ...] = (0.5, 0.5)
    repeat_fraction: float = 0.25    # P(resubmit an earlier snapshot)
    seed: int = 0
    start_s: float = 0.0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if len(self.lane_weights) != len(self.lanes):
            raise ValueError("lane_weights must match lanes")
        if not 0.0 <= self.repeat_fraction <= 1.0:
            raise ValueError("repeat_fraction must be in [0, 1]")


def synth_workload(config: WorkloadConfig) -> list[InferenceRequest]:
    """Materialise the request stream described by ``config``."""
    rng = np.random.default_rng(config.seed)
    weights = np.asarray(config.lane_weights, dtype=np.float64)
    weights = weights / weights.sum()
    h, w = config.image_hw
    images: list[np.ndarray] = []
    requests: list[InferenceRequest] = []
    t = config.start_s
    for rid in range(config.num_requests):
        t += float(rng.exponential(1.0 / config.rate_rps))
        if images and rng.random() < config.repeat_fraction:
            image = images[int(rng.integers(len(images)))]
        else:
            image = rng.standard_normal(
                (config.channels, h, w)).astype(np.float32)
            images.append(image)
        lane = config.lanes[int(rng.choice(len(config.lanes), p=weights))]
        requests.append(InferenceRequest(
            request_id=rid, image=image, lane=lane, arrival_s=t))
    return requests
