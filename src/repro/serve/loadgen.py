"""Seeded synthetic load generator for the inference service.

Produces a deterministic open-loop workload: Poisson arrivals at a target
offered rate, lane assignment by weight, and a tunable fraction of
repeat snapshots (re-submissions of an earlier image) so the tile cache
has real redundancy to exploit.  Everything derives from one
``numpy.random.default_rng(seed)`` stream, so a (config, seed) pair
always yields byte-identical requests — the property the CLI, the CI
smoke job, and ``bench_serving`` all lean on.

Two generators live here:

* :func:`synth_workload` — per-request python objects with real image
  payloads, feeding :class:`~repro.serve.InferenceServer` (hundreds to
  thousands of requests);
* :func:`replay_workload` — the fleet-scale path: a columnar
  :class:`~repro.serve.fleet.Replay` of ~10^6 virtual requests with a
  diurnal rate curve, square-wave bursts, Zipf-skewed key popularity,
  and weighted lane/cell assignment, all built with vectorized numpy so
  a million requests materialise in well under a second.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fleet.fleet import Replay
from .request import DEFAULT_LANES, InferenceRequest

__all__ = ["WorkloadConfig", "synth_workload",
           "ReplayConfig", "replay_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one synthetic request stream."""

    num_requests: int = 64
    rate_rps: float = 200.0          # offered arrival rate (Poisson)
    image_hw: tuple[int, int] = (16, 16)
    channels: int = 16               # matches the paper's 16-channel stack
    lanes: tuple[str, ...] = DEFAULT_LANES
    lane_weights: tuple[float, ...] = (0.5, 0.5)
    repeat_fraction: float = 0.25    # P(resubmit an earlier snapshot)
    seed: int = 0
    start_s: float = 0.0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if len(self.lane_weights) != len(self.lanes):
            raise ValueError("lane_weights must match lanes")
        if not 0.0 <= self.repeat_fraction <= 1.0:
            raise ValueError("repeat_fraction must be in [0, 1]")


def synth_workload(config: WorkloadConfig) -> list[InferenceRequest]:
    """Materialise the request stream described by ``config``."""
    rng = np.random.default_rng(config.seed)
    weights = np.asarray(config.lane_weights, dtype=np.float64)
    weights = weights / weights.sum()
    h, w = config.image_hw
    images: list[np.ndarray] = []
    requests: list[InferenceRequest] = []
    t = config.start_s
    for rid in range(config.num_requests):
        t += float(rng.exponential(1.0 / config.rate_rps))
        if images and rng.random() < config.repeat_fraction:
            image = images[int(rng.integers(len(images)))]
        else:
            image = rng.standard_normal(
                (config.channels, h, w)).astype(np.float32)
            images.append(image)
        lane = config.lanes[int(rng.choice(len(config.lanes), p=weights))]
        requests.append(InferenceRequest(
            request_id=rid, image=image, lane=lane, arrival_s=t))
    return requests


@dataclass(frozen=True)
class ReplayConfig:
    """Shape of one fleet-scale replay (diurnal + burst traffic)."""

    num_requests: int = 1_000_000
    duration_s: float = 600.0
    cells: tuple[str, ...] = ("cell0",)
    cell_weights: tuple[float, ...] | None = None    # default uniform
    lanes: tuple[str, ...] = DEFAULT_LANES
    lane_weights: tuple[float, ...] = (0.5, 0.5)
    #: Peak-to-mean swing of the sinusoidal "day": 0 flat, 0.6 means the
    #: trough runs at 40% of mean rate and the peak at 160%.
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float | None = None   # default: one "day" = duration_s
    #: Square-wave overload windows: (start_s, duration_s, rate_multiplier).
    bursts: tuple[tuple[float, float, float], ...] = ()
    snapshot_pool: int = 5000       # distinct content keys
    zipf_exponent: float = 1.1      # key popularity skew (cache redundancy)
    windows: int = 4                # tile windows per request
    seed: int = 0
    start_s: float = 0.0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.cells:
            raise ValueError("cells must be non-empty")
        if self.cell_weights is not None \
                and len(self.cell_weights) != len(self.cells):
            raise ValueError("cell_weights must match cells")
        if len(self.lane_weights) != len(self.lanes):
            raise ValueError("lane_weights must match lanes")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        for start, dur, mult in self.bursts:
            if dur <= 0 or mult <= 0:
                raise ValueError("burst duration and multiplier must be > 0")
        if self.snapshot_pool < 1 or self.windows < 1:
            raise ValueError("snapshot_pool and windows must be >= 1")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be >= 0")

    @property
    def mean_rate_rps(self) -> float:
        return self.num_requests / self.duration_s


def _rate_profile(config: ReplayConfig, bins: int = 4096) -> np.ndarray:
    """Relative arrival intensity per time bin over the replay horizon."""
    period = config.diurnal_period_s or config.duration_s
    centers = (np.arange(bins) + 0.5) * (config.duration_s / bins)
    # Trough at t=0 so a replay starts quiet and climbs into the "day".
    rate = 1.0 + config.diurnal_amplitude * np.sin(
        2.0 * np.pi * centers / period - np.pi / 2.0)
    for start, dur, mult in config.bursts:
        rate[(centers >= start) & (centers < start + dur)] *= mult
    return rate


def replay_workload(config: ReplayConfig) -> Replay:
    """Materialise the columnar replay described by ``config``.

    Arrivals are drawn by inverse-CDF sampling of the diurnal+burst
    intensity profile — exactly ``num_requests`` arrivals whose density
    follows the profile, fully vectorized, no per-request python loop.
    """
    rng = np.random.default_rng(config.seed)
    profile = _rate_profile(config)
    cdf = np.cumsum(profile)
    cdf = cdf / cdf[-1]
    bin_w = config.duration_s / len(profile)
    u = rng.random(config.num_requests)
    idx = np.searchsorted(cdf, u, side="left")
    lo = np.concatenate(([0.0], cdf[:-1]))[idx]
    frac = (u - lo) / np.maximum(cdf[idx] - lo, 1e-300)
    arrival = config.start_s + (idx + frac) * bin_w
    arrival.sort()

    ranks = np.arange(1, config.snapshot_pool + 1, dtype=np.float64)
    pop = ranks ** -config.zipf_exponent
    pop /= pop.sum()
    keys = rng.choice(config.snapshot_pool, size=config.num_requests,
                      p=pop).astype(np.int64)

    lane_w = np.asarray(config.lane_weights, dtype=np.float64)
    lanes = rng.choice(len(config.lanes), size=config.num_requests,
                       p=lane_w / lane_w.sum()).astype(np.int16)
    if config.cell_weights is not None:
        cell_w = np.asarray(config.cell_weights, dtype=np.float64)
        cell_w = cell_w / cell_w.sum()
    else:
        cell_w = np.full(len(config.cells), 1.0 / len(config.cells))
    cells = rng.choice(len(config.cells), size=config.num_requests,
                       p=cell_w).astype(np.int16)
    windows = np.full(config.num_requests, config.windows, dtype=np.int16)
    return Replay(arrival_s=arrival, key=keys, lane=lanes, cell=cells,
                  windows=windows, lanes=config.lanes, cells=config.cells)
