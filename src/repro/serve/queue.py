"""Priority-laned request queue with SLO-aware admission control.

The paper-scale serving story ("millions of users") lives or dies on what
happens at overload: an unbounded queue turns excess demand into unbounded
latency for *everyone*, while load shedding keeps the served fraction
inside its latency target.  The queue therefore has

* **priority lanes** (``interactive`` ahead of ``bulk`` by default) —
  batches drain higher lanes first, FIFO within a lane;
* **depth backpressure** — each lane holds at most ``max_depth`` waiting
  requests; an arrival past the cap is shed with reason ``queue_full``;
* **SLO-aware shedding** — with a per-lane ``slo_s`` target, the
  controller estimates the arrival's queueing delay from the windows
  already waiting and an EWMA of measured per-window service time, and
  sheds with reason ``slo`` when the estimate exceeds the target.  A
  request that would miss its SLO anyway is cheaper to refuse at the door
  than to compute and deliver late.

Every decision is counted (``serve.admitted``, ``serve.shed{lane,reason}``)
through the active :mod:`repro.telemetry` session.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..telemetry import get_active
from .request import DEFAULT_LANES, InferenceRequest

__all__ = ["AdmissionConfig", "AdmissionController", "RequestQueue"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Lane layout and shed thresholds."""

    lanes: tuple[str, ...] = DEFAULT_LANES   # highest priority first
    max_depth: int = 64                      # per-lane waiting-request cap
    #: Optional per-lane queueing-delay targets, e.g.
    #: ``(("interactive", 0.05),)``; lanes without an entry shed on depth
    #: only.
    slo_s: tuple[tuple[str, float], ...] = ()
    ewma_alpha: float = 0.2                  # service-time estimator decay

    def __post_init__(self):
        if not self.lanes:
            raise ValueError("need at least one lane")
        if len(set(self.lanes)) != len(self.lanes):
            raise ValueError("duplicate lane names")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        for lane, slo in self.slo_s:
            if lane not in self.lanes:
                raise ValueError(f"slo for unknown lane {lane!r}")
            if slo <= 0:
                raise ValueError("slo_s targets must be positive")

    def slo_for(self, lane: str) -> float | None:
        for name, slo in self.slo_s:
            if name == lane:
                return slo
        return None


class AdmissionController:
    """Shed-or-admit decisions plus the service-time estimator they use."""

    def __init__(self, config: AdmissionConfig, num_replicas: int):
        self.config = config
        self.num_replicas = max(1, int(num_replicas))
        self.ewma_window_s: float | None = None   # measured s per window

    def observe_service(self, per_window_s: float) -> None:
        """Fold one batch's measured per-window service time into the EWMA."""
        if per_window_s <= 0:
            return
        if self.ewma_window_s is None:
            self.ewma_window_s = per_window_s
        else:
            a = self.config.ewma_alpha
            self.ewma_window_s = (1 - a) * self.ewma_window_s + a * per_window_s

    def estimated_wait_s(self, queued_windows: int) -> float | None:
        """Predicted queueing delay for work behind ``queued_windows``."""
        if self.ewma_window_s is None:
            return None
        return queued_windows * self.ewma_window_s / self.num_replicas

    def decide(self, lane: str, lane_depth: int,
               queued_windows: int) -> tuple[bool, str | None]:
        """(admit?, shed_reason) for one arrival."""
        if lane_depth >= self.config.max_depth:
            return False, "queue_full"
        slo = self.config.slo_for(lane)
        if slo is not None:
            est = self.estimated_wait_s(queued_windows)
            if est is not None and est > slo:
                return False, "slo"
        return True, None


class RequestQueue:
    """FIFO-within-lane, priority-across-lane waiting room."""

    def __init__(self, config: AdmissionConfig, controller: AdmissionController,
                 windows_per_request: int = 1):
        self.config = config
        self.controller = controller
        self.windows_per_request = max(1, int(windows_per_request))
        self._lanes: dict[str, deque[InferenceRequest]] = {
            lane: deque() for lane in config.lanes}

    # -- state -------------------------------------------------------------

    def depth(self, lane: str | None = None) -> int:
        if lane is not None:
            return len(self._lanes[lane])
        return sum(len(q) for q in self._lanes.values())

    @property
    def queued_windows(self) -> int:
        return self.depth() * self.windows_per_request

    def oldest_enqueue_s(self) -> float | None:
        oldest = None
        for q in self._lanes.values():
            if q and (oldest is None or q[0].enqueued_s < oldest):
                oldest = q[0].enqueued_s
        return oldest

    # -- admission ---------------------------------------------------------

    def offer(self, request: InferenceRequest,
              now: float) -> tuple[bool, str | None]:
        """Admit ``request`` or shed it; returns (admitted, shed_reason)."""
        if request.lane not in self._lanes:
            raise ValueError(f"unknown lane {request.lane!r}; "
                             f"expected one of {self.config.lanes}")
        tel = get_active()
        admitted, reason = self.controller.decide(
            request.lane, len(self._lanes[request.lane]), self.queued_windows)
        if not admitted:
            if tel.enabled:
                tel.metrics.counter("serve.shed", lane=request.lane,
                                    reason=reason).inc()
                tel.tracer.instant("request_shed", category="serve",
                                   request=request.request_id,
                                   lane=request.lane, reason=reason)
            return False, reason
        request.enqueued_s = now
        self._lanes[request.lane].append(request)
        if tel.enabled:
            tel.metrics.counter("serve.admitted", lane=request.lane).inc()
            tel.metrics.gauge("serve.queue_depth").set(self.depth())
        return True, None

    # -- draining ----------------------------------------------------------

    def pop(self, max_items: int) -> list[InferenceRequest]:
        """Up to ``max_items`` requests, higher lanes first, FIFO within."""
        out: list[InferenceRequest] = []
        for lane in self.config.lanes:
            q = self._lanes[lane]
            while q and len(out) < max_items:
                out.append(q.popleft())
        return out

    def drain(self) -> list[InferenceRequest]:
        """Remove and return everything still waiting (server shutdown)."""
        return self.pop(self.depth())
