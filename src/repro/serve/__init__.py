"""Inference serving for trained climate-segmentation models.

The paper ends where most reproductions stop: a trained network.  This
package is the deployment half — serving sliding-window segmentation to
concurrent clients with the throughput tricks that make it affordable:

* dynamic **micro-batching** (:mod:`.batcher`) — coalesce concurrent
  requests into one stacked forward per dispatch;
* a fault-tolerant **replica pool** (:mod:`.replica`) — least-loaded
  routing with retry-on-survivor, reusing :mod:`repro.resilience`;
* a content-keyed, byte-budgeted **tile cache** (:mod:`.cache`) over
  per-window logits;
* **SLO-aware admission control** (:mod:`.queue`) — priority lanes,
  depth backpressure, and estimated-wait load shedding;
* a discrete-event **server** (:mod:`.server`) on the telemetry
  :class:`~repro.telemetry.SimulatedClock`, plus a seeded synthetic
  **load generator** (:mod:`.loadgen`);
* an autoscaling, sharded **fleet** layer (:mod:`.fleet`) — cells of
  consistent-hash-sharded replicas, telemetry-driven scaling, cross-cell
  SLO spillover, and a columnar million-request replay format.

Entry points: build an :class:`InferenceServer`, feed it requests from
:func:`synth_workload` (or your own), and fold the responses with
:func:`summarize`; or build a :class:`FleetServer` over a
:func:`replay_workload` stream and fold with :func:`summarize_fleet`.
``repro serve`` and ``repro fleet`` wrap exactly that.
"""
from .batcher import BatchPolicy, MicroBatcher
from .cache import CacheStats, TileCache
from .fleet import (
    Autoscaler,
    AutoscalerConfig,
    FleetConfig,
    FleetReplica,
    FleetReport,
    FleetRequest,
    FleetResult,
    FleetServer,
    HashRing,
    Replay,
    ScaleDecision,
    ScaleEventRecord,
    remap_fraction,
    summarize_fleet,
)
from .loadgen import ReplayConfig, WorkloadConfig, replay_workload, \
    synth_workload
from .queue import AdmissionConfig, AdmissionController, RequestQueue
from .replica import BatchResult, Replica, ReplicaPool
from .request import DEFAULT_LANES, InferenceRequest, InferenceResponse
from .server import (
    FixedServiceTime,
    InferenceServer,
    ServeConfig,
    ServeReport,
    measured_service,
    summarize,
)

__all__ = [
    "DEFAULT_LANES",
    "InferenceRequest",
    "InferenceResponse",
    "CacheStats",
    "TileCache",
    "AdmissionConfig",
    "AdmissionController",
    "RequestQueue",
    "BatchPolicy",
    "MicroBatcher",
    "Replica",
    "BatchResult",
    "ReplicaPool",
    "ServeConfig",
    "FixedServiceTime",
    "measured_service",
    "InferenceServer",
    "ServeReport",
    "summarize",
    "ReplayConfig",
    "replay_workload",
    "HashRing",
    "remap_fraction",
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleDecision",
    "FleetConfig",
    "FleetRequest",
    "FleetReplica",
    "FleetServer",
    "FleetReport",
    "FleetResult",
    "Replay",
    "ScaleEventRecord",
    "summarize_fleet",
]
