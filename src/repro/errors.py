"""Unified exception hierarchy for the reproduction.

Every failure the simulated machine can produce — a protocol bug on the
MPI wire, a staged file that will not read, a checkpoint that will not
load, or a fault *deliberately* injected by :mod:`repro.resilience` —
derives from :class:`ReproError`, so callers can write one ``except``
clause per subsystem (or one for everything) instead of guessing which
bare built-in a layer raises.

Backward compatibility: the concrete classes multiply-inherit from the
built-in exception each site used to raise (``ValueError``,
``LookupError``, ``OSError``), so pre-existing ``except ValueError:``
style clauses keep catching exactly what they caught before the
migration.

Hierarchy::

    ReproError
    ├── CommError                    (the simulated MPI wire)
    │   ├── RankError                (also ValueError)
    │   ├── DeadlockError            (also LookupError)
    │   └── CollectiveMismatch       (divergent collective schedule)
    ├── StagingError                 (data staging / read path)
    │   ├── StagingConfigError       (also ValueError)
    │   └── StagingReadError         (also OSError; carries .path)
    ├── CheckpointError              (serialization / restore)
    │   ├── CheckpointFormatError    (also ValueError)
    │   └── CheckpointConfigMismatch (also ValueError)
    ├── CampaignError                (campaign orchestration)
    │   ├── InvalidTransition        (also ValueError)
    │   └── CampaignStoreError       (also ValueError)
    └── FaultInjected                (deliberate, from a FaultPlan)
        ├── RankFailure              (carries .rank)
        ├── ReadFault                (also OSError; carries .path)
        └── MessageDropped           (carries .src/.dst/.tag)
"""
from __future__ import annotations

__all__ = [
    "ReproError",
    "CommError",
    "RankError",
    "DeadlockError",
    "CollectiveMismatch",
    "StagingError",
    "StagingConfigError",
    "StagingReadError",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointConfigMismatch",
    "CampaignError",
    "InvalidTransition",
    "CampaignStoreError",
    "FaultInjected",
    "RankFailure",
    "ReadFault",
    "MessageDropped",
]


class ReproError(Exception):
    """Base class for every error raised by repro subsystems."""


# -- comm ------------------------------------------------------------------

class CommError(ReproError):
    """A failure on the simulated MPI wire."""


class RankError(CommError, ValueError):
    """A rank outside ``[0, world.size)`` or already failed."""


class DeadlockError(CommError, LookupError):
    """``recv`` with no matching message pending — a protocol bug."""


class CollectiveMismatch(CommError):
    """Ranks disagree on the collective they are entering.

    Raised by :meth:`repro.comm.simmpi.World.announce_collective` (the
    opt-in ``collective_checks`` mode) when a rank announces a collective
    whose op/tag/shape/dtype differs from what its peers announced this
    round, or announces twice before the round completes — the runtime
    complement of the static RPR101 analysis.
    """


# -- staging / io ----------------------------------------------------------

class StagingError(ReproError):
    """A failure in the data-staging or read path."""


class StagingConfigError(StagingError, ValueError):
    """Invalid staging parameters (unknown strategy, empty source, ...)."""


class StagingReadError(StagingError, OSError):
    """A staged file failed to read; ``path`` names the offender."""

    def __init__(self, message: str, path=None):
        super().__init__(message)
        self.path = path


# -- checkpoint ------------------------------------------------------------

class CheckpointError(ReproError):
    """A failure saving or restoring training state."""


class CheckpointFormatError(CheckpointError, ValueError):
    """Unsupported or corrupt checkpoint contents."""


class CheckpointConfigMismatch(CheckpointError, ValueError):
    """Checkpoint was written under a different training configuration."""


# -- campaign orchestration ------------------------------------------------

class CampaignError(ReproError):
    """A failure in the campaign orchestration service."""


class InvalidTransition(CampaignError, ValueError):
    """A job-state edge the lifecycle machine forbids.

    Raised both for live transitions and while replaying a persisted
    JSONL log — a corrupted log cannot materialize an illegal state.
    """


class CampaignStoreError(CampaignError, ValueError):
    """A malformed or inconsistent campaign job-store log."""


# -- injected faults -------------------------------------------------------

class FaultInjected(ReproError):
    """Base for failures deliberately injected by a FaultPlan."""


class RankFailure(FaultInjected):
    """An injected node/rank death; ``rank`` identifies the casualty."""

    def __init__(self, rank: int, message: str | None = None):
        super().__init__(message or f"injected failure of rank {rank}")
        self.rank = int(rank)


class ReadFault(FaultInjected, OSError):
    """An injected read failure (corrupt or unreadable staged file)."""

    def __init__(self, message: str, path=None):
        super().__init__(message)
        self.path = path


class MessageDropped(FaultInjected):
    """An injected message loss observed at the receiver."""

    def __init__(self, src: int, dst: int, tag: int):
        super().__init__(
            f"message from rank {src} to rank {dst} tag {tag} was dropped")
        self.src = int(src)
        self.dst = int(dst)
        self.tag = int(tag)
