"""Single-process training loop with mixed precision and weighted loss.

This is the per-rank engine; :mod:`repro.core.distributed` replicates it
across simulated MPI ranks with Horovod-style gradient averaging.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..framework import LossScaler, Tensor, apply_fp16_policy, no_grad
from ..framework.dtypes import FP16, FP32
from ..framework.module import Module
from ..telemetry import get_active
from .losses import class_weights, pixel_weight_map
from .metrics import SegmentationReport
from .optim import LARC, LARS, SGD, Adam, GradientLag

__all__ = ["TrainConfig", "StepResult", "Trainer", "build_optimizer"]

_OPTIMIZERS = ("sgd", "adam", "lars", "larc")
_WEIGHTINGS = ("none", "inverse", "inverse_sqrt")


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for one training run."""

    lr: float = 1e-3
    optimizer: str = "larc"           # sgd | adam | lars | larc
    momentum: float = 0.9
    weight_decay: float = 1e-4
    precision: str = "fp32"           # fp32 | fp16
    loss_scale: float = 2.0**12
    dynamic_loss_scale: bool = True
    weighting: str = "inverse_sqrt"   # none | inverse | inverse_sqrt
    gradient_lag: int = 0
    num_classes: int = 3

    def __post_init__(self):
        if self.precision not in ("fp32", "fp16"):
            raise ValueError(f"unsupported precision {self.precision!r}")
        if self.optimizer not in _OPTIMIZERS:
            raise ValueError(f"unknown optimizer {self.optimizer!r}; "
                             f"expected one of {_OPTIMIZERS}")
        if self.weighting not in _WEIGHTINGS:
            raise ValueError(f"unknown weighting strategy {self.weighting!r}; "
                             f"expected one of {_WEIGHTINGS}")


def build_optimizer(model: Module, config: TrainConfig):
    """Construct the configured optimizer (optionally lag-wrapped)."""
    params = model.parameters()
    kind = config.optimizer
    if kind == "sgd":
        opt = SGD(params, config.lr, momentum=config.momentum,
                  weight_decay=config.weight_decay)
    elif kind == "adam":
        opt = Adam(params, config.lr, weight_decay=config.weight_decay)
    elif kind == "lars":
        opt = LARS(params, config.lr, momentum=config.momentum,
                   weight_decay=config.weight_decay)
    elif kind == "larc":
        opt = LARC(params, config.lr, momentum=config.momentum,
                   weight_decay=config.weight_decay)
    else:
        raise ValueError(f"unknown optimizer {kind!r}")
    if config.gradient_lag > 0:
        return GradientLag(opt, lag=config.gradient_lag)
    return opt


@dataclass
class StepResult:
    """Outcome of one training step."""

    loss: float
    skipped: bool = False          # FP16 overflow -> update skipped
    grad_norm: float = 0.0


class Trainer:
    """Owns a model, its optimizer, precision policy, and loss weighting."""

    def __init__(self, model: Module, config: TrainConfig,
                 class_frequencies: np.ndarray | None = None,
                 telemetry=None):
        self.model = model
        self.config = config
        # Explicit session wins; None resolves the active (default disabled)
        # session at each step, so `activate(...)` works after construction.
        self.telemetry = telemetry
        freqs = (np.asarray(class_frequencies)
                 if class_frequencies is not None
                 else np.full(config.num_classes, 1.0 / config.num_classes))
        self.class_weight_table = class_weights(freqs, config.weighting).astype(np.float32)
        if config.precision == "fp16":
            apply_fp16_policy(model)
            self.scaler: LossScaler | None = LossScaler(
                init_scale=config.loss_scale, dynamic=config.dynamic_loss_scale
            )
        else:
            self.scaler = None
        self.optimizer = build_optimizer(model, config)
        self.history: list[StepResult] = []

    # -- one step ----------------------------------------------------------

    def _cast_inputs(self, images: np.ndarray) -> np.ndarray:
        if self.config.precision == "fp16":
            return images.astype(FP16)
        return images.astype(FP32)

    def compute_loss(self, images: np.ndarray, labels: np.ndarray) -> Tensor:
        from ..framework.losses import weighted_cross_entropy

        x = Tensor(self._cast_inputs(images), requires_grad=False)
        logits = self.model(x)
        wmap = pixel_weight_map(labels, self.class_weight_table)
        return weighted_cross_entropy(logits, labels, wmap)

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> StepResult:
        """Forward, backward, (scaled) update; returns the step outcome."""
        tel = self.telemetry or get_active()
        tracer = tel.tracer
        self.model.train(True)
        self.model.zero_grad()
        with tracer.span("train_step", category="trainer",
                         step=len(self.history)) as step_span:
            with tracer.span("forward", category="trainer"):
                loss = self.compute_loss(images, labels)
            if self.scaler is not None:
                with tracer.span("backward", category="trainer"):
                    scaled = self.scaler.scale_loss(loss)
                    scaled.backward()
                ok = self.scaler.step(self.model.parameters())
                if not ok:
                    tracer.instant("loss_scale_overflow", category="trainer",
                                   scale=self.scaler.scale)
                    result = StepResult(loss=float(loss.item()), skipped=True)
            else:
                ok = True
                with tracer.span("backward", category="trainer"):
                    loss.backward()
            if ok:
                gnorm = self._grad_norm()
                with tracer.span("optimizer_step", category="trainer"):
                    self.optimizer.step()
                result = StepResult(loss=float(loss.item()), grad_norm=gnorm)
        self.history.append(result)
        self._record_step_metrics(tel, step_span, result)
        return result

    def _record_step_metrics(self, tel, step_span, result: StepResult) -> None:
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter("trainer.steps").inc()
        if result.skipped:
            m.counter("trainer.overflow_steps").inc()
        m.histogram("trainer.step_time_s").observe(step_span.duration_s)
        m.gauge("trainer.loss").set(result.loss)
        m.gauge("trainer.grad_norm").set(result.grad_norm)
        if self.scaler is not None:
            m.gauge("trainer.loss_scale").set(self.scaler.scale)

    def _grad_norm(self) -> float:
        total = 0.0
        for p in self.model.parameters():
            if p.grad is not None:
                g = p.grad.astype(np.float64)
                total += float((g * g).sum())
        return float(np.sqrt(total))

    # -- loops --------------------------------------------------------------

    def train_epoch(self, batches) -> list[StepResult]:
        """Run one pass over an iterable of (images, labels) batches."""
        return [self.train_step(images, labels) for images, labels in batches]

    def evaluate(self, batches, class_names: tuple[str, ...] | None = None
                 ) -> SegmentationReport:
        """IoU/accuracy over an iterable of (images, labels) batches."""
        self.model.train(False)
        report = SegmentationReport(self.config.num_classes, class_names)
        with no_grad():
            for images, labels in batches:
                x = Tensor(self._cast_inputs(images))
                logits = self.model(x)
                preds = np.argmax(logits.data.astype(np.float32), axis=1)
                report.update(preds, labels)
        self.model.train(True)
        return report

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class-id map for a batch of images."""
        self.model.train(False)
        with no_grad():
            logits = self.model(Tensor(self._cast_inputs(images)))
        self.model.train(True)
        return np.argmax(logits.data.astype(np.float32), axis=1)
