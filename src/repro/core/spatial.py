"""Spatial model parallelism: convolutions over domain-decomposed inputs.

The paper's "future systems" discussion (Section VIII-B) calls model
parallelism via domain decomposition "indispensable in the foreseeable
future" for networks whose activations outgrow one GPU — exactly the
situation its own full-resolution decoder creates (a 1152x768x256 activation
is ~0.9 GB in FP32 at batch 1).

This module implements the forward path of that idea: the (N, C, H, W)
activation is split into horizontal stripes, one per rank; a halo exchange
(:mod:`repro.comm.halo`) ships ``dilation * (kernel-1) / 2`` boundary rows to
each neighbour; every rank then convolves only its stripe.  The result is
*exactly* equal to the single-device convolution — verified in tests — while
per-rank activation memory drops by the rank count.

Only stride-1 'same' convolutions are supported, which covers the
full-resolution decoder stages where spatial decomposition matters; strided
stages are small enough to stay data-parallel.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.halo import gather_stripes, halo_exchange, split_stripes, stripe_bounds
from ..comm.simmpi import World
from ..framework.ops.conv import conv2d_forward

__all__ = ["SpatialPartition", "distributed_conv2d", "halo_rows_for",
           "activation_bytes_per_rank"]


def halo_rows_for(kernel: int, dilation: int = 1) -> int:
    """Boundary rows each neighbour must supply for a 'same' conv."""
    if kernel % 2 == 0:
        raise ValueError("spatial decomposition requires odd kernels")
    return dilation * (kernel - 1) // 2


@dataclass
class SpatialPartition:
    """A tensor split into per-rank stripes over a simulated world."""

    world: World
    stripes: list[np.ndarray]

    @staticmethod
    def scatter(world: World, x: np.ndarray) -> "SpatialPartition":
        """Split a full (N, C, H, W) tensor into one stripe per rank."""
        return SpatialPartition(world, split_stripes(x, world.size))

    def conv2d(self, weight: np.ndarray, dilation: int = 1) -> "SpatialPartition":
        """Distributed 'same' stride-1 convolution (halo exchange + local conv)."""
        return SpatialPartition(
            self.world,
            distributed_conv2d(self.world, self.stripes, weight, dilation),
        )

    def gather(self) -> np.ndarray:
        """Reassemble the full tensor (for verification / the final output)."""
        return gather_stripes(self.stripes)

    @property
    def stripe_heights(self) -> list[int]:
        return [s.shape[2] for s in self.stripes]


def distributed_conv2d(
    world: World,
    stripes: list[np.ndarray],
    weight: np.ndarray,
    dilation: int = 1,
) -> list[np.ndarray]:
    """Exactly replicate a stride-1 'same' conv over horizontal stripes.

    1. halo exchange of ``d (k-1)/2`` rows per boundary;
    2. each rank convolves its padded stripe, padding only the W axis
       explicitly (the H axis padding arrives via halos, with zero rows at
       the physical top/bottom).
    """
    f, c, kh, kw = weight.shape
    if kh != kw:
        raise ValueError("square kernels only")
    halo = halo_rows_for(kh, dilation)
    padded = halo_exchange(world, stripes, halo)
    outputs = []
    for stripe in padded:
        # Pad W only; H is already correct via the halo rows.
        pw = dilation * (kw - 1) // 2
        if pw:
            stripe = np.pad(stripe, ((0, 0), (0, 0), (0, 0), (pw, pw)))
        out = conv2d_forward(stripe, weight, stride=1, padding=0,
                             dilation=dilation)
        outputs.append(out)
    return outputs


def activation_bytes_per_rank(
    batch: int, channels: int, height: int, width: int,
    ranks: int, kernel: int, dilation: int = 1, itemsize: int = 4,
) -> tuple[int, int]:
    """(full-tensor bytes, per-rank stripe+halo bytes) for capacity planning.

    This is the memory argument for model parallelism: the paper's
    1152x768x256 decoder activations exceed comfortable V100 residency
    alongside weights and workspace; striping over the 6 NVLink-connected
    GPUs of a Summit node divides the activation burden accordingly.
    """
    full = batch * channels * height * width * itemsize
    bounds = stripe_bounds(height, ranks)
    tallest = max(hi - lo for lo, hi in bounds)
    halo = halo_rows_for(kernel, dilation)
    per_rank = batch * channels * (tallest + 2 * halo) * width * itemsize
    return full, per_rank
