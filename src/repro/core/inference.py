"""Tiled inference for snapshots larger than trainable window sizes.

The paper trains at the native 1152x768 on Summit; anyone reproducing on
smaller hardware (or applying a trained model to even larger grids — the
paper's "images can be millions of pixels" point) needs tiled prediction:
split the snapshot into overlapping windows, predict per window, and blend
the overlaps so tile seams don't show up as segmentation artifacts.

Windows are blended in *logit* space with separable linear (tent) weights,
so a constant-logit model produces exactly constant output regardless of
the tiling — the invariant the tests pin down.
"""
from __future__ import annotations

import numpy as np

from ..framework import Tensor, no_grad
from ..framework.module import Module

__all__ = ["tile_positions", "tent_window", "sliding_window_logits",
           "predict_tiled"]


def tile_positions(size: int, window: int, stride: int) -> list[int]:
    """Start offsets covering [0, size) with a final flush-right window."""
    if window > size:
        raise ValueError(f"window {window} larger than extent {size}")
    if stride < 1 or stride > window:
        raise ValueError("stride must be in [1, window]")
    positions = list(range(0, size - window + 1, stride))
    if positions[-1] != size - window:
        positions.append(size - window)
    return positions


def tent_window(window: int) -> np.ndarray:
    """1-D triangular blending weights, strictly positive."""
    ramp = np.minimum(np.arange(1, window + 1), np.arange(window, 0, -1))
    return ramp.astype(np.float64) / ramp.max()


def sliding_window_logits(
    model: Module,
    image: np.ndarray,
    window_hw: tuple[int, int],
    stride_hw: tuple[int, int] | None = None,
    num_classes: int | None = None,
) -> np.ndarray:
    """Blend per-window logits into a full-image logit map.

    ``image`` is (C, H, W); returns (K, H, W).
    """
    c, h, w = image.shape
    wh, ww = window_hw
    sh, sw = stride_hw or (wh // 2, ww // 2)
    ys = tile_positions(h, wh, sh)
    xs = tile_positions(w, ww, sw)
    weight_2d = tent_window(wh)[:, None] * tent_window(ww)[None, :]
    acc = None
    weight_acc = np.zeros((h, w))
    model.train(False)
    with no_grad():
        for y0 in ys:
            for x0 in xs:
                tile = image[:, y0 : y0 + wh, x0 : x0 + ww]
                logits = model(Tensor(tile[None].astype(np.float32)))
                out = logits.data[0].astype(np.float64)
                if acc is None:
                    k = out.shape[0] if num_classes is None else num_classes
                    acc = np.zeros((k, h, w))
                acc[:, y0 : y0 + wh, x0 : x0 + ww] += out * weight_2d
                weight_acc[y0 : y0 + wh, x0 : x0 + ww] += weight_2d
    model.train(True)
    if acc is None:
        raise RuntimeError("no tiles generated")
    return (acc / np.maximum(weight_acc, 1e-12)).astype(np.float32)


def predict_tiled(model: Module, image: np.ndarray,
                  window_hw: tuple[int, int],
                  stride_hw: tuple[int, int] | None = None) -> np.ndarray:
    """Class-id map for one (C, H, W) snapshot via tiled inference."""
    logits = sliding_window_logits(model, image, window_hw, stride_hw)
    return np.argmax(logits, axis=0)
