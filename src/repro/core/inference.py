"""Tiled inference for snapshots larger than trainable window sizes.

The paper trains at the native 1152x768 on Summit; anyone reproducing on
smaller hardware (or applying a trained model to even larger grids — the
paper's "images can be millions of pixels" point) needs tiled prediction:
split the snapshot into overlapping windows, predict per window, and blend
the overlaps so tile seams don't show up as segmentation artifacts.

Windows are blended in *logit* space with separable linear (tent) weights,
so a constant-logit model produces exactly constant output regardless of
the tiling — the invariant the tests pin down.

The window forward path is factored so the serving layer
(:mod:`repro.serve`) can reuse it across requests:

* :func:`forward_windows` — run a list of (C, h, w) tiles through the
  model, stacking them into batches of ``batch_size`` and consulting an
  optional content-keyed tile cache (:class:`repro.serve.TileCache` duck
  type: ``key``/``get``/``put``);
* :func:`blend_windows` — tent-blend per-window logits back into one
  (K, H, W) logit map.
"""
from __future__ import annotations

import numpy as np

from ..framework import Tensor, no_grad
from ..framework.module import Module

__all__ = ["tile_positions", "tent_window", "forward_windows",
           "blend_windows", "sliding_window_logits", "predict_tiled"]


def tile_positions(size: int, window: int, stride: int) -> list[int]:
    """Start offsets covering [0, size) with a final flush-right window."""
    if window > size:
        raise ValueError(f"window {window} larger than extent {size}")
    if stride < 1 or stride > window:
        raise ValueError("stride must be in [1, window]")
    positions = list(range(0, size - window + 1, stride))
    if positions[-1] != size - window:
        positions.append(size - window)
    return positions


def tent_window(window: int) -> np.ndarray:
    """1-D triangular blending weights, strictly positive."""
    ramp = np.minimum(np.arange(1, window + 1), np.arange(window, 0, -1))
    return ramp.astype(np.float64) / ramp.max()


def forward_windows(model: Module, tiles: list[np.ndarray],
                    batch_size: int = 1, cache=None) -> list[np.ndarray]:
    """Per-tile (K, h, w) float32 logits for a list of (C, h, w) tiles.

    Tiles are forwarded in stacked batches of ``batch_size`` (one model
    call per chunk instead of one per window — the hot-path saving the
    serving benchmarks measure).  ``cache``, when given, must expose
    ``key(tile)``, ``get(key)``, and ``put(key, value)``; tiles whose
    content key hits skip the forward entirely, and every computed logit
    block is stored back.  The model is run in eval mode under
    :func:`~repro.framework.no_grad` and restored to whatever mode it was
    in before the call (frozen models stay in eval regardless).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    outs: list[np.ndarray | None] = [None] * len(tiles)
    keys: list[str] | None = None
    if cache is not None:
        keys = [cache.key(t) for t in tiles]
        misses = []
        for i, k in enumerate(keys):
            hit = cache.get(k)
            if hit is not None:
                outs[i] = hit
            else:
                misses.append(i)
    else:
        misses = list(range(len(tiles)))
    was_training = model.training
    model.train(False)
    with no_grad():
        for at in range(0, len(misses), batch_size):
            chunk = misses[at:at + batch_size]
            stack = np.stack([tiles[i] for i in chunk]).astype(np.float32)
            logits = model(Tensor(stack)).data.astype(np.float32)
            for j, i in enumerate(chunk):
                outs[i] = logits[j]
                if cache is not None:
                    cache.put(keys[i], logits[j])
    model.train(was_training)
    return outs  # type: ignore[return-value]


def blend_windows(outs: list[np.ndarray], ys: list[int], xs: list[int],
                  image_hw: tuple[int, int], window_hw: tuple[int, int],
                  num_classes: int | None = None) -> np.ndarray:
    """Tent-blend per-window logits into a full (K, H, W) logit map.

    ``outs`` holds one (K, wh, ww) block per (y, x) position, ordered as
    the nested ``for y in ys: for x in xs`` loop produces them.
    """
    h, w = image_hw
    wh, ww = window_hw
    weight_2d = tent_window(wh)[:, None] * tent_window(ww)[None, :]
    acc = None
    weight_acc = np.zeros((h, w))
    i = 0
    for y0 in ys:
        for x0 in xs:
            out = outs[i].astype(np.float64)
            i += 1
            if acc is None:
                k = out.shape[0] if num_classes is None else num_classes
                acc = np.zeros((k, h, w))
            acc[:, y0: y0 + wh, x0: x0 + ww] += out * weight_2d
            weight_acc[y0: y0 + wh, x0: x0 + ww] += weight_2d
    if acc is None:
        raise RuntimeError("no tiles generated")
    return (acc / np.maximum(weight_acc, 1e-12)).astype(np.float32)


def sliding_window_logits(
    model: Module,
    image: np.ndarray,
    window_hw: tuple[int, int],
    stride_hw: tuple[int, int] | None = None,
    num_classes: int | None = None,
    batch_size: int = 1,
    cache=None,
) -> np.ndarray:
    """Blend per-window logits into a full-image logit map.

    ``image`` is (C, H, W); returns (K, H, W).  ``batch_size`` stacks that
    many windows per model call (identical logits up to float
    reassociation); ``cache`` is an optional content-keyed tile cache — see
    :func:`forward_windows`.
    """
    c, h, w = image.shape
    wh, ww = window_hw
    sh, sw = stride_hw or (wh // 2, ww // 2)
    ys = tile_positions(h, wh, sh)
    xs = tile_positions(w, ww, sw)
    tiles = [image[:, y0: y0 + wh, x0: x0 + ww] for y0 in ys for x0 in xs]
    outs = forward_windows(model, tiles, batch_size=batch_size, cache=cache)
    return blend_windows(outs, ys, xs, (h, w), (wh, ww),
                         num_classes=num_classes)


def predict_tiled(model: Module, image: np.ndarray,
                  window_hw: tuple[int, int],
                  stride_hw: tuple[int, int] | None = None) -> np.ndarray:
    """Class-id map for one (C, H, W) snapshot via tiled inference."""
    logits = sliding_window_logits(model, image, window_hw, stride_hw)
    return np.argmax(logits, axis=0)
