"""Training checkpoints: model + optimizer + loss-scaler state.

Two-hour convergence runs on 27360 GPUs (Section VII-C) are only practical
with restartable state; this module serializes everything a
:class:`repro.core.trainer.Trainer` needs to resume bit-exactly — parameter
masters, batch-norm running statistics, momentum/Adam moments, the gradient
lag delay line, and the dynamic loss scale — into a single ``.npz`` file.
"""
from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .optim import GradientLag
from .trainer import Trainer

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def _optimizer_state(optimizer) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten optimizer state into arrays + JSON metadata."""
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"steps": getattr(optimizer, "steps", 0)}
    inner = optimizer.inner if isinstance(optimizer, GradientLag) else optimizer
    meta["inner_steps"] = inner.steps
    # Momentum / Adam buffers are keyed by parameter identity; persist them
    # by parameter name instead.
    by_id = {id(p): p.name for p in inner.params}
    for attr in ("_velocity", "_m", "_v"):
        table = getattr(inner, attr, None)
        if table:
            for pid, arr in table.items():
                arrays[f"opt.{attr}.{by_id[pid]}"] = arr
    t_table = getattr(inner, "_t", None)
    if t_table:
        meta["adam_t"] = {by_id[pid]: t for pid, t in t_table.items()}
    if isinstance(optimizer, GradientLag):
        meta["lag"] = optimizer.lag
        for i, grads in enumerate(optimizer._queue):
            for name, g in grads.items():
                arrays[f"lagq.{i}.{name}"] = g
        meta["lag_queue_len"] = len(optimizer._queue)
    return arrays, meta


def save_checkpoint(trainer: Trainer, path: str | Path) -> Path:
    """Serialize a trainer to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: dict[str, np.ndarray] = {}
    for name, value in trainer.model.state_dict().items():
        arrays[f"model.{name}"] = value
    opt_arrays, opt_meta = _optimizer_state(trainer.optimizer)
    arrays.update(opt_arrays)
    meta = {
        "version": _FORMAT_VERSION,
        "optimizer": opt_meta,
        "history_len": len(trainer.history),
        "config": {
            "lr": trainer.config.lr,
            "optimizer": trainer.config.optimizer,
            "precision": trainer.config.precision,
            "weighting": trainer.config.weighting,
            "gradient_lag": trainer.config.gradient_lag,
        },
    }
    if trainer.scaler is not None:
        meta["scaler"] = {
            "scale": trainer.scaler.scale,
            "good_steps": trainer.scaler._good_steps,
            "num_overflows": trainer.scaler.num_overflows,
        }
    arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)
    return path


def load_checkpoint(trainer: Trainer, path: str | Path) -> dict:
    """Restore a trainer in place; returns the checkpoint metadata.

    The trainer must be constructed with the same architecture and
    configuration as the one that was saved.
    """
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"].tobytes()).decode())
        if meta["version"] != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {meta['version']}")
        saved_cfg = meta["config"]
        for key, value in saved_cfg.items():
            if getattr(trainer.config, key) != value:
                raise ValueError(
                    f"checkpoint config mismatch at {key!r}: saved {value}, "
                    f"trainer has {getattr(trainer.config, key)}"
                )
        model_state = {k[len("model."):]: data[k] for k in data.files
                       if k.startswith("model.")}
        trainer.model.load_state_dict(model_state)
        optimizer = trainer.optimizer
        inner = optimizer.inner if isinstance(optimizer, GradientLag) else optimizer
        inner.steps = meta["optimizer"]["inner_steps"]
        by_name = {p.name: p for p in inner.params}
        for key in data.files:
            if key.startswith("opt."):
                _, attr, pname = key.split(".", 2)
                getattr(inner, attr)[id(by_name[pname])] = data[key]
        if "adam_t" in meta["optimizer"]:
            inner._t = {id(by_name[n]): t
                        for n, t in meta["optimizer"]["adam_t"].items()}
        if isinstance(optimizer, GradientLag):
            optimizer.lag = meta["optimizer"]["lag"]
            optimizer._queue.clear()
            for i in range(meta["optimizer"]["lag_queue_len"]):
                prefix = f"lagq.{i}."
                grads = {k[len(prefix):]: data[k] for k in data.files
                         if k.startswith(prefix)}
                optimizer._queue.append(grads)
        if trainer.scaler is not None and "scaler" in meta:
            trainer.scaler.scale = meta["scaler"]["scale"]
            trainer.scaler._good_steps = meta["scaler"]["good_steps"]
            trainer.scaler.num_overflows = meta["scaler"]["num_overflows"]
    return meta
