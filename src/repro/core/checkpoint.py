"""Training checkpoints: model + optimizer + loss-scaler state.

Two-hour convergence runs on 27360 GPUs (Section VII-C) are only practical
with restartable state; this module serializes everything a
:class:`repro.core.trainer.Trainer` needs to resume bit-exactly — parameter
masters, batch-norm running statistics, momentum/Adam moments, the gradient
lag delay line, and the dynamic loss scale — into a single ``.npz`` file.

:class:`CheckpointManager` is the API: it owns a checkpoint directory,
names files by step, finds the latest restart point, and rotates old
files — the autoresume primitive :mod:`repro.resilience` builds on.  The
original free functions (:func:`save_checkpoint` / :func:`load_checkpoint`)
remain as thin deprecated wrappers over a single-file manager.
"""
from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from ..errors import CheckpointConfigMismatch, CheckpointError, CheckpointFormatError
from .optim import GradientLag
from .trainer import Trainer

__all__ = ["CheckpointManager", "save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def _optimizer_state(optimizer) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten optimizer state into arrays + JSON metadata."""
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"steps": getattr(optimizer, "steps", 0)}
    inner = optimizer.inner if isinstance(optimizer, GradientLag) else optimizer
    meta["inner_steps"] = inner.steps
    # Momentum / Adam buffers are keyed by parameter identity; persist them
    # by parameter name instead.
    by_id = {id(p): p.name for p in inner.params}
    for attr in ("_velocity", "_m", "_v"):
        table = getattr(inner, attr, None)
        if table:
            for pid, arr in table.items():
                arrays[f"opt.{attr}.{by_id[pid]}"] = arr
    t_table = getattr(inner, "_t", None)
    if t_table:
        meta["adam_t"] = {by_id[pid]: t for pid, t in t_table.items()}
    if isinstance(optimizer, GradientLag):
        meta["lag"] = optimizer.lag
        for i, grads in enumerate(optimizer._queue):
            for name, g in grads.items():
                arrays[f"lagq.{i}.{name}"] = g
        meta["lag_queue_len"] = len(optimizer._queue)
    return arrays, meta


def _write_checkpoint(trainer: Trainer, path: Path,
                      extra_meta: dict | None = None,
                      extra_arrays: dict[str, np.ndarray] | None = None) -> Path:
    """Serialize a trainer to ``path`` (``.npz`` appended if missing).

    ``extra_arrays`` lets subsystems persist array state alongside the
    trainer (e.g. the comm engine's error-feedback residuals); they are
    namespaced under ``extra.`` and retrieved with
    :meth:`CheckpointManager.load_extra_arrays`.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: dict[str, np.ndarray] = {}
    for name, value in trainer.model.state_dict().items():
        arrays[f"model.{name}"] = value
    opt_arrays, opt_meta = _optimizer_state(trainer.optimizer)
    arrays.update(opt_arrays)
    for name, value in (extra_arrays or {}).items():
        arrays[f"extra.{name}"] = np.asarray(value)
    meta = {
        "version": _FORMAT_VERSION,
        "optimizer": opt_meta,
        "history_len": len(trainer.history),
        "config": {
            "lr": trainer.config.lr,
            "optimizer": trainer.config.optimizer,
            "precision": trainer.config.precision,
            "weighting": trainer.config.weighting,
            "gradient_lag": trainer.config.gradient_lag,
        },
    }
    if extra_meta:
        meta["extra"] = extra_meta
    if trainer.scaler is not None:
        meta["scaler"] = {
            "scale": trainer.scaler.scale,
            "good_steps": trainer.scaler._good_steps,
            "num_overflows": trainer.scaler.num_overflows,
        }
    arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)
    return path


def _read_checkpoint(trainer: Trainer, path: Path,
                     strict_config: bool = True) -> dict:
    """Restore a trainer in place; returns the checkpoint metadata."""
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"].tobytes()).decode())
        if meta["version"] != _FORMAT_VERSION:
            raise CheckpointFormatError(
                f"unsupported checkpoint version {meta['version']}")
        saved_cfg = meta["config"]
        skip_keys = set() if strict_config else {"lr"}
        for key, value in saved_cfg.items():
            if key in skip_keys:
                continue
            if getattr(trainer.config, key) != value:
                raise CheckpointConfigMismatch(
                    f"checkpoint config mismatch at {key!r}: saved {value}, "
                    f"trainer has {getattr(trainer.config, key)}"
                )
        model_state = {k[len("model."):]: data[k] for k in data.files
                       if k.startswith("model.")}
        trainer.model.load_state_dict(model_state)
        optimizer = trainer.optimizer
        inner = optimizer.inner if isinstance(optimizer, GradientLag) else optimizer
        inner.steps = meta["optimizer"]["inner_steps"]
        by_name = {p.name: p for p in inner.params}
        for key in data.files:
            if key.startswith("opt."):
                _, attr, pname = key.split(".", 2)
                getattr(inner, attr)[id(by_name[pname])] = data[key]
        if "adam_t" in meta["optimizer"]:
            inner._t = {id(by_name[n]): t
                        for n, t in meta["optimizer"]["adam_t"].items()}
        if isinstance(optimizer, GradientLag):
            optimizer.lag = meta["optimizer"]["lag"]
            optimizer._queue.clear()
            for i in range(meta["optimizer"]["lag_queue_len"]):
                prefix = f"lagq.{i}."
                grads = {k[len(prefix):]: data[k] for k in data.files
                         if k.startswith(prefix)}
                optimizer._queue.append(grads)
        if trainer.scaler is not None and "scaler" in meta:
            trainer.scaler.scale = meta["scaler"]["scale"]
            trainer.scaler._good_steps = meta["scaler"]["good_steps"]
            trainer.scaler.num_overflows = meta["scaler"]["num_overflows"]
    return meta


class CheckpointManager:
    """Owns a directory of step-named checkpoints with rotation.

    Files are ``<prefix>-<step:08d>.npz`` inside ``directory``; ``latest``
    resolves the newest restart point by step number (not mtime, so a
    restored/copied directory still resumes correctly), and
    ``rotate(keep_last=N)`` bounds disk use on long runs.  The resilience
    runner's autoresume path is built on exactly these four verbs.
    """

    def __init__(self, directory: str | Path, keep_last: int | None = None,
                 prefix: str = "ckpt"):
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        self.prefix = prefix

    # -- naming ------------------------------------------------------------

    def path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{int(step):08d}.npz"

    def _step_of(self, path: Path) -> int:
        stem = path.stem
        try:
            return int(stem.rsplit("-", 1)[1])
        except (IndexError, ValueError) as exc:
            raise CheckpointFormatError(
                f"not a managed checkpoint name: {path.name}") from exc

    def checkpoints(self) -> list[Path]:
        """Managed checkpoint files, oldest first."""
        paths = self.directory.glob(f"{self.prefix}-*.npz")
        return sorted(paths, key=self._step_of)

    def latest(self) -> Path | None:
        """Newest checkpoint by step number, or ``None`` when empty."""
        found = self.checkpoints()
        return found[-1] if found else None

    def exists(self, step: int) -> bool:
        """True when a managed checkpoint for ``step`` is on disk."""
        return self.path_for(step).is_file()

    def latest_step(self) -> int | None:
        """Step number of the newest checkpoint, or ``None`` when empty.

        The restart primitive: resume logic wants "what step do I start
        from" without re-parsing ``latest()``'s filename itself.
        """
        latest = self.latest()
        return None if latest is None else self._step_of(latest)

    # -- verbs -------------------------------------------------------------

    def save(self, trainer: Trainer, step: int | None = None,
             extra_meta: dict | None = None,
             extra_arrays: dict[str, np.ndarray] | None = None) -> Path:
        """Write one checkpoint (step defaults to the trainer's history
        length) and apply the rotation policy."""
        step = len(trainer.history) if step is None else int(step)
        extra = dict(extra_meta or {})
        extra["step"] = step
        path = _write_checkpoint(trainer, self.path_for(step), extra_meta=extra,
                                 extra_arrays=extra_arrays)
        if self.keep_last is not None:
            self.rotate(self.keep_last)
        return path

    def load(self, trainer: Trainer, path: str | Path | None = None,
             strict_config: bool = True) -> dict:
        """Restore ``trainer`` from ``path`` (default: latest); returns
        the checkpoint metadata."""
        if path is None:
            path = self.latest()
            if path is None:
                raise CheckpointError(
                    f"no checkpoints under {self.directory}")
        return _read_checkpoint(trainer, Path(path),
                                strict_config=strict_config)

    def load_extra_arrays(self, path: str | Path | None = None
                          ) -> dict[str, np.ndarray]:
        """Read the subsystem arrays stored via ``save(extra_arrays=...)``.

        Returns ``{}`` for checkpoints written before this field existed, so
        callers can restore opportunistically.
        """
        if path is None:
            path = self.latest()
            if path is None:
                raise CheckpointError(
                    f"no checkpoints under {self.directory}")
        with np.load(Path(path)) as data:
            return {k[len("extra."):]: data[k].copy() for k in data.files
                    if k.startswith("extra.")}

    def rotate(self, keep_last: int | None = None) -> list[Path]:
        """Delete all but the newest ``keep_last`` files; returns removals."""
        keep = self.keep_last if keep_last is None else int(keep_last)
        if keep is None:
            return []
        if keep < 1:
            raise ValueError("keep_last must be >= 1")
        found = self.checkpoints()
        removed = found[:-keep] if len(found) > keep else []
        for path in removed:
            path.unlink()
        return removed


# -- deprecated free-function API ------------------------------------------

def save_checkpoint(trainer: Trainer, path: str | Path) -> Path:
    """Deprecated: use :meth:`CheckpointManager.save`.

    Serializes a trainer to one explicit ``path`` (``.npz`` appended if
    missing), exactly as before the manager API landed.
    """
    warnings.warn("save_checkpoint is deprecated; use CheckpointManager.save",
                  DeprecationWarning, stacklevel=2)
    return _write_checkpoint(trainer, Path(path))


def load_checkpoint(trainer: Trainer, path: str | Path) -> dict:
    """Deprecated: use :meth:`CheckpointManager.load`.

    Restores a trainer in place from one explicit ``path``; returns the
    checkpoint metadata.  The trainer must be constructed with the same
    architecture and configuration as the one that was saved.
    """
    warnings.warn("load_checkpoint is deprecated; use CheckpointManager.load",
                  DeprecationWarning, stacklevel=2)
    return _read_checkpoint(trainer, Path(path))
