"""The paper's contribution layer: networks, training algorithms, metrics."""
from . import losses, metrics, networks, optim
from .checkpoint import CheckpointManager, load_checkpoint, save_checkpoint
from .convergence import ConvergenceCurve, loss_trajectory_summary, wall_clock_curve
from .distributed import DistributedStepResult, DistributedTrainer
from .inference import predict_tiled, sliding_window_logits, tile_positions
from .flops import (
    PAPER_OP_COUNTS_TF,
    NetworkFlops,
    count_training_flops,
    network_flop_table,
    paper_conv_example_flops,
)
from .losses import (
    class_weights,
    pixel_weight_map,
    segmentation_loss,
    tc_penalty_ratio,
)
from .metrics import SegmentationReport, confusion_matrix, iou_per_class, mean_iou
from .networks import (
    DeepLabConfig,
    DeepLabV3Plus,
    Tiramisu,
    TiramisuConfig,
    deeplab_modified,
    deeplab_stock,
    tiramisu_modified,
    tiramisu_original,
)
from .spatial import (
    SpatialPartition,
    activation_bytes_per_rank,
    distributed_conv2d,
    halo_rows_for,
)
from .trainer import StepResult, TrainConfig, Trainer, build_optimizer

__all__ = [
    "Tiramisu",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "SpatialPartition",
    "distributed_conv2d",
    "halo_rows_for",
    "activation_bytes_per_rank",
    "predict_tiled",
    "sliding_window_logits",
    "tile_positions",
    "TiramisuConfig",
    "tiramisu_modified",
    "tiramisu_original",
    "DeepLabV3Plus",
    "DeepLabConfig",
    "deeplab_modified",
    "deeplab_stock",
    "TrainConfig",
    "Trainer",
    "StepResult",
    "build_optimizer",
    "DistributedTrainer",
    "DistributedStepResult",
    "class_weights",
    "pixel_weight_map",
    "segmentation_loss",
    "tc_penalty_ratio",
    "SegmentationReport",
    "confusion_matrix",
    "iou_per_class",
    "mean_iou",
    "count_training_flops",
    "network_flop_table",
    "paper_conv_example_flops",
    "NetworkFlops",
    "PAPER_OP_COUNTS_TF",
    "ConvergenceCurve",
    "wall_clock_curve",
    "loss_trajectory_summary",
    "losses",
    "metrics",
    "networks",
    "optim",
]
