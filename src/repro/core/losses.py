"""Class-weighting strategies for the segmentation loss (Section V-B1).

The class imbalance (98.2% BG / 1.7% AR / <0.1% TC) lets an unweighted
network win by predicting background everywhere.  The paper's fixes, in the
order they tried them:

* **inverse frequency** — equalizes each class's total loss contribution,
  but the enormous TC weight produced "numerical stability issues,
  especially with FP16 training";
* **inverse square root of frequency** — the moderate weighting they
  shipped: stable in FP16 while still forcing the minority classes to be
  learned.  Under it, a TC false negative costs roughly
  sqrt(f_BG / f_TC) ~ 37x more than a false positive — the overprediction
  the paper points out around Figure 7b.
"""
from __future__ import annotations

import numpy as np

from ..framework.losses import weighted_cross_entropy
from ..framework.tensor import Tensor

__all__ = [
    "uniform_class_weights",
    "inverse_frequency_weights",
    "inverse_sqrt_frequency_weights",
    "class_weights",
    "pixel_weight_map",
    "tc_penalty_ratio",
    "segmentation_loss",
]

_STRATEGIES = ("none", "inverse", "inverse_sqrt")


def uniform_class_weights(frequencies: np.ndarray) -> np.ndarray:
    """All-ones weights (the unweighted baseline)."""
    return np.ones_like(np.asarray(frequencies, dtype=np.float64))


def inverse_frequency_weights(frequencies: np.ndarray, floor: float = 1e-8) -> np.ndarray:
    """w_k = 1 / f_k (normalized so the background weight is ~1)."""
    f = np.maximum(np.asarray(frequencies, dtype=np.float64), floor)
    w = 1.0 / f
    return w / w[np.argmax(f)]  # most-frequent class (BG) weighs 1


def inverse_sqrt_frequency_weights(frequencies: np.ndarray, floor: float = 1e-8) -> np.ndarray:
    """w_k = 1 / sqrt(f_k), the paper's production weighting."""
    f = np.maximum(np.asarray(frequencies, dtype=np.float64), floor)
    w = 1.0 / np.sqrt(f)
    return w / w[np.argmax(f)]  # most-frequent class (BG) weighs 1


def class_weights(frequencies: np.ndarray, strategy: str) -> np.ndarray:
    """Dispatch on strategy name ('none' | 'inverse' | 'inverse_sqrt')."""
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown weighting strategy {strategy!r}; "
                         f"expected one of {_STRATEGIES}")
    if strategy == "none":
        return uniform_class_weights(frequencies)
    if strategy == "inverse":
        return inverse_frequency_weights(frequencies)
    return inverse_sqrt_frequency_weights(frequencies)


def pixel_weight_map(labels: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-pixel weight plane from per-class weights.

    Computed by the input pipeline (CPU) and shipped to the GPU with the
    image, exactly as in the paper.
    """
    labels = np.asarray(labels)
    weights = np.asarray(weights, dtype=np.float32)
    if labels.min() < 0 or labels.max() >= len(weights):
        raise ValueError("labels out of range for the weight table")
    return weights[labels]


def tc_penalty_ratio(weights: np.ndarray, tc_class: int = 1, bg_class: int = 0) -> float:
    """False-negative / false-positive penalty ratio for the TC class.

    A TC false negative is weighted by w_TC (the missed pixel is labeled TC);
    a false positive by w_BG.  The paper quotes ~37x for their frequencies
    under inverse-sqrt weighting.
    """
    return float(weights[tc_class] / weights[bg_class])


def segmentation_loss(
    logits: Tensor,
    labels: np.ndarray,
    frequencies: np.ndarray,
    strategy: str = "inverse_sqrt",
    normalization: str = "weighted_mean",
) -> Tensor:
    """Weighted cross-entropy with the chosen class-weighting strategy."""
    w = class_weights(frequencies, strategy)
    wmap = pixel_weight_map(labels, w)
    return weighted_cross_entropy(logits, labels, wmap, normalization=normalization)
