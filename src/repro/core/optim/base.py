"""Optimizer base class working on framework Parameters."""
from __future__ import annotations

from typing import Iterable

import numpy as np

from ...framework.parameter import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base: subclasses implement ``_delta(param, grad) -> update``.

    Gradients are read from ``param.grad`` (populated by ``backward`` and,
    in distributed training, replaced by the all-reduced average before
    ``step``).  Updates are applied through ``Parameter.apply_update`` so
    FP32 master weights are handled transparently.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.steps = 0

    def _delta(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def step(self) -> None:
        """Apply one update from the currently stored gradients."""
        self.steps += 1
        for p in self.params:
            if p.grad is None:
                continue
            grad = np.asarray(p.grad, dtype=np.float32)
            p.apply_update(self._delta(p, grad))

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def gradients(self) -> dict[str, np.ndarray]:
        """Named gradient dict (what Horovod all-reduces)."""
        return {p.name: p.grad for p in self.params if p.grad is not None}

    def load_gradients(self, grads: dict[str, np.ndarray]) -> None:
        """Replace stored gradients (after an all-reduce)."""
        for p in self.params:
            if p.name in grads:
                p.grad = np.asarray(grads[p.name])
