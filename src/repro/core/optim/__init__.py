"""Optimizers: SGD/Adam plus the paper's large-batch machinery."""
from . import schedules
from .adam import Adam
from .base import Optimizer
from .easgd import EASGDState
from .lag import GradientLag
from .larc import LARC, LARS
from .sgd import SGD

__all__ = ["Optimizer", "SGD", "Adam", "LARS", "LARC", "GradientLag",
           "EASGDState", "schedules"]
