"""Gradient lag: update weights with the *previous* step's gradients.

Section V-B4: the top layer's gradient all-reduce is a sequential
bottleneck; using lag-1 gradients lets every all-reduce overlap with the
next step's compute and lets Horovod batch tensors more aggressively.  The
paper found lag-1 training curves "nearly identical" to lag-0 (Figure 6).

``GradientLag`` wraps any optimizer: ``step`` buffers the fresh gradients
and applies the ones from ``lag`` steps ago (the first ``lag`` calls apply
nothing, mirroring a pipeline fill).  EASGD (Zhang et al., cited in the
paper) generalizes to larger effective lags via an elastic center —
see :mod:`repro.core.optim.easgd`.
"""
from __future__ import annotations

from collections import deque

import numpy as np

from .base import Optimizer

__all__ = ["GradientLag"]


class GradientLag:
    """Delay-line wrapper around an optimizer."""

    def __init__(self, inner: Optimizer, lag: int = 1):
        if lag < 0:
            raise ValueError("lag must be >= 0")
        self.inner = inner
        self.lag = int(lag)
        self._queue: deque[dict[str, np.ndarray]] = deque()
        self.steps = 0

    @property
    def params(self):
        return self.inner.params

    @property
    def lr(self) -> float:
        return self.inner.lr

    def set_lr(self, lr: float) -> None:
        self.inner.set_lr(lr)

    def step(self) -> None:
        """Buffer current grads; apply the grads from ``lag`` steps ago."""
        self.steps += 1
        if self.lag == 0:
            self.inner.step()
            return
        current = {
            p.name: np.asarray(p.grad, dtype=np.float32).copy()
            for p in self.inner.params
            if p.grad is not None
        }
        self._queue.append(current)
        if len(self._queue) > self.lag:
            delayed = self._queue.popleft()
            self.inner.load_gradients(delayed)
            self.inner.step()

    def zero_grad(self) -> None:
        self.inner.zero_grad()

    def gradients(self):
        return self.inner.gradients()

    def load_gradients(self, grads) -> None:
        self.inner.load_gradients(grads)

    def flush(self) -> None:
        """Drain the delay line (apply all buffered gradients)."""
        while self._queue:
            delayed = self._queue.popleft()
            self.inner.load_gradients(delayed)
            self.inner.step()
