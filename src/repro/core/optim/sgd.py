"""Stochastic gradient descent with optional momentum and weight decay."""
from __future__ import annotations

from typing import Iterable

import numpy as np

from ...framework.parameter import Parameter
from .base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Classic (heavy-ball) momentum SGD.

    ``v <- m v + g + wd w``;  ``w <- w - lr v``.
    """

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: dict[int, np.ndarray] = {}

    def _effective_grad(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.master_value().astype(np.float32)
        return grad

    def _delta(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        grad = self._effective_grad(param, grad)
        if self.momentum:
            v = self._velocity.get(id(param))
            v = grad if v is None else self.momentum * v + grad
            self._velocity[id(param)] = v
            grad = v
        return -self.lr * grad
