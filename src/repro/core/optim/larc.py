"""LARS and LARC: layer-wise adaptive learning rates for large batches.

Section V-B2: LARC "controls the magnitude of weight updates by keeping
them small compared to the norm of layer's weights", using one adaptive
rate per layer.  Compared with LARS it *clips* the local rate at the global
schedule instead of scaling by it, removing the need for elaborate warm-up
— which is why the paper standardizes on LARC.

Local rate for layer w with gradient g:

    lr_local = trust * ||w|| / (||g|| + wd * ||w|| + eps)

* LARS (You et al. 2017): effective rate = lr_global * lr_local (scale mode);
* LARC (Ginsburg et al.):  effective rate = min(lr_local, lr_global) (clip).
"""
from __future__ import annotations

from typing import Iterable

import numpy as np

from ...framework.parameter import Parameter
from .sgd import SGD

__all__ = ["LARS", "LARC"]


class _LayerAdaptive(SGD):
    """Shared machinery: momentum SGD with a per-layer rate adaptor."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.9, weight_decay: float = 0.0,
                 trust_coefficient: float = 0.02, eps: float = 1e-8):
        super().__init__(params, lr, momentum=momentum, weight_decay=weight_decay)
        if trust_coefficient <= 0:
            raise ValueError("trust coefficient must be positive")
        self.trust = float(trust_coefficient)
        self.eps = float(eps)
        self.last_local_rates: dict[str, float] = {}

    def _local_rate(self, param: Parameter, grad: np.ndarray) -> float:
        w_norm = float(np.linalg.norm(param.master_value()))
        g_norm = float(np.linalg.norm(grad))
        if w_norm == 0.0 or g_norm == 0.0:
            return self.lr
        local = self.trust * w_norm / (g_norm + self.weight_decay * w_norm + self.eps)
        return self._combine(local)

    def _combine(self, local: float) -> float:
        raise NotImplementedError

    def _delta(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        rate = self._local_rate(param, grad)
        self.last_local_rates[param.name] = rate
        grad = self._effective_grad(param, grad)
        # Scale the gradient so the base momentum update uses the adapted rate.
        scaled = grad * (rate / self.lr)
        if self.momentum:
            v = self._velocity.get(id(param))
            v = scaled if v is None else self.momentum * v + scaled
            self._velocity[id(param)] = v
            scaled = v
        return -self.lr * scaled


class LARS(_LayerAdaptive):
    """Layer-wise Adaptive Rate Scaling: multiply by the global schedule."""

    def _combine(self, local: float) -> float:
        return local * self.lr


class LARC(_LayerAdaptive):
    """Layer-wise Adaptive Rate Control: clip at the global schedule.

    The clip means the update norm never exceeds what plain SGD at the
    global rate would do — the property that removes LARS's warm-up
    requirement (Section V-B2).
    """

    def _combine(self, local: float) -> float:
        return min(local, self.lr)
