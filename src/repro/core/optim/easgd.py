"""Elastic Averaging SGD (EASGD), the larger-lag scheme the paper cites.

Section V-B4 notes that "a similar gradient lagging strategy, known as
elastic averaging SGD (EASGD), was shown to be effective, with even larger
degrees of lag."  EASGD keeps per-replica parameters x_i loosely coupled to
a center variable x~ through an elastic force:

    x_i <- x_i - lr * (g_i + rho * (x_i - x~))
    x~  <- x~ + lr * beta/n * sum_i (x_i - x~)

Communication with the center happens only every ``tau`` steps, giving an
effective gradient staleness of up to ``tau``.
"""
from __future__ import annotations

import numpy as np

__all__ = ["EASGDState"]


class EASGDState:
    """Center-variable bookkeeping for n replicas of a flat parameter vector.

    The distributed trainer owns the replica updates; this class owns the
    elastic interaction.  Parameters are handled as flat float32 vectors to
    keep the center math simple and exact.
    """

    def __init__(self, initial: np.ndarray, replicas: int,
                 rho: float = 0.01, beta: float = 0.9, tau: int = 4):
        if replicas < 1:
            raise ValueError("need at least one replica")
        if rho <= 0 or not 0 < beta <= 1 or tau < 1:
            raise ValueError("invalid EASGD hyper-parameters")
        self.center = np.asarray(initial, dtype=np.float32).copy()
        self.replicas = int(replicas)
        self.rho = float(rho)
        self.beta = float(beta)
        self.tau = int(tau)
        self.step_count = 0

    def elastic_force(self, x_i: np.ndarray) -> np.ndarray:
        """The drift term rho * (x_i - center) added to a replica's gradient."""
        return self.rho * (np.asarray(x_i, dtype=np.float32) - self.center)

    def maybe_synchronize(self, xs: list[np.ndarray]) -> bool:
        """Every ``tau`` steps, move the center toward the replica mean and
        pull each replica toward the center.  Mutates ``xs`` in place and
        returns True when a synchronization happened."""
        self.step_count += 1
        if self.step_count % self.tau:
            return False
        alpha = self.beta / self.replicas
        diffs = [x - self.center for x in xs]
        for x, d in zip(xs, diffs):
            x -= alpha * d
        self.center = self.center + alpha * np.sum(diffs, axis=0)
        return True

    def consensus_distance(self, xs: list[np.ndarray]) -> float:
        """RMS distance of replicas from the center (convergence diagnostic)."""
        return float(np.sqrt(np.mean([np.mean((x - self.center) ** 2) for x in xs])))
