"""ADAM (adaptive moment estimation) — the Tiramisu training optimizer
named in Section III-A1."""
from __future__ import annotations

from typing import Iterable

import numpy as np

from ...framework.parameter import Parameter
from .base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Kingma & Ba (2014) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self.weight_decay = float(weight_decay)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def _delta(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.master_value().astype(np.float32)
        key = id(param)
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m = self._m.get(key, np.zeros_like(grad))
        v = self._v.get(key, np.zeros_like(grad))
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key], self._v[key] = m, v
        mhat = m / (1 - self.beta1**t)
        vhat = v / (1 - self.beta2**t)
        return -self.lr * mhat / (np.sqrt(vhat) + self.eps)
