"""Learning-rate schedules and large-batch scaling rules.

The paper's Figure 6 runs scale the learning rate with concurrency
(LR=0.0001 at 384 GPUs, 0.0064 at 1536, 0.4096 at 6144 — a faster-than-
linear ramp enabled by LARC's clipping).  ``sqrt_scaled_lr`` and
``linear_scaled_lr`` are the two standard rules; ``paper_lr_for_gpus``
interpolates the paper's actual settings.
"""
from __future__ import annotations

import math

__all__ = [
    "constant",
    "step_decay",
    "polynomial_decay",
    "linear_warmup",
    "linear_scaled_lr",
    "sqrt_scaled_lr",
    "paper_lr_for_gpus",
    "PAPER_LR_TABLE",
]

#: (GPUs, learning rate) pairs from Figure 6.
PAPER_LR_TABLE = ((384, 0.0001), (1536, 0.0064), (6144, 0.4096))


def constant(lr: float):
    """lr(step) = lr."""
    return lambda step: lr


def step_decay(lr: float, decay: float, every: int):
    """Multiply by ``decay`` every ``every`` steps."""
    if every < 1:
        raise ValueError("every must be >= 1")
    return lambda step: lr * decay ** (step // every)


def polynomial_decay(lr: float, total_steps: int, power: float = 0.9,
                     end_lr: float = 0.0):
    """The DeepLab-family poly schedule."""
    if total_steps < 1:
        raise ValueError("total_steps must be >= 1")

    def f(step: int) -> float:
        frac = min(step / total_steps, 1.0)
        return (lr - end_lr) * (1.0 - frac) ** power + end_lr

    return f


def linear_warmup(target_lr: float, warmup_steps: int, after=None):
    """Ramp 0 -> target over ``warmup_steps``, then delegate to ``after``."""
    if warmup_steps < 1:
        raise ValueError("warmup_steps must be >= 1")
    after = after or constant(target_lr)

    def f(step: int) -> float:
        if step < warmup_steps:
            return target_lr * (step + 1) / warmup_steps
        return after(step - warmup_steps)

    return f


def linear_scaled_lr(base_lr: float, workers: int, base_workers: int = 1) -> float:
    """Goyal et al. linear scaling rule."""
    return base_lr * workers / base_workers


def sqrt_scaled_lr(base_lr: float, workers: int, base_workers: int = 1) -> float:
    """Square-root scaling (gentler; common with adaptive-rate optimizers)."""
    return base_lr * math.sqrt(workers / base_workers)


def paper_lr_for_gpus(gpus: int) -> float:
    """Log-log interpolation/extrapolation of the paper's LR table."""
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    table = PAPER_LR_TABLE
    if gpus <= table[0][0]:
        g0, l0 = table[0]
        g1, l1 = table[1]
    elif gpus >= table[-1][0]:
        g0, l0 = table[-2]
        g1, l1 = table[-1]
    else:
        for (g0, l0), (g1, l1) in zip(table, table[1:]):
            if g0 <= gpus <= g1:
                break
    slope = (math.log(l1) - math.log(l0)) / (math.log(g1) - math.log(g0))
    return math.exp(math.log(l0) + slope * (math.log(gpus) - math.log(g0)))
