"""Segmentation quality metrics: confusion matrix, IoU, accuracy.

The paper reports intersection-over-union: 59% for Tiramisu and 73% for the
modified DeepLabv3+ (Section VII-D), and points out that plain pixel accuracy
is useless under the class imbalance (an all-background prediction scores
98.2%).
"""
from __future__ import annotations

import numpy as np

__all__ = ["confusion_matrix", "iou_per_class", "mean_iou", "pixel_accuracy",
           "SegmentationReport"]


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """(K, K) counts, rows = true class, columns = predicted class."""
    p = np.asarray(predictions).ravel()
    t = np.asarray(labels).ravel()
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch {p.shape} vs {t.shape}")
    if p.min() < 0 or p.max() >= num_classes or t.min() < 0 or t.max() >= num_classes:
        raise ValueError("class ids out of range")
    idx = t.astype(np.int64) * num_classes + p.astype(np.int64)
    return np.bincount(idx, minlength=num_classes * num_classes).reshape(
        num_classes, num_classes
    )


def iou_per_class(cm: np.ndarray) -> np.ndarray:
    """IoU_k = TP / (TP + FP + FN); NaN for absent classes."""
    cm = np.asarray(cm, dtype=np.float64)
    tp = np.diag(cm)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    denom = tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(denom > 0, tp / denom, np.nan)


def mean_iou(cm: np.ndarray) -> float:
    """Mean over classes that appear (the paper's headline metric)."""
    ious = iou_per_class(cm)
    valid = ~np.isnan(ious)
    if not valid.any():
        return float("nan")
    return float(ious[valid].mean())


def pixel_accuracy(cm: np.ndarray) -> float:
    cm = np.asarray(cm, dtype=np.float64)
    return float(np.diag(cm).sum() / max(cm.sum(), 1.0))


class SegmentationReport:
    """Accumulates confusion counts over batches and reports metrics."""

    def __init__(self, num_classes: int, class_names: tuple[str, ...] | None = None):
        self.num_classes = int(num_classes)
        self.class_names = class_names or tuple(str(i) for i in range(num_classes))
        self.cm = np.zeros((num_classes, num_classes), dtype=np.int64)

    def update(self, predictions: np.ndarray, labels: np.ndarray) -> None:
        self.cm += confusion_matrix(predictions, labels, self.num_classes)

    @property
    def iou(self) -> dict[str, float]:
        return dict(zip(self.class_names, iou_per_class(self.cm)))

    @property
    def mean_iou(self) -> float:
        return mean_iou(self.cm)

    @property
    def accuracy(self) -> float:
        return pixel_accuracy(self.cm)

    def summary(self) -> dict:
        return {
            "mean_iou": self.mean_iou,
            "accuracy": self.accuracy,
            "iou": self.iou,
        }
