"""Synchronous data-parallel training over the simulated MPI substrate.

One model replica per rank, identical initialization, per-rank local
batches, Horovod-style gradient averaging every step — the paper's training
configuration (Section V-A3), executed functionally in one process so the
distributed-equivalence invariant can be tested exactly:

    N-rank synchronous SGD on local batches == single-process SGD on the
    concatenated global batch (up to floating-point reassociation),

because an averaged mean-per-pixel-weighted gradient over equal-size shards
equals the global-batch gradient.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.compression import TopKCompressor, sparse_allreduce
from ..comm.engine import EngineConfig, GradientExchangeEngine
from ..comm.horovod import ExchangeReport, HorovodConfig, allreduce_gradients
from ..comm.simmpi import World
from ..framework.module import Module
from ..telemetry import get_active
from .trainer import StepResult, TrainConfig, Trainer

__all__ = ["DistributedTrainer", "DistributedStepResult"]


@dataclass
class DistributedStepResult:
    """Outcome of one global step."""

    mean_loss: float
    per_rank_loss: list[float]
    exchange: ExchangeReport | None
    skipped: bool = False


class DistributedTrainer:
    """N synchronized replicas with Horovod gradient averaging.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a *freshly initialized* model;
        called once per rank.  All replicas must initialize identically
        (pass a seeded rng inside the factory), mirroring Horovod's initial
        broadcast of rank 0's variables.
    """

    def __init__(
        self,
        model_factory,
        world_size: int,
        config: TrainConfig,
        class_frequencies: np.ndarray | None = None,
        horovod: HorovodConfig | None = None,
        compression_ratio: float | None = None,
        fault_injector=None,
        engine: GradientExchangeEngine | EngineConfig | None = None,
    ):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world = World(world_size, fault_injector=fault_injector)
        self.config = config
        self.horovod = horovod or HorovodConfig(
            algorithm="ring", control_plane="hierarchical",
            fusion_threshold_bytes=4 * 1024 * 1024,
        )
        # Adaptive gradient exchange: an engine (or its config) supersedes
        # both the fixed Horovod data plane and the legacy compressed path.
        if isinstance(engine, EngineConfig):
            engine = GradientExchangeEngine(world_size, engine)
        self.engine = engine
        self.trainers = [
            Trainer(model_factory(), config, class_frequencies)
            for _ in range(world_size)
        ]
        # Optional top-k gradient compression (Section VIII-B), one
        # error-feedback compressor per rank (residuals are rank-local).
        if compression_ratio is not None:
            self._compressors = [TopKCompressor(compression_ratio)
                                 for _ in range(world_size)]
        else:
            self._compressors = None
        self._verify_identical_init()
        self._step = 0

    def _verify_identical_init(self) -> None:
        ref = self.trainers[0].model.state_dict()
        for r, t in enumerate(self.trainers[1:], start=1):
            state = t.model.state_dict()
            for k, v in ref.items():
                if not np.array_equal(state[k], v):
                    raise ValueError(
                        f"rank {r} initialized differently at {k!r}; "
                        "model_factory must be deterministic"
                    )

    @property
    def world_size(self) -> int:
        return self.world.size

    @property
    def model(self) -> Module:
        """Rank 0's replica (all replicas stay bit-identical)."""
        return self.trainers[0].model

    # -- one global step -----------------------------------------------------

    def train_step(self, rank_batches: list[tuple[np.ndarray, np.ndarray]]
                   ) -> DistributedStepResult:
        """One synchronous step: local backward, all-reduce, local update."""
        tel = get_active()
        tracer = tel.tracer
        n = self.world.size
        if len(rank_batches) != n:
            raise ValueError(f"need {n} rank batches, got {len(rank_batches)}")
        losses = []
        all_grads = []
        any_skip = False
        with tracer.span("forward_backward", category="trainer",
                         step=self._step, ranks=n) as fb_span:
            for rank, (trainer, (images, labels)) in enumerate(
                    zip(self.trainers, rank_batches)):
                trainer.model.train(True)
                trainer.model.zero_grad()
                with tracer.span("replica_fwd_bwd", category="trainer",
                                 rank=rank) as rank_span:
                    loss = trainer.compute_loss(images, labels)
                    if trainer.scaler is not None:
                        trainer.scaler.scale_loss(loss).backward()
                    else:
                        loss.backward()
                losses.append(float(loss.item()))
                # Zero-duration spans (disabled tracer, or a simulated
                # clock nobody advanced) carry no timing signal — feeding
                # them would poison windowed imbalance detection.
                if tel.streams is not None and rank_span.duration_s > 0:
                    tel.streams.observe("trainer.rank_step_s",
                                        rank_span.duration_s, rank=rank)
        if self.trainers[0].scaler is not None:
            # Overflow on ANY rank skips the global step (all ranks must act
            # identically or replicas diverge).
            oks = [t.scaler.step(t.model.parameters()) for t in self.trainers]
            if not all(oks):
                # Synchronize the scaler decision across replicas.
                for t in self.trainers:
                    t.scaler.scale = min(s.scale for s in
                                         (tr.scaler for tr in self.trainers))
                    for p in t.model.parameters():
                        p.grad = None
                tracer.instant("global_loss_scale_overflow",
                               category="trainer", step=self._step)
                if tel.enabled:
                    tel.metrics.counter("dist.overflow_steps").inc()
                return DistributedStepResult(
                    mean_loss=float(np.mean(losses)), per_rank_loss=losses,
                    exchange=None, skipped=True,
                )
        for trainer in self.trainers:
            all_grads.append({p.name: np.asarray(p.grad, dtype=np.float32)
                              for p in trainer.model.parameters()
                              if p.grad is not None})
        with tracer.span("gradient_exchange", category="comm",
                         step=self._step, tensors=len(all_grads[0])) as ex_span:
            if self.engine is not None:
                self.world.stats.reset()
                averaged, report = self.engine.exchange(self.world, all_grads)
            elif self._compressors is not None:
                averaged, report = self._compressed_exchange(all_grads)
            else:
                averaged, report = allreduce_gradients(
                    self.world, all_grads, self.horovod, seed=self._step
                )
        with tracer.span("optimizer_update", category="trainer",
                         step=self._step) as opt_span:
            for trainer, grads in zip(self.trainers, averaged):
                for p in trainer.model.parameters():
                    if p.name in grads:
                        p.grad = grads[p.name]
                trainer.optimizer.step()
        if tel.enabled:
            m = tel.metrics
            m.counter("dist.steps").inc()
            m.gauge("dist.mean_loss").set(float(np.mean(losses)))
            m.counter("comm.exchange_messages").inc(report.data_messages)
            m.counter("comm.exchange_bytes").inc(report.data_bytes)
        if tel.streams is not None:
            step_s = (fb_span.duration_s + ex_span.duration_s
                      + opt_span.duration_s)
            if step_s > 0:
                tel.streams.observe("trainer.step_time_s", step_s)
                tel.streams.observe("comm.exchange_time_s",
                                    ex_span.duration_s)
        self._step += 1
        return DistributedStepResult(
            mean_loss=float(np.mean(losses)), per_rank_loss=losses,
            exchange=report, skipped=False,
        )

    def _compressed_exchange(self, all_grads: list[dict[str, np.ndarray]]):
        """Top-k sparsified exchange with per-rank error feedback.

        Every rank compresses each tensor (accumulating the dropped residual
        locally), the sparse payloads are all-reduced, and the identical
        dense average lands on every rank — so the replica-consistency
        invariant survives compression.
        """
        names = list(all_grads[0].keys())
        self.world.stats.reset()
        averaged: list[dict[str, np.ndarray]] = [dict() for _ in all_grads]
        for name in names:
            sparse = [comp.compress(name, grads[name])
                      for comp, grads in zip(self._compressors, all_grads)]
            dense = sparse_allreduce(self.world, sparse, average=True)
            for r, d in enumerate(dense):
                averaged[r][name] = d.astype(all_grads[r][name].dtype)
        report = ExchangeReport(
            negotiation=None, fusion=None,
            data_messages=self.world.stats.total_messages,
            data_bytes=self.world.stats.total_bytes,
        )
        return averaged, report

    # -- communication state (error-feedback residuals) ------------------------

    def comm_state(self) -> dict[str, np.ndarray]:
        """Per-rank error-feedback residuals, keyed ``rank{r}.{tensor}``.

        Lossy compression is only convergent because dropped gradient mass
        is carried forward; losing the residuals at a restore point silently
        re-drops it.  This state rides checkpoints next to the model (see
        :meth:`CheckpointManager.save`'s ``extra_arrays``).
        """
        if self.engine is not None:
            return self.engine.comm_state()
        if self._compressors is not None:
            return {f"rank{r}.{k}": v
                    for r, comp in enumerate(self._compressors)
                    for k, v in comp.state().items()}
        return {}

    def load_comm_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore residuals saved by :meth:`comm_state`."""
        if self.engine is not None:
            self.engine.load_comm_state(state)
            return
        if self._compressors is None:
            return
        per_rank: list[dict[str, np.ndarray]] = [dict() for _ in self._compressors]
        for key, value in state.items():
            rank_part, _, tensor = key.partition(".")
            r = int(rank_part.removeprefix("rank"))
            if r < len(per_rank):
                per_rank[r][tensor] = value
        for comp, residuals in zip(self._compressors, per_rank):
            comp.load_state(residuals)

    # -- elastic degradation ---------------------------------------------------

    def shrink(self, failed_ranks, lr_scaling: str = "linear") -> dict:
        """Rebuild around the survivors of ``failed_ranks``.

        The elastic-recovery step of :mod:`repro.resilience`: drop the dead
        replicas, stand up a fresh (smaller) :class:`World` on the same
        fault injector, clear any half-exchanged gradients, re-broadcast
        rank 0's state so every survivor restarts bit-identical (what
        Horovod does with rank 0's variables after a restart), and rescale
        the learning rate to the surviving concurrency — ``"linear"``
        (Goyal et al.) or ``"sqrt"``, the two rules in
        :mod:`repro.core.optim.schedules`, or ``"none"``.

        Returns a summary dict (old/new size, LR factor).  Subsequent
        :meth:`train_epoch` calls re-shard over the new world size.
        """
        failed = {int(r) for r in failed_ranks}
        old_size = self.world.size
        survivors = [r for r in range(old_size) if r not in failed]
        if not survivors:
            raise ValueError("cannot shrink to zero survivors")
        if failed - set(range(old_size)):
            raise ValueError(f"failed ranks {sorted(failed)} out of range "
                             f"[0, {old_size})")
        tel = get_active()
        injector = self.world.fault_injector
        self.trainers = [self.trainers[r] for r in survivors]
        if self._compressors is not None:
            self._compressors = [self._compressors[r] for r in survivors]
        if self.engine is not None:
            # Drops only the failed ranks' residuals; survivors keep theirs.
            self.engine.shrink(survivors)
        self.world = World(len(survivors), fault_injector=injector)
        # A failure mid-exchange leaves fresh local gradients that were
        # never averaged; discard them so the retried step starts clean.
        for t in self.trainers:
            for p in t.model.parameters():
                p.grad = None
        # Restore the replica-consistency invariant from rank 0.
        ref = {k: v.copy() for k, v in self.trainers[0].model.state_dict().items()}
        for t in self.trainers[1:]:
            t.model.load_state_dict(ref)
        if lr_scaling == "linear":
            factor = len(survivors) / old_size
        elif lr_scaling == "sqrt":
            factor = float(np.sqrt(len(survivors) / old_size))
        elif lr_scaling == "none":
            factor = 1.0
        else:
            raise ValueError(f"unknown lr_scaling {lr_scaling!r}; "
                             "expected linear | sqrt | none")
        for t in self.trainers:
            t.optimizer.set_lr(t.optimizer.lr * factor)
        if tel.enabled:
            tel.metrics.counter("resilience.rank_failures").inc(len(failed))
            tel.metrics.gauge("dist.world_size").set(len(survivors))
        return {"old_size": old_size, "new_size": len(survivors),
                "failed_ranks": sorted(failed), "lr_factor": factor}

    # -- invariants ------------------------------------------------------------

    def max_replica_divergence(self) -> float:
        """Max abs *parameter* difference across replicas.

        Stays exactly zero under synchronous training: identical init +
        identical averaged gradients + deterministic optimizers.  Batch-norm
        running statistics are excluded — they are computed from local
        batches and legitimately differ per rank (as in real Horovod
        training); see :meth:`max_buffer_divergence`.
        """
        ref = {k: p.master_value() for k, p in
               self.trainers[0].model.named_parameters()}
        worst = 0.0
        for t in self.trainers[1:]:
            for k, p in t.model.named_parameters():
                diff = np.abs(p.master_value() - ref[k])
                if diff.size:
                    worst = max(worst, float(diff.max()))
        return worst

    def max_buffer_divergence(self) -> float:
        """Max abs difference of non-parameter state (BN running stats)."""
        params = {k for k, _ in self.trainers[0].model.named_parameters()}
        ref = self.trainers[0].model.state_dict()
        worst = 0.0
        for t in self.trainers[1:]:
            state = t.model.state_dict()
            for k, v in ref.items():
                if k not in params and v.size:
                    worst = max(worst, float(np.max(np.abs(state[k] - v))))
        return worst

    def train_epoch(self, dataset, batch_size: int, rng: np.random.Generator,
                    steps: int | None = None) -> list[DistributedStepResult]:
        """Run synchronized steps over per-rank shards of the training split."""
        n = self.world.size
        iterators = []
        for rank in range(n):
            shard = dataset.shard_indices(dataset.splits.train, rank, n)
            rank_rng = np.random.default_rng(rng.integers(0, 2**63))
            iterators.append(dataset.batches(shard, batch_size, rank_rng))
        results = []
        while True:
            try:
                batch_set = [next(it) for it in iterators]
            except StopIteration:
                break
            results.append(self.train_step(batch_set))
            if steps is not None and len(results) >= steps:
                break
        return results
