"""Graph-based FLOP counting (the paper's Section VI methodology).

The paper computes FLOP/s by traversing the TensorFlow operation graph and
summing each node's floating-point work, validated against cuDNN API traces
(all convolutions ran as implicit GEMMs or direct convolutions, so the
direct-convolution count applies).  Our layers emit the same inventory
through the symbolic tracer; this module packages it into the numbers the
paper reports.

Reference values (Figure 2):

==================  =====================  ==============
Network             Configuration          TF / sample
==================  =====================  ==============
DeepLabv3+          16 ch, 1152x768        14.41
Tiramisu            16 ch, 1152x768        4.188
Tiramisu            4 ch (Piz Daint)       3.703
==================  =====================  ==============
"""
from __future__ import annotations

from dataclasses import dataclass

from ..framework.graph import GraphAnalysis
from ..framework.module import Module
from ..framework.ops.conv import conv2d_flops
from .networks import (
    Tiramisu,
    TiramisuConfig,
    deeplab_modified,
    tiramisu_modified,
)

__all__ = [
    "PAPER_OP_COUNTS_TF",
    "NetworkFlops",
    "count_training_flops",
    "paper_conv_example_flops",
    "network_flop_table",
]

#: Figure 2 "Operation Count (TF/sample)" values.
PAPER_OP_COUNTS_TF = {
    "deeplabv3+": 14.41,
    "tiramisu": 4.188,
    "tiramisu_4ch": 3.703,
}


@dataclass(frozen=True)
class NetworkFlops:
    """FLOP summary for one network configuration."""

    name: str
    tf_per_sample: float
    paper_tf_per_sample: float | None
    parameters: int
    kernel_count: int

    @property
    def ratio_to_paper(self) -> float | None:
        if self.paper_tf_per_sample is None:
            return None
        return self.tf_per_sample / self.paper_tf_per_sample


def count_training_flops(model: Module, input_shape: tuple[int, int, int],
                         batch: int = 1, precision: str = "fp32") -> GraphAnalysis:
    """Full training-step kernel inventory (forward + backward)."""
    return model.analyze(input_shape, batch=batch, precision=precision,
                         include_backward=True)


def paper_conv_example_flops() -> int:
    """The worked example from Section VI: 3x3 direct conv on 1152x768,
    48 in / 32 out channels, batch 2 -> 48.9e9 FLOPs."""
    return conv2d_flops(batch=2, in_channels=48, out_channels=32,
                        out_h=768, out_w=1152, kernel_h=3, kernel_w=3)


def network_flop_table(height: int = 768, width: int = 1152) -> list[NetworkFlops]:
    """Reproduce Figure 2's operation-count column for all three configs."""
    rows = []
    dl = deeplab_modified(in_channels=16)
    a = count_training_flops(dl, (16, height, width))
    rows.append(NetworkFlops("deeplabv3+", a.flops_per_sample() / 1e12,
                             PAPER_OP_COUNTS_TF["deeplabv3+"],
                             dl.num_parameters(), a.kernel_count))
    tm = tiramisu_modified(in_channels=16)
    a = count_training_flops(tm, (16, height, width))
    rows.append(NetworkFlops("tiramisu", a.flops_per_sample() / 1e12,
                             PAPER_OP_COUNTS_TF["tiramisu"],
                             tm.num_parameters(), a.kernel_count))
    t4 = Tiramisu(TiramisuConfig(in_channels=4))
    a = count_training_flops(t4, (4, height, width))
    rows.append(NetworkFlops("tiramisu_4ch", a.flops_per_sample() / 1e12,
                             PAPER_OP_COUNTS_TF["tiramisu_4ch"],
                             t4.num_parameters(), a.kernel_count))
    return rows
