"""Convergence-at-scale experiments (Figure 6).

Figure 6 plots *training loss against wall time* for several concurrencies
and precisions.  Two ingredients produce it here:

* a real loss trajectory from training a (scaled-down) network with the
  target optimizer settings — loss vs *step* is a property of the algorithm
  (batch size, LR, LARC, lag), not of the machine;
* the performance model's step time for the simulated configuration
  (architecture, #GPUs, precision, lag) — mapping steps to wall time.

This separation is exactly why FP16 curves in the paper reach a given loss
in less time than FP32 (same trajectory, faster steps) and why lag-0 and
lag-1 DeepLab curves nearly coincide (Section VII-C).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConvergenceCurve", "wall_clock_curve", "loss_trajectory_summary"]


@dataclass
class ConvergenceCurve:
    """One Figure-6 series."""

    label: str
    times_s: np.ndarray     # wall time at each step
    losses: np.ndarray      # training loss at each step
    gpus: int
    precision: str
    lag: int

    def moving_average(self, window: int = 10) -> np.ndarray:
        """The paper smooths with a 10-step moving average."""
        if window < 1:
            raise ValueError("window must be >= 1")
        kernel = np.ones(window) / window
        return np.convolve(self.losses, kernel, mode="valid")

    def time_to_loss(self, target: float) -> float | None:
        """First wall-clock time at which the smoothed loss <= target."""
        smooth = self.moving_average(min(10, len(self.losses)))
        idx = np.nonzero(smooth <= target)[0]
        if idx.size == 0:
            return None
        return float(self.times_s[idx[0]])


def wall_clock_curve(
    losses: list[float] | np.ndarray,
    architecture: str,
    gpus: int,
    precision: str,
    lag: int = 0,
    label: str | None = None,
) -> ConvergenceCurve:
    """Attach modeled step times to a measured loss trajectory."""
    from ..perf.scaling import step_time_model  # local import: perf uses core

    step_time = step_time_model(architecture, gpus, precision, lag)
    losses = np.asarray(losses, dtype=np.float64)
    times = step_time * np.arange(1, len(losses) + 1)
    name = label or f"{architecture} {precision} #GPUs={gpus} lag={lag}"
    return ConvergenceCurve(name, times, losses, gpus, precision, lag)


def loss_trajectory_summary(losses: np.ndarray, tail_frac: float = 0.2) -> dict:
    """Simple convergence diagnostics for a loss series."""
    losses = np.asarray(losses, dtype=np.float64)
    n = len(losses)
    if n < 4:
        raise ValueError("need at least 4 steps")
    tail = losses[int(n * (1 - tail_frac)):]
    head = losses[: max(int(n * tail_frac), 2)]
    return {
        "initial": float(head.mean()),
        "final": float(tail.mean()),
        "reduction": float(head.mean() - tail.mean()),
        "monotone_fraction": float(np.mean(np.diff(losses) <= 0)),
        "converging": bool(tail.mean() < head.mean()),
    }
