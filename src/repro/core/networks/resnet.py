"""ResNet-50 encoder with atrous (output-stride-8) stages.

Matches the paper's Figure 1 encoder: a 7x7/2 stem + 3x3/2 max pool, then
four bottleneck stages of depth (3, 4, 6, 3).  To keep spatial detail for
segmentation, stages 3 and 4 trade their strides for dilations 2 and 4,
leaving the encoder output at 1/8 resolution (144 x 96 for 1152 x 768
input) instead of ResNet's usual 1/32.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...framework.layers import BatchNorm2D, Conv2D, MaxPool2D, Module, ReLU
from .blocks import Bottleneck

__all__ = ["ResNetConfig", "ResNetEncoder"]


@dataclass(frozen=True)
class ResNetConfig:
    """Encoder hyper-parameters; ``width`` scales all channel counts."""

    in_channels: int = 16
    blocks: tuple[int, ...] = (3, 4, 6, 3)   # ResNet-50
    width: float = 1.0

    def scaled(self, channels: int) -> int:
        return max(int(round(channels * self.width)), 4)


class ResNetEncoder(Module):
    """Output-stride-8 ResNet-50 trunk.

    ``forward`` returns ``(features, low_level)``: the 1/8-resolution deep
    features (2048 channels at width 1) and the 1/4-resolution stage-1
    output (256 channels) used by the decoder skip.
    """

    def __init__(self, config: ResNetConfig | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        cfg = config or ResNetConfig()
        self.config = cfg
        rng = rng or np.random.default_rng(0)
        stem_ch = cfg.scaled(64)
        self.stem_conv = Conv2D(cfg.in_channels, stem_ch, 7, stride=2,
                                bias=False, rng=rng, name="stem")
        self.stem_bn = BatchNorm2D(stem_ch, name="stem_bn")
        self.act = ReLU()
        self.pool = MaxPool2D(3, 2, padding=1)

        # (planes, stride, dilation) per stage; strides->dilations for OS8.
        stage_specs = [
            (cfg.scaled(64), 1, 1),
            (cfg.scaled(128), 2, 1),
            (cfg.scaled(256), 1, 2),
            (cfg.scaled(512), 1, 4),
        ]
        ch = stem_ch
        self.stages: list[list[Bottleneck]] = []
        for s, ((planes, stride, dilation), depth) in enumerate(
            zip(stage_specs, cfg.blocks)
        ):
            stage = []
            for b in range(depth):
                block = Bottleneck(ch, planes, stride=stride if b == 0 else 1,
                                   dilation=dilation, rng=rng,
                                   name=f"stage{s}.b{b}")
                self.add_module(f"stage{s}_b{b}", block)
                stage.append(block)
                ch = block.out_channels
            self.stages.append(stage)
        self.out_channels = ch                                  # 2048 * width
        self.low_level_channels = self.stages[0][-1].out_channels  # 256 * width

    def forward(self, x):
        h, w = x.shape[2], x.shape[3]
        if h % 8 or w % 8:
            raise ValueError(f"input {h}x{w} must be divisible by 8 (output stride)")
        out = self.pool(self.act(self.stem_bn(self.stem_conv(x))))
        low_level = None
        for s, stage in enumerate(self.stages):
            for block in stage:
                out = block(out)
            if s == 0:
                low_level = out
        return out, low_level
