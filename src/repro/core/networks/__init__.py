"""Segmentation network zoo: Tiramisu and DeepLabv3+ variants."""
from .aspp import ASPP
from .blocks import Bottleneck, ConvBNReLU, DenseBlock, DenseLayer, TransitionDown, TransitionUp
from .deeplab import DeepLabConfig, DeepLabV3Plus, deeplab_modified, deeplab_stock
from .resnet import ResNetConfig, ResNetEncoder
from .tiramisu import Tiramisu, TiramisuConfig, tiramisu_modified, tiramisu_original

__all__ = [
    "Tiramisu",
    "TiramisuConfig",
    "tiramisu_modified",
    "tiramisu_original",
    "DeepLabV3Plus",
    "DeepLabConfig",
    "deeplab_modified",
    "deeplab_stock",
    "ResNetEncoder",
    "ResNetConfig",
    "ASPP",
    "ConvBNReLU",
    "DenseLayer",
    "DenseBlock",
    "TransitionDown",
    "TransitionUp",
    "Bottleneck",
]
