"""Tiramisu (FC-DenseNet) segmentation network, original and modified.

The paper's evolution (Section V-B5): the initial design followed the
Tiramisu authors' advice — many layers, small growth rate (16), 3x3
convolutions.  Profiling on Pascal/Volta showed a growth rate of 32 to be
far more GPU-efficient, so the final network **doubles the growth rate to
32, halves the layer count per dense block, and widens the convolutions to
5x5** to keep the receptive field; it trained faster *and* reached a better
model.

Five dense blocks in each direction with (2, 2, 2, 4, 5) layers
(top to bottom) in the modified network, per Section III-A1.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...framework import functional as F
from ...framework.layers import Conv2D, Module
from .blocks import DenseBlock, TransitionDown, TransitionUp

__all__ = ["TiramisuConfig", "Tiramisu", "tiramisu_modified", "tiramisu_original"]


@dataclass(frozen=True)
class TiramisuConfig:
    """Architecture hyper-parameters."""

    in_channels: int = 16
    num_classes: int = 3
    base_filters: int = 48
    growth: int = 32
    down_layers: tuple[int, ...] = (2, 2, 2, 4, 5)
    bottleneck_layers: int = 5
    kernel: int = 5
    dropout: float = 0.2

    def __post_init__(self):
        if len(self.down_layers) < 1:
            raise ValueError("need at least one dense block")
        if self.kernel % 2 == 0:
            raise ValueError("kernel must be odd ('same' padding)")

    @property
    def depth_divisor(self) -> int:
        """Input dims must be divisible by this (one 2x pool per block)."""
        return 2 ** len(self.down_layers)


class Tiramisu(Module):
    """FC-DenseNet with concatenative skips spanning the down and up paths."""

    def __init__(self, config: TiramisuConfig | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        cfg = config or TiramisuConfig()
        self.config = cfg
        rng = rng or np.random.default_rng(0)

        self.stem = Conv2D(cfg.in_channels, cfg.base_filters, cfg.kernel,
                           bias=False, rng=rng, name="stem")
        ch = cfg.base_filters
        self.down_blocks = []
        self.down_transitions = []
        self.skip_channels = []
        for i, n_layers in enumerate(cfg.down_layers):
            block = DenseBlock(ch, n_layers, cfg.growth, cfg.kernel, cfg.dropout,
                               rng, name=f"down{i}")
            self.add_module(f"down{i}", block)
            self.down_blocks.append(block)
            ch = block.out_channels
            self.skip_channels.append(ch)
            td = TransitionDown(ch, cfg.dropout, rng, name=f"td{i}")
            self.add_module(f"td{i}", td)
            self.down_transitions.append(td)

        self.bottleneck = DenseBlock(ch, cfg.bottleneck_layers, cfg.growth,
                                     cfg.kernel, cfg.dropout, rng, name="bottleneck")
        up_in = self.bottleneck.new_channels

        self.up_transitions = []
        self.up_blocks = []
        for i, n_layers in enumerate(reversed(cfg.down_layers)):
            skip_ch = self.skip_channels[-(i + 1)]
            tu = TransitionUp(up_in, up_in, rng, name=f"tu{i}")
            self.add_module(f"tu{i}", tu)
            self.up_transitions.append(tu)
            block = DenseBlock(up_in + skip_ch, n_layers, cfg.growth, cfg.kernel,
                               cfg.dropout, rng, name=f"up{i}")
            self.add_module(f"up{i}", block)
            self.up_blocks.append(block)
            up_in = block.new_channels

        # Final classifier sees the last full stack (input + new maps).
        self.classifier = Conv2D(self.up_blocks[-1].out_channels, cfg.num_classes,
                                 1, bias=True, rng=rng, name="classifier")

    def forward(self, x):
        """(N, C, H, W) -> (N, num_classes, H, W) logits.

        H and W must be divisible by ``config.depth_divisor``.
        """
        h, w = x.shape[2], x.shape[3]
        div = self.config.depth_divisor
        if h % div or w % div:
            raise ValueError(f"input {h}x{w} not divisible by {div}")
        out = self.stem(x)
        skips = []
        for block, td in zip(self.down_blocks, self.down_transitions):
            stack, _ = block(out)
            skips.append(stack)
            out = td(stack)
        _, out = self.bottleneck(out)
        for tu, block, skip in zip(self.up_transitions, self.up_blocks,
                                   reversed(skips)):
            out = tu(out)
            out = F.concat([out, skip], axis=1)
            stack, new = block(out)
            out = new if block is not self.up_blocks[-1] else stack
        return self.classifier(out)


def tiramisu_modified(in_channels: int = 16, num_classes: int = 3,
                      rng: np.random.Generator | None = None,
                      growth: int = 32) -> Tiramisu:
    """The paper's final Tiramisu: growth 32, halved blocks, 5x5 convs."""
    return Tiramisu(TiramisuConfig(in_channels=in_channels, num_classes=num_classes,
                                   growth=growth, down_layers=(2, 2, 2, 4, 5),
                                   bottleneck_layers=5, kernel=5), rng=rng)


def tiramisu_original(in_channels: int = 16, num_classes: int = 3,
                      rng: np.random.Generator | None = None) -> Tiramisu:
    """The initial design: growth 16, double-depth blocks, 3x3 convs."""
    return Tiramisu(TiramisuConfig(in_channels=in_channels, num_classes=num_classes,
                                   growth=16, down_layers=(4, 4, 4, 8, 10),
                                   bottleneck_layers=10, kernel=3), rng=rng)
