"""Shared building blocks for the segmentation networks."""
from __future__ import annotations

import numpy as np

from ...framework import functional as F
from ...framework.fusion import FusedConvBiasReLU, FusedScaleShiftReLU
from ...framework.layers import (
    Identity,
    BatchNorm2D,
    Conv2D,
    ConvTranspose2D,
    Dropout,
    MaxPool2D,
    Module,
    ReLU,
    Sequential,
)

__all__ = [
    "ConvBNReLU",
    "DenseLayer",
    "DenseBlock",
    "TransitionDown",
    "TransitionUp",
    "Bottleneck",
]


class ConvBNReLU(Module):
    """Conv -> BatchNorm -> ReLU, the workhorse composite."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, dilation: int = 1,
                 rng: np.random.Generator | None = None, name: str = "cbr"):
        super().__init__()
        self.conv = Conv2D(in_channels, out_channels, kernel, stride=stride,
                           dilation=dilation, bias=False, rng=rng, name=f"{name}.conv")
        self.bn = BatchNorm2D(out_channels, name=f"{name}.bn")
        self.act = ReLU()
        self.out_channels = out_channels

    def forward(self, x):
        return self.act(self.bn(self.conv(x)))

    def fuse_inference(self) -> int:
        """Fold the BN into the conv; the ReLU rides the fused epilogue."""
        self.conv = FusedConvBiasReLU.from_conv_bn(self.conv, self.bn, relu=True)
        self.bn = Identity()
        self.act = Identity()
        return 1


class DenseLayer(Module):
    """One Tiramisu dense layer: BN -> ReLU -> Conv(k) -> Dropout.

    Produces ``growth`` new feature maps; the caller concatenates them onto
    the running feature stack (DenseNet's concatenative skip, which the
    paper contrasts with ResNet's additive skip in Section III-A1).
    """

    def __init__(self, in_channels: int, growth: int, kernel: int = 3,
                 dropout: float = 0.2, rng: np.random.Generator | None = None,
                 name: str = "dense"):
        super().__init__()
        self.bn = BatchNorm2D(in_channels, name=f"{name}.bn")
        self.act = ReLU()
        self.conv = Conv2D(in_channels, growth, kernel, bias=False, rng=rng,
                           name=f"{name}.conv")
        self.drop = Dropout(dropout, rng=rng)
        self.growth = growth

    def forward(self, x):
        return self.drop(self.conv(self.act(self.bn(x))))

    def fuse_inference(self) -> int:
        """Pre-activation BN -> ReLU cannot fold across the conv's padding;
        it becomes one fused scale-shift-ReLU pass instead."""
        self.bn = FusedScaleShiftReLU.from_bn(self.bn, relu=True)
        self.act = Identity()
        return 1


class DenseBlock(Module):
    """A stack of dense layers with concatenative feed-forward.

    ``forward`` returns ``(stack, new_features)``: the full concatenation
    (input + all new maps) and the concatenation of only the new maps —
    Tiramisu's up-path feeds *only* the new maps into transition-up to bound
    channel growth.
    """

    def __init__(self, in_channels: int, num_layers: int, growth: int,
                 kernel: int = 3, dropout: float = 0.2,
                 rng: np.random.Generator | None = None, name: str = "dblock"):
        super().__init__()
        if num_layers < 1:
            raise ValueError("dense block needs >= 1 layer")
        self.layers_list = []
        ch = in_channels
        for i in range(num_layers):
            layer = DenseLayer(ch, growth, kernel, dropout, rng, name=f"{name}.l{i}")
            self.add_module(f"l{i}", layer)
            self.layers_list.append(layer)
            ch += growth
        self.in_channels = in_channels
        self.out_channels = ch                      # stack width
        self.new_channels = num_layers * growth     # new-features width

    def forward(self, x):
        stack = x
        new_maps = []
        for layer in self.layers_list:
            out = layer(stack)
            new_maps.append(out)
            stack = F.concat([stack, out], axis=1)
        new = new_maps[0] if len(new_maps) == 1 else F.concat(new_maps, axis=1)
        return stack, new


class TransitionDown(Module):
    """Tiramisu down-transition: BN -> ReLU -> 1x1 conv -> dropout -> 2x2 maxpool."""

    def __init__(self, channels: int, dropout: float = 0.2,
                 rng: np.random.Generator | None = None, name: str = "td"):
        super().__init__()
        self.bn = BatchNorm2D(channels, name=f"{name}.bn")
        self.act = ReLU()
        self.conv = Conv2D(channels, channels, 1, bias=False, rng=rng, name=f"{name}.conv")
        self.drop = Dropout(dropout, rng=rng)
        self.pool = MaxPool2D(2, 2)

    def forward(self, x):
        return self.pool(self.drop(self.conv(self.act(self.bn(x)))))

    def fuse_inference(self) -> int:
        self.bn = FusedScaleShiftReLU.from_bn(self.bn, relu=True)
        self.act = Identity()
        return 1


class TransitionUp(Module):
    """Tiramisu up-transition: 3x3 deconv, stride 2 (exact 2x upsample)."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: np.random.Generator | None = None, name: str = "tu"):
        super().__init__()
        self.deconv = ConvTranspose2D(in_channels, out_channels, 3, stride=2,
                                      padding=1, output_padding=1, bias=False,
                                      rng=rng, name=f"{name}.deconv")

    def forward(self, x):
        return self.deconv(x)


class Bottleneck(Module):
    """ResNet-50 bottleneck: 1x1 -> 3x3 (stride/dilation) -> 1x1, additive skip.

    Strides and dilations follow the output-stride-8 configuration in the
    paper's Figure 1 (dilation 2 in stage 4, dilation 4 in stage 5).
    """

    EXPANSION = 4

    def __init__(self, in_channels: int, planes: int, stride: int = 1,
                 dilation: int = 1, rng: np.random.Generator | None = None,
                 name: str = "btl"):
        super().__init__()
        out_channels = planes * self.EXPANSION
        self.conv1 = Conv2D(in_channels, planes, 1, bias=False, rng=rng,
                            name=f"{name}.conv1")
        self.bn1 = BatchNorm2D(planes, name=f"{name}.bn1")
        self.conv2 = Conv2D(planes, planes, 3, stride=stride, dilation=dilation,
                            bias=False, rng=rng, name=f"{name}.conv2")
        self.bn2 = BatchNorm2D(planes, name=f"{name}.bn2")
        self.conv3 = Conv2D(planes, out_channels, 1, bias=False, rng=rng,
                            name=f"{name}.conv3")
        self.bn3 = BatchNorm2D(out_channels, name=f"{name}.bn3")
        self.act = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.proj_conv = Conv2D(in_channels, out_channels, 1, stride=stride,
                                    bias=False, rng=rng, name=f"{name}.proj")
            self.proj_bn = BatchNorm2D(out_channels, name=f"{name}.proj_bn")
        else:
            self.proj_conv = None
            self.proj_bn = None
        self.out_channels = out_channels

    def forward(self, x):
        out = self.act(self.bn1(self.conv1(x)))
        out = self.act(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self.proj_conv is not None:
            shortcut = self.proj_bn(self.proj_conv(x))
        else:
            shortcut = x
        return F.relu(F.add(out, shortcut))

    def fuse_inference(self) -> int:
        """Fold every conv -> BN pair; branch-tail convs keep relu=False
        because the ReLU lands after the residual add."""
        self.conv1 = FusedConvBiasReLU.from_conv_bn(self.conv1, self.bn1, relu=True)
        self.conv2 = FusedConvBiasReLU.from_conv_bn(self.conv2, self.bn2, relu=True)
        self.conv3 = FusedConvBiasReLU.from_conv_bn(self.conv3, self.bn3, relu=False)
        self.bn1 = Identity()
        self.bn2 = Identity()
        self.bn3 = Identity()
        self.act = Identity()
        fused = 3
        if self.proj_conv is not None:
            self.proj_conv = FusedConvBiasReLU.from_conv_bn(
                self.proj_conv, self.proj_bn, relu=False)
            self.proj_bn = Identity()
            fused += 1
        return fused
