"""Atrous Spatial Pyramid Pooling, retuned for the large input resolution.

Figure 1's ASPP: a 1x1 branch plus three 3x3 atrous branches at dilations
(12, 24, 36) — larger than stock DeepLabv3+'s (6, 12, 18) because the
encoder output is 144x96 rather than the usual ~33x33 — concatenated and
projected back to 256 channels by a final 1x1 convolution.
"""
from __future__ import annotations

import numpy as np

from ...framework import functional as F
from ...framework.layers import Module
from .blocks import ConvBNReLU

__all__ = ["ASPP"]


class ASPP(Module):
    """Parallel atrous branches + 1x1 projection."""

    def __init__(self, in_channels: int, branch_channels: int = 256,
                 dilations: tuple[int, ...] = (12, 24, 36),
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.branch0 = ConvBNReLU(in_channels, branch_channels, 1, rng=rng,
                                  name="aspp.b0")
        self.atrous_branches = []
        for i, d in enumerate(dilations):
            branch = ConvBNReLU(in_channels, branch_channels, 3, dilation=d,
                                rng=rng, name=f"aspp.b{i + 1}")
            self.add_module(f"branch{i + 1}", branch)
            self.atrous_branches.append(branch)
        concat_ch = branch_channels * (1 + len(dilations))
        self.project = ConvBNReLU(concat_ch, branch_channels, 1, rng=rng,
                                  name="aspp.project")
        self.out_channels = branch_channels

    def forward(self, x):
        outs = [self.branch0(x)] + [b(x) for b in self.atrous_branches]
        return self.project(F.concat(outs, axis=1))
