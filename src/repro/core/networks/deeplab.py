"""DeepLabv3+ with the paper's full-resolution deconvolutional decoder.

Stock DeepLabv3+ decodes at one-quarter resolution to keep compute
tractable; the paper replaces the decoder with learned 3x3/2
deconvolutions all the way back to the native 1152x768 grid because "the
irregular and fine-scale nature of our segmentation labels requires
operating at the native resolution" (Section V-B5).  Both decoders are
implemented so the trade can be measured:

* ``decoder="fullres"`` (paper, Figure 1): deconv to 1/4, fuse the 48-channel
  low-level skip, two 3x3x256 convs, deconv to 1/2, one 3x3x256 conv,
  deconv to 1/1, 3x3 convs at 128/64, final 1x1 to the classes;
* ``decoder="quarter"`` (stock): bilinear x2 to 1/4, fuse skip, two 3x3x256
  convs, classify at 1/4, bilinear x4 back to full resolution.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...framework import functional as F
from ...framework.layers import BilinearUpsample2D, Conv2D, ConvTranspose2D, Module
from .aspp import ASPP
from .blocks import ConvBNReLU
from .resnet import ResNetConfig, ResNetEncoder

__all__ = ["DeepLabConfig", "DeepLabV3Plus", "deeplab_modified", "deeplab_stock"]


@dataclass(frozen=True)
class DeepLabConfig:
    """Architecture hyper-parameters; ``width`` scales the whole network."""

    in_channels: int = 16
    num_classes: int = 3
    decoder: str = "fullres"
    aspp_dilations: tuple[int, ...] = (12, 24, 36)
    width: float = 1.0

    def __post_init__(self):
        if self.decoder not in ("fullres", "quarter"):
            raise ValueError(f"unknown decoder {self.decoder!r}")

    def scaled(self, channels: int) -> int:
        return max(int(round(channels * self.width)), 4)


class DeepLabV3Plus(Module):
    """Encoder (ResNet-50, OS8) + ASPP + decoder."""

    def __init__(self, config: DeepLabConfig | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        cfg = config or DeepLabConfig()
        self.config = cfg
        rng = rng or np.random.default_rng(0)
        self.encoder = ResNetEncoder(
            ResNetConfig(in_channels=cfg.in_channels, width=cfg.width), rng=rng
        )
        c256 = cfg.scaled(256)
        self.aspp = ASPP(self.encoder.out_channels, c256,
                         dilations=cfg.aspp_dilations, rng=rng)
        c48 = cfg.scaled(48)
        self.skip_proj = ConvBNReLU(self.encoder.low_level_channels, c48, 1,
                                    rng=rng, name="skip_proj")
        if cfg.decoder == "fullres":
            self.up8to4 = ConvTranspose2D(c256, c256, 3, stride=2, padding=1,
                                          output_padding=1, bias=False, rng=rng,
                                          name="up8to4")
            self.fuse1 = ConvBNReLU(c256 + c48, c256, 3, rng=rng, name="fuse1")
            self.fuse2 = ConvBNReLU(c256, c256, 3, rng=rng, name="fuse2")
            self.up4to2 = ConvTranspose2D(c256, c256, 3, stride=2, padding=1,
                                          output_padding=1, bias=False, rng=rng,
                                          name="up4to2")
            self.refine2 = ConvBNReLU(c256, c256, 3, rng=rng, name="refine2")
            self.up2to1 = ConvTranspose2D(c256, c256, 3, stride=2, padding=1,
                                          output_padding=1, bias=False, rng=rng,
                                          name="up2to1")
            # Figure 1 keeps two 256-wide 3x3 convs at the native resolution
            # before narrowing — the dominant cost of the full-res decoder.
            self.refine1a = ConvBNReLU(c256, c256, 3, rng=rng, name="refine1a")
            self.refine1b = ConvBNReLU(c256, c256, 3, rng=rng, name="refine1b")
            self.narrow1 = ConvBNReLU(c256, cfg.scaled(128), 3, rng=rng,
                                      name="narrow1")
            self.narrow2 = ConvBNReLU(cfg.scaled(128), cfg.scaled(64), 3, rng=rng,
                                      name="narrow2")
            self.classifier = Conv2D(cfg.scaled(64), cfg.num_classes, 1, rng=rng,
                                     name="classifier")
        else:
            self.up8to4 = BilinearUpsample2D(2)
            self.fuse1 = ConvBNReLU(c256 + c48, c256, 3, rng=rng, name="fuse1")
            self.fuse2 = ConvBNReLU(c256, c256, 3, rng=rng, name="fuse2")
            self.classifier = Conv2D(c256, cfg.num_classes, 1, rng=rng,
                                     name="classifier")
            self.final_upsample = BilinearUpsample2D(4)

    def forward(self, x):
        """(N, C, H, W) -> (N, num_classes, H, W) logits (both decoders
        return full-resolution logits; the stock decoder computes them at
        1/4 and bilinearly upsamples)."""
        feats, low_level = self.encoder(x)
        feats = self.aspp(feats)
        skip = self.skip_proj(low_level)
        out = self.up8to4(feats)
        out = F.concat([out, skip], axis=1)
        out = self.fuse2(self.fuse1(out))
        if self.config.decoder == "fullres":
            out = self.refine2(self.up4to2(out))
            out = self.refine1b(self.refine1a(self.up2to1(out)))
            out = self.narrow2(self.narrow1(out))
            return self.classifier(out)
        return self.final_upsample(self.classifier(out))


def deeplab_modified(in_channels: int = 16, num_classes: int = 3,
                     width: float = 1.0,
                     rng: np.random.Generator | None = None) -> DeepLabV3Plus:
    """The paper's network: full-resolution deconvolutional decoder."""
    return DeepLabV3Plus(DeepLabConfig(in_channels=in_channels,
                                       num_classes=num_classes,
                                       decoder="fullres", width=width), rng=rng)


def deeplab_stock(in_channels: int = 16, num_classes: int = 3,
                  width: float = 1.0,
                  rng: np.random.Generator | None = None) -> DeepLabV3Plus:
    """Stock quarter-resolution decoder (the ablation baseline)."""
    return DeepLabV3Plus(DeepLabConfig(in_channels=in_channels,
                                       num_classes=num_classes,
                                       decoder="quarter", width=width), rng=rng)
