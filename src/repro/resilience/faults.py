"""Seeded fault plans and the runtime injector the layers consult.

At 27360 GPUs a multi-hour run *will* see node deaths, slow readers, and
lost control messages; the paper survives them with staging and
checkpoint/restart.  This module makes those failures first-class and
reproducible: a :class:`FaultPlan` is a declarative, seeded schedule of
faults, and a :class:`FaultInjector` is the runtime object the comm wire
(:class:`repro.comm.simmpi.World`), the read paths (:mod:`repro.io`), and
the event engine (:class:`repro.hpc.events.EventQueue`) consult at each
hook point.  Identical plan + seed ⇒ identical fault sequence, so every
recovery path is deterministic and testable.

Fault kinds
-----------
``rank_fail``
    Kill ``rank`` at the start of global step ``step``; subsequent traffic
    touching it raises :class:`repro.errors.RankFailure`.
``read_fault``
    The next ``count`` reads at/after step ``step`` (optionally matching
    ``path``) raise :class:`repro.errors.ReadFault`.
``slow_read``
    Like ``read_fault`` but the read survives, slowed by ``factor``.
``drop_msg`` / ``dup_msg``
    At/after step ``step``, sends are dropped / duplicated until ``count``
    have been affected; with ``prob`` set, each send is affected with that
    probability (seeded), otherwise the first ``count`` sends are.
``straggler``
    Rank ``rank`` runs ``factor``× slower from step ``step`` on (consulted
    through :meth:`FaultInjector.delay_factor` / event-queue perturbation).

Plans parse from compact strings (the ``repro faults`` CLI syntax)::

    rank_fail@3:rank=1;read_fault@1;drop_msg@2:count=2,prob=0.5
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FaultInjected, ReadFault
from ..telemetry import get_active

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "FaultInjector"]

FAULT_KINDS = ("rank_fail", "read_fault", "slow_read", "drop_msg",
               "dup_msg", "straggler")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    kind: str
    step: int = 0                # global step at which the fault arms
    rank: int | None = None      # target rank (rank_fail, straggler)
    path: str | None = None      # substring filter for read faults
    count: int = 1               # events affected (read/drop/dup faults)
    factor: float = 4.0          # slowdown multiple (slow_read, straggler)
    prob: float | None = None    # per-event probability (drop/dup), seeded

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.step < 0:
            raise ValueError("fault step must be >= 0")
        if self.kind == "rank_fail" and self.rank is None:
            raise ValueError("rank_fail needs rank=<r>")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if self.prob is not None and not 0.0 < self.prob <= 1.0:
            raise ValueError("prob must be in (0, 1]")


class FaultPlan:
    """An immutable, seeded schedule of :class:`FaultSpec` entries."""

    def __init__(self, specs=(), seed: int = 0):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``kind@step[:key=val,...]`` entries separated by ``;``."""
        specs = []
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            head, _, opts = raw.partition(":")
            kind, _, step = head.partition("@")
            kwargs: dict = {"kind": kind.strip(),
                            "step": int(step) if step else 0}
            for pair in filter(None, (p.strip() for p in opts.split(","))):
                key, _, value = pair.partition("=")
                if not _:
                    raise ValueError(f"malformed fault option {pair!r}")
                key = key.strip()
                if key in ("rank", "count", "step"):
                    kwargs[key] = int(value)
                elif key in ("factor", "prob"):
                    kwargs[key] = float(value)
                elif key == "path":
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault option {key!r}")
            specs.append(FaultSpec(**kwargs))
        return cls(specs, seed=seed)

    def describe(self) -> str:
        parts = []
        for s in self.specs:
            opts = []
            if s.rank is not None:
                opts.append(f"rank={s.rank}")
            if s.path is not None:
                opts.append(f"path={s.path}")
            if s.count != 1:
                opts.append(f"count={s.count}")
            if s.prob is not None:
                opts.append(f"prob={s.prob}")
            suffix = (":" + ",".join(opts)) if opts else ""
            parts.append(f"{s.kind}@{s.step}{suffix}")
        return ";".join(parts)


@dataclass
class _ArmedCounter:
    """A drop/dup/read fault that is live and still has budget."""

    spec: FaultSpec
    remaining: int = field(default=0)

    def __post_init__(self):
        self.remaining = self.spec.count


class FaultInjector:
    """Runtime fault state: armed counters, seeded rng, telemetry counters.

    One injector is shared by every hooked layer of a run.  The training
    loop advances it with :meth:`begin_step`; the comm wire calls
    :meth:`message_action` per send; read paths call :meth:`check_read`
    per read; the event engine calls :meth:`perturb_delay` per scheduled
    event.  All decisions derive from the plan plus one
    ``np.random.default_rng(plan.seed)`` stream, so a fixed seed replays
    the exact fault sequence.
    """

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan or FaultPlan()
        self.rng = np.random.default_rng(self.plan.seed)
        self.step = -1
        self.counts: dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self._armed_msgs: list[_ArmedCounter] = []   # drop_msg / dup_msg
        self._armed_reads: list[_ArmedCounter] = []  # read_fault / slow_read
        self._stragglers: list[FaultSpec] = []
        self._failed_ranks: set[int] = set()

    # -- bookkeeping -------------------------------------------------------

    def _note(self, kind: str, **args) -> None:
        self.counts[kind] += 1
        tel = get_active()
        if tel.enabled:
            tel.metrics.counter(f"resilience.injected.{kind}").inc()
            tel.tracer.instant("fault_injected", category="resilience",
                               kind=kind, step=self.step, **args)

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    # -- step driving ------------------------------------------------------

    def begin_step(self, step: int) -> list[int]:
        """Advance to ``step``; returns ranks whose failure is now due."""
        self.step = int(step)
        due = []
        for s in self.plan.specs:
            if s.step != step:
                continue
            if s.kind == "rank_fail":
                if s.rank not in self._failed_ranks:
                    self._failed_ranks.add(s.rank)
                    due.append(s.rank)
                    self._note("rank_fail", rank=s.rank)
            elif s.kind in ("drop_msg", "dup_msg"):
                self._armed_msgs.append(_ArmedCounter(s))
            elif s.kind in ("read_fault", "slow_read"):
                self._armed_reads.append(_ArmedCounter(s))
            elif s.kind == "straggler":
                self._stragglers.append(s)
        return due

    def rank_failures_due(self, step: int) -> list[int]:
        """Ranks scheduled to die at ``step`` (without advancing state)."""
        return [s.rank for s in self.plan.specs
                if s.kind == "rank_fail" and s.step == step]

    # -- comm hook ---------------------------------------------------------

    def message_action(self, src: int, dst: int, tag: int) -> str:
        """Fate of one send: ``"deliver"``, ``"drop"``, or ``"duplicate"``."""
        for armed in self._armed_msgs:
            if armed.remaining <= 0:
                continue
            if armed.spec.prob is not None and \
                    self.rng.random() >= armed.spec.prob:
                continue
            armed.remaining -= 1
            kind = armed.spec.kind
            self._note(kind, src=src, dst=dst, tag=tag)
            return "drop" if kind == "drop_msg" else "duplicate"
        return "deliver"

    # -- read hook ---------------------------------------------------------

    def check_read(self, path) -> float:
        """Consult armed read faults for one read of ``path``.

        Raises :class:`~repro.errors.ReadFault` for a ``read_fault``;
        returns the slowdown factor (1.0 when unaffected) for
        ``slow_read``.  Each armed fault fires ``count`` times then
        exhausts, so a retried read eventually succeeds.
        """
        name = str(path)
        for armed in self._armed_reads:
            if armed.remaining <= 0:
                continue
            if armed.spec.path is not None and armed.spec.path not in name:
                continue
            armed.remaining -= 1
            if armed.spec.kind == "read_fault":
                self._note("read_fault", path=name)
                raise ReadFault(f"injected read failure for {name}",
                                path=path)
            self._note("slow_read", path=name)
            return armed.spec.factor
        return 1.0

    # -- time hook ---------------------------------------------------------

    def delay_factor(self, rank: int | None = None) -> float:
        """Slowdown multiple for work on ``rank`` at the current step."""
        factor = 1.0
        for s in self._stragglers:
            if s.rank is None or rank is None or s.rank == rank:
                factor *= s.factor
        return factor

    def perturb_delay(self, delay: float, rank: int | None = None) -> float:
        """Event-queue hook: stretch a scheduled delay for stragglers."""
        factor = self.delay_factor(rank)
        if factor != 1.0:
            self._note("straggler", rank=rank, factor=factor)
        return delay * factor

    # -- failed-rank registry ---------------------------------------------

    @property
    def failed_ranks(self) -> frozenset[int]:
        return frozenset(self._failed_ranks)


def is_injected(exc: BaseException) -> bool:
    """True when ``exc`` came from a fault plan (vs a genuine bug)."""
    return isinstance(exc, FaultInjected)
