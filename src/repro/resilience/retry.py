"""Retry-with-backoff: the hardening wrapper for staging and read paths.

The paper's staging phase reads hundreds of terabytes through a shared
parallel file system; transient read failures are expected and must not
kill a 27360-GPU step.  :func:`with_retries` retries a callable under a
:class:`RetryPolicy` (exponential backoff with seeded jitter), records
every retry as a telemetry counter and span, and re-raises once the
budget is exhausted.

Backoff sleeping is pluggable so simulations stay fast and deterministic:
the default ``sleep`` is a no-op that merely *accounts* the time it would
have slept (``RetryState.backoff_total_s``); pass ``time.sleep`` for real
wall-clock behaviour.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from ..telemetry import get_active

__all__ = ["RetryPolicy", "RetryState", "RetriesExhausted", "with_retries"]


class RetriesExhausted(ReproError):
    """All attempts failed; ``last`` is the final underlying exception."""

    def __init__(self, attempts: int, last: BaseException):
        super().__init__(f"gave up after {attempts} attempts: {last!r}")
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, backoff curve, jitter."""

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.1          # +/- fraction of the delay, seeded
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> list[float]:
        """The full backoff schedule (between-attempt delays)."""
        rng = np.random.default_rng(self.seed)
        out = []
        for attempt in range(self.max_attempts - 1):
            delay = min(self.backoff_base_s * self.backoff_factor ** attempt,
                        self.max_backoff_s)
            if self.jitter:
                delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
            out.append(delay)
        return out


@dataclass
class RetryState:
    """Accounting for one ``with_retries`` call."""

    attempts: int = 0
    retries: int = 0
    backoff_total_s: float = 0.0
    errors: list = field(default_factory=list)


def with_retries(fn, policy: RetryPolicy | None = None,
                 retry_on: tuple = (ReproError, OSError),
                 sleep=None, label: str = "retry",
                 state: RetryState | None = None):
    """Call ``fn()`` under ``policy``; returns its result.

    Exceptions matching ``retry_on`` trigger backoff and another attempt;
    anything else propagates immediately.  When every attempt fails the
    last error is re-raised wrapped in :class:`RetriesExhausted` (with the
    original as ``__cause__``).  ``state`` (optional) accumulates attempt
    counts across calls — the resilience runner uses one shared state to
    report a whole run's retry totals.
    """
    policy = policy or RetryPolicy()
    state = state if state is not None else RetryState()
    delays = policy.delays()
    tel = get_active()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        state.attempts += 1
        try:
            return fn()
        except retry_on as exc:
            last = exc
            state.errors.append(exc)
            if attempt == policy.max_attempts - 1:
                break
            delay = delays[attempt]
            state.retries += 1
            state.backoff_total_s += delay
            if tel.enabled:
                tel.metrics.counter("resilience.retries").inc()
                tel.tracer.instant("retry", category="resilience",
                                   label=label, attempt=attempt + 1,
                                   backoff_s=delay, error=type(exc).__name__)
            if sleep is not None:
                sleep(delay)
    raise RetriesExhausted(policy.max_attempts, last) from last
