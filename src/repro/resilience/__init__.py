"""Fault injection and elastic recovery for the simulated exascale run.

The paper's headline training occupies all of Summit for hours — at that
scale node deaths, slow readers, and lost messages are routine, and the
run survives on distributed staging plus checkpoint/restart.  This
package makes that failure model explicit and testable:

* :class:`FaultPlan` / :class:`FaultSpec` — a seeded, declarative fault
  schedule (rank failures, read faults, stragglers, message drop/dup);
* :class:`FaultInjector` — the runtime hook object consulted by
  :class:`repro.comm.simmpi.World`, the :mod:`repro.io` read paths, and
  :class:`repro.hpc.events.EventQueue`;
* :class:`RetryPolicy` / :func:`with_retries` — retry-with-backoff
  hardening for the staging/read path;
* :func:`run_resilient_training` — drives a
  :class:`repro.core.DistributedTrainer` through a plan with elastic
  degradation (world shrink + re-shard + LR rescale) and
  checkpoint-autoresume via :class:`repro.core.CheckpointManager`.

Exceptions all derive from :mod:`repro.errors`; injected ones subclass
:class:`repro.errors.FaultInjected` so recovery code can distinguish a
planned fault from a genuine bug.
"""
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from .retry import RetriesExhausted, RetryPolicy, RetryState, with_retries
from .runner import ResilienceReport, mean_eval_loss, run_resilient_training

__all__ = [
    "mean_eval_loss",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "RetryState",
    "RetriesExhausted",
    "with_retries",
    "ResilienceReport",
    "run_resilient_training",
]
