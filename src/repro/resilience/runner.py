"""Fault-tolerant distributed training: inject, survive, recover, verify.

This is the tentpole orchestration: a :class:`repro.core.DistributedTrainer`
driven under a :class:`FaultPlan`, surviving everything the plan throws —

* **read faults** retry with backoff (:mod:`repro.resilience.retry`);
* **dropped / duplicated messages** are handled at the wire
  (:meth:`repro.comm.simmpi.World.recv_reliable` and transport dedup) or,
  when a drop lands mid-allreduce, by draining the wire and retrying the
  whole step (gradients are recomputed, so the retry is exact);
* **rank failures** trigger *elastic degradation*: the survivors rebuild a
  smaller world (:meth:`repro.core.DistributedTrainer.shrink`), data is
  re-sharded over the new size, and the LR rescales to the surviving
  concurrency;
* **periodic checkpoints** (:class:`repro.core.CheckpointManager`) give
  autoresume: a rerun on the same directory restarts from the latest
  step instead of step 0.

Every fault and recovery lands in telemetry (counters plus
``category="resilience"`` spans), so a Chrome trace of a faulty run shows
each injected failure and the recovery that answered it.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.checkpoint import CheckpointManager
from ..core.distributed import DistributedTrainer
from ..core.trainer import TrainConfig
from ..errors import FaultInjected, RankFailure, ReadFault, StagingError
from ..telemetry import get_active
from .faults import FaultInjector, FaultPlan
from .retry import RetryPolicy, RetryState, with_retries

__all__ = ["ResilienceReport", "run_resilient_training", "mean_eval_loss"]


def mean_eval_loss(trainer, batches) -> float:
    """Mean loss of the (rank 0) model over fixed evaluation batches.

    The fault-tolerance acceptance metric: per-step training losses are
    noisy (each step sees different shards, and a shrunk world sees fewer),
    so faulty and fault-free runs are compared by their *final models* on
    one fixed batch set.
    """
    t = trainer.trainers[0] if isinstance(trainer, DistributedTrainer) else trainer
    vals = [float(t.compute_loss(images, labels).item())
            for images, labels in batches]
    if not vals:
        raise ValueError("need at least one evaluation batch")
    return float(np.mean(vals))


@dataclass
class ResilienceReport:
    """What a resilient run survived, and how it ended."""

    steps_completed: int = 0
    start_world_size: int = 0
    final_world_size: int = 0
    rank_failures: list[int] = field(default_factory=list)  # original ids
    recoveries: int = 0
    step_retries: int = 0
    read_retries: int = 0
    injected: dict[str, int] = field(default_factory=dict)
    checkpoints_saved: int = 0
    resumed_from: str | None = None
    resumed_at_step: int = 0
    losses: list[float] = field(default_factory=list)
    trainer: DistributedTrainer | None = field(default=None, repr=False)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            return float("nan")
        return self.losses[-1]

    def mean_loss(self, last: int | None = None) -> float:
        if not self.losses:
            return float("nan")
        window = self.losses if last is None else self.losses[-last:]
        return float(np.mean(window))


def run_resilient_training(
    model_factory,
    config: TrainConfig,
    world_size: int,
    batch_provider,
    steps: int,
    plan: FaultPlan | None = None,
    class_frequencies: np.ndarray | None = None,
    checkpoint_dir=None,
    checkpoint_every: int = 0,
    keep_last: int = 3,
    lr_scaling: str = "linear",
    retry: RetryPolicy | None = None,
    max_step_retries: int = 3,
    resume: bool = True,
    on_step=None,
    engine=None,
    compression_ratio: float | None = None,
) -> ResilienceReport:
    """Train ``steps`` global steps under ``plan``; returns the report.

    ``batch_provider(step, rank, world_size)`` must return one
    ``(images, labels)`` batch; it is called with the *current* world size,
    so after an elastic shrink the surviving ranks automatically cover a
    re-sharded data assignment.  Faults listed in ``plan`` are injected at
    their scheduled steps; a run with ``plan=None`` is the fault-free
    baseline the CLI compares against.

    ``engine`` (a :class:`repro.comm.GradientExchangeEngine` or its config)
    routes gradient exchange through the adaptive engine;
    ``compression_ratio`` enables the legacy per-tensor top-k path.  Either
    way the compressors' error-feedback residuals ride checkpoints as extra
    arrays and are restored on resume — losing them would silently re-drop
    gradient mass the compressor had promised to carry forward.

    ``on_step(step, result, trainer, original_ids)`` is called after each
    completed step (before telemetry sampling) — the hook the health drill
    uses to advance a simulated clock and emit virtual per-rank spans.
    When the active telemetry session has streaming/health layers attached
    (:meth:`repro.telemetry.Telemetry.attach_health`), every completed step
    samples the registry into the stream, closes due windows, and runs the
    health rules — so alerts fire *during* the run, not post hoc.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    tel = get_active()
    tracer = tel.tracer
    injector = FaultInjector(plan) if plan is not None and len(plan) else None
    trainer = DistributedTrainer(model_factory, world_size, config,
                                 class_frequencies, fault_injector=injector,
                                 engine=engine,
                                 compression_ratio=compression_ratio)
    report = ResilienceReport(start_world_size=world_size, trainer=trainer)
    manager = None
    if checkpoint_dir is not None:
        manager = CheckpointManager(checkpoint_dir, keep_last=keep_last)
    start_step = 0
    if manager is not None and resume:
        latest = manager.latest()
        if latest is not None:
            with tracer.span("checkpoint_resume", category="resilience"):
                # Restore every replica (model AND optimizer state) from the
                # same checkpoint, the moral equivalent of Horovod's rank-0
                # broadcast after restart; optimizer state must come along
                # or replicas diverge one step after resume.
                for t in trainer.trainers:
                    meta = manager.load(t, latest)
                # Error-feedback residuals are comm-layer state, not model
                # state; restore them alongside or compression re-drops
                # whatever mass was pending at the checkpoint.
                trainer.load_comm_state(manager.load_extra_arrays(latest))
            start_step = int(meta.get("extra", {}).get("step", 0))
            report.resumed_from = str(latest)
            report.resumed_at_step = start_step
            if tel.enabled:
                tel.metrics.counter("resilience.resumes").inc()

    policy = retry or RetryPolicy()
    read_state = RetryState()
    # Current-rank -> original-rank mapping; fault plans name ranks in the
    # original numbering, and the report does too.
    original_ids = list(range(world_size))

    def fetch(step: int, rank: int):
        def attempt():
            if injector is not None:
                injector.check_read(f"step{step}/rank{rank}")
            return batch_provider(step, rank, trainer.world_size)

        return with_retries(attempt, policy,
                            retry_on=(ReadFault, StagingError, OSError),
                            label=f"batch:step{step}/rank{rank}",
                            state=read_state)

    for step in range(start_step, steps):
        if injector is not None:
            for orig in injector.begin_step(step):
                if orig in original_ids:
                    trainer.world.fail_rank(original_ids.index(orig))
        wire_retries = 0
        while True:
            try:
                with tracer.span("resilient_step", category="resilience",
                                 step=step, world=trainer.world_size):
                    batches = [fetch(step, rank)
                               for rank in range(trainer.world_size)]
                    result = trainer.train_step(batches)
                break
            except RankFailure:
                dead_current = sorted(trainer.world.failed_ranks)
                dead_original = [original_ids[i] for i in dead_current]
                with tracer.span("elastic_recovery", category="resilience",
                                 step=step, failed=dead_original):
                    info = trainer.shrink(dead_current, lr_scaling=lr_scaling)
                original_ids = [oid for i, oid in enumerate(original_ids)
                                if i not in dead_current]
                report.rank_failures.extend(dead_original)
                report.recoveries += 1
                if tel.enabled:
                    tel.metrics.counter("resilience.recoveries").inc()
                    tel.tracer.instant(
                        "world_shrunk", category="resilience", step=step,
                        old=info["old_size"], new=info["new_size"],
                        lr_factor=info["lr_factor"])
                continue
            except FaultInjected:
                # A drop that escaped the reliable-recv paths (e.g. inside
                # the allreduce): flush the wire, recompute the step.
                wire_retries += 1
                report.step_retries += 1
                trainer.world.drain()
                for t in trainer.trainers:
                    for p in t.model.parameters():
                        p.grad = None
                if tel.enabled:
                    tel.metrics.counter("resilience.step_retries").inc()
                if wire_retries > max_step_retries:
                    raise
                continue
        report.losses.append(result.mean_loss)
        report.steps_completed += 1
        if on_step is not None:
            on_step(step, result, trainer, original_ids)
        if tel.streams is not None:
            tel.streams.sample(tel.metrics)
            tel.streams.advance()
        if tel.health is not None:
            tel.health.evaluate()
        if (manager is not None and checkpoint_every > 0
                and (step + 1) % checkpoint_every == 0):
            with tracer.span("checkpoint_save", category="resilience",
                             step=step):
                manager.save(trainer.trainers[0], step=step + 1,
                             extra_arrays=trainer.comm_state())
            report.checkpoints_saved += 1

    report.final_world_size = trainer.world_size
    report.read_retries = read_state.retries
    if injector is not None:
        report.injected = {k: v for k, v in injector.counts.items() if v}
    if tel.enabled:
        tel.metrics.gauge("resilience.final_world_size").set(
            trainer.world_size)
    return report
